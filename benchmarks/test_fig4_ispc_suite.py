"""Figure 4: Parsimony and ispc vs LLVM auto-vectorization, 7 ispc
benchmarks (paper §6: geomeans 5.9× and 6.0× over auto-vectorization;
Binomial Options is the one gap — 0.71× of ispc — caused by SLEEF's
``pow`` being 2.6× slower than ispc's built-in).

Run ``examples/fig4_report.py`` for the figure-shaped summary table.
"""

import pytest

from conftest import measure
from repro.benchsuite.ispc_suite import BENCHMARKS

_IDS = [b.name for b in BENCHMARKS]


@pytest.mark.parametrize("spec", BENCHMARKS, ids=_IDS)
@pytest.mark.benchmark(group="fig4")
def test_fig4_parsimony(benchmark, spec):
    measure(benchmark, spec, "parsimony", baselines=("autovec",))


@pytest.mark.parametrize("spec", BENCHMARKS, ids=_IDS)
@pytest.mark.benchmark(group="fig4")
def test_fig4_ispc(benchmark, spec):
    measure(benchmark, spec, "ispc", baselines=("autovec",))
