"""Ablation: the integer-narrowing scalar cleanup (DESIGN.md).

Parsimony inherits LLVM's standard scalar pipeline; the paper's near-parity
with hand-written byte kernels depends on InstCombine undoing C's integer
promotions before vectorization.  This ablation compiles a u8 kernel with
the narrowing pass removed from the pipeline to quantify that dependency.
"""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.driver import post_vectorize_cleanup
from repro.ir import Module
from repro.passes import (
    PassManager, constant_fold, cse, dce, mem2reg, narrow_ints, simplify_cfg,
)
from repro.vectorizer import vectorize_module
from repro.vm import Interpreter

N = 4096

SRC = """
void kernel(u8* a, u8* b, u8* c, u64 n) {
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        c[i] = (u8)((((i32)a[i] & (i32)b[i]) + ((i32)a[i] ^ (i32)b[i])) >> 1);
    }
}
"""


def build(with_narrowing):
    module = compile_source(SRC)
    passes = [mem2reg, constant_fold, simplify_cfg, cse]
    if with_narrowing:
        passes.append(narrow_ints)
    passes += [constant_fold, cse, dce]
    PassManager(passes).run(module)
    vectorize_module(module)
    if with_narrowing:
        post_vectorize_cleanup(module)
    else:
        _cleanup_without_narrowing(module)
    return module


def _cleanup_without_narrowing(module: Module):
    from repro.passes import licm
    from repro.passes.inline import inline_function_calls

    for function in module.functions.values():
        if function.spmd is not None:
            continue
        inline_function_calls(function, should_inline=lambda c: ".psim" in c.name)
        constant_fold(function)
        simplify_cfg(function)
        cse(function)
        licm(function)
        dce(function)


def run(module):
    interp = Interpreter(module)
    rng = np.random.default_rng(1)
    a = interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
    b = interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
    c = interp.memory.alloc_array(np.zeros(N, np.uint8))
    interp.run("kernel", a, b, c, N)
    return interp


@pytest.mark.parametrize("narrowing", [True, False], ids=["narrowed", "promoted-i32"])
@pytest.mark.benchmark(group="ablation-narrowing")
def test_narrowing_ablation(benchmark, narrowing):
    module = build(narrowing)
    interp = benchmark.pedantic(lambda: run(module), rounds=1, iterations=1)
    benchmark.extra_info["model_cycles"] = interp.stats.cycles


def test_narrowing_matters_for_u8_kernels():
    with_cycles = run(build(True)).stats.cycles
    without_cycles = run(build(False)).stats.cycles
    assert with_cycles < 0.8 * without_cycles
