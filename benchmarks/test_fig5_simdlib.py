"""Figure 5: 72 Simd Library kernels — hand-written AVX-512, Parsimony,
and LLVM auto-vectorization, as speedup over un-vectorized scalar code
(paper §6: geomeans 7.91× / 7.70× / 3.46×; Parsimony reaches 0.97× of
hand-written).

Each benchmark measures the Parsimony build of one kernel and records its
speedup over the scalar, auto-vectorized, and hand-written builds in
``extra_info``.  Run ``examples/fig5_report.py`` for the full
figure-shaped series and geomeans.
"""

import pytest

from conftest import measure
from repro.benchsuite.simdlib import KERNELS

_IDS = [k.name for k in KERNELS]


@pytest.mark.parametrize("spec", KERNELS, ids=_IDS)
@pytest.mark.benchmark(group="fig5")
def test_fig5_kernel(benchmark, spec):
    measure(benchmark, spec, "parsimony",
            baselines=("scalar", "autovec", "handwritten"))
