"""Ablation: shape-directed memory instruction selection (§4.2.3).

The paper's key memory claim: packed accesses are roughly an order of
magnitude cheaper than gather/scatter, and bounded-stride accesses can
stay packed via shuffles (window ≤ 4× gang size).  This ablation compiles
a stride-2 kernel with the packed+shuffle window disabled and with shape
analysis off entirely, showing the cost cliff.
"""

import numpy as np
import pytest

from repro.driver import compile_parsimony
from repro.vectorizer import VectorizeConfig
from repro.vm import Interpreter

SRC = """
void kernel(u32* src, u32* dst, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        dst[i] = src[2 * i] + src[2 * i + 1];
    }
}
"""

N = 2048


def run_config(config):
    module = compile_parsimony(SRC, config)
    interp = Interpreter(module)
    src = interp.memory.alloc_array(np.arange(2 * N, dtype=np.uint32))
    dst = interp.memory.alloc_array(np.zeros(N, dtype=np.uint32))
    interp.run("kernel", src, dst, N)
    return interp


@pytest.mark.benchmark(group="ablation-memory")
def test_window_shuffles(benchmark):
    interp = benchmark.pedantic(
        lambda: run_config(VectorizeConfig()), rounds=1, iterations=1
    )
    benchmark.extra_info["model_cycles"] = interp.stats.cycles
    benchmark.extra_info["gathers"] = interp.stats.count("gather")
    assert interp.stats.count("gather") == 0


@pytest.mark.benchmark(group="ablation-memory")
def test_window_disabled_falls_back_to_gather(benchmark):
    interp = benchmark.pedantic(
        lambda: run_config(VectorizeConfig(max_stride_window=0)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["model_cycles"] = interp.stats.cycles
    benchmark.extra_info["gathers"] = interp.stats.count("gather")
    assert interp.stats.count("gather") > 0


@pytest.mark.benchmark(group="ablation-memory")
def test_shape_analysis_disabled(benchmark):
    interp = benchmark.pedantic(
        lambda: run_config(VectorizeConfig(enable_shape_analysis=False)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["model_cycles"] = interp.stats.cycles
    benchmark.extra_info["gathers"] = interp.stats.count("gather")
    assert interp.stats.count("gather", "scatter") > 0


def test_window_beats_gather_by_large_factor():
    """The §4.2.3 claim in one assertion: packed+shuffle vs gather."""
    windowed = run_config(VectorizeConfig()).stats.cycles
    gathered = run_config(VectorizeConfig(max_stride_window=0)).stats.cycles
    assert gathered > 1.8 * windowed
