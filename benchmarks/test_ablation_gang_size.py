"""Ablation: programmer-chosen gang size vs element width (paper §1).

The paper's motivating point against flag-coupled gang sizes: on a 512-bit
machine a gang of 64 is ideal for 8-bit data while 16 is ideal for 32-bit
data; a single compilation-unit-wide choice must be wrong for one of them.
Parsimony lets each region choose, so an 8-bit kernel at gang 64 should
clearly beat the same kernel forced to gang 16.
"""

import numpy as np
import pytest

from repro.driver import compile_parsimony
from repro.vm import Interpreter

N = 4096

SRC_TEMPLATE = """
void kernel(u8* a, u8* b, u8* c, u64 n) {{
    psim (gang_size={gang}, num_threads=n) {{
        u64 i = psim_get_thread_num();
        c[i] = addsat(a[i], b[i]);
    }}
}}
"""


def run_gang(gang):
    module = compile_parsimony(SRC_TEMPLATE.format(gang=gang))
    interp = Interpreter(module)
    rng = np.random.default_rng(0)
    a = interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
    b = interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
    c = interp.memory.alloc_array(np.zeros(N, np.uint8))
    interp.run("kernel", a, b, c, N)
    return interp


@pytest.mark.parametrize("gang", [8, 16, 32, 64, 128])
@pytest.mark.benchmark(group="ablation-gang-size")
def test_gang_size_sweep_u8(benchmark, gang):
    interp = benchmark.pedantic(lambda: run_gang(gang), rounds=1, iterations=1)
    benchmark.extra_info["model_cycles"] = interp.stats.cycles
    benchmark.extra_info["gang_size"] = gang


def test_wide_gang_wins_for_u8():
    """Gang 64 (= 512b of u8) beats the 32-bit-coupled default of 16."""
    cycles16 = run_gang(16).stats.cycles
    cycles64 = run_gang(64).stats.cycles
    assert cycles64 < 0.55 * cycles16
