"""Shared helpers for the benchmark harness.

Two kinds of numbers come out of these benchmarks:

* **wall time** (what pytest-benchmark itself measures) — how long the
  simulation takes to run on the host; useful for tracking the
  reproduction's own performance;
* **model cycles** (``extra_info``) — the cost-model metric the paper's
  figures are expressed in.  Speedups in ``extra_info`` are the numbers
  that regenerate Figures 4 and 5; see ``examples/fig4_report.py`` and
  ``examples/fig5_report.py`` for the figure-shaped summaries.
"""

import pytest

from repro.benchsuite.runner import build_impl, run_impl


def measure(benchmark, spec, impl, baselines=()):
    """Benchmark one implementation and record model-cycle metrics."""
    module = build_impl(spec, impl)
    result = benchmark.pedantic(
        lambda: run_impl(spec, impl, module=module), rounds=1, iterations=1
    )
    benchmark.extra_info["model_cycles"] = result.cycles
    for base_impl in baselines:
        base = run_impl(spec, base_impl)
        benchmark.extra_info[f"speedup_vs_{base_impl}"] = base.cycles / result.cycles
    return result
