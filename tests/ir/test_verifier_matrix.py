"""Verifier rejection matrix: deliberately malformed modules, each refused
with a diagnostic that names the right invariant and location.

The malformed IR is constructed behind the builder's back (raw
``Instruction`` objects appended to blocks) because the builder itself
refuses most of these shapes — the verifier is the last line of defense
for exactly the IR a buggy pass could produce.
"""

import pytest

from repro.diagnostics import CompileError, Diagnostic
from repro.ir import (
    F32,
    I1,
    I32,
    I64,
    VOID,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    VectorType,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir.instructions import Instruction
from repro.ir.values import UndefValue


def _append_raw(block, instr):
    """Insert without builder validation (what a buggy pass could do)."""
    block.instructions.append(instr)
    instr.parent = block
    return instr


def _void_function(name="f"):
    f = Function(name, FunctionType(VOID, (I32,)), ["a"])
    entry = f.add_block("entry")
    return f, entry


def test_use_before_def_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    x = b.add(f.args[0], f.args[0], "x")
    b.ret()
    # Move the use *above* the definition within the block.
    y = Instruction("add", I32, [x, x], "y")
    entry.instructions.insert(0, y)
    y.parent = entry
    with pytest.raises(VerificationError, match="used before definition"):
        verify_function(f)


def test_bad_phi_arity_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    body = b.new_block("body")
    b.br(body)
    bad_phi = Instruction("phi", I32, [Constant(I32, 1), entry, Constant(I32, 2)], "p")
    _append_raw(body, bad_phi)
    b.position_at_end(body)
    b.ret()
    with pytest.raises(VerificationError, match="phi.*odd operand count"):
        verify_function(f)


def test_phi_value_slot_holding_block_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    body = b.new_block("body")
    b.br(body)
    bad_phi = Instruction("phi", I32, [entry, entry], "p")
    _append_raw(body, bad_phi)
    b.position_at_end(body)
    b.ret()
    with pytest.raises(VerificationError, match="phi.*value slot"):
        verify_function(f)


def test_phi_incoming_not_matching_preds_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    body = b.new_block("body")
    stranger = b.new_block("stranger")
    b.br(body)
    phi = Instruction("phi", I32, [Constant(I32, 1), stranger], "p")
    _append_raw(body, phi)
    b.position_at_end(body)
    b.ret()
    b.position_at_end(stranger)
    b.ret()
    with pytest.raises(VerificationError, match="phi.*incoming"):
        verify_function(f)


def test_unterminated_block_rejected():
    f, entry = _void_function()
    _append_raw(entry, Instruction("add", I32, [f.args[0], f.args[0]], "x"))
    with pytest.raises(VerificationError, match="lacks a terminator"):
        verify_function(f)


def test_terminator_mid_block_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    b.ret()
    _append_raw(entry, Instruction("add", I32, [f.args[0], f.args[0]], "x"))
    _append_raw(entry, Instruction("ret", VOID, []))
    with pytest.raises(VerificationError, match="terminator mid-block"):
        verify_function(f)


def test_wrong_mask_type_rejected():
    f = Function("f", FunctionType(VOID, (PointerType(F32),)), ["p"])
    entry = f.add_block("entry")
    b = IRBuilder(f, entry)
    bad_mask = UndefValue(VectorType(I32, 8), "m")  # i32 lanes, not i1
    vld = Instruction("vload", VectorType(F32, 8), [f.args[0], bad_mask], "v")
    _append_raw(entry, vld)
    b.ret()
    with pytest.raises(VerificationError, match="mask is not a <N x i1>"):
        verify_function(f)


def test_mask_lane_count_mismatch_rejected():
    f = Function("f", FunctionType(VOID, (PointerType(F32),)), ["p"])
    entry = f.add_block("entry")
    b = IRBuilder(f, entry)
    narrow_mask = UndefValue(VectorType(I1, 4), "m")  # 4 lanes under 8 data
    vld = Instruction("vload", VectorType(F32, 8), [f.args[0], narrow_mask], "v")
    _append_raw(entry, vld)
    b.ret()
    with pytest.raises(VerificationError, match="lane-count mismatch"):
        verify_function(f)


def test_mask_reduction_operand_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    not_a_mask = UndefValue(VectorType(I32, 8), "m")
    _append_raw(entry, Instruction("mask_any", I1, [not_a_mask], "any"))
    b.ret()
    with pytest.raises(VerificationError, match="mask_any operand"):
        verify_function(f)


def test_select_vector_cond_count_mismatch_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    cond = UndefValue(VectorType(I1, 4), "c")
    vecs = UndefValue(VectorType(I32, 8), "v")
    _append_raw(entry, Instruction("select", VectorType(I32, 8), [cond, vecs, vecs], "s"))
    b.ret()
    with pytest.raises(VerificationError, match="select mask"):
        verify_function(f)


def test_condbr_non_i1_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    body = b.new_block("body")
    _append_raw(entry, Instruction("condbr", VOID, [f.args[0], body, body]))
    b.position_at_end(body)
    b.ret()
    with pytest.raises(VerificationError, match="condbr condition not i1"):
        verify_function(f)


def test_icmp_operand_mismatch_rejected():
    f, entry = _void_function()
    b = IRBuilder(f, entry)
    _append_raw(
        entry,
        Instruction("icmp", I1, [f.args[0], Constant(I64, 0)], "c", {"pred": "eq"}),
    )
    b.ret()
    with pytest.raises(VerificationError, match="icmp operand type mismatch"):
        verify_function(f)


def test_diagnostic_carries_location():
    f, entry = _void_function("located")
    _append_raw(entry, Instruction("add", I32, [f.args[0], f.args[0]], "x"))
    with pytest.raises(VerificationError) as excinfo:
        verify_function(f)
    diag = excinfo.value.diagnostic
    assert isinstance(diag, Diagnostic)
    assert diag.stage == "verifier"
    assert diag.function == "located"
    assert isinstance(excinfo.value, CompileError)


def test_verify_module_skips_declarations():
    module = Module("m")
    f, entry = _void_function()
    IRBuilder(f, entry).ret()
    module.add_function(f)
    module.add_function(Function("decl", FunctionType(VOID, ())))  # no blocks
    verify_module(module)
