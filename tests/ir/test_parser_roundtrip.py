"""Textual IR parser tests, including print→parse→print round-trips of
real compiler output (scalar, auto-vectorized, and Parsimony modules)."""

import numpy as np
import pytest

from repro.driver import compile_autovec, compile_parsimony, compile_scalar
from repro.ir import print_function, print_module, verify_module
from repro.ir.parser import IRParseError, parse_ir
from repro.vm import Interpreter


def test_parse_simple_function():
    module = parse_ir("""
    define i32 @add2(i32 %a, i32 %b) {
    entry:
      %sum = add i32 %a, i32 %b
      ret i32 %sum
    }
    """)
    assert Interpreter(module).run("add2", 5, 7) == 12


def test_parse_control_flow_and_phis():
    module = parse_ir("""
    define i32 @abs(i32 %x) {
    entry:
      %neg = icmp slt i32 %x, i32 0
      condbr i1 %neg, label %then, label %join
    then:
      %minus = sub i32 0, i32 %x
      br label %join
    join:
      %r = phi i32 [ %minus, %then ], [ %x, %entry ]
      ret i32 %r
    }
    """)
    interp = Interpreter(module)
    assert interp.run("abs", -9 & 0xFFFFFFFF) == 9
    assert interp.run("abs", 4) == 4


def test_parse_forward_references_in_loops():
    module = parse_ir("""
    define i32 @sum(i32 %n) {
    entry:
      br label %header
    header:
      %i = phi i32 [ 0, %entry ], [ %inext, %body ]
      %acc = phi i32 [ 0, %entry ], [ %anext, %body ]
      %more = icmp slt i32 %i, i32 %n
      condbr i1 %more, label %body, label %exit
    body:
      %anext = add i32 %acc, i32 %i
      %inext = add i32 %i, i32 1
      br label %header
    exit:
      ret i32 %acc
    }
    """)
    assert Interpreter(module).run("sum", 10) == 45


def test_parse_vector_ops():
    module = parse_ir("""
    define void @scale(i32* %p) {
    entry:
      %v = vload i32* %p, <4 x i1> <1, 1, 1, 1> -> <4 x i32>
      %twos = broadcast i32 2 -> <4 x i32>
      %d = mul <4 x i32> %v, <4 x i32> %twos
      vstore <4 x i32> %d, i32* %p, <4 x i1> <1, 1, 1, 1>
      ret void
    }
    """)
    interp = Interpreter(module)
    addr = interp.memory.alloc_array(np.arange(4, dtype=np.uint32))
    interp.run("scale", addr)
    assert interp.memory.read_array(addr, np.uint32, 4).tolist() == [0, 2, 4, 6]


def test_parse_declare_and_call():
    module = parse_ir("""
    declare f32 @ml.exp.f32(f32)
    define f32 @f(f32 %x) {
    entry:
      %e = call f32 @ml.exp.f32(f32 %x)
      ret f32 %e
    }
    """)
    assert "ml.exp.f32" in module.externals


def test_parse_errors():
    with pytest.raises(IRParseError):
        parse_ir("define bogus @f() { }")
    with pytest.raises(IRParseError):
        parse_ir("""
        define i32 @f() {
        entry:
          ret i32 %undefined_value
        }
        """)


SRC_SCALAR = """
u32 kernel(u32* a, u32 n) {
    u32 acc = 0;
    for (u32 i = 0; i < n; i++) {
        if (a[i] > 10) { acc += a[i]; } else { acc += 1; }
    }
    return acc;
}
"""

SRC_SPMD = """
void kernel(u8* a, u8* b, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        b[i] = avgr(a[i], b[i]);
    }
}
"""


@pytest.mark.parametrize(
    "module_factory",
    [
        lambda: compile_scalar(SRC_SCALAR),
        lambda: compile_autovec(SRC_SCALAR),
        lambda: compile_parsimony(SRC_SPMD),
    ],
    ids=["scalar", "autovec", "parsimony"],
)
def test_roundtrip_real_compiler_output(module_factory):
    """print(parse(print(M))) == print(M) for real pipeline output."""
    module = module_factory()
    # The textual form does not carry spmd annotations or external impls;
    # restrict to the executable, annotation-free functions.
    for f in list(module.functions.values()):
        if f.spmd is not None or ".scalarref" in f.name:
            del module.functions[f.name]
    text = print_module(module)
    reparsed = parse_ir(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text
