"""Unit tests for IR construction, printing, and verification."""

import pytest

from repro.ir import (
    F32,
    I1,
    I32,
    I64,
    VOID,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    VectorType,
    VerificationError,
    print_function,
    verify_function,
)


def make_add_function():
    f = Function("add2", FunctionType(I32, (I32, I32)), ["a", "b"])
    entry = f.add_block("entry")
    b = IRBuilder(f, entry)
    s = b.add(f.args[0], f.args[1], "sum")
    b.ret(s)
    return f, s


def test_simple_function_verifies():
    f, _ = make_add_function()
    verify_function(f)
    text = print_function(f)
    assert "@add2" in text
    assert "add i32 %a, i32 %b" in text


def test_operand_use_lists():
    f, s = make_add_function()
    assert (s, 0) in f.args[0].uses
    assert (s, 1) in f.args[1].uses


def test_replace_all_uses_with():
    f, s = make_add_function()
    c = Constant(I32, 7)
    f.args[0].replace_all_uses_with(c)
    assert s.operands[0] is c
    assert not f.args[0].uses
    verify_function(f)


def test_missing_terminator_fails_verify():
    f = Function("bad", FunctionType(VOID, ()))
    f.add_block("entry")
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(f)


def test_type_mismatch_rejected_by_builder():
    f = Function("bad", FunctionType(I32, (I32, I64)), ["a", "b"])
    b = IRBuilder(f, f.add_block("entry"))
    with pytest.raises(TypeError):
        b.add(f.args[0], f.args[1])


def test_use_before_def_fails_verify():
    f = Function("bad", FunctionType(I32, (I32,)), ["a"])
    entry = f.add_block("entry")
    other = f.add_block("other")
    b = IRBuilder(f, other)
    x = b.add(f.args[0], f.args[0], "x")
    b.ret(x)
    b.position_at_end(entry)
    y = b.add(x, x, "y")  # uses x, which is defined in a non-dominating block
    b.condbr(b.icmp("eq", y, y), other, other)
    with pytest.raises(VerificationError, match="dominate"):
        verify_function(f)


def test_phi_incoming_must_match_preds():
    f = Function("bad", FunctionType(I32, (I32,)), ["a"])
    entry = f.add_block("entry")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    b.br(exit_)
    b.position_at_end(exit_)
    phi = b.phi(I32, "p")
    # no incoming edges registered
    b.ret(phi)
    with pytest.raises(VerificationError, match="phi"):
        verify_function(f)


def test_vector_types_and_masks():
    v16 = VectorType(I32, 16)
    f = Function("vec", FunctionType(VOID, (PointerType(I32),)), ["p"])
    b = IRBuilder(f, f.add_block("entry"))
    mask = b.all_ones_mask(16)
    x = b.vload(f.args[0], 16, mask, "x")
    y = b.add(x, x)
    assert y.type == v16
    b.vstore(y, f.args[0], mask)
    b.ret()
    verify_function(f)


def test_bad_mask_width_rejected():
    f = Function("vec", FunctionType(VOID, (PointerType(I32),)), ["p"])
    b = IRBuilder(f, f.add_block("entry"))
    with pytest.raises(TypeError, match="mask"):
        b.vload(f.args[0], 16, b.all_ones_mask(8))


def test_icmp_produces_i1():
    f, _ = make_add_function()
    b = IRBuilder(f, f.blocks[0])
    b.position_before(f.blocks[0].instructions[-1])
    c = b.icmp("slt", f.args[0], f.args[1])
    assert c.type == I1


def test_sad_types():
    from repro.ir import I8

    f = Function("s", FunctionType(VOID, ()), [])
    b = IRBuilder(f, f.add_block("entry"))
    a = b.splat_const(I8, 3, 64)
    r = b.sad(a, a)
    assert r.type == VectorType(I64, 8)
    b.ret()
    verify_function(f)
