"""Unit tests for CFG analyses: RPO, dominators, frontiers, loops."""

from repro.ir import (
    I1,
    I32,
    Constant,
    DominatorTree,
    Function,
    FunctionType,
    IRBuilder,
    dominance_frontiers,
    find_loops,
    reverse_postorder,
)


def diamond():
    """entry -> {then, else} -> join -> exit"""
    f = Function("d", FunctionType(I32, (I1,)), ["c"])
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("else")
    join = f.add_block("join")
    b = IRBuilder(f, entry)
    b.condbr(f.args[0], then, els)
    b.position_at_end(then)
    b.br(join)
    b.position_at_end(els)
    b.br(join)
    b.position_at_end(join)
    b.ret(Constant(I32, 0))
    return f, entry, then, els, join


def test_reverse_postorder_visits_preds_first():
    f, entry, then, els, join = diamond()
    rpo = reverse_postorder(f)
    assert rpo[0] is entry
    assert rpo.index(join) > rpo.index(then)
    assert rpo.index(join) > rpo.index(els)


def test_dominators_of_diamond():
    f, entry, then, els, join = diamond()
    dt = DominatorTree(f)
    assert dt.idom[then] is entry
    assert dt.idom[els] is entry
    assert dt.idom[join] is entry  # neither branch dominates the join
    assert dt.dominates(entry, join)
    assert not dt.dominates(then, join)
    assert dt.strictly_dominates(entry, then)
    assert not dt.strictly_dominates(entry, entry)


def test_dominance_frontiers_of_diamond():
    f, entry, then, els, join = diamond()
    dt = DominatorTree(f)
    df = dominance_frontiers(dt)
    assert df[then] == {join}
    assert df[els] == {join}
    assert df[join] == set()


def loop_cfg():
    """entry -> header <-> body ; header -> exit"""
    f = Function("l", FunctionType(I32, (I32,)), ["n"])
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    b.br(header)
    b.position_at_end(header)
    phi = b.phi(I32, "i")
    phi.append_operand(Constant(I32, 0))
    phi.append_operand(entry)
    b.condbr(b.icmp("slt", phi, f.args[0]), body, exit_)
    b.position_at_end(body)
    nxt = b.add(phi, Constant(I32, 1))
    phi.append_operand(nxt)
    phi.append_operand(body)
    b.br(header)
    b.position_at_end(exit_)
    b.ret(phi)
    return f, header, body, exit_


def test_natural_loop_discovery():
    f, header, body, exit_ = loop_cfg()
    loops = find_loops(f)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header is header
    assert loop.blocks == {header, body}
    assert loop.latches == [body]
    assert loop.exit_blocks() == [exit_]
    assert loop.exiting_blocks() == [header]
    assert loop.is_innermost()
    assert loop.depth == 1


def test_nested_loop_depths():
    from repro.frontend import compile_source
    from repro.passes import mem2reg

    module = compile_source("""
    i32 f(i32 n) {
        i32 acc = 0;
        for (i32 i = 0; i < n; i++) {
            for (i32 j = 0; j < n; j++) {
                acc += i * j;
            }
        }
        return acc;
    }
    """)
    func = module.functions["f"]
    mem2reg(func)
    loops = find_loops(func)
    assert len(loops) == 2
    depths = sorted(loop.depth for loop in loops)
    assert depths == [1, 2]
    inner = next(l for l in loops if l.depth == 2)
    outer = next(l for l in loops if l.depth == 1)
    assert inner.parent is outer
    assert inner in outer.children
    assert not outer.is_innermost()
