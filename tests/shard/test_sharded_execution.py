"""Sharded multi-process execution (issue 7).

The contract under test: for every legal launch,
``shard.run_sharded(...)`` is **bitwise identical** to the in-process
engine — outputs, merged ``ExecStats`` (cycles, instructions, per-opcode
counts), and the hotspot/call-edge attribution dicts — including while
fault injection kills, hangs, corrupts, or silences workers mid-shard.
Illegal launches run in-process with a ``rejected`` report; failures
degrade, never error, never return a wrong answer.
"""

import os
import pickle

import numpy as np
import pytest

from repro import diskcache, faultinject, shard, telemetry
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.benchsuite.runner import _GUARD_BYTES, build_impl, run_impl
from repro.diagnostics import ExecutionError, ReproWarning
from repro.driver import compile_parsimony
from repro.vm import Interpreter

_SPECS = {spec.name: spec for spec in BENCHMARKS}


def _setup(module, workload):
    interp = Interpreter(module)
    addrs = []
    for array in workload.arrays:
        addrs.append(interp.memory.alloc_array(array))
        interp.memory.alloc(_GUARD_BYTES)
    interp.reset_stats()
    return interp, addrs


def _attribution(engine):
    return (
        engine.stats.cycles, engine.stats.instructions,
        dict(engine.stats.counts),
        dict(engine.func_cycles), dict(engine.func_calls),
        dict(engine.edge_cycles), dict(engine.edge_calls),
        dict(engine.fuse_hits),
    )


def _baseline(module, workload):
    interp, addrs = _setup(module, workload)
    interp.run("kernel", *addrs, *workload.scalars)
    return _attribution(interp), interp.memory.data.copy()


def _sharded(module, workload, **kwargs):
    interp, addrs = _setup(module, workload)
    result = shard.run_sharded(
        module, "kernel", (*addrs, *workload.scalars),
        memory=interp.memory, **kwargs,
    )
    return result, _attribution(result), interp.memory.data


def _build(spec, batch=None):
    saved = {k: os.environ.pop(k, None)
             for k in ("REPRO_BATCH", "REPRO_NO_BATCH")}
    try:
        if batch is not None:
            os.environ["REPRO_BATCH"] = str(batch)
        return build_impl(spec, "parsimony")
    finally:
        os.environ.pop("REPRO_BATCH", None)
        for key, value in saved.items():
            if value is not None:
                os.environ[key] = value


# -- bitwise identity ----------------------------------------------------------


@pytest.mark.parametrize("name", ["mandelbrot", "noise", "binomial_options"])
@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_bitwise_identical(name, shards):
    spec = _SPECS[name]
    workload = spec.workload()
    module = _build(spec)
    base, base_mem = _baseline(module, workload)
    result, got, got_mem = _sharded(module, workload, shards=shards)
    assert result.report["mode"] == "sharded", result.report
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_sharded_bitwise_identical_batched():
    """Gang-batched modules shard too (batched + remainder loop both)."""
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec, batch=4)
    assert module.attrs.get("batch_applied"), "batching must engage"
    base, base_mem = _baseline(module, workload)
    result, got, got_mem = _sharded(module, workload, shards=3)
    assert result.report["mode"] == "sharded", result.report
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_hotspots_and_fusion_match_in_process():
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    interp, addrs = _setup(module, workload)
    interp.run("kernel", *addrs, *workload.scalars)
    result, _, _ = _sharded(module, workload, shards=2)
    assert result.hotspots() == interp.hotspots()
    assert result.fusion_report() == interp.fusion_report()


# -- legality rejections -------------------------------------------------------


def test_nested_gang_loop_rejects():
    """A gang loop under a serial timestep loop (stencil) must reject:
    each timestep reads the previous one's full image, which a worker
    that skimmed those units never computed."""
    spec = _SPECS["stencil"]
    workload = spec.workload()
    module = _build(spec)
    base, base_mem = _baseline(module, workload)
    result, got, got_mem = _sharded(module, workload, shards=2)
    assert result.report["mode"] == "rejected"
    assert any("gang loop" in r for r in result.report["reasons"])
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_scalar_impl_rejects():
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = build_impl(spec, "scalar")
    base, base_mem = _baseline(module, workload)
    result, got, got_mem = _sharded(module, workload, shards=2)
    assert result.report["mode"] == "rejected"
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_single_shard_rejects():
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    result, _, _ = _sharded(module, workload, shards=1)
    assert result.report["mode"] == "rejected"
    assert any("at least 2" in r for r in result.report["reasons"])


def test_non_worker_fault_sites_reject():
    """A ``memory``-site plan would fire once per worker instead of once
    per run; the launch must run in-process while it is armed."""
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    with faultinject.inject(
        faultinject.FaultPlan(site="memory", match="nothing-matches")
    ):
        result, _, _ = _sharded(module, workload, shards=2)
    assert result.report["mode"] == "rejected"
    assert any("non-worker" in r for r in result.report["reasons"])


# -- fault matrix --------------------------------------------------------------


@pytest.mark.parametrize(
    "site", ["worker_crash", "worker_hang", "worker_corrupt", "ipc_drop"]
)
def test_injected_worker_fault_survives_bitwise(site):
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    base, base_mem = _baseline(module, workload)
    plan = faultinject.FaultPlan(site=site, times=1)
    timeout = 3.0 if site in ("worker_hang", "ipc_drop") else 30.0
    with faultinject.inject(plan):
        result, got, got_mem = _sharded(
            module, workload, shards=3, timeout=timeout
        )
    assert plan.fired == 1, "the fault must actually fire"
    assert result.report["mode"] == "sharded", result.report
    # Every injected fault produces a successful retry (or a recorded
    # degradation) — never a wrong answer.
    assert result.report["retries"] + result.report["degraded"] >= 1
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_unbounded_crash_plan_degrades_to_local_drain():
    """When every dispatch of a shard dies, the supervisor drains it
    in-process after ``MAX_ATTEMPTS`` — same bits, recorded degradation."""
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    base, base_mem = _baseline(module, workload)
    with faultinject.inject(faultinject.FaultPlan(site="worker_crash")):
        result, got, got_mem = _sharded(
            module, workload, shards=2, timeout=10.0
        )
    assert result.report["mode"] == "sharded"
    assert result.report["degraded"] >= 1
    assert result.report["retries"] >= 1
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_spawn_failure_degrades_to_full_local_drain(monkeypatch):
    """A pool that cannot start a single worker drains every shard
    in-process — graceful degradation, never an error."""
    monkeypatch.setattr(
        shard._Supervisor, "_spawn", lambda self, slot_id: None
    )
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    base, base_mem = _baseline(module, workload)
    result, got, got_mem = _sharded(module, workload, shards=2)
    assert result.report["mode"] == "sharded"
    assert result.report["degraded"] == 2
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_kernel_error_fails_over_to_authoritative_rerun():
    """A genuine kernel trap inside a shard must surface as the same
    in-process error (full fallback rerun), with shard provenance."""
    src = """
    void kernel(f32* out, u64 n) {
        psim (gang_size=4, num_threads=n) {
            u64 i = psim_get_thread_num();
            out[i + 10000000] = 1.0f;
        }
    }
    """
    module = compile_parsimony(src)
    interp = Interpreter(module)
    out = interp.memory.alloc_array(np.zeros(64, dtype=np.float32))
    with pytest.raises(ExecutionError) as in_process:
        interp.run("kernel", out, 64)

    interp2 = Interpreter(module)
    out2 = interp2.memory.alloc_array(np.zeros(64, dtype=np.float32))
    with pytest.raises(ExecutionError) as sharded:
        shard.run_sharded(module, "kernel", (out2, 64),
                          memory=interp2.memory, shards=2)
    assert type(sharded.value) is type(in_process.value)
    assert str(sharded.value) == str(in_process.value)
    assert sharded.value.diagnostic.detail.get("shard") is not None


# -- warm start ----------------------------------------------------------------


def test_warm_start_recipe_pickled_module(tmp_path):
    """Workers rebuilt from a shipped pickle (the disk-cache pickler)
    produce the same bits as fork-inherited workers."""
    spec = _SPECS["noise"]
    workload = spec.workload()
    module = _build(spec)
    base, base_mem = _baseline(module, workload)
    recipe = {"pickled": diskcache.dumps_module(module)}
    result, got, got_mem = _sharded(
        module, workload, shards=2, recipe=recipe
    )
    assert result.report["mode"] == "sharded"
    assert got == base
    assert np.array_equal(got_mem, base_mem)


def test_warm_start_recipe_recompile(tmp_path, monkeypatch):
    """Workers warm-started through the driver (disk cache enabled in a
    scratch dir) match the fork-inherited module bitwise."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    diskcache.set_enabled(True)
    try:
        spec = _SPECS["noise"]
        workload = spec.workload()
        module = _build(spec)
        base, base_mem = _baseline(module, workload)
        recipe = {"source": spec.psim_src,
                  "module_name": f"{spec.name}.parsimony"}
        result, got, got_mem = _sharded(
            module, workload, shards=2, recipe=recipe
        )
        assert result.report["mode"] == "sharded"
        assert got == base
        assert np.array_equal(got_mem, base_mem)
    finally:
        diskcache.set_enabled(None)


# -- environment knobs ---------------------------------------------------------


@pytest.mark.parametrize("value,expected", [
    ("banana", 0), ("-3", 0), ("999", shard.MAX_SHARDS),
])
def test_bad_repro_shards_warns_and_defaults(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_SHARDS", value)
    with pytest.warns(ReproWarning) as record:
        assert shard.shard_count() == expected
    detail = record[0].message.diagnostic.detail
    assert detail["variable"] == "REPRO_SHARDS"
    assert detail["value"] == value


def test_good_repro_shards_no_warning(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert shard.shard_count() == 4
    monkeypatch.delenv("REPRO_SHARDS")
    assert shard.shard_count() == 0


@pytest.mark.parametrize("value", ["soon", "0", "-1.5", "nan"])
def test_bad_repro_shard_timeout_warns_and_defaults(monkeypatch, value):
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", value)
    with pytest.warns(ReproWarning) as record:
        assert shard.shard_timeout() == shard.DEFAULT_TIMEOUT
    detail = record[0].message.diagnostic.detail
    assert detail["variable"] == "REPRO_SHARD_TIMEOUT"


def test_good_repro_shard_timeout(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7.5")
    assert shard.shard_timeout() == 7.5


# -- runner + telemetry integration --------------------------------------------


def test_run_impl_sharded_matches_and_records_telemetry(monkeypatch):
    spec = _SPECS["noise"]
    reference = run_impl(spec, "parsimony")
    monkeypatch.setenv("REPRO_SHARDS", "2")
    with telemetry.collect() as session:
        sharded = run_impl(spec, "parsimony")
    assert sharded.stats.cycles == reference.stats.cycles
    assert sharded.stats.instructions == reference.stats.instructions
    assert dict(sharded.stats.counts) == dict(reference.stats.counts)
    for got, want in zip(sharded.output_signature(),
                         reference.output_signature()):
        np.testing.assert_array_equal(got, want)
    run = session.vm_runs[-1]
    assert run["shard"]["mode"] == "sharded"
    assert run["shard"]["shards"] == 2
    totals = session.vm_shard_totals()
    assert totals["vm.shard.sharded"] == 1
    assert totals["vm.shard.degraded"] == 0
    doc = session.as_dict()
    assert doc["schema"] == telemetry.SCHEMA
    assert doc["vm"]["shard_totals"]["vm.shard.sharded"] == 1


def test_run_impl_rejected_records_telemetry(monkeypatch):
    spec = _SPECS["noise"]
    monkeypatch.setenv("REPRO_SHARDS", "2")
    with telemetry.collect() as session:
        run_impl(spec, "scalar")
    assert session.vm_runs[-1]["shard"]["mode"] == "rejected"
    assert session.vm_shard_totals()["vm.shard.rejected"] == 1


# -- shard plan payloads survive pickling (supervisor <-> worker) -------------


def test_worker_error_payload_roundtrips():
    err = ExecutionError("boom", stage="vm", function="kernel",
                         detail={"shard": 3})
    clone = pickle.loads(pickle.dumps(shard._picklable_error(err)))
    assert clone.diagnostic.stage == "vm"
    assert clone.diagnostic.function == "kernel"
    assert clone.diagnostic.detail == {"shard": 3}
