"""``repro.diagnostics``: the structured-error contract every stage obeys."""

import pytest

from repro.diagnostics import (
    CompileError,
    Diagnostic,
    ExecutionError,
    ReproError,
    Severity,
)


def test_format_is_message_plus_location_suffix():
    diag = Diagnostic(
        "binop type mismatch",
        stage="verifier",
        pass_name="cse",
        function="kernel",
        block="entry",
        instruction="x",
    )
    text = diag.format()
    assert text.startswith("binop type mismatch\n")
    assert "[stage=verifier, pass=cse, function=@kernel, " \
           "block=entry, instr=%x]" in text


def test_format_without_location_is_just_the_message():
    assert Diagnostic("plain").format() == "plain"


def test_as_dict_round_trips_every_field():
    diag = Diagnostic(
        "boom", severity=Severity.WARNING, stage="smt",
        detail={"rule": "and_low_mask"},
    )
    d = diag.as_dict()
    assert d["severity"] == "warning"
    assert d["message"] == "boom"
    assert d["stage"] == "smt"
    assert d["detail"] == {"rule": "and_low_mask"}


def test_error_builds_diagnostic_with_default_stage():
    err = ExecutionError("trap")
    assert err.diagnostic.stage == "vm"
    assert str(err) == "trap\n  [stage=vm]"
    # explicit stage wins over the class default
    assert CompileError("x", stage="frontend").diagnostic.stage == "frontend"


def test_existing_error_classes_are_rebased_onto_the_roots():
    from repro.frontend.lexer import LexError
    from repro.frontend.parser import ParseError
    from repro.frontend.sema import SemaError
    from repro.ir.verifier import VerificationError
    from repro.vectorizer.scalarize import ScalarizeError
    from repro.vectorizer.smt import SMTError
    from repro.vectorizer.transform import VectorizeError
    from repro.vm.memory import MemoryError_
    from repro.vm.ops import VMTrap

    for cls in (LexError, ParseError, SemaError, VerificationError,
                ScalarizeError, SMTError, VectorizeError):
        assert issubclass(cls, CompileError), cls
    for cls in (MemoryError_, VMTrap):
        assert issubclass(cls, ExecutionError), cls
    # Historical builtin bases survive the rebase (old call sites rely
    # on them) and the structured __init__ still runs.
    assert issubclass(LexError, SyntaxError)
    assert issubclass(ParseError, SyntaxError)
    assert issubclass(SemaError, TypeError)
    assert SemaError(3, "bad cast").diagnostic.message == "line 3: bad cast"


def test_passing_a_prebuilt_diagnostic_uses_it_verbatim():
    diag = Diagnostic("reused", stage="passes", pass_name="dce")
    err = ReproError(diagnostic=diag)
    assert err.diagnostic is diag
    assert "pass=dce" in str(err)


def test_catching_the_roots_spans_the_pipeline():
    from repro.driver import compile_parsimony

    with pytest.raises(CompileError):
        compile_parsimony("void kernel( {", module_name="syntaxerr")


# -- pickling (issue 7: errors cross the shard supervisor's pipes) -------------


def test_pickle_round_trip_preserves_provenance():
    import pickle

    err = ExecutionError(
        "store out of bounds",
        stage="vm",
        function="kernel",
        block="body",
        instruction="st",
        detail={"addr": 123, "shard": 2},
    )
    clone = pickle.loads(pickle.dumps(err))
    assert type(clone) is ExecutionError
    assert str(clone) == str(err)
    diag = clone.diagnostic
    assert diag.stage == "vm"
    assert diag.function == "kernel"
    assert diag.block == "body"
    assert diag.instruction == "st"
    assert diag.detail == {"addr": 123, "shard": 2}


def test_pickle_round_trip_preserves_cause_chain():
    import pickle

    try:
        try:
            raise ValueError("root cause")
        except ValueError as inner:
            raise ExecutionError(
                "trap while replaying", stage="vm", pass_name="batch"
            ) from inner
    except ExecutionError as outer:
        err = outer
    clone = pickle.loads(pickle.dumps(err))
    assert clone.diagnostic.pass_name == "batch"
    assert isinstance(clone.__cause__, ValueError)
    assert str(clone.__cause__) == "root cause"
    assert clone.__suppress_context__


def test_pickle_round_trip_builtin_mixin_subclasses():
    """Subclasses rebasing onto builtin exceptions (SyntaxError/TypeError
    mixins) have incompatible __init__ signatures; the restore path must
    bypass them."""
    import pickle

    from repro.frontend.lexer import LexError
    from repro.frontend.sema import SemaError

    lex = pickle.loads(pickle.dumps(LexError("bad token", stage="lexer")))
    assert isinstance(lex, SyntaxError)
    assert lex.diagnostic.stage == "lexer"

    sema = pickle.loads(pickle.dumps(SemaError(3, "bad cast")))
    assert isinstance(sema, TypeError)
    assert sema.diagnostic.message == "line 3: bad cast"
