"""Differential fuzzing: scalar vs Parsimony vs auto-vec on random kernels.

Hypothesis generates random elementwise PsimC expressions; the same body
is compiled as a serial loop (scalar + auto-vectorized) and as a psim
region (Parsimony), and all three executions must agree byte-for-byte.
This is the strongest whole-stack invariant the reproduction has: it
exercises the front-end, every scalar pass (including narrowing), the
vectorizer's shapes/masks/selection, and the VM at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.driver import compile_autovec, compile_parsimony, compile_scalar
from repro.vm import Interpreter

N = 96  # deliberately not a multiple of the gang size (tail gang coverage)


@st.composite
def u8_expression(draw, depth=0):
    """A random PsimC u8-producing expression over inputs a[i], b[i], c[i]."""
    leaves = ["a[i]", "b[i]", "c[i]", "(u8)17", "(u8)255", "(u8)1", "(u8)i"]
    if depth >= 3:
        return draw(st.sampled_from(leaves))
    kind = draw(st.integers(0, 7))
    if kind <= 1:
        return draw(st.sampled_from(leaves))
    left = draw(u8_expression(depth=depth + 1))
    right = draw(u8_expression(depth=depth + 1))
    if kind == 2:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"(u8)({left} {op} {right})"
    if kind == 3:
        fn = draw(st.sampled_from(["min", "max", "addsat", "subsat", "avgr", "absdiff"]))
        if fn in ("min", "max"):
            return f"(u8){fn}({left}, {right})"  # C promotion makes min/max i32
        return f"{fn}((u8)({left}), (u8)({right}))"
    if kind == 4:
        cmp = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        third = draw(u8_expression(depth=depth + 1))
        return f"({left} {cmp} {right} ? {third} : {left})"
    if kind == 5:
        amount = draw(st.integers(1, 7))
        return f"(u8)({left} >> {amount})"
    if kind == 6:
        return f"(u8)(((i32){left} + (i32){right}) >> 1)"
    return f"(u8)(~{left})"


def make_sources(expr):
    body = f"d[i] = {expr};"
    serial = f"""
    void kernel(u8* a, u8* b, u8* c, u8* d, u64 n) {{
        for (u64 i = 0; i < n; i++) {{ {body} }}
    }}
    """
    spmd = f"""
    void kernel(u8* a, u8* b, u8* c, u8* d, u64 n) {{
        psim (gang_size=32, num_threads=n) {{
            u64 i = psim_get_thread_num();
            {body}
        }}
    }}
    """
    return serial, spmd


def run(module):
    interp = Interpreter(module)
    rng = np.random.default_rng(1234)
    addrs = [
        interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
        for _ in range(3)
    ]
    d = interp.memory.alloc_array(np.zeros(N, np.uint8))
    interp.run("kernel", *addrs, d, N)
    return interp.memory.read_array(d, np.uint8, N)


@settings(max_examples=40, deadline=None)
@given(expr=u8_expression())
def test_scalar_autovec_parsimony_agree(expr):
    serial, spmd = make_sources(expr)
    scalar_out = run(compile_scalar(serial))
    autovec_out = run(compile_autovec(serial))
    parsimony_out = run(compile_parsimony(spmd))
    np.testing.assert_array_equal(autovec_out, scalar_out, err_msg=expr)
    np.testing.assert_array_equal(parsimony_out, scalar_out, err_msg=expr)


@settings(max_examples=15, deadline=None)
@given(expr=u8_expression(), gang=st.sampled_from([4, 16, 64]))
def test_gang_size_does_not_change_results(expr, gang):
    """Parsimony's promise (§3): the answer depends on the program, never
    on the gang size chosen for performance."""
    _, spmd = make_sources(expr)
    base = run(compile_parsimony(spmd))
    variant = run(compile_parsimony(spmd.replace("gang_size=32", f"gang_size={gang}")))
    np.testing.assert_array_equal(variant, base, err_msg=f"{expr} at gang {gang}")
