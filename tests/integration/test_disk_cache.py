"""Persistent on-disk compile cache: round-trip fidelity, version/toolchain
keying, and the corruption-tolerance contract (a damaged entry must fall
back to recompilation, never fail the compile).  The autotune profile
store (issue 6) lives alongside the cache and shares its persistence
contract: pins measured in one process must drive compiles in the next."""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import autotune, diskcache, driver
from repro.runtime.mathlib import rehydrate_external
from repro.vm import Interpreter

SRC = """
void kernel(f32* a, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        a[i] = pow(a[i], 2.0f) + exp(a[i] * 0.01f);
    }
}
"""


@pytest.fixture(autouse=True)
def disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    diskcache.set_enabled(True)
    diskcache.reset_stats()
    driver.clear_compile_cache()
    yield tmp_path
    diskcache.set_enabled(None)
    diskcache.reset_stats()
    driver.clear_compile_cache()


def _run(module):
    interp = Interpreter(module)
    a = np.linspace(0.5, 4.0, 8, dtype=np.float32)
    addr = interp.memory.alloc_array(a)
    interp.run("kernel", addr, a.size)
    return interp.memory.read_array(addr, np.float32, a.size), interp.stats.cycles


def test_disk_round_trip_is_bit_identical(disk_cache):
    reference = driver.compile_parsimony(SRC)
    assert diskcache.stats()["writes"] == 1

    # A "new process": the in-memory layer is empty, the disk layer isn't.
    driver.clear_compile_cache()
    rehydrated = driver.compile_parsimony(SRC)
    assert diskcache.stats()["hits"] == 1

    out_ref, cycles_ref = _run(reference)
    out_disk, cycles_disk = _run(rehydrated)
    np.testing.assert_array_equal(out_ref, out_disk)
    assert cycles_ref == cycles_disk


def test_disabled_disk_layer_never_touches_disk(disk_cache):
    diskcache.set_enabled(False)
    driver.compile_parsimony(SRC)
    assert diskcache.stats() == {"hits": 0, "misses": 0, "writes": 0, "errors": 0}
    assert list(disk_cache.glob("*.pkl")) == []


def test_corrupt_entry_falls_back_to_recompile(disk_cache):
    driver.compile_parsimony(SRC)
    (entry,) = disk_cache.glob("*.pkl")
    entry.write_bytes(b"\x80\x04 this is not a module")

    driver.clear_compile_cache()
    diskcache.reset_stats()
    module = driver.compile_parsimony(SRC)  # must not raise
    stats = diskcache.stats()
    assert stats["errors"] == 1 and stats["hits"] == 0
    # The corrupt blob was dropped and the recompile re-stored a good one.
    assert stats["writes"] == 1
    driver.clear_compile_cache()
    diskcache.reset_stats()
    driver.compile_parsimony(SRC)
    assert diskcache.stats()["hits"] == 1
    out, _ = _run(module)
    assert np.isfinite(out).all()


def test_version_bump_misses_old_entries(disk_cache, monkeypatch):
    driver.compile_parsimony(SRC)
    driver.clear_compile_cache()
    diskcache.reset_stats()
    monkeypatch.setattr(diskcache, "CACHE_VERSION", diskcache.CACHE_VERSION + 1)
    driver.compile_parsimony(SRC)
    stats = diskcache.stats()
    assert stats["hits"] == 0 and stats["misses"] == 1 and stats["writes"] == 1


def test_memory_layer_shields_disk_layer(disk_cache):
    driver.compile_parsimony(SRC)
    diskcache.reset_stats()
    driver.compile_parsimony(SRC)  # in-memory hit
    assert diskcache.stats() == {"hits": 0, "misses": 0, "writes": 0, "errors": 0}


def test_faultinject_bypasses_disk_layer(disk_cache):
    from repro import faultinject

    with faultinject.inject(faultinject.FaultPlan(site="vectorize")):
        driver.compile_parsimony(SRC)
    assert diskcache.stats() == {"hits": 0, "misses": 0, "writes": 0, "errors": 0}


def test_batch_configuration_is_part_of_the_key(disk_cache, monkeypatch):
    """Regression: a cached unbatched module must never be rehydrated into
    a batched run (or vice versa) — the batch request is part of both the
    in-memory and the on-disk cache key."""
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    unbatched = driver.compile_parsimony(SRC)
    assert "batch_factor" not in unbatched.attrs
    assert diskcache.stats()["writes"] == 1

    # Same source, batching re-enabled, fresh "process": the unbatched disk
    # entry must miss and a batched module must be compiled and stored.
    monkeypatch.delenv("REPRO_NO_BATCH")
    driver.clear_compile_cache()
    diskcache.reset_stats()
    batched = driver.compile_parsimony(SRC)
    assert batched.attrs.get("batch_applied"), batched.attrs.get("batch_rejected")
    stats = diskcache.stats()
    assert stats["hits"] == 0 and stats["writes"] == 1, stats

    # Each configuration rehydrates from its own entry and stays itself.
    driver.clear_compile_cache()
    diskcache.reset_stats()
    again = driver.compile_parsimony(SRC)
    assert diskcache.stats()["hits"] == 1
    assert again.attrs.get("batch_applied")
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    driver.clear_compile_cache()
    again = driver.compile_parsimony(SRC)
    assert diskcache.stats()["hits"] == 2
    assert "batch_factor" not in again.attrs

    out_u, cycles_u = _run(unbatched)
    out_b, cycles_b = _run(batched)
    np.testing.assert_array_equal(out_u, out_b)
    assert cycles_u == cycles_b


def test_forced_batch_factor_is_part_of_the_key(disk_cache, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", "2")
    forced = driver.compile_parsimony(SRC)
    driver.clear_compile_cache()
    diskcache.reset_stats()
    monkeypatch.setenv("REPRO_BATCH", "4")
    other = driver.compile_parsimony(SRC)
    stats = diskcache.stats()
    assert stats["hits"] == 0 and stats["writes"] == 1, stats
    assert forced.attrs.get("batch_factor") != other.attrs.get("batch_factor")


# ---------------------------------------------------------------------------
# autotune profile store (issue 6): pins persist across processes
# ---------------------------------------------------------------------------

#: One telemetered autotuned run of the regression kernel (stencil), its
#: ExecStats and output digest printed as JSON.  First process: sweep +
#: pin; second process: rehydrate the pin from disk.
_SWEEP_SCRIPT = """
import hashlib, json
import numpy as np
from repro import telemetry
from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS

spec = {s.name: s for s in BENCHMARKS}["stencil"]
with telemetry.collect() as session:
    result = run_impl(spec, "parsimony")
run = session.vm_runs[-1]
digest = hashlib.sha256(
    b"".join(np.ascontiguousarray(o).tobytes() for o in result.outputs)
).hexdigest()
print(json.dumps({
    "autotune": run["autotune"],
    "cycles": result.stats.cycles,
    "instructions": result.stats.instructions,
    "counts": sorted(dict(result.stats.counts).items()),
    "out": digest,
}))
"""


def _autotuned_run_in_subprocess(cache_dir):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_AUTOTUNE"] = "1"
    env["REPRO_AUTOTUNE_REPS"] = "1"
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    env.pop("REPRO_NO_BATCH", None)
    env.pop("REPRO_BATCH", None)
    proc = subprocess.run([sys.executable, "-c", _SWEEP_SCRIPT],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_autotune_pin_survives_process_restart(disk_cache):
    """Issue-6 acceptance: measure in one process, rehydrate the pin in a
    second one, with outputs and ExecStats bitwise identical across both."""
    first = _autotuned_run_in_subprocess(disk_cache)
    assert first["autotune"]["state"] == "measured"
    assert len(first["autotune"]["measured"]) >= 2

    entries = list((disk_cache / "autotune").glob("*.json"))
    assert entries, "measurement sweep persisted no profile entry"

    second = _autotuned_run_in_subprocess(disk_cache)
    assert second["autotune"]["state"] == "pinned", second["autotune"]
    assert second["autotune"]["factor"] == first["autotune"]["factor"]
    assert second["autotune"]["request"] == first["autotune"]["request"]

    # The accounting-transparency contract across the process boundary.
    assert second["out"] == first["out"]
    assert second["cycles"] == first["cycles"]
    assert second["instructions"] == first["instructions"]
    assert second["counts"] == first["counts"]

    # This (third) process reads the same store.
    from repro.benchsuite.ispc_suite import BENCHMARKS

    spec = {s.name: s for s in BENCHMARKS}["stencil"]
    dec = autotune.decision(autotune.fingerprint(spec.psim_src),
                            autotune.engine_config(True))
    assert dec["state"] == "pinned"
    assert dec["factor"] == first["autotune"]["factor"]


def test_pinned_request_drives_compiles(disk_cache, monkeypatch):
    """A pin is consulted at *compile* time — any compile_parsimony caller
    lands on the measured configuration — and an explicit REPRO_NO_BATCH /
    REPRO_BATCH override always beats the tuner."""
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    fp = autotune.fingerprint(SRC)
    engine = autotune.engine_config()
    autotune.pin(fp, engine, 2, 0.001, {1: 0.010, 2: 0.001}, request=2)

    monkeypatch.setenv("REPRO_AUTOTUNE", "1")
    pinned = driver.compile_parsimony(SRC)
    assert pinned.attrs.get("batch_factor") == 2

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    driver.clear_compile_cache()
    overridden = driver.compile_parsimony(SRC)
    assert "batch_factor" not in overridden.attrs
    monkeypatch.delenv("REPRO_NO_BATCH")

    # Without the opt-in, the pin is dormant and the cost model decides.
    monkeypatch.delenv("REPRO_AUTOTUNE")
    driver.clear_compile_cache()
    static = driver.compile_parsimony(SRC)
    assert static.attrs.get("batch_factor", 1) != 2

    out_p, cycles_p = _run(pinned)
    out_o, cycles_o = _run(overridden)
    out_s, cycles_s = _run(static)
    np.testing.assert_array_equal(out_p, out_o)
    np.testing.assert_array_equal(out_p, out_s)
    assert cycles_p == cycles_o == cycles_s


def test_rehydrate_external_names():
    scalar = rehydrate_external("ml.exp.f32")
    assert scalar.name == "ml.exp.f32"
    assert scalar.impl(1.0) == pytest.approx(np.exp(np.float32(1.0)), rel=1e-6)

    vector = rehydrate_external("ml.sleef.pow.f32x16")
    assert vector.name == "ml.sleef.pow.f32x16"
    a = np.full(16, 2.0, dtype=np.float32)
    np.testing.assert_array_equal(vector.impl(a, a), a * a)

    with pytest.raises(KeyError):
        rehydrate_external("psim.lane_num")
    with pytest.raises(KeyError):
        rehydrate_external("ml.nosuchfn.f32")


def test_module_pickle_preserves_external_identity(disk_cache):
    module = driver.compile_parsimony(SRC)
    blob = diskcache._dumps(module)
    loaded = diskcache._loads(blob)
    exts = {
        name: ext for name, ext in loaded.externals.items()
        if name.startswith("ml.")
    }
    assert exts, "expected math externals in the vectorized module"
    for name, ext in exts.items():
        assert callable(ext.impl), name
    # Call operands must reference the same rehydrated objects that sit in
    # module.externals (persistent_load memoizes per unpickle).
    for function in loaded.functions.values():
        for block in function.blocks:
            for instr in block.instructions:
                if instr.opcode != "call":
                    continue
                callee = instr.operands[0]
                if getattr(callee, "name", "").startswith("ml."):
                    assert callee is loaded.externals[callee.name]
