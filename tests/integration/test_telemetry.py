"""Telemetry sessions: pass timings, vectorizer counters, VM attribution,
and the JSON document the example reports write for CI artifacts."""

import json

import numpy as np

from repro import driver, telemetry
from repro.vm import Interpreter

SRC = """
void kernel(f32* a, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        f32 x = a[i];
        if (x > (f32)0.0) {
            a[i] = x * (f32)2.0;
        }
    }
}
"""


def _compile_and_run():
    module = driver.compile_parsimony(SRC)
    interp = Interpreter(module)
    a = np.array([-2.0, -1.0, 0.0, 1.0, 2.0, 3.0, -4.0, 5.0], dtype=np.float32)
    addr = interp.memory.alloc_array(a)
    interp.run("kernel", addr, a.size)
    telemetry.record_vm_run("t/parsimony", interp.stats, interp.hotspots())
    return interp.memory.read_array(addr, np.float32, a.size)


def test_hooks_are_noops_without_a_session():
    assert telemetry.current() is None
    telemetry.record_pass("dce", "f", 0.0, 1, 1)
    telemetry.record_vectorization("f", 8, {}, {}, {}, [])
    assert telemetry.current() is None


def test_collect_gathers_all_three_evidence_kinds():
    driver.clear_compile_cache()
    with telemetry.collect() as session:
        assert telemetry.current() is session
        _compile_and_run()
    assert telemetry.current() is None
    assert "duration_seconds" in session.meta

    # Pass telemetry: the parsimony flow runs the standard -O pipeline.
    summary = session.pass_summary()
    assert summary, "no passes recorded"
    assert "dce" in summary
    for entry in summary.values():
        assert {"calls", "seconds", "instrs_before", "instrs_after",
                "instrs_delta"} <= set(entry)
        assert entry["instrs_delta"] == entry["instrs_after"] - entry["instrs_before"]

    # Vectorizer counters: the kernel has a varying branch, so linearization
    # must report masked activity, and the thread-indexed access a packed form.
    # The psim region is outlined before vectorization, so the recorded
    # functions are the extracted body and its scalar remainder tail.
    names = [v["function"] for v in session.vectorized]
    assert names and all(n.startswith("kernel.psim") for n in names)
    totals = session.vectorizer_totals()
    assert totals["shapes"].get("varying", 0) > 0
    assert totals["shapes"].get("uniform", 0) > 0
    assert sum(totals["mask_ops"].values()) > 0
    assert any(key.startswith(("load.", "store."))
               for key in totals["memory_forms"])

    # VM attribution: one labelled run with per-function hot-spots.
    (run,) = session.vm_runs
    assert run["label"] == "t/parsimony"
    assert run["cycles"] > 0 and run["instructions"] > 0
    assert run["counts"]
    assert run["hotspots"], "no hot-spot attribution recorded"
    top = run["hotspots"][0]
    assert {"function", "exclusive_cycles", "calls"} <= set(top)
    assert sum(h["exclusive_cycles"] for h in run["hotspots"]) == run["cycles"]


def test_json_document_round_trips(tmp_path):
    with telemetry.collect() as session:
        _compile_and_run()
    session.meta["figure"] = "test"

    doc = json.loads(session.to_json())
    assert doc["schema"] == telemetry.SCHEMA
    assert set(doc) >= {"schema", "meta", "passes", "vectorizer", "vm",
                        "compile_cache"}
    assert doc["vectorizer"]["totals"].keys() == {"shapes", "memory_forms",
                                                  "mask_ops"}
    assert {"hits", "misses", "entries"} <= set(doc["compile_cache"])

    path = tmp_path / "telemetry.json"
    session.write(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == doc


def test_diff_documents_reports_deltas_and_union_of_names():
    driver.clear_compile_cache()
    with telemetry.collect() as old_session:
        _compile_and_run()
    driver.clear_compile_cache()
    with telemetry.collect() as new_session:
        _compile_and_run()
        telemetry.record_vm_run(
            "t/extra", Interpreter(driver.compile_parsimony(SRC)).stats, [],
            fusion={"superinstructions": True, "sites": {}, "hits": {"window": 3}},
            wall_seconds=0.5,
        )

    old_doc = json.loads(old_session.to_json())
    new_doc = json.loads(new_session.to_json())
    diff = telemetry.diff_documents(old_doc, new_doc)

    assert diff["schema"] == telemetry.DIFF_SCHEMA
    assert diff["base_schemas"] == {"old": telemetry.SCHEMA,
                                    "new": telemetry.SCHEMA}

    # Identical compiles: per-pass call counts cancel out.
    assert "dce" in diff["passes"]
    assert diff["passes"]["dce"]["calls"]["delta"] == 0

    # The shared run diffs to zero cycles; the extra run appears with the
    # missing side reported as 0 (union-of-names contract).
    shared = diff["vm_runs"]["t/parsimony"]
    assert shared["cycles"]["delta"] == 0
    extra = diff["vm_runs"]["t/extra"]
    assert extra["wall_seconds"] == {"old": 0, "new": 0.5, "delta": 0.5}

    # Flat counters include vm.fuse.* totals from the fusion record.
    assert diff["counters"]["vm.fuse.window"]["value"]["new"] == 3

    # The diff document itself must be JSON-serialisable (CI artifact).
    json.dumps(diff)


def test_fallback_counter_not_inflated_by_recompiles():
    """Regression (issue 4): while fault plans are armed the driver bypasses
    the compile cache, so recompiling the same source degraded the same
    functions again and ``vectorizer.fallbacks`` double-counted.  The count
    must reflect *distinct* degradations, not compile invocations."""
    from repro.faultinject import FaultPlan, inject

    with inject(FaultPlan(site="vectorize")), telemetry.collect() as session:
        driver.compile_parsimony(SRC, module_name="dedupchk")
        once = [dict(e) for e in session.fallbacks]
        driver.compile_parsimony(SRC, module_name="dedupchk")
    assert once, "forced vectorize fault recorded no fallback"
    assert session.fallbacks == once
    flat = telemetry._flat_counters(json.loads(session.to_json()))
    assert flat["vectorizer.fallbacks"] == len(once)


def test_partial_fallback_counter_not_inflated_by_recompiles():
    from repro.faultinject import FaultPlan, inject

    def forced_partial():
        # after=1 lands past the region entry block for this kernel, so the
        # failure carries block provenance and the region path engages.
        with inject(FaultPlan(site="vectorize_block", after=1, times=1)):
            driver.compile_parsimony(SRC, module_name="pdedupchk")

    with telemetry.collect() as session:
        forced_partial()
        once = [dict(e) for e in session.partial_fallbacks]
        forced_partial()
    assert once, "vectorize_block fault engaged no partial fallback"
    assert session.partial_fallbacks == once
    flat = telemetry._flat_counters(json.loads(session.to_json()))
    assert flat["vectorizer.partial_fallbacks"] == len(once)


def test_nested_sessions_restore_the_outer_one():
    with telemetry.collect() as outer:
        with telemetry.collect() as inner:
            telemetry.record_pass("dce", "f", 0.001, 5, 4)
        assert telemetry.current() is outer
        assert "dce" in inner.passes and "dce" not in outer.passes
    assert telemetry.current() is None
