"""Content-keyed compile cache: hit/miss accounting and clone isolation.

The cache memoizes whole compilation flows on (flow, source, machine,
config) and hands every caller an independent deep copy, so mutating a
returned module must never leak into later compilations.
"""

import numpy as np
import pytest

from repro import driver
from repro.passes import clone_module
from repro.vm import Interpreter

SRC = """
void kernel(u32* a, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        a[i] = a[i] * (u32)3;
    }
}
"""

SRC_B = SRC.replace("(u32)3", "(u32)5")


@pytest.fixture(autouse=True)
def fresh_cache():
    driver.clear_compile_cache()
    driver.set_compile_cache(True)
    yield
    driver.clear_compile_cache()
    driver.set_compile_cache(True)


def _run(module):
    interp = Interpreter(module)
    a = np.arange(8, dtype=np.uint32)
    addr = interp.memory.alloc_array(a)
    interp.run("kernel", addr, a.size)
    return interp.memory.read_array(addr, np.uint32, a.size)


def test_cache_hit_miss_accounting():
    driver.compile_parsimony(SRC)
    assert driver.compile_cache_stats() == {"hits": 0, "misses": 1, "entries": 1}
    driver.compile_parsimony(SRC)
    assert driver.compile_cache_stats() == {"hits": 1, "misses": 1, "entries": 1}
    # A different source is a different content key.
    driver.compile_parsimony(SRC_B)
    assert driver.compile_cache_stats() == {"hits": 1, "misses": 2, "entries": 2}


def test_distinct_flows_do_not_collide():
    driver.compile_scalar(SRC)
    driver.compile_autovec(SRC)
    driver.compile_parsimony(SRC)
    stats = driver.compile_cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 3


def test_cached_modules_are_isolated_clones():
    first = driver.compile_parsimony(SRC)
    second = driver.compile_parsimony(SRC)
    assert first is not second
    assert set(first.functions) == set(second.functions)

    # Vandalize the first copy; a later hit must be unaffected.
    first.functions.clear()
    third = driver.compile_parsimony(SRC)
    assert "kernel" in third.functions
    np.testing.assert_array_equal(_run(third), np.arange(8, dtype=np.uint32) * 3)


def test_cache_disable_bypasses_memoization():
    driver.set_compile_cache(False)
    driver.compile_parsimony(SRC)
    driver.compile_parsimony(SRC)
    assert driver.compile_cache_stats()["entries"] == 0


def test_clear_resets_counters():
    driver.compile_parsimony(SRC)
    driver.compile_parsimony(SRC)
    driver.clear_compile_cache()
    assert driver.compile_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_clone_module_behaves_identically():
    original = driver.compile_parsimony(SRC)
    clone = clone_module(original)
    assert set(clone.functions) == set(original.functions)
    for name, func in clone.functions.items():
        assert func is not original.functions[name]
    np.testing.assert_array_equal(_run(original), _run(clone))
