"""Pipeline-position independence of the Parsimony pass (§4.2).

"Existing vectorizers often rely on being placed at a particular point
within a bespoke sequence of optimization passes, whereas Parsimony's
vectorization pass can be placed anywhere in the optimization pipeline."

These tests compile the same SPMD program with the vectorizer placed at
several points relative to the scalar passes and assert identical
outputs.
"""

import numpy as np
import pytest

from repro.driver import post_vectorize_cleanup
from repro.frontend import compile_source
from repro.passes import (
    PassManager,
    constant_fold,
    cse,
    dce,
    mem2reg,
    narrow_ints,
    simplify_cfg,
)
from repro.vectorizer import vectorize_module
from repro.vm import Interpreter

SRC = """
void kernel(u8* a, u8* b, u8* c, u64 n) {
    psim (gang_size=32, num_threads=n) {
        u64 i = psim_get_thread_num();
        u8 v = a[i];
        if (v > b[i]) {
            c[i] = addsat(v, b[i]);
        } else {
            c[i] = absdiff(v, b[i]);
        }
    }
}
"""

_SCALAR_PASSES = [mem2reg, constant_fold, simplify_cfg, cse, narrow_ints, dce]


def compile_with_vectorizer_at(position: int):
    module = compile_source(SRC)
    before = _SCALAR_PASSES[:position]
    after = _SCALAR_PASSES[position:]
    if before:
        PassManager(before).run(module)
    vectorize_module(module)
    if after:
        PassManager(after).run(module)
    post_vectorize_cleanup(module)
    return module


def run(module):
    interp = Interpreter(module)
    rng = np.random.default_rng(5)
    n = 160
    a = interp.memory.alloc_array(rng.integers(0, 256, n).astype(np.uint8))
    b = interp.memory.alloc_array(rng.integers(0, 256, n).astype(np.uint8))
    c = interp.memory.alloc_array(np.zeros(n, np.uint8))
    interp.run("kernel", a, b, c, n)
    return interp.memory.read_array(c, np.uint8, n)


@pytest.mark.parametrize("position", range(len(_SCALAR_PASSES) + 1))
def test_vectorizer_position_independent(position):
    """The pass produces the same program meaning at any pipeline point."""
    reference = run(compile_with_vectorizer_at(len(_SCALAR_PASSES)))
    got = run(compile_with_vectorizer_at(position))
    np.testing.assert_array_equal(got, reference)


def test_vectorizer_before_any_scalar_pass():
    """Even raw front-end output (locals still in allocas) vectorizes:
    the pass runs its own normalization (§4.2's standalone property)."""
    module = compile_source(SRC)
    vectorize_module(module)
    out = run(module)
    assert out.any()
