"""Fault-injection differential: a failing vectorizer must never produce a
wrong answer, only a slower one.

For every Figure 4 benchmark, a deterministically injected failure in the
vectorizer forces the graceful-degradation path; the resulting module must
execute bit-identically to the pure scalar build, with the fallback reason
recorded in telemetry.  No injected compile-stage fault may escape
``compile_parsimony``.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.diagnostics import CompileError
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, InjectedFault, fired_log, inject

SPECS = {spec.name: spec for spec in BENCHMARKS}


@pytest.mark.parametrize("name", sorted(SPECS))
def test_forced_fallback_is_bit_identical_to_scalar(name):
    spec = SPECS[name]
    scalar = run_impl(spec, "scalar")
    with inject(FaultPlan(site="vectorize")), telemetry.collect() as session:
        degraded = run_impl(spec, "parsimony")
    fallbacks = session.as_dict()["vectorizer"]["fallbacks"]
    assert fallbacks, "forced vectorizer failure produced no fallback record"
    for entry in fallbacks:
        assert entry["reason"]["error"] == "InjectedFault"
        assert entry["reason"]["stage"] == "faultinject"
    got = degraded.output_signature()
    want = scalar.output_signature()
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)


def test_strict_mode_reraises_instead_of_degrading():
    spec = SPECS["mandelbrot"]
    with inject(FaultPlan(site="vectorize")):
        with pytest.raises(InjectedFault):
            compile_parsimony(spec.psim_src, strict=True,
                              module_name="strict.parsimony")


def test_pass_stage_fault_carries_provenance():
    # A fault inside the scalar pass pipeline (before the vectorizer runs)
    # is a hard compile error, but it must surface as a structured
    # diagnostic naming the pass and function — never a bare traceback.
    spec = SPECS["mandelbrot"]
    with inject(FaultPlan(site="pass", match="dce", times=1)):
        with pytest.raises(CompileError) as excinfo:
            compile_parsimony(spec.psim_src, module_name="passfault")
    diag = excinfo.value.diagnostic
    assert diag.stage == "faultinject"
    assert "dce" in str(excinfo.value)


def test_corrupting_pass_caught_and_named_before_the_vm():
    # ``corrupt`` silently deletes a terminator after a pass runs.  The
    # inter-pass verifier must catch the damage and attribute it to the
    # offending pass; broken IR never reaches the VM.
    from repro.passes.pass_manager import PassVerificationError

    spec = SPECS["mandelbrot"]
    with inject(FaultPlan(site="corrupt", match="constant_fold", times=1)):
        with pytest.raises(PassVerificationError) as excinfo:
            compile_parsimony(spec.psim_src, module_name="corruptfault")
    assert "constant_fold" in str(excinfo.value)
    assert excinfo.value.diagnostic.pass_name == "constant_fold"


def test_fault_plans_do_not_poison_the_compile_cache():
    from repro import driver

    spec = SPECS["mandelbrot"]
    driver.clear_compile_cache()
    clean_before = compile_parsimony(spec.psim_src, module_name="cachechk")
    with inject(FaultPlan(site="vectorize")):
        degraded = compile_parsimony(spec.psim_src, module_name="cachechk")
    clean_after = compile_parsimony(spec.psim_src, module_name="cachechk")
    assert any(
        f.attrs.get("parsimony_fallback") for f in degraded.functions.values()
    )
    for module in (clean_before, clean_after):
        assert not any(
            f.attrs.get("parsimony_fallback") for f in module.functions.values()
        )


def test_injection_scope_and_log():
    spec = SPECS["mandelbrot"]
    plan = FaultPlan(site="vectorize", times=1)
    with inject(plan):
        with pytest.raises(InjectedFault):
            compile_parsimony(spec.psim_src, strict=True, module_name="scopechk")
        log = fired_log()
        assert log and log[0]["site"] == "vectorize"
        assert plan.fired == 1
    # Outside the context the same compile must succeed unfaulted.
    module = compile_parsimony(spec.psim_src, strict=True, module_name="scopechk")
    assert module.functions


def test_unmatched_plan_never_fires():
    spec = SPECS["mandelbrot"]
    with inject(FaultPlan(site="vectorize", match="no-such-function")), \
            telemetry.collect() as session:
        compile_parsimony(spec.psim_src, module_name="nomatch")
    assert not session.fallbacks
    assert not fired_log()


# -- runtime fault sites: mathlib and costmodel (issue 4) ---------------------


def test_mathlib_fault_carries_full_external_name():
    # black_scholes calls exp/log/sqrt; a fault armed on the mathlib site
    # fires inside the external's implementation at *run* time and names
    # the exact external (flavour, function, element type, lanes).
    spec = SPECS["options"]
    with inject(FaultPlan(site="mathlib", match="exp")) as state:
        with pytest.raises(InjectedFault) as excinfo:
            run_impl(spec, "parsimony")
    detail = excinfo.value.diagnostic.detail
    assert detail["site"] == "mathlib"
    assert ".exp." in detail["name"] and detail["name"].startswith("ml.")
    assert excinfo.value.diagnostic.stage == "faultinject"
    assert state.log and state.log[0]["site"] == "mathlib"


def test_mathlib_fault_hook_survives_rehydration():
    # The disk compile cache serializes math externals as bare names and
    # rebuilds them via rehydrate_external on load; the rebuilt impls must
    # still carry the injection hook (and still compute correctly when no
    # plan is armed).
    from repro.runtime.mathlib import rehydrate_external

    scalar = rehydrate_external("ml.exp.f32")
    vector = rehydrate_external("ml.sleef.pow.f32x8")
    assert scalar.impl(0.0) == 1.0
    ones = np.ones(8, np.float32)
    np.testing.assert_array_equal(vector.impl(ones, ones), ones)

    with inject(FaultPlan(site="mathlib", match="ml.exp.f32")):
        with pytest.raises(InjectedFault) as excinfo:
            scalar.impl(1.0)
    assert excinfo.value.diagnostic.detail["name"] == "ml.exp.f32"
    with inject(FaultPlan(site="mathlib", match="sleef.pow")):
        with pytest.raises(InjectedFault) as excinfo:
            vector.impl(ones, ones)
    assert excinfo.value.diagnostic.detail["name"] == "ml.sleef.pow.f32x8"


def test_costmodel_fault_names_the_opcode():
    # The cost model is consulted by the VM when charging cycles; a fault
    # on the costmodel site surfaces during execution with the opcode as
    # provenance.  Armed plans bypass the compile cache, so the module's
    # instructions are fresh (no cost memoized from earlier runs).
    spec = SPECS["mandelbrot"]
    with inject(FaultPlan(site="costmodel", match="fmul")):
        with pytest.raises(InjectedFault) as excinfo:
            run_impl(spec, "parsimony")
    detail = excinfo.value.diagnostic.detail
    assert detail == {"site": "costmodel", "name": "fmul"}


def test_costmodel_fault_direct_consultation():
    from repro.backend.costmodel import DEFAULT_COST_MODEL
    from repro.backend.machine import AVX512

    module = compile_parsimony(SPECS["mandelbrot"].psim_src,
                               module_name="costprov")
    func = next(iter(module.functions.values()))
    instr = next(
        i for block in func.blocks for i in block.instructions
        if i.opcode not in ("phi",)
    )
    with inject(FaultPlan(site="costmodel")):
        with pytest.raises(InjectedFault) as excinfo:
            DEFAULT_COST_MODEL.cost(instr, AVX512)
    assert excinfo.value.diagnostic.detail["name"] == instr.opcode
    # Unarmed, the same consultation succeeds.
    assert DEFAULT_COST_MODEL.cost(instr, AVX512) >= 0
