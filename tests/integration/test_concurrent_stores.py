"""Concurrent multi-writer hardening of the on-disk stores (issue 7).

Many worker processes hit the same disk-cache and autotune entries at
once (the shard supervisor warm-starts workers through both).  The
contract: concurrent writers never lose each other's updates (the
autotune store is read-modify-write, so it takes an advisory lock) and
never observe a torn entry; corrupt entries are recorded and survived,
not fatal.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro import autotune, diskcache
from repro.driver import compile_parsimony

_SRC = Path(__file__).resolve().parents[2] / "src"

_KERNEL = """
void kernel(f32* out, u64 n) {
    psim (gang_size=4, num_threads=n) {
        u64 i = psim_get_thread_num();
        out[i] = (f32)i * 2.0f;
    }
}
"""

_WRITERS = 6
_SAMPLES_EACH = 5


def _spawn_children(tmp_path, body):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env["REPRO_DISK_CACHE"] = "1"
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", body.replace("@WRITER@", str(writer))],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        for writer in range(_WRITERS)
    ]
    failures = []
    for writer, proc in enumerate(procs):
        out, err = proc.communicate(timeout=120)
        if proc.returncode != 0:
            failures.append(f"writer {writer}: {err.decode()[-500:]}")
    assert not failures, "\n".join(failures)


def test_autotune_concurrent_writers_lose_no_samples(tmp_path, monkeypatch):
    """N processes append samples to the *same* entry under distinct
    factor keys; every sample must survive (the lost-update detector:
    unlocked read-modify-write drops a whole writer's key)."""
    body = (
        "from repro import autotune\n"
        "fp = autotune.fingerprint('concurrent-stress')\n"
        "engine = autotune.engine_config(True)\n"
        f"for s in range({_SAMPLES_EACH}):\n"
        "    autotune.record_measurement(fp, engine, @WRITER@, 0.5 + s)\n"
    )
    _spawn_children(tmp_path, body)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    fp = autotune.fingerprint("concurrent-stress")
    engine = autotune.engine_config(True)
    entry = autotune._load_entry(fp, engine)
    assert set(entry["samples"]) == {str(w) for w in range(_WRITERS)}
    for writer in range(_WRITERS):
        samples = entry["samples"][str(writer)]
        assert len(samples) == _SAMPLES_EACH, (
            f"writer {writer} lost samples: {samples}"
        )


def test_diskcache_concurrent_compile_store_load(tmp_path, monkeypatch):
    """N processes concurrently compile+store+reload the same kernel; the
    parent must then get a clean disk hit (atomic replace, no torn
    entries)."""
    body = (
        "from repro.driver import compile_parsimony\n"
        f"src = {_KERNEL!r}\n"
        "for _ in range(3):\n"
        "    module = compile_parsimony(src, module_name='stress@WRITER@')\n"
        "    assert module.get('kernel') is not None\n"
    )
    _spawn_children(tmp_path, body)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    diskcache.set_enabled(True)
    diskcache.reset_stats()
    try:
        module = compile_parsimony(_KERNEL, module_name="stress0")
        assert module.get("kernel") is not None
        assert diskcache.stats()["hits"] >= 1, diskcache.stats()
    finally:
        diskcache.set_enabled(None)


def test_corrupt_entries_are_recorded_not_fatal(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    # Autotune: a scribbled entry loads as fresh and counts an error.
    fp = autotune.fingerprint("corrupt-stress")
    engine = autotune.engine_config(True)
    autotune.record_measurement(fp, engine, 2, 1.0)
    path = autotune._entry_path(fp, engine)
    path.write_text("{not json")
    before = autotune.stats()["errors"]
    entry = autotune._load_entry(fp, engine)
    assert entry["samples"] == {}
    assert autotune.stats()["errors"] == before + 1

    # Disk cache: a scribbled pickle is dropped and the compile succeeds.
    diskcache.set_enabled(True)
    diskcache.reset_stats()
    try:
        compile_parsimony(_KERNEL, module_name="corrupt")
        pkls = list(Path(tmp_path).glob("*.pkl"))
        assert pkls, "store must have written an entry"
        for pkl in pkls:
            pkl.write_bytes(b"garbage")
        module = compile_parsimony(_KERNEL + "\n// cachebuster",
                                   module_name="corrupt")
        assert module.get("kernel") is not None
        corrupted = compile_parsimony(_KERNEL, module_name="corrupt2")
        assert corrupted.get("kernel") is not None
    finally:
        diskcache.set_enabled(None)


def test_concurrent_sampling_respects_max_samples(tmp_path, monkeypatch):
    """The per-factor sample window stays bounded even when many writers
    hammer the same factor key."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    fp = autotune.fingerprint("window-stress")
    engine = autotune.engine_config(True)
    for i in range(autotune.MAX_SAMPLES + 10):
        autotune.record_measurement(fp, engine, 4, float(i))
    entry = autotune._load_entry(fp, engine)
    assert len(entry["samples"]["4"]) == autotune.MAX_SAMPLES
