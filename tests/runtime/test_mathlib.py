"""Unit tests for the SLEEF / ispc vector math flavours."""

import numpy as np
import pytest

from repro.backend import AVX512
from repro.ir import F32, F64, Module
from repro.runtime.mathlib import (
    ISPC_BUILTIN,
    POW_SLEEF_OVER_ISPC,
    SLEEF,
    scalar_math_external,
    vector_math_external,
)


def test_pow_cost_ratio_matches_paper():
    """§6: SLEEF's AVX-512 pow is 2.6x slower than ispc's built-in."""
    module = Module("m")
    sleef = vector_math_external(module, "pow", F32, 16, SLEEF)
    ispc = vector_math_external(module, "pow", F32, 16, ISPC_BUILTIN)
    ratio = sleef.cost(AVX512, None) / ispc.cost(AVX512, None)
    assert ratio == pytest.approx(POW_SLEEF_OVER_ISPC)


def test_other_functions_cost_the_same_in_both_flavours():
    module = Module("m")
    for fn in ("exp", "log", "sin", "cos", "atan2"):
        sleef = vector_math_external(module, fn, F32, 16, SLEEF)
        ispc = vector_math_external(module, fn, F32, 16, ISPC_BUILTIN)
        assert sleef.cost(AVX512, None) == ispc.cost(AVX512, None)


def test_vector_cost_scales_with_legalization():
    module = Module("m")
    narrow = vector_math_external(module, "exp", F32, 16, SLEEF)
    wide = vector_math_external(module, "exp", F32, 64, SLEEF)
    assert wide.cost(AVX512, None) == 4 * narrow.cost(AVX512, None)


def test_scalar_f32_impl_rounds_to_float32():
    module = Module("m")
    ext = scalar_math_external(module, "exp", F32)
    got = ext.impl(0.5)
    assert got == float(np.exp(np.float32(0.5), dtype=np.float32))


def test_vector_impl_preserves_dtype_and_values():
    module = Module("m")
    ext = vector_math_external(module, "log", F32, 8, SLEEF)
    x = np.linspace(0.5, 2.0, 8, dtype=np.float32)
    out = ext.impl(x)
    assert out.dtype == np.float32
    np.testing.assert_allclose(out, np.log(x), rtol=1e-6)


def test_externals_are_cached_per_module():
    module = Module("m")
    a = vector_math_external(module, "exp", F32, 16, SLEEF)
    b = vector_math_external(module, "exp", F32, 16, SLEEF)
    assert a is b


def test_unknown_function_rejected():
    module = Module("m")
    with pytest.raises(KeyError):
        scalar_math_external(module, "gamma", F64)
