"""Unit tests for the shape analysis (§4.2.2) on hand-built SPMD IR."""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.passes import constant_fold, dce, mem2reg
from repro.vectorizer import ShapeAnalysis
from repro.vectorizer.shape import Shape, lane_shape


def analyze(body, gang=8, params="u32* a, u32* b"):
    src = f"""
    void f({params}, u64 n) {{
        psim (gang_size={gang}, num_threads=n) {{
            u64 i = psim_get_thread_num();
            {body}
        }}
    }}
    """
    module = compile_source(src)
    func = module.functions["f.psim0"]
    mem2reg(func)
    constant_fold(func)
    dce(func)
    analysis = ShapeAnalysis(func, gang)
    named = {}
    for instr in func.instructions():
        if not instr.type.is_void:
            named[instr.name] = analysis.shape_of(instr)
    return analysis, named, func


def find(named, prefix):
    for name, shape in named.items():
        if name.startswith(prefix):
            return shape
    raise KeyError(prefix)


def test_lane_is_stride_one():
    _, named, _ = analyze("a[i] = (u32)psim_get_lane_num();")
    assert find(named, "lane").stride() == 1


def test_thread_num_keeps_stride_through_add():
    _, named, _ = analyze("a[i] = (u32)i;")
    assert find(named, "thread_num").stride() == 1


def test_gep_scales_stride_by_element_size():
    _, named, _ = analyze("a[i] = b[i];")
    geps = [s for n, s in named.items() if n.startswith("gep")]
    assert geps and all(s.stride() == 4 for s in geps)  # u32 elements


def test_mul_by_constant_scales_offsets():
    _, named, _ = analyze("a[i] = b[3 * i];")
    strides = {s.stride() for n, s in named.items() if n.startswith("gep")}
    assert 12 in strides  # 3 elements * 4 bytes


def test_xor_low_bits_permutes_offsets():
    _, named, _ = analyze("a[i] = b[i ^ 1];")
    shapes = [s for n, s in named.items() if n.startswith("xor")]
    assert shapes and shapes[0].is_indexed
    # offsets are a permutation: pairwise swapped relative to lanes
    offs = shapes[0].offsets
    base_plus = offs + 1  # scalar base is b ^ 1 == b + 1
    assert sorted((base_plus).tolist()) == list(range(8))


def test_uniform_load_stays_uniform():
    _, named, _ = analyze("a[i] = b[0] + (u32)i;")
    loads = [s for n, s in named.items() if n.startswith("ld")]
    assert any(s.is_uniform for s in loads)


def test_data_dependent_index_is_varying():
    _, named, _ = analyze("a[i] = b[(u64)b[i]];")
    geps = [s for n, s in named.items() if n.startswith("gep")]
    assert any(s.is_varying for s in geps)


def test_reduction_result_is_uniform():
    _, named, _ = analyze("u32 s = psim_reduce_add_sync(b[i]); a[i] = s;")
    assert find(named, "psim.reduce").is_uniform


def test_divergent_branch_detection():
    analysis, _, func = analyze(
        "if (b[i] > 10u) { a[i] = 1; } else { a[i] = 2; }"
    )
    assert analysis.divergent_branches


def test_uniform_branch_not_divergent():
    analysis, _, _ = analyze(
        "if (psim_get_num_threads() > 10ul) { a[i] = 1; }"
    )
    assert not analysis.divergent_branches


def test_divergent_loop_taints_header_phis():
    analysis, named, func = analyze(
        """
        u32 v = b[i];
        u32 c = 0;
        while (v > 1u) { v = v / 2; c += 1; }
        a[i] = c;
        """
    )
    assert analysis.divergent_loops
    for block in func.blocks:
        for phi in block.phis():
            assert analysis.shape_of(phi).is_varying


def test_uniform_loop_keeps_scalar_counter():
    analysis, named, func = analyze(
        """
        u32 acc = 0;
        for (u64 j = 0; j < n; j++) { acc += b[i]; }
        a[i] = acc;
        """
    )
    assert not analysis.divergent_loops
    # the j counter phi stays uniform (scalar register, §4.2.2)
    counter_shapes = [
        analysis.shape_of(phi)
        for block in func.blocks
        for phi in block.phis()
        if phi.name.startswith("j")
    ]
    assert counter_shapes and all(s.is_uniform for s in counter_shapes)


def test_shape_helpers():
    s = lane_shape(4)
    assert s.stride() == 1 and s.is_indexed and not s.is_uniform
    assert Shape.uniform(4).stride() == 0
    assert Shape.varying().stride() is None
    assert Shape.indexed([0, 2, 4, 6]).stride() == 2
    assert Shape.indexed([0, 3, 1, 2]).stride() is None
