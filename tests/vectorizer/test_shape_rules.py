"""Offline verification of the shape-transformation rule set.

Reproduces the paper's two-phase scheme (§4.2.2): every rule the shape
analysis may apply is verified here — exhaustively over small bit-vectors
and by sampling at 64-bit — before being trusted online.
"""

import pytest

from repro.vectorizer.rules import RULES
from repro.vectorizer.smt import CounterExample, RuleSpec, verify_rule


@pytest.mark.parametrize("name", sorted(RULES))
def test_rule_verifies(name):
    verify_rule(RULES[name], bits=6, samples=1500)


def test_checker_catches_bogus_rule():
    bogus = RuleSpec(
        name="and_without_alignment_precondition",
        variables=("b", "o"),
        parameters=lambda bits: [{"k": 3}],
        # Missing the base-alignment precondition: must be rejected.
        precondition=lambda e, bits: 0 <= e["o"] < 8,
        lhs=lambda e, bits: ((e["b"] + e["o"]) & ((1 << bits) - 1)) & 7,
        rhs=lambda e, bits: (e["b"] & 7) + e["o"],
    )
    with pytest.raises(CounterExample):
        verify_rule(bogus, bits=6, samples=100)


def test_checker_catches_wrapping_zext():
    bogus = RuleSpec(
        name="zext_ignoring_wraparound",
        variables=("b", "o"),
        parameters=lambda bits: [{"k": 4}],
        precondition=lambda e, bits: e["b"] <= 15 and e["o"] <= 15,  # can wrap!
        lhs=lambda e, bits: (e["b"] + e["o"]) & 15,
        rhs=lambda e, bits: (e["b"] & 15) + e["o"],
    )
    with pytest.raises(CounterExample):
        verify_rule(bogus, bits=6, samples=100)
