"""Atomic fast path (§4.2): a gang-wide atomic with uniform address and
uniform operand whose result is unused collapses to one scalar atomic.

smin/smax/umin/umax are idempotent, so the collapsed form needs no
active-lane scaling (unlike add/sub).  Both the fast-path and serialized
decisions are observable through the ``memory_forms`` telemetry counters.
"""

import numpy as np

from repro import telemetry
from repro.driver import compile_parsimony, compile_scalar
from repro.vm import Interpreter

N = 21  # tail gang included

UNIFORM_SMIN_SRC = """
void kernel(i32* a, i32* out, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        a[i] = a[i] + 1;
        psim_atomic_smin(out, (i32)-42);
        psim_atomic_smax(out + 1, (i32)42);
    }
}
"""

SCALAR_SMIN_SRC = """
void kernel(i32* a, i32* out, u64 n) {
    for (u64 i = 0; i < n; i++) {
        a[i] = a[i] + 1;
        if (-42 < out[0]) { out[0] = -42; }
        if (42 > out[1]) { out[1] = 42; }
    }
}
"""

VARYING_SMIN_SRC = """
void kernel(i32* a, i32* out, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        psim_atomic_smin(out, a[i]);
    }
}
"""


def _run(module, out_init):
    interp = Interpreter(module)
    a = (np.arange(N, dtype=np.int32) * 7 - 50).astype(np.int32)
    addr_a = interp.memory.alloc_array(a)
    addr_out = interp.memory.alloc_array(np.array(out_init, np.int32))
    interp.run("kernel", addr_a, addr_out, N)
    return (
        interp.memory.read_array(addr_a, np.int32, N),
        interp.memory.read_array(addr_out, np.int32, len(out_init)),
    )


def _memory_forms(session):
    return session.vectorizer_totals()["memory_forms"]


def test_uniform_signed_minmax_take_the_fast_path():
    with telemetry.collect() as session:
        module = compile_parsimony(UNIFORM_SMIN_SRC, module_name="smin.fast")
    forms = _memory_forms(session)
    assert forms.get("atomic.fastpath.smin", 0) >= 1
    assert forms.get("atomic.fastpath.smax", 0) >= 1
    assert "atomic.serialized.smin" not in forms
    assert "atomic.serialized.smax" not in forms

    got_a, got_out = _run(module, [7, -7])
    want_a, want_out = _run(compile_scalar(SCALAR_SMIN_SRC), [7, -7])
    np.testing.assert_array_equal(got_a, want_a)
    np.testing.assert_array_equal(got_out, want_out)
    assert list(got_out) == [-42, 42]


def test_varying_operand_serializes():
    with telemetry.collect() as session:
        module = compile_parsimony(VARYING_SMIN_SRC, module_name="smin.slow")
    forms = _memory_forms(session)
    assert forms.get("atomic.serialized.smin", 0) >= 1
    assert "atomic.fastpath.smin" not in forms

    _, got_out = _run(module, [1000])
    a = np.arange(N, dtype=np.int32) * 7 - 50
    assert got_out[0] == min(1000, int(a.min()))
