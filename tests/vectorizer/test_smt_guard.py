"""SMT guard: a slow or unavailable solver degrades shape precision, never
correctness and never the build.

``rule_usable`` probes each rewrite rule once (with a deadline) and caches
the verdict; ``SMTTimeout``/``SMTUnavailable`` verdicts make the shape
analysis conservatively varying for the gated patterns.  The injected
default fault (``InjectedFault``) deliberately escapes the guard so the
function-level fallback handles it.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.driver import compile_parsimony, compile_scalar
from repro.faultinject import FaultPlan, inject
from repro.vectorizer import smt
from repro.vectorizer.rules import RULES
from repro.vm import Interpreter


@pytest.fixture(autouse=True)
def _fresh_rule_cache():
    smt.reset_rule_cache()
    yield
    smt.reset_rule_cache()


def test_rules_probe_usable_by_default():
    assert smt.rule_usable("and_low_mask")
    assert smt.rule_usable("xor_low_mask")


def test_unknown_rule_is_unusable_not_an_error():
    assert not smt.rule_usable("no_such_rule")


def test_timeout_verdict_is_conservative_and_cached():
    calls = []

    def timeout(name):
        calls.append(name)
        return smt.SMTTimeout(f"probe of {name} timed out")

    with inject(FaultPlan(site="smt", match="and_low_mask", exc=timeout)):
        assert not smt.rule_usable("and_low_mask")
        # Second query answers from the verdict cache: no new probe.
        assert not smt.rule_usable("and_low_mask")
        assert len(calls) == 1
        # Other rules are unaffected.
        assert smt.rule_usable("xor_low_mask")
    # Leaving the inject block resets the cache; the rule probes clean.
    assert smt.rule_usable("and_low_mask")


def test_unavailable_verdict_is_conservative():
    with inject(FaultPlan(
            site="smt", match="zext_no_wrap",
            exc=lambda name: smt.SMTUnavailable("no solver"))):
        assert not smt.rule_usable("zext_no_wrap")


def test_verify_rule_honors_deadline():
    rule = RULES["and_low_mask"]
    with pytest.raises(smt.SMTTimeout, match="time budget"):
        smt.verify_rule(rule, bits=8, samples_at=1 << 60,
                        deadline=time.monotonic() - 1.0)


MASKED_SRC = """
void kernel(f32* a, f32* b, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        u64 j = i & (u64)1023;
        b[j] = a[j] * (f32)2.0;
    }
}
"""


def _run(module):
    interp = Interpreter(module)
    n = 40
    a = np.linspace(-1.0, 1.0, n, dtype=np.float32)
    addr_a = interp.memory.alloc_array(a)
    addr_b = interp.memory.alloc_array(np.zeros(n, np.float32))
    interp.run("kernel", addr_a, addr_b, n)
    return interp.memory.read_array(addr_b, np.float32, n)


def test_timed_out_rules_still_compile_and_match_scalar():
    scalar_src = """
    void kernel(f32* a, f32* b, u64 n) {
        for (u64 i = 0; i < n; i++) {
            u64 j = i & (u64)1023;
            b[j] = a[j] * (f32)2.0;
        }
    }
    """
    want = _run(compile_scalar(scalar_src))
    with inject(FaultPlan(
            site="smt", exc=lambda name: smt.SMTTimeout(f"{name} timed out"))), \
            telemetry.collect() as session:
        module = compile_parsimony(MASKED_SRC, module_name="smt.timeout")
    # Conservative shapes are a precision loss, not a failure: no fallback.
    assert not session.fallbacks
    np.testing.assert_array_equal(_run(module), want)


def test_injected_default_fault_escapes_to_function_fallback():
    with inject(FaultPlan(site="smt")), telemetry.collect() as session:
        module = compile_parsimony(MASKED_SRC, module_name="smt.fault")
    assert session.fallbacks
    assert session.fallbacks[0]["reason"]["error"] == "InjectedFault"
    scalar_src = MASKED_SRC  # degraded module still computes the same thing
    want = _run(compile_parsimony(scalar_src, module_name="smt.clean"))
    np.testing.assert_array_equal(_run(module), want)
