"""Scalar fallback: the degradation target of ``vectorize_module``.

Unit coverage for ``repro.vectorizer.scalarize`` (the sequential lane
loop) and for the module-level fallback plumbing: ``parsimony_fallback``
attribution, telemetry records, the ``strict`` escape hatch, and the hard
error when even scalarization is impossible (cross-lane intrinsics).
"""

import numpy as np
import pytest

from repro import telemetry
from repro.benchsuite.kernelspec import reduction_sources
from repro.diagnostics import CompileError
from repro.driver import compile_parsimony, compile_scalar
from repro.faultinject import FaultPlan, inject
from repro.frontend import compile_source
from repro.vectorizer import vectorize_module
from repro.vectorizer.scalarize import (
    ScalarizeError,
    scalarization_blocker,
    scalarize_spmd_function,
)
from repro.vm import Interpreter

SRC = """
void kernel(i32* a, i32* b, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        i32 x = a[i];
        if (x > 10) {
            b[i] = x * 3;
        } else {
            b[i] = x - 7;
        }
    }
}
"""

N = 21  # not a multiple of the gang size: covers the tail gang


def _run_kernel(module):
    interp = Interpreter(module)
    a = np.arange(N, dtype=np.int32) - 5
    addr_a = interp.memory.alloc_array(a)
    addr_b = interp.memory.alloc_array(np.zeros(N, np.int32))
    interp.run("kernel", addr_a, addr_b, N)
    return interp.memory.read_array(addr_b, np.int32, N)


def _spmd_functions(module):
    return [f for f in module.functions.values() if f.spmd is not None]


def test_scalarized_lane_loop_matches_vectorized_semantics():
    module = compile_source(SRC, "m")
    spmd = _spmd_functions(module)
    assert spmd, "frontend produced no outlined SPMD functions"
    for function in spmd:
        scalarize_spmd_function(function)
        assert function.spmd is None
    got = _run_kernel(module)
    want = _run_kernel(compile_parsimony(SRC, module_name="m.vec"))
    np.testing.assert_array_equal(got, want)


def test_scalarize_rejects_cross_lane_intrinsics():
    _, psim_src = reduction_sources(
        "i32* a", "0", "acc = acc + a[i];", "i32", gang=8
    )
    module = compile_source(psim_src, "m")
    blockers = [scalarization_blocker(f) for f in _spmd_functions(module)]
    assert any(b and b.startswith("psim.reduce") for b in blockers)
    for function in _spmd_functions(module):
        if scalarization_blocker(function) is None:
            continue
        with pytest.raises(ScalarizeError, match="cross-lane intrinsic"):
            scalarize_spmd_function(function)


def test_scalarize_requires_spmd_annotation():
    module = compile_source(SRC, "m")
    plain = [f for f in module.functions.values()
             if f.spmd is None and f.blocks]
    with pytest.raises(ScalarizeError, match="no SPMD annotation"):
        scalarize_spmd_function(plain[0])


def test_vectorize_module_fallback_records_and_attributes():
    module = compile_source(SRC, "m")
    names = [f.name for f in _spmd_functions(module)]
    with inject(FaultPlan(site="vectorize")), telemetry.collect() as session:
        vectorize_module(module)
    for name in names:
        function = module.functions[name]
        assert function.spmd is None, "fallback left the SPMD annotation"
        reason = function.attrs.get("parsimony_fallback")
        assert reason and reason["error"] == "InjectedFault"
    recorded = {entry["function"] for entry in session.fallbacks}
    assert recorded == set(names)
    for entry in session.fallbacks:
        assert entry["gang_size"] == 8
        assert {"stage", "error", "message"} <= set(entry["reason"])


def test_vectorize_module_strict_reraises():
    module = compile_source(SRC, "m")
    with inject(FaultPlan(site="vectorize")):
        with pytest.raises(CompileError):
            vectorize_module(module, strict=True)


def test_unscalarizable_failure_is_a_hard_error():
    # When the vectorizer fails AND the body cannot be scalarized (it
    # reduces across lanes), there is no sound degradation: the compile
    # must fail loudly, naming both failures.
    _, psim_src = reduction_sources(
        "i32* a", "0", "acc = acc + a[i];", "i32", gang=8
    )
    with inject(FaultPlan(site="vectorize")):
        with pytest.raises(CompileError, match="cross-lane intrinsic"):
            compile_parsimony(psim_src, module_name="m.red")


def test_fallback_module_executes_identically_to_scalar():
    scalar_src = """
    void kernel(i32* a, i32* b, u64 n) {
        for (u64 i = 0; i < n; i++) {
            i32 x = a[i];
            if (x > 10) { b[i] = x * 3; } else { b[i] = x - 7; }
        }
    }
    """
    want = _run_kernel(compile_scalar(scalar_src))
    with inject(FaultPlan(site="vectorize")):
        degraded = compile_parsimony(SRC, module_name="m.fall")
    np.testing.assert_array_equal(_run_kernel(degraded), want)
