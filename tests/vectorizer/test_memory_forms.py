"""§4.2.3 memory instruction selection matrix, form by form.

| address shape | load form | store form |
|---|---|---|
| uniform | scalar load | warned single-lane scalar store |
| stride == element size | packed vload | packed vstore |
| const stride ≤ 4×gang | packed + shuffle window | inverse-shuffled masked vstores |
| anything else | gather | scatter |
"""

import numpy as np
import pytest

from repro.driver import compile_parsimony
from repro.vectorizer import VectorizeConfig
from repro.vm import Interpreter


def compile_and_run(src, arrays, scalars, config=None):
    module = compile_parsimony(src, config)
    interp = Interpreter(module)
    addrs = [interp.memory.alloc_array(a) for a in arrays]
    interp.memory.alloc(4096)  # window over-read guard
    interp.run("kernel", *addrs, *scalars)
    outs = [interp.memory.read_array(ad, a.dtype, a.size) for ad, a in zip(addrs, arrays)]
    return outs, interp.stats, module


def test_uniform_load_stays_scalar():
    src = """
    void kernel(u32* a, u32* b, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            b[i] = a[0] + (u32)i;
        }
    }
    """
    a = np.array([7] + [0] * 15, np.uint32)
    (a_out, b_out), stats, _ = compile_and_run(src, [a, np.zeros(32, np.uint32)], [32])
    np.testing.assert_array_equal(b_out, 7 + np.arange(32, dtype=np.uint32))
    assert stats.count("gather") == 0
    assert stats.counts["load"] == 2  # one scalar load per gang


def test_unit_stride_is_packed():
    src = """
    void kernel(u32* a, u32* b, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            b[i] = a[i] * 3;
        }
    }
    """
    a = np.arange(32, dtype=np.uint32)
    (_, b_out), stats, _ = compile_and_run(src, [a, np.zeros(32, np.uint32)], [32])
    np.testing.assert_array_equal(b_out, a * 3)
    assert stats.count("gather", "scatter", "shuffle") == 0
    assert stats.counts["vload"] == 2 and stats.counts["vstore"] == 2


@pytest.mark.parametrize("stride", [2, 3, 4])
def test_bounded_stride_uses_window_shuffles(stride):
    src = f"""
    void kernel(u32* a, u32* b, u64 n) {{
        psim (gang_size=16, num_threads=n) {{
            u64 i = psim_get_thread_num();
            b[i] = a[{stride} * i];
        }}
    }}
    """
    a = np.arange(16 * stride * 2, dtype=np.uint32)
    (_, b_out), stats, _ = compile_and_run(src, [a, np.zeros(32, np.uint32)], [32])
    np.testing.assert_array_equal(b_out, a[::stride][:32])
    assert stats.count("gather") == 0
    assert stats.count("shuffle") > 0


def test_stride_beyond_window_gathers():
    src = """
    void kernel(u32* a, u32* b, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            b[i] = a[8 * i];
        }
    }
    """
    a = np.arange(16 * 8, dtype=np.uint32)
    (_, b_out), stats, _ = compile_and_run(src, [a, np.zeros(16, np.uint32)], [16])
    np.testing.assert_array_equal(b_out, a[::8])
    assert stats.count("gather") > 0  # 8x gang window exceeds the 4x bound


def test_strided_store_uses_masked_windows():
    src = """
    void kernel(u32* a, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            a[2 * i] = (u32)i;
        }
    }
    """
    a = np.full(64, 777, np.uint32)
    (a_out,), stats, _ = compile_and_run(src, [a], [32])
    np.testing.assert_array_equal(a_out[::2], np.arange(32, dtype=np.uint32))
    np.testing.assert_array_equal(a_out[1::2], 777)  # gaps untouched
    assert stats.count("scatter") == 0


def test_uniform_store_of_varying_value_warns():
    """§4.2.3: racy store to a uniform address — warn, one lane wins."""
    src = """
    void kernel(u32* a, u32* out, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            out[0] = a[i];
        }
    }
    """
    module = compile_parsimony(src)
    warnings = []
    for f in module.functions.values():
        warnings += f.attrs.get("parsimony_warnings", [])
    assert any("racy" in w for w in warnings)

    interp = Interpreter(module)
    a = interp.memory.alloc_array(np.arange(16, dtype=np.uint32))
    out = interp.memory.alloc_array(np.zeros(1, np.uint32))
    interp.run("kernel", a, out, 16)
    winner = interp.memory.read_array(out, np.uint32, 1)[0]
    assert winner == 15  # the chosen (last active) lane


def test_private_alloca_is_blocked_per_lane():
    """§4.2.3: allocas multiply by the gang size; each lane gets a private
    copy (blocked layout via the indexed pointer shape)."""
    src = """
    void kernel(u32* out, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 tmp[4];
            for (u64 j = 0; j < 4; j++) { tmp[j] = (u32)(i + j); }
            u32 acc = 0;
            for (u64 j = 0; j < 4; j++) { acc += tmp[j]; }
            out[i] = acc;
        }
    }
    """
    (out,), stats, _ = compile_and_run(src, [np.zeros(16, np.uint32)], [16])
    expected = np.array([4 * i + 6 for i in range(16)], np.uint32)
    np.testing.assert_array_equal(out, expected)
    # §4.2.3's SoA swizzle: uniform-index private-array accesses are packed.
    assert stats.count("gather", "scatter") == 0


def test_escaping_private_alloca_falls_back_to_blocked():
    """An alloca whose address flows into arithmetic cannot be swizzled;
    the blocked per-lane layout is kept (correctness over speed)."""
    src = """
    void kernel(u32* out, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 tmp[2];
            u32* p = tmp + 1;     // address arithmetic: not gep+load/store only
            tmp[0] = (u32)i;
            *p = (u32)i + 1;
            out[i] = tmp[0] + *p;
        }
    }
    """
    (out,), stats, _ = compile_and_run(src, [np.zeros(16, np.uint32)], [16])
    expected = np.array([2 * i + 1 for i in range(16)], np.uint32)
    np.testing.assert_array_equal(out, expected)
