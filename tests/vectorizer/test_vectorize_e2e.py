"""End-to-end Parsimony tests: PsimC psim regions → vectorized IR → VM."""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.passes import standard_pipeline
from repro.vectorizer import VectorizeConfig, vectorize_module
from repro.vm import Interpreter


def build(source, config=None):
    module = compile_source(source)
    standard_pipeline().run(module)
    vectorize_module(module, config)
    return module


def run(module, fn, arrays, scalars=(), dtypes=None):
    """Allocate numpy arrays into VM memory, run, return output copies."""
    interp = Interpreter(module)
    addrs = [interp.memory.alloc_array(a) for a in arrays]
    interp.run(fn, *addrs, *scalars)
    outs = [
        interp.memory.read_array(addr, a.dtype, a.size)
        for addr, a in zip(addrs, arrays)
    ]
    return outs, interp


def test_elementwise_packed():
    src = """
    void scale(f32* a, f32* b, u64 n, f32 k) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            b[i] = a[i] * k;
        }
    }
    """
    module = build(src)
    a = np.arange(64, dtype=np.float32)
    b = np.zeros(64, dtype=np.float32)
    (a_out, b_out), interp = run(module, "scale", [a, b], scalars=(64, 3.0))
    np.testing.assert_array_equal(b_out, a * np.float32(3.0))
    # shape analysis must have selected packed accesses, not gathers
    assert interp.stats.count("gather", "scatter") == 0
    assert interp.stats.count("vload") > 0
    assert interp.stats.count("vstore") > 0


def test_tail_gang_partial():
    src = """
    void inc(u32* a, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            a[i] = a[i] + 1;
        }
    }
    """
    module = build(src)
    a = np.zeros(21, dtype=np.uint32)  # 21 = 2 full gangs + tail of 5
    (a_out,), _ = run(module, "inc", [a], scalars=(21,))
    np.testing.assert_array_equal(a_out, np.ones(21, dtype=np.uint32))


def test_divergent_if():
    src = """
    void clampneg(i32* a, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            i32 v = a[i];
            if (v < 0) {
                a[i] = -v;
            }
        }
    }
    """
    module = build(src)
    rng = np.random.default_rng(0)
    a = rng.integers(-100, 100, 32).astype(np.int32)
    (a_out,), _ = run(module, "clampneg", [a.view(np.uint32)], scalars=(32,))
    np.testing.assert_array_equal(a_out.view(np.int32), np.abs(a))


def test_if_else_phi_select():
    src = """
    void pick(f32* a, f32* b, f32* c, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            f32 r;
            if (a[i] > b[i]) { r = a[i]; } else { r = b[i]; }
            c[i] = r;
        }
    }
    """
    module = build(src)
    rng = np.random.default_rng(1)
    a = rng.random(32).astype(np.float32)
    b = rng.random(32).astype(np.float32)
    c = np.zeros(32, dtype=np.float32)
    (_, _, c_out), _ = run(module, "pick", [a, b, c], scalars=(32,))
    np.testing.assert_array_equal(c_out, np.maximum(a, b))


def test_strided_window_not_gather():
    src = """
    void even(u32* src, u32* dst, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            dst[i] = src[2 * i];
        }
    }
    """
    module = build(src)
    src_a = np.arange(64, dtype=np.uint32)
    dst = np.zeros(32, dtype=np.uint32)
    (_, dst_out), interp = run(module, "even", [src_a, dst], scalars=(32,))
    np.testing.assert_array_equal(dst_out, src_a[::2])
    # stride-2 fits the 4x-gang window: packed + shuffle, no gather (§4.2.3)
    assert interp.stats.count("gather") == 0
    assert interp.stats.count("shuffle") > 0


def test_indirect_access_gathers():
    src = """
    void permute(u32* src, u32* idx, u32* dst, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            dst[i] = src[idx[i]];
        }
    }
    """
    module = build(src)
    rng = np.random.default_rng(2)
    src_a = np.arange(100, dtype=np.uint32) * 7
    idx = rng.integers(0, 100, 32).astype(np.uint32)
    dst = np.zeros(32, dtype=np.uint32)
    (_, _, dst_out), interp = run(module, "permute", [src_a, idx, dst], scalars=(32,))
    np.testing.assert_array_equal(dst_out, src_a[idx])
    assert interp.stats.count("gather") > 0


def test_shuffle_horizontal_op():
    src = """
    void rotate(u32* a, u32* b, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 v = a[i];
            u32 r = psim_shuffle_sync(v, psim_get_lane_num() + 1);
            b[i] = r;
        }
    }
    """
    module = build(src)
    a = np.arange(8, dtype=np.uint32)
    b = np.zeros(8, dtype=np.uint32)
    (_, b_out), _ = run(module, "rotate", [a, b], scalars=(8,))
    np.testing.assert_array_equal(b_out, np.roll(a, -1))


def test_gang_reduction():
    src = """
    void gsum(u32* a, u32* out, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 s = psim_reduce_add_sync(a[i]);
            if (psim_get_lane_num() == 0) {
                out[psim_get_gang_num()] = s;
            }
        }
    }
    """
    module = build(src)
    a = np.arange(16, dtype=np.uint32)
    out = np.zeros(2, dtype=np.uint32)
    (_, out_v), _ = run(module, "gsum", [a, out], scalars=(16,))
    np.testing.assert_array_equal(out_v, [a[:8].sum(), a[8:].sum()])


def test_uniform_loop_inside_region():
    src = """
    void poly(f32* x, f32* y, f32* coef, u64 n, u64 degree) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            f32 acc = 0.0f;
            f32 xv = x[i];
            for (u64 d = 0; d < degree; d++) {
                acc = acc * xv + coef[d];
            }
            y[i] = acc;
        }
    }
    """
    module = build(src)
    x = np.linspace(-1, 1, 16, dtype=np.float32)
    y = np.zeros(16, dtype=np.float32)
    coef = np.array([1.0, -2.0, 0.5], dtype=np.float32)
    (_, y_out, _), _ = run(module, "poly", [x, y, coef], scalars=(16, 3))
    expect = np.zeros(16, dtype=np.float32)
    for c in coef:
        expect = expect * x + np.float32(c)
    np.testing.assert_array_equal(y_out, expect)


def test_divergent_while_loop():
    # Collatz-style per-lane iteration counts: a genuinely divergent loop.
    src = """
    void steps(u32* a, u32* out, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 v = a[i];
            u32 count = 0;
            while (v > 1) {
                if (v % 2 == 0) { v = v / 2; }
                else { v = 3 * v + 1; }
                count = count + 1;
            }
            out[i] = count;
        }
    }
    """
    module = build(src)
    a = np.array([1, 2, 3, 4, 5, 6, 7, 27], dtype=np.uint32)
    out = np.zeros(8, dtype=np.uint32)
    (_, out_v), _ = run(module, "steps", [a, out], scalars=(8,))

    def collatz(v):
        c = 0
        while v > 1:
            v = v // 2 if v % 2 == 0 else 3 * v + 1
            c += 1
        return c

    np.testing.assert_array_equal(out_v, [collatz(int(v)) for v in a])


def test_divergent_break_loop():
    # First index where key appears in each lane's row (early exit / break).
    src = """
    void find(u32* data, u32* out, u64 n, u64 width, u32 key) {
        psim (gang_size=4, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 found = width;
            for (u64 j = 0; j < width; j++) {
                if (data[i * width + j] == key) {
                    found = (u32)j;
                    break;
                }
            }
            out[i] = found;
        }
    }
    """
    module = build(src)
    data = np.array(
        [[9, 9, 5, 9], [5, 9, 9, 9], [9, 9, 9, 9], [9, 9, 9, 5]], dtype=np.uint32
    )
    out = np.zeros(4, dtype=np.uint32)
    (_, out_v), _ = run(module, "find", [data.reshape(-1), out], scalars=(4, 4, 5))
    np.testing.assert_array_equal(out_v, [2, 0, 4, 3])


def test_u8_wide_gang():
    src = """
    void blend(u8* a, u8* b, u8* c, u64 n) {
        psim (gang_size=64, num_threads=n) {
            u64 i = psim_get_thread_num();
            c[i] = avgr(a[i], b[i]);
        }
    }
    """
    module = build(src)
    rng = np.random.default_rng(3)
    a = rng.integers(0, 256, 192).astype(np.uint8)
    b = rng.integers(0, 256, 192).astype(np.uint8)
    c = np.zeros(192, dtype=np.uint8)
    (_, _, c_out), interp = run(module, "blend", [a, b, c], scalars=(192,))
    expect = ((a.astype(np.uint16) + b + 1) >> 1).astype(np.uint8)
    np.testing.assert_array_equal(c_out, expect)


def test_vector_math_call():
    src = """
    void vexp(f32* x, f32* y, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            y[i] = exp(x[i]);
        }
    }
    """
    module = build(src)
    x = np.linspace(0, 1, 32, dtype=np.float32)
    y = np.zeros(32, dtype=np.float32)
    (_, y_out), interp = run(module, "vexp", [x, y], scalars=(32,))
    np.testing.assert_allclose(y_out, np.exp(x), rtol=1e-6)
    assert interp.stats.count("ext:ml.sleef.exp.f32x16") == 2


def test_shape_analysis_ablation_forces_gathers():
    src = """
    void copy(u32* a, u32* b, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            b[i] = a[i];
        }
    }
    """
    module = build(src, VectorizeConfig(enable_shape_analysis=False))
    a = np.arange(16, dtype=np.uint32)
    b = np.zeros(16, dtype=np.uint32)
    (_, b_out), interp = run(module, "copy", [a, b], scalars=(16,))
    np.testing.assert_array_equal(b_out, a)
    assert interp.stats.count("gather") > 0  # no shapes -> everything gathers
