"""Differential matrix for region-granular scalar fallback (issue 4).

For every fig4 benchmark, force a vectorization failure at each basic
block the vectorizer emits (via the ``"vectorize_block"`` fault site) and
check that the degraded module — region-granular where provenance allows,
whole-function otherwise — produces **bit-identical** outputs to both the
fully vectorized build and the whole-function scalarized build.

On ExecStats: cycle/instruction counts legitimately differ *between*
degradation strategies (that is the point of keeping vector code), so the
stats contract pinned here is determinism — repeated runs of the same
degraded module report identical ExecStats.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.benchsuite import build_impl, run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS, BY_NAME
from repro.faultinject import FaultPlan, inject
from repro.ir.verifier import VerificationError, verify_function


def _count_block_emissions(spec):
    """How many blocks the vectorizer emits compiling ``spec`` clean.

    ``FaultPlan.hits`` counts every site match even when the plan never
    fires (``after`` is effectively infinite), so one clean compile under
    this probe enumerates the fault indices the matrix below iterates.
    """
    probe = FaultPlan(site="vectorize_block", after=10**9)
    with inject(probe):
        build_impl(spec, "parsimony")
    return probe.hits


def _signatures(result):
    return [np.asarray(o) for o in result.output_signature()]


def _assert_bit_identical(got, want, context):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w, err_msg=context)


def _partial_functions(module):
    return [
        f for f in module.functions.values()
        if f.attrs.get("parsimony_partial_fallback")
    ]


@pytest.mark.parametrize("spec", BENCHMARKS, ids=lambda s: s.name)
def test_partial_fallback_matrix_bit_identical(spec):
    hits = _count_block_emissions(spec)
    assert hits > 0, "vectorizer emitted no blocks — probe site dead?"

    plain = run_impl(spec, "parsimony")
    with inject(FaultPlan(site="vectorize")):
        whole_module = build_impl(spec, "parsimony")
    whole = run_impl(spec, "parsimony", module=whole_module)
    _assert_bit_identical(
        _signatures(plain), _signatures(whole),
        f"{spec.name}: vectorized vs whole-function scalar",
    )

    partial_entries = 0
    for i in range(hits):
        with inject(FaultPlan(site="vectorize_block", after=i, times=1)), \
                telemetry.collect() as session:
            module = build_impl(spec, "parsimony")
            got = run_impl(spec, "parsimony", module=module)
        _assert_bit_identical(
            _signatures(got), _signatures(whole),
            f"{spec.name}: fault at block emission {i}",
        )
        partials = session.partial_fallbacks
        fulls = session.fallbacks
        # The fault fired inside some SPMD function, so *some* degradation
        # must be on record — and attributed, not silently swallowed.
        assert partials or fulls, f"{spec.name}: fault {i} left no record"
        for entry in partials:
            partial_entries += 1
            assert entry["regions"], entry
            assert 0 < entry["blocks_scalarized"] <= entry["blocks_total"]
            assert 0 < entry["instrs_scalarized"] <= entry["instrs_total"]
            # Region granularity must have preserved vector code: at least
            # one block of the function stayed vectorized.
            assert entry["block_fraction"] < 1.0, entry
            for region in entry["regions"]:
                assert region["reason"]["error"] == "InjectedFault"
                assert region["blocks"], region
        degraded = _partial_functions(module)
        assert len(degraded) == len(partials)

    # Every fig4 kernel has at least one non-entry vectorizable block, so
    # the matrix must have exercised the region path at least once.
    assert partial_entries > 0, f"{spec.name}: region fallback never engaged"


def test_partial_fallback_execstats_deterministic():
    spec = BY_NAME["mandelbrot"]
    hits = _count_block_emissions(spec)
    module = None
    for i in range(hits):
        with inject(FaultPlan(site="vectorize_block", after=i, times=1)):
            candidate = build_impl(spec, "parsimony")
        if _partial_functions(candidate):
            module = candidate
            break
    assert module is not None, "no fault index produced a partial fallback"

    first = run_impl(spec, "parsimony", module=module).stats
    second = run_impl(spec, "parsimony", module=module).stats
    assert first.cycles == second.cycles
    assert first.instructions == second.instructions
    assert dict(first.counts) == dict(second.counts)


def test_whole_function_fault_still_degrades_whole_function():
    # Faults at the "vectorize" site carry no block provenance, so the
    # pre-existing whole-function degradation path must be taken verbatim.
    spec = BY_NAME["mandelbrot"]
    with inject(FaultPlan(site="vectorize")), telemetry.collect() as session:
        module = build_impl(spec, "parsimony")
    assert session.fallbacks
    assert not session.partial_fallbacks
    assert not _partial_functions(module)


def _region_helpers(module):
    return [
        f for f in module.functions.values()
        if f.attrs.get("parsimony_partial_region")
    ]


def test_verifier_enforces_seam_invariants():
    spec = BY_NAME["mandelbrot"]
    hits = _count_block_emissions(spec)
    module = None
    for i in range(hits):
        with inject(FaultPlan(site="vectorize_block", after=i, times=1)):
            candidate = build_impl(spec, "parsimony")
        if _region_helpers(candidate):
            module = candidate
            break
    assert module is not None
    helper = _region_helpers(module)[0]

    verify_function(helper)  # well-formed as emitted

    helper.attrs["noinline"] = False
    with pytest.raises(VerificationError, match="noinline"):
        verify_function(helper)
    helper.attrs["noinline"] = True

    saved = helper.spmd
    helper.spmd = object()  # the invariant only checks presence
    with pytest.raises(VerificationError, match="SPMD annotation"):
        verify_function(helper)
    helper.spmd = saved
