"""Legalization tests (§4.3): gang-width IR → machine-width IR.

Two properties:

* **semantic preservation** — legalized code produces bit-identical
  outputs for every kernel shape (elementwise, divergent, strided,
  reductions, shuffles);
* **cost-model validation** — the cost model charges un-legalized wide
  ops their legalization factors; actually legalizing and re-running must
  cost approximately the same cycles, closing the loop between the model
  and the real transformation.
"""

import numpy as np
import pytest

from repro.backend import AVX2, AVX512, SSE4
from repro.backend.legalize import legalize_module
from repro.driver import compile_parsimony
from repro.ir import VectorType, verify_module
from repro.vm import Interpreter

KERNELS = {
    "elementwise": """
    void kernel(u8* a, u8* b, u8* c, u64 n) {
        psim (gang_size=64, num_threads=n) {
            u64 i = psim_get_thread_num();
            c[i] = addsat(a[i], b[i]);
        }
    }
    """,
    "divergent": """
    void kernel(u8* a, u8* b, u8* c, u64 n) {
        psim (gang_size=64, num_threads=n) {
            u64 i = psim_get_thread_num();
            if (a[i] > b[i]) { c[i] = a[i] - b[i]; }
            else { c[i] = avgr(a[i], b[i]); }
        }
    }
    """,
    "strided": """
    void kernel(u8* a, u8* b, u8* c, u64 n) {
        psim (gang_size=64, num_threads=n) {
            u64 i = psim_get_thread_num();
            c[i] = absdiff(a[2 * i], a[2 * i + 1]);
        }
    }
    """,
    "reduction": """
    void kernel(u8* a, u8* b, u8* c, u64 n) {
        psim (gang_size=64, num_threads=n) {
            u64 i = psim_get_thread_num();
            u64 total = psim_sad_sync(a[i], b[i]);
            c[i] = (u8)(total & 255ul);
        }
    }
    """,
    "shuffle": """
    void kernel(u8* a, u8* b, u8* c, u64 n) {
        psim (gang_size=64, num_threads=n) {
            u64 i = psim_get_thread_num();
            c[i] = psim_shuffle_sync(a[i], psim_get_lane_num() ^ 7);
        }
    }
    """,
}


def run(module, machine):
    interp = Interpreter(module, machine=machine)
    rng = np.random.default_rng(0)
    a = interp.memory.alloc_array(rng.integers(0, 256, 256).astype(np.uint8))
    b = interp.memory.alloc_array(rng.integers(0, 256, 256).astype(np.uint8))
    c = interp.memory.alloc_array(np.zeros(128, np.uint8))
    interp.run("kernel", a, b, c, 128)
    return interp.memory.read_array(c, np.uint8, 128), interp.stats


@pytest.mark.parametrize("name", sorted(KERNELS), ids=sorted(KERNELS))
@pytest.mark.parametrize("machine", [SSE4, AVX2], ids=["sse4", "avx2"])
def test_legalized_code_matches_unlegalized(name, machine):
    src = KERNELS[name]
    reference, _ = run(compile_parsimony(src), machine)

    module = compile_parsimony(src)
    assert legalize_module(module, machine)
    verify_module(module)
    got, _ = run(module, machine)
    np.testing.assert_array_equal(got, reference, err_msg=name)


@pytest.mark.parametrize("machine", [SSE4, AVX2], ids=["sse4", "avx2"])
def test_no_wide_vectors_remain(machine):
    module = compile_parsimony(KERNELS["elementwise"])
    legalize_module(module, machine)
    for function in module.functions.values():
        if ".scalarref" in function.name:
            continue
        from repro.ir import Constant

        for instr in function.instructions():
            for value in (instr, *instr.operands):
                if isinstance(value, Constant):
                    continue  # shuffle controls etc. are immediates
                t = value.type
                if isinstance(t, VectorType) and t.elem.bits > 1:
                    assert t.elem.bits * t.count <= machine.vector_bits, (
                        f"wide {t} survives in {function.name}: {instr.opcode}"
                    )


@pytest.mark.parametrize("name", sorted(KERNELS), ids=sorted(KERNELS))
def test_cost_model_matches_real_legalization(name):
    """Modeled cycles (wide IR) ≈ measured cycles (legalized IR)."""
    src = KERNELS[name]
    machine = AVX2  # gang 64 x u8 = 512b -> 2 chunks
    _, modeled = run(compile_parsimony(src), machine)
    module = compile_parsimony(src)
    legalize_module(module, machine)
    _, measured = run(module, machine)
    ratio = measured.cycles / modeled.cycles
    # The model folds chunk bookkeeping (extra geps, mask combines) into
    # per-op factors; kernels moving lane-index vectors around additionally
    # pay pack/unpack chains the model does not itemize.
    # Dynamic cross-register permutes additionally pay index-vector
    # management chains that the per-op model only approximates.
    envelope = 4.5 if name in ("shuffle", "strided") else 1.8
    assert 0.6 < ratio < envelope, (
        f"{name}: modeled={modeled.cycles} measured={measured.cycles}"
    )


def test_already_narrow_code_untouched(monkeypatch):
    src = """
    void kernel(f32* x, f32* y, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            y[i] = x[i] + 1.0f;
        }
    }
    """
    # Gang batching deliberately emits machine-wide vectors (the VM charges
    # their narrow prototypes); this test is about the pre-batch pipeline.
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    # gang 8: even the tail variant's i64 lane-index vectors fit in 512b
    module = compile_parsimony(src)
    assert not legalize_module(module, AVX512)
