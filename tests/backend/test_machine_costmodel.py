"""Unit tests for the machine model and cycle cost model."""

import pytest

from repro.backend import AVX2, AVX512, SSE4, CostModel, Machine
from repro.ir import (
    I1,
    I8,
    I32,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    PointerType,
    VectorType,
)


def test_legalization_factors():
    assert AVX512.legalize_factor(VectorType(I32, 16)) == 1  # 512b exactly
    assert AVX512.legalize_factor(VectorType(I32, 64)) == 4  # 2048b -> 4 ops
    assert AVX512.legalize_factor(VectorType(I8, 64)) == 1  # 512b of bytes
    assert AVX2.legalize_factor(VectorType(I32, 16)) == 2
    assert SSE4.legalize_factor(VectorType(I32, 16)) == 4
    # masks live in predicate registers
    assert AVX512.legalize_factor(VectorType(I1, 64)) == 1


def test_native_lane_counts():
    assert AVX512.lanes(8) == 64
    assert AVX512.lanes(32) == 16
    assert SSE4.lanes(32) == 4


def test_gather_costs_order_of_magnitude_more_than_packed():
    """The §4.2.2 claim the memory selection logic exists for."""
    f = Function("t", FunctionType(I32, (PointerType(I32),)), ["p"])
    b = IRBuilder(f, f.add_block("entry"))
    mask = b.all_ones_mask(16)
    packed = b.vload(f.args[0], 16, mask)
    base = b.broadcast(b.ptrtoint(f.args[0]), 16)
    ptrs = b.inttoptr(base, VectorType(PointerType(I32), 16))
    gathered = b.gather(ptrs, mask)
    model = CostModel()
    assert model.cost(gathered, AVX512) >= 8 * model.cost(packed, AVX512)


def test_wide_vector_ops_pay_legalization():
    f = Function("t", FunctionType(I32, ()), [])
    b = IRBuilder(f, f.add_block("entry"))
    narrow = b.add(b.splat_const(I32, 1, 16), b.splat_const(I32, 2, 16))
    wide = b.add(b.splat_const(I32, 1, 64), b.splat_const(I32, 2, 64))
    model = CostModel()
    assert model.cost(wide, AVX512) == 4 * model.cost(narrow, AVX512)


def test_division_is_expensive():
    f = Function("t", FunctionType(I32, (I32, I32)), ["a", "b"])
    b = IRBuilder(f, f.add_block("entry"))
    add = b.add(f.args[0], f.args[1])
    div = b.udiv(f.args[0], f.args[1])
    model = CostModel()
    assert model.cost(div, AVX512) >= 10 * model.cost(add, AVX512)


def test_custom_machine_widths():
    m = Machine(name="sve1024", vector_bits=1024)
    assert m.lanes(8) == 128
    assert m.legalize_factor(VectorType(I8, 64)) == 1


def test_suggest_batch_factor_honors_machine():
    """Regression: the ``machine`` parameter must cap the batched width at
    ``MAX_LEGALIZE_OPS`` machine ops — it used to be accepted and ignored."""
    from repro.backend.costmodel import (
        MAX_LEGALIZE_OPS,
        TARGET_BATCHED_LANES,
        suggest_batch_factor,
    )

    # AVX-512's cap (16 ops x 16 f32 lanes = 256) equals the calibrated
    # lane target, so the default machine keeps the historical answer.
    assert suggest_batch_factor(8) == suggest_batch_factor(8, AVX512) == 32
    assert MAX_LEGALIZE_OPS * AVX512.lanes(32) == TARGET_BATCHED_LANES

    # Narrower machines scale the cap down proportionally.
    assert suggest_batch_factor(8, AVX2) == 16   # 8*16 = 128 lanes
    assert suggest_batch_factor(8, SSE4) == 8    # 8*8  =  64 lanes
    for machine in (AVX512, AVX2, SSE4):
        cap = min(TARGET_BATCHED_LANES, MAX_LEGALIZE_OPS * machine.lanes(32))
        for gang in (2, 4, 8, 16, 32):
            assert gang * suggest_batch_factor(gang, machine) <= cap

    # Non-power-of-two and degenerate gangs still mean "don't batch".
    assert suggest_batch_factor(12, AVX2) == 1
    assert suggest_batch_factor(0, SSE4) == 1
