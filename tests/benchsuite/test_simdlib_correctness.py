"""Cross-implementation correctness for every Simd Library kernel.

For each of the suite's kernels, all four implementations (scalar,
auto-vectorized, Parsimony, hand-written) must produce identical outputs
on the seeded workload — and match the independent numpy reference where
one is defined.  This is the suite's master integration test.
"""

import pytest

from repro.benchsuite import check_kernel
from repro.benchsuite.simdlib import KERNELS


@pytest.mark.parametrize("spec", KERNELS, ids=lambda s: s.name)
def test_kernel_all_impls_agree(spec):
    check_kernel(spec)
