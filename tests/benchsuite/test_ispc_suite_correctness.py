"""Cross-implementation correctness for the 7 ispc-suite benchmarks:
serial-scalar, auto-vectorized, Parsimony, and ispc-mode must agree."""

import pytest

from repro.benchsuite import check_kernel
from repro.benchsuite.ispc_suite import BENCHMARKS


@pytest.mark.parametrize("spec", BENCHMARKS, ids=lambda s: s.name)
def test_ispc_benchmark_all_impls_agree(spec):
    check_kernel(spec, impls=("scalar", "autovec", "parsimony", "ispc"))
