"""Unit tests for the benchmark runner and measurement plumbing."""

import numpy as np
import pytest

from repro.benchsuite import (
    IMPLEMENTATIONS,
    build_impl,
    check_kernel,
    geomean,
    measure_kernel,
    run_impl,
)
from repro.benchsuite.simdlib import BY_NAME, KERNELS


def test_geomean_basics():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([5.0]) == pytest.approx(5.0)
    assert geomean([]) == 0.0
    assert geomean([0.0, 4.0]) == pytest.approx(4.0)  # non-positive dropped


def test_registry_has_72_unique_kernels():
    assert len(KERNELS) == 72
    assert len(BY_NAME) == 72
    groups = {spec.group for spec in KERNELS}
    assert {"copyfill", "arith", "blend", "convert", "filter",
            "background", "stat", "misc"} <= groups
    # every kernel documents itself and defines all four implementations
    for spec in KERNELS:
        assert spec.doc
        assert spec.hand_build is not None


def test_build_impl_produces_distinct_modules():
    spec = BY_NAME["Copy"]
    modules = {impl: build_impl(spec, impl) for impl in IMPLEMENTATIONS}
    assert len({id(m) for m in modules.values()}) == 4
    for module in modules.values():
        assert "kernel" in module.functions


def test_build_impl_rejects_unknown():
    with pytest.raises(ValueError, match="unknown implementation"):
        build_impl(BY_NAME["Copy"], "gcc")


def test_run_impl_is_deterministic():
    spec = BY_NAME["AbsDifference"]
    first = run_impl(spec, "parsimony")
    second = run_impl(spec, "parsimony")
    assert first.cycles == second.cycles
    np.testing.assert_array_equal(first.outputs[0], second.outputs[0])


def test_measure_kernel_reports_all_impls():
    speedups = measure_kernel(BY_NAME["Fill"])
    assert set(speedups) == set(IMPLEMENTATIONS)
    assert speedups["scalar"] == pytest.approx(1.0)
    assert speedups["parsimony"] > 1.0


def test_check_kernel_catches_divergence():
    """Corrupt one implementation's source; the gate must fire."""
    import dataclasses

    spec = BY_NAME["Fill"]
    broken = dataclasses.replace(
        spec, psim_src=spec.psim_src.replace("dst[i] = value;",
                                             "dst[i] = value + 1;")
    )
    with pytest.raises(AssertionError, match="differs"):
        check_kernel(broken, impls=("scalar", "parsimony"))
