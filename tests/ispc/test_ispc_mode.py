"""ispc-mode tests, including the paper's Listing 2 semantic hazard."""

import numpy as np
import pytest

from repro.backend import AVX2, AVX512, SSE4
from repro.ispc import ispc_compile, ispc_gang_size
from repro.vm import Interpreter


def test_gang_size_follows_machine_flag():
    assert ispc_gang_size(AVX512) == 16
    assert ispc_gang_size(AVX2) == 8
    assert ispc_gang_size(SSE4) == 4


ADJACENT_COPY = """
void foo(u32* a, u64 n) {
    psim (gang_size=1, num_threads=n) {  // gang_size is overridden by the flag!
        u64 i = psim_get_thread_num();
        u32 tmp = a[i];
        psim_gang_sync();
        a[i + 1] = tmp;
    }
}
"""


def run_adjacent_copy(machine, n):
    module = ispc_compile(ADJACENT_COPY, machine)
    interp = Interpreter(module, machine=machine)
    a = np.arange(n + 1, dtype=np.uint32)
    addr = interp.memory.alloc_array(a)
    interp.run("foo", addr, n)
    return interp.memory.read_array(addr, np.uint32, n + 1)


def test_listing2_correct_when_n_fits_one_gang():
    """Paper §2.2, Listing 2: with N <= gang size the gang-synchronous copy
    is 'correct' — all loads happen before all stores."""
    out = run_adjacent_copy(AVX512, 16)  # N == gang size (16 on AVX-512)
    np.testing.assert_array_equal(out[1:], np.arange(16, dtype=np.uint32))


def test_listing2_breaks_when_gang_flag_shrinks():
    """The same program compiled for a narrower target (smaller gang flag)
    silently changes behaviour: gang 4 stores clobber the next gang's
    inputs.  This is exactly the coupling the paper criticizes."""
    out = run_adjacent_copy(SSE4, 16)  # gang size 4 < N
    expect_ok = np.arange(16, dtype=np.uint32)
    assert not np.array_equal(out[1:], expect_ok)
    # lane 0 of gang 1 read the value gang 0's lane 3 stored (0,1,2,3 -> 3)
    assert out[4] == 3


def test_parsimony_same_program_is_target_independent():
    """The Parsimony model fixes the gang size in the program (§3), so the
    same source gives the same answer on every machine."""
    from repro.driver import compile_parsimony

    src = ADJACENT_COPY.replace("gang_size=1", "gang_size=16")
    for machine in (AVX512, AVX2, SSE4):
        module = compile_parsimony(src)
        interp = Interpreter(module, machine=machine)
        a = np.arange(17, dtype=np.uint32)
        addr = interp.memory.alloc_array(a)
        interp.run("foo", addr, 16)
        out = interp.memory.read_array(addr, np.uint32, 17)
        np.testing.assert_array_equal(out[1:], np.arange(16, dtype=np.uint32))


def test_ispc_uses_builtin_math_flavour():
    src = """
    void vpow(f32* x, f32* y, u64 n) {
        psim (gang_size=1, num_threads=n) {
            u64 i = psim_get_thread_num();
            y[i] = pow(x[i], 2.5f);
        }
    }
    """
    module = ispc_compile(src, AVX512)
    assert any(name.startswith("ml.ispc.pow") for name in module.externals)
