"""Tests for the hand-written intrinsics kernel API, incl. the §7 SAD op."""

import numpy as np

from repro.ir import I8, I64, Module, PointerType, VectorType
from repro.simd import hand_kernel
from repro.vm import Interpreter


def test_hand_written_copy_kernel():
    module = Module("hand")
    k = hand_kernel(
        module, "copy64",
        [("src", PointerType(I8)), ("dst", PointerType(I8)), ("n", I64)],
    )
    with k.loop(k.p.n, step=64) as i:
        v = k.load(k.p.src, i, 64)
        k.store(v, k.p.dst, i)
    k.ret()
    k.done()

    interp = Interpreter(module)
    src = np.arange(128, dtype=np.uint8)
    dst = np.zeros(128, dtype=np.uint8)
    a_src = interp.memory.alloc_array(src)
    a_dst = interp.memory.alloc_array(dst)
    interp.run("copy64", a_src, a_dst, 128)
    np.testing.assert_array_equal(
        interp.memory.read_array(a_dst, np.uint8, 128), src
    )
    assert interp.stats.counts["vload"] == 2  # two 64-byte blocks


def test_saturating_and_average_ops():
    module = Module("hand")
    k = hand_kernel(
        module, "satadd",
        [("a", PointerType(I8)), ("b", PointerType(I8)), ("c", PointerType(I8)), ("n", I64)],
    )
    with k.loop(k.p.n, step=64) as i:
        va = k.load(k.p.a, i, 64)
        vb = k.load(k.p.b, i, 64)
        k.store(k.sat_add_u8(va, vb), k.p.c, i)
    k.ret()
    k.done()

    interp = Interpreter(module)
    a = np.full(64, 200, dtype=np.uint8)
    b = np.full(64, 100, dtype=np.uint8)
    c = np.zeros(64, dtype=np.uint8)
    aa, ab, ac = (interp.memory.alloc_array(x) for x in (a, b, c))
    interp.run("satadd", aa, ab, ac, 64)
    np.testing.assert_array_equal(
        interp.memory.read_array(ac, np.uint8, 64), np.full(64, 255, np.uint8)
    )


def test_sad_vpsadbw_equivalent():
    """The §7 vpsadbw abstraction: per-8-lane |a-b| group sums."""
    module = Module("hand")
    k = hand_kernel(
        module, "sadsum",
        [("a", PointerType(I8)), ("b", PointerType(I8)), ("n", I64)],
        ret=I64,
    )
    acc_cell = k.alloca(I64, 1, "acc")
    k.b.store(k.i64(0), acc_cell)
    with k.loop(k.p.n, step=64) as i:
        va = k.load(k.p.a, i, 64)
        vb = k.load(k.p.b, i, 64)
        groups = k.sad_u8(va, vb)  # <8 x i64>
        total = k.hsum(groups)
        k.b.store(k.add(k.b.load(acc_cell), total), acc_cell)
    k.ret(k.b.load(acc_cell))
    k.done()

    interp = Interpreter(module)
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, 128).astype(np.uint8)
    b = rng.integers(0, 256, 128).astype(np.uint8)
    aa, ab = interp.memory.alloc_array(a), interp.memory.alloc_array(b)
    result = interp.run("sadsum", aa, ab, 128)
    expect = int(np.abs(a.astype(np.int64) - b.astype(np.int64)).sum())
    assert result == expect
    assert interp.stats.counts["sad"] == 2  # one vpsadbw per 64-byte block


def test_permute_and_blend():
    module = Module("hand")
    k = hand_kernel(module, "rev", [("a", PointerType(I8))])
    v = k.load(k.p.a, k.i64(0), 16)
    r = k.permute(v, list(range(15, -1, -1)))
    k.store(r, k.p.a, k.i64(0))
    k.ret()
    k.done()

    interp = Interpreter(module)
    a = np.arange(16, dtype=np.uint8)
    addr = interp.memory.alloc_array(a)
    interp.run("rev", addr)
    np.testing.assert_array_equal(
        interp.memory.read_array(addr, np.uint8, 16), a[::-1]
    )
