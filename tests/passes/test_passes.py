"""Unit tests for the scalar optimization passes."""

import numpy as np
import pytest

from repro.ir import (
    I32,
    VOID,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    print_function,
    verify_function,
)
from repro.passes import (
    constant_fold,
    dce,
    inline_function_calls,
    mem2reg,
    simplify_cfg,
    standard_pipeline,
)
from repro.vm import Interpreter


def build_abs_function():
    """if (x < 0) r = -x; else r = x; return r  — via an alloca'd local."""
    module = Module("t")
    f = Function("myabs", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("else")
    join = f.add_block("join")
    b = IRBuilder(f, entry)
    r = b.alloca(I32, 1, "r")
    cond = b.icmp("slt", f.args[0], Constant(I32, 0))
    b.condbr(cond, then, els)
    b.position_at_end(then)
    b.store(b.sub(Constant(I32, 0), f.args[0]), r)
    b.br(join)
    b.position_at_end(els)
    b.store(f.args[0], r)
    b.br(join)
    b.position_at_end(join)
    b.ret(b.load(r))
    verify_function(f)
    return module, f


def test_mem2reg_removes_allocas_and_preserves_semantics():
    module, f = build_abs_function()
    before = Interpreter(module).run(f, -5 & 0xFFFFFFFF)
    assert mem2reg(f)
    verify_function(f)
    text = print_function(f)
    assert "alloca" not in text
    assert "phi" in text
    after = Interpreter(module).run(f, -5 & 0xFFFFFFFF)
    assert before == after == 5


def test_mem2reg_idempotent():
    module, f = build_abs_function()
    mem2reg(f)
    assert not mem2reg(f)


def test_mem2reg_skips_escaping_alloca():
    module = Module("t")
    callee = Function("sink", FunctionType(VOID, (PointerType(I32),)), ["p"])
    module.add_function(callee)
    b = IRBuilder(callee, callee.add_block("entry"))
    b.ret()

    f = Function("f", FunctionType(I32, ()), [])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    r = b.alloca(I32, 1, "r")
    b.store(Constant(I32, 3), r)
    b.call(callee, [r])  # address escapes
    b.ret(b.load(r))
    verify_function(f)
    mem2reg(f)
    assert "alloca" in print_function(f)


def test_constfold_scalar_arith():
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    c = b.add(Constant(I32, 2), Constant(I32, 3))
    d = b.mul(c, Constant(I32, 4))
    e = b.add(f.args[0], d)
    b.ret(e)
    constant_fold(f)
    dce(f)
    verify_function(f)
    # 2+3=5, 5*4=20 folded into a single add of 20
    assert Interpreter(module).run(f, 1) == 21
    assert sum(len(blk.instructions) for blk in f.blocks) == 2  # add + ret


def test_constfold_identities():
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    y = b.add(f.args[0], Constant(I32, 0))
    z = b.mul(y, Constant(I32, 1))
    b.ret(z)
    constant_fold(f)
    dce(f)
    assert sum(len(blk.instructions) for blk in f.blocks) == 1  # just ret x


def test_constfold_keeps_div_by_zero_for_runtime():
    module = Module("t")
    f = Function("f", FunctionType(I32, ()), [])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    d = b.udiv(Constant(I32, 1), Constant(I32, 0))
    b.ret(d)
    constant_fold(f)
    assert any(i.opcode == "udiv" for i in f.entry.instructions)


def test_dce_removes_unused_chain():
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    dead1 = b.add(f.args[0], Constant(I32, 1))
    dead2 = b.mul(dead1, dead1)
    b.ret(f.args[0])
    assert dce(f)
    assert sum(len(blk.instructions) for blk in f.blocks) == 1


def test_simplify_cfg_folds_constant_branch():
    module = Module("t")
    f = Function("f", FunctionType(I32, ()), [])
    module.add_function(f)
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("else")
    b = IRBuilder(f, entry)
    from repro.ir import I1

    b.condbr(Constant(I1, 1), then, els)
    b.position_at_end(then)
    b.ret(Constant(I32, 10))
    b.position_at_end(els)
    b.ret(Constant(I32, 20))
    assert simplify_cfg(f)
    verify_function(f)
    assert len(f.blocks) == 1
    assert Interpreter(module).run(f) == 10


def test_inline_simple_call():
    module = Module("t")
    callee = Function("sq", FunctionType(I32, (I32,)), ["v"])
    module.add_function(callee)
    b = IRBuilder(callee, callee.add_block("entry"))
    b.ret(b.mul(callee.args[0], callee.args[0]))

    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    r = b.call(callee, [f.args[0]])
    b.ret(b.add(r, Constant(I32, 1)))
    verify_function(f)

    assert inline_function_calls(f)
    verify_function(f)
    assert "call" not in print_function(f)
    assert Interpreter(module).run(f, 4) == 17


def test_inline_multi_return_callee():
    module = Module("t")
    callee = Function("clamp0", FunctionType(I32, (I32,)), ["v"])
    module.add_function(callee)
    entry = callee.add_block("entry")
    neg = callee.add_block("neg")
    pos = callee.add_block("pos")
    b = IRBuilder(callee, entry)
    b.condbr(b.icmp("slt", callee.args[0], Constant(I32, 0)), neg, pos)
    b.position_at_end(neg)
    b.ret(Constant(I32, 0))
    b.position_at_end(pos)
    b.ret(callee.args[0])

    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    r = b.call(callee, [f.args[0]])
    b.ret(r)
    assert inline_function_calls(f)
    verify_function(f)
    assert Interpreter(module).run(f, -3 & 0xFFFFFFFF) == 0
    assert Interpreter(module).run(f, 9) == 9


def test_standard_pipeline_end_to_end():
    module, f = build_abs_function()
    standard_pipeline().run(module)
    verify_function(f)
    text = print_function(f)
    assert "alloca" not in text
    for x in (-7, 0, 7):
        assert Interpreter(module).run(f, x & 0xFFFFFFFF) == abs(x)
