"""Paranoid inter-pass verification.

``verify_each`` re-checks the function a pass just ran on; paranoid mode
re-checks the whole module, catching the nastier failure — a pass that
corrupts a function *other* than the one it was handed — and naming the
offending pass in the diagnostic.
"""

import pytest

from repro.faultinject import FaultPlan, inject
from repro.ir import (
    I32,
    VOID,
    Function,
    FunctionType,
    IRBuilder,
    Module,
)
from repro.passes.pass_manager import (
    PassManager,
    PassVerificationError,
    paranoid_enabled,
    set_paranoid,
)


@pytest.fixture(autouse=True)
def _reset_paranoid_override():
    yield
    set_paranoid(None)


def _make_module():
    module = Module("m")
    for name in ("first", "second"):
        f = Function(name, FunctionType(VOID, (I32,)), ["a"])
        b = IRBuilder(f, f.add_block("entry"))
        b.add(f.args[0], f.args[0], "x")
        b.ret()
        module.add_function(f)
    return module


def _decapitate(function):
    """The corruption under test: silently drop a block's terminator."""
    term = function.entry.terminator
    function.entry.instructions.remove(term)
    term.parent = None
    term.drop_operands()


def _make_sabotager(module):
    """A buggy pass: reports no change, but breaks a *different* function."""

    def sabotage_other(function):
        # Corrupt "first" while running on "second": by then the pass loop
        # has already moved past the victim, so per-function verification
        # never looks at it again.
        victim = module.functions["first"]
        if function.name == "second" and victim.entry.terminator is not None:
            _decapitate(victim)
        return False

    return sabotage_other


def noop(function):
    return False


def test_verify_each_misses_cross_function_damage():
    # Per-function verification only re-checks the function the pass ran
    # on; the sabotaged sibling sails through undetected.
    module = _make_module()
    PassManager([_make_sabotager(module)], verify_each=True,
                paranoid=False).run(module)
    assert module.functions["first"].entry.terminator is None


def test_paranoid_names_the_offending_pass():
    module = _make_module()
    with pytest.raises(PassVerificationError) as excinfo:
        PassManager([_make_sabotager(module)], paranoid=True).run(module)
    diag = excinfo.value.diagnostic
    assert diag.pass_name == "sabotage_other"
    assert diag.function == "first"
    assert "sabotage_other" in str(excinfo.value)
    assert "terminator" in str(excinfo.value)


def test_injected_corruption_caught_by_verify_each():
    # The ``corrupt`` fault site damages the function the pass ran on, so
    # plain verify_each already catches it and names the pass.
    module = _make_module()
    with inject(FaultPlan(site="corrupt", match="noop:first", times=1)):
        with pytest.raises(PassVerificationError) as excinfo:
            PassManager([noop]).run(module)
    assert excinfo.value.diagnostic.pass_name == "noop"
    assert excinfo.value.diagnostic.function == "first"


def test_set_paranoid_upgrades_default_managers():
    set_paranoid(True)
    assert paranoid_enabled()
    module = _make_module()
    with pytest.raises(PassVerificationError):
        PassManager([_make_sabotager(module)]).run(module)
    set_paranoid(False)
    assert not paranoid_enabled()
    module = _make_module()
    PassManager([_make_sabotager(module)]).run(module)


def test_env_variable_enables_paranoia(monkeypatch):
    monkeypatch.setenv("REPRO_PARANOID", "1")
    assert paranoid_enabled()
    module = _make_module()
    with pytest.raises(PassVerificationError):
        PassManager([_make_sabotager(module)]).run(module)
    monkeypatch.setenv("REPRO_PARANOID", "0")
    assert not paranoid_enabled()


def test_env_paranoia_does_not_override_verify_optout(monkeypatch):
    monkeypatch.setenv("REPRO_PARANOID", "1")
    # A manager that explicitly opted out of verification keeps its
    # opt-out: the environment only upgrades managers that already verify.
    module = _make_module()
    PassManager([_make_sabotager(module)], verify_each=False).run(module)
    assert module.functions["first"].entry.terminator is None
    # ...but an explicit paranoid=True always wins.
    module = _make_module()
    with pytest.raises(PassVerificationError):
        PassManager([_make_sabotager(module)], verify_each=False,
                    paranoid=True).run(module)
