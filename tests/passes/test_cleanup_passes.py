"""Unit tests for CSE, LICM, narrowing, loop-simplify, and if-conversion."""

import numpy as np
import pytest

from repro.autovec.ifconvert import if_convert
from repro.frontend import compile_source
from repro.ir import print_function, verify_function
from repro.passes import (
    cse,
    constant_fold,
    dce,
    licm,
    loop_simplify,
    mem2reg,
    narrow_ints,
    simplify_cfg,
)
from repro.vm import Interpreter


def prep(src, name="f"):
    module = compile_source(src)
    func = module.functions[name]
    mem2reg(func)
    constant_fold(func)
    dce(func)
    return module, func


def count_op(func, opcode):
    return sum(1 for i in func.instructions() if i.opcode == opcode)


# -- CSE ---------------------------------------------------------------------------


def test_cse_unifies_repeated_geps_and_arith():
    module, f = prep("""
    i32 f(i32* a, i32 i) {
        return a[i] + a[i];
    }
    """)
    before = count_op(f, "gep")
    cse(f)
    dce(f)
    assert count_op(f, "gep") < before
    verify_function(f)
    interp = Interpreter(module)
    addr = interp.memory.alloc_array(np.array([5, 9], np.uint32))
    assert interp.run("f", addr, 1) == 18


def test_cse_respects_dominance():
    # The same expression in two sibling branches must NOT be unified.
    module, f = prep("""
    i32 f(i32 x, bool c) {
        i32 r;
        if (c) { r = x * 3; } else { r = x * 3 + 1; }
        return r;
    }
    """)
    muls = count_op(f, "mul")
    cse(f)
    assert count_op(f, "mul") == muls  # siblings: both kept
    assert Interpreter(module).run("f", 5, 1) == 15
    assert Interpreter(module).run("f", 5, 0) == 16


# -- LICM --------------------------------------------------------------------------


def test_licm_hoists_invariant_arithmetic():
    module, f = prep("""
    void f(i32* a, i32 k, i32 n) {
        for (i32 i = 0; i < n; i++) {
            a[i] = k * k + i;
        }
    }
    """)
    licm(f)
    verify_function(f)
    # the k*k multiply must now be outside the loop body
    from repro.ir import find_loops

    loops = find_loops(f)
    assert loops
    loop_muls = sum(
        1
        for block in loops[0].blocks
        for i in block.instructions
        if i.opcode == "mul" and i.operands[0].type.is_int
    )
    # only the possible index-scaling mul may remain inside
    interp = Interpreter(module)
    addr = interp.memory.alloc_array(np.zeros(8, np.uint32))
    interp.run("f", addr, 3, 8)
    got = interp.memory.read_array(addr, np.uint32, 8)
    np.testing.assert_array_equal(got, 9 + np.arange(8, dtype=np.uint32))


def test_licm_does_not_hoist_trapping_division():
    module, f = prep("""
    i32 f(i32 a, i32 b, i32 n) {
        i32 acc = 0;
        for (i32 i = 0; i < n; i++) {
            acc += a / b;   // must not execute if the loop runs 0 times
        }
        return acc;
    }
    """)
    licm(f)
    # division by zero with n == 0 must not trap
    assert Interpreter(module).run("f", 1, 0, 0) == 0


# -- narrowing ------------------------------------------------------------------------


def test_narrowing_collapses_promoted_u8_ops():
    module, f = prep("""
    void f(u8* a, u8* b, u8* c, u64 n) {
        for (u64 i = 0; i < n; i++) {
            c[i] = a[i] & b[i];   // promoted to i32 by C rules
        }
    }
    """)
    assert count_op(f, "zext") >= 2
    narrow_ints(f)
    constant_fold(f)
    dce(f)
    verify_function(f)
    # the & now happens at i8: no extensions survive
    and_widths = [i.type.bits for i in f.instructions() if i.opcode == "and"]
    assert 8 in and_widths


def test_narrowing_refuses_range_overflow():
    module, f = prep("""
    void f(u8* a, u8* b, u8* c, u64 n) {
        for (u64 i = 0; i < n; i++) {
            // a+b can be 510: the >> needs exact high bits, so the tree
            // must be evaluated at 16 bits, not 8.
            c[i] = (u8)(((i32)a[i] + (i32)b[i]) >> 1);
        }
    }
    """)
    narrow_ints(f)
    dce(f)
    verify_function(f)
    widths = {i.type.bits for i in f.instructions() if i.opcode == "lshr"}
    assert 8 not in widths
    interp = Interpreter(module)
    a = interp.memory.alloc_array(np.full(4, 255, np.uint8))
    b = interp.memory.alloc_array(np.full(4, 255, np.uint8))
    c = interp.memory.alloc_array(np.zeros(4, np.uint8))
    interp.run("f", a, b, c, 4)
    assert interp.memory.read_array(c, np.uint8, 4).tolist() == [255] * 4


# -- loop-simplify ----------------------------------------------------------------------


def test_loop_simplify_canonical_form():
    module, f = prep("""
    i32 f(i32 n) {
        i32 acc = 0;
        i32 i = 0;
        while (i < n) {
            i++;
            if (i == 3) { continue; }   // second latch edge
            acc += i;
        }
        return acc;
    }
    """)
    simplify_cfg(f)
    loop_simplify(f)
    verify_function(f)
    from repro.ir import find_loops

    for loop in find_loops(f):
        assert loop.preheader is not None
        assert len(loop.latches) == 1
        for exit_block in loop.exit_blocks():
            assert all(p in loop.blocks for p in exit_block.predecessors)
    assert Interpreter(module).run("f", 5) == 1 + 2 + 4 + 5


# -- if-conversion -------------------------------------------------------------------------


def test_if_convert_triangle_to_select():
    module, f = prep("""
    i32 f(i32 x) {
        i32 r = x;
        if (x < 0) { r = 0; }
        return r;
    }
    """)
    simplify_cfg(f)
    assert if_convert(f)
    verify_function(f)
    assert len(f.blocks) == 1
    assert count_op(f, "select") == 1
    assert Interpreter(module).run("f", -5 & 0xFFFFFFFF) == 0
    assert Interpreter(module).run("f", 7) == 7


def test_if_convert_refuses_unsafe_speculation():
    module, f = prep("""
    i32 f(i32* p, bool c) {
        i32 r = 0;
        if (c) { r = p[0]; }   // speculating the load could fault
        return r;
    }
    """)
    simplify_cfg(f)
    assert not if_convert(f)
    assert Interpreter(module).run("f", 0, 0) == 0  # NULL never dereferenced
