"""Differential SPMD kernel fuzzer (issue 4, satellite of partial fallback).

Each seed deterministically generates one random SPMD kernel (see
``repro.benchsuite.fuzzgen``) and compiles it three ways:

* **plain** — the normal Parsimony pipeline (fully vectorized);
* **partial** — with an injected single-shot ``vectorize_block`` fault,
  which engages region-granular scalar fallback when the failing block
  admits a valid region (and whole-function fallback otherwise);
* **whole** — with a ``vectorize`` fault, which always degrades the
  entire function to the scalar pipeline.

All three executions over the same seeded inputs must agree **bitwise**
on every output array.  ``N_THREADS`` is coprime to all gang sizes, so
the tail gang is exercised on every kernel.

Every third seed additionally pits a **gang-batched** build (forced
``REPRO_BATCH=2`` — auto selection would pick a batch too wide for 37
threads and route everything through the remainder loop) against an
unbatched build, comparing outputs *and* ``ExecStats`` bitwise: gang
batching is accounting-transparent by contract, so cycles, instruction
counts, and per-opcode tallies must not move.

Tier-1 runs ``REPRO_FUZZ_N`` seeds (default 200); CI's fuzz-smoke job and
local soak runs scale it up via the environment::

    REPRO_FUZZ_N=500 python -m pytest tests/fuzz -q
"""

import atexit
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro import diskcache, shard
from repro.benchsuite.fuzzgen import N_THREADS, generate_kernel, workload_arrays
from repro.driver import clear_compile_cache, compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.vm import Interpreter

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "200"))

#: Corpus-wide tally of how each degraded compile landed, so the suite can
#: assert the fuzzer actually exercises the region path (not just the
#: whole-function one) instead of silently fuzzing a dead feature.
_CORPUS = {"partial": 0, "whole": 0, "clean": 0}

#: Every Nth seed also runs the forced-batch differential below.
_BATCH_EVERY = 3

#: Tally of how those forced-batch compiles landed, so the suite can
#: assert the batching layer actually engages on the fuzz corpus.
_BATCH_CORPUS = {"batched": 0, "rejected": 0}

#: Every ~25th seed additionally runs the cross-process differential:
#: compile + persist in a *subprocess* (disk cache), rehydrate in the
#: parent, run sharded across worker processes, compare bitwise.
_XPROC_EVERY = 25

#: Tally of how the sharded launches landed (legality rejections are
#: fine; a corpus where sharding never engages fuzzes a dead layer).
_XPROC_CORPUS = {"sharded": 0, "rejected": 0}

_XPROC_DIR = None


def _xproc_cache_dir():
    global _XPROC_DIR
    if _XPROC_DIR is None:
        _XPROC_DIR = tempfile.mkdtemp(prefix="repro-fuzz-xproc-")
        atexit.register(shutil.rmtree, _XPROC_DIR, ignore_errors=True)
    return _XPROC_DIR


def _run(module, seed):
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    a = interp.memory.alloc_array(A)
    b = interp.memory.alloc_array(B)
    c = interp.memory.alloc_array(C)
    out = interp.memory.alloc_array(OUT)
    iout = interp.memory.alloc_array(IOUT)
    interp.run("kernel", a, b, c, out, iout, sv, si, N_THREADS)
    outputs = (
        interp.memory.read_array(out, np.float32, N_THREADS),
        interp.memory.read_array(iout, np.int32, N_THREADS),
    )
    return outputs, interp.stats


def _classify(module):
    for f in module.functions.values():
        if f.attrs.get("parsimony_partial_fallback"):
            return "partial"
    for f in module.functions.values():
        if f.attrs.get("parsimony_fallback"):
            return "whole"
    return "clean"


def _assert_same(got, want, context):
    np.testing.assert_array_equal(got[0], want[0], err_msg=f"{context}: OUT")
    np.testing.assert_array_equal(got[1], want[1], err_msg=f"{context}: IOUT")


@pytest.mark.parametrize("seed", range(FUZZ_N))
def test_differential_fuzz_kernel(seed):
    kernel = generate_kernel(seed)
    context = f"seed={seed} gang={kernel.gang_size}\n{kernel.source}"

    plain = compile_parsimony(kernel.source)
    plain_out, _ = _run(plain, seed)

    with inject(FaultPlan(site="vectorize")):
        whole = compile_parsimony(kernel.source)
    assert _classify(whole) == "whole", context
    _assert_same(_run(whole, seed)[0], plain_out, f"whole vs plain: {context}")

    # Fault the (seed%6)-th emitted block: depending on the kernel's shape
    # this lands on a valid region (partial fallback), the entry block
    # (whole-function fallback), or past the last emission (clean build) —
    # all three must still be bit-identical to the plain build.
    with inject(FaultPlan(site="vectorize_block", after=seed % 6, times=1)):
        degraded = compile_parsimony(kernel.source)
    _CORPUS[_classify(degraded)] += 1
    _assert_same(_run(degraded, seed)[0], plain_out,
                 f"degraded vs plain: {context}")

    if seed % _BATCH_EVERY == 0:
        _batched_differential(kernel, seed, plain_out, context)

    if seed % _XPROC_EVERY == 1:
        _cross_process_differential(kernel, seed, plain_out, context)


def _batched_differential(kernel, seed, plain_out, context):
    """Forced-batch build vs unbatched build: outputs and ExecStats."""
    saved = {k: os.environ.get(k) for k in ("REPRO_BATCH", "REPRO_NO_BATCH")}
    try:
        os.environ.pop("REPRO_BATCH", None)
        os.environ["REPRO_NO_BATCH"] = "1"
        reference = compile_parsimony(kernel.source)
        del os.environ["REPRO_NO_BATCH"]
        # B=2: small enough that batched bodies execute real trips at
        # every gang size (auto selection over 37 threads would not).
        os.environ["REPRO_BATCH"] = "2"
        batched = compile_parsimony(kernel.source)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    applied = bool(batched.attrs.get("batch_applied"))
    _BATCH_CORPUS["batched" if applied else "rejected"] += 1

    ref_out, ref_stats = _run(reference, seed)
    got_out, got_stats = _run(batched, seed)
    _assert_same(ref_out, plain_out, f"unbatched vs plain: {context}")
    _assert_same(got_out, ref_out, f"batched vs unbatched: {context}")
    assert got_stats.cycles == ref_stats.cycles, (
        f"batched cycles diverge: {context}")
    assert got_stats.instructions == ref_stats.instructions, (
        f"batched instruction count diverges: {context}")
    assert dict(got_stats.counts) == dict(ref_stats.counts), (
        f"batched per-opcode counts diverge: {context}")


def _run_sharded(module, seed, shards=3):
    """Like :func:`_run`, but through the supervised multi-process engine."""
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    addrs = [interp.memory.alloc_array(a) for a in (A, B, C, OUT, IOUT)]
    result = shard.run_sharded(
        module, "kernel", (*addrs, sv, si, N_THREADS),
        memory=interp.memory, shards=shards,
    )
    outputs = (
        interp.memory.read_array(addrs[3], np.float32, N_THREADS),
        interp.memory.read_array(addrs[4], np.int32, N_THREADS),
    )
    return outputs, result.stats, result.report


def _cross_process_differential(kernel, seed, plain_out, context):
    """Compile + persist in a subprocess, rehydrate from the disk cache in
    the parent, run sharded across worker processes: outputs and ExecStats
    must agree bitwise end-to-end."""
    cache_dir = _xproc_cache_dir()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_DISK_CACHE"] = "1"
    child = (
        "import sys\n"
        "from repro import diskcache\n"
        "from repro.driver import compile_parsimony\n"
        "compile_parsimony(sys.stdin.read())\n"
        "stats = diskcache.stats()\n"
        "assert stats['writes'] + stats['hits'] >= 1, stats\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", child], input=kernel.source.encode(),
        env=env, capture_output=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"child compile failed: {proc.stderr.decode()[-500:]}\n{context}"
    )

    saved_dir = os.environ.get("REPRO_CACHE_DIR")
    clear_compile_cache()  # force the parent through the disk layer
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    diskcache.set_enabled(True)
    diskcache.reset_stats()
    try:
        module = compile_parsimony(kernel.source)
        assert diskcache.stats()["hits"] >= 1, (diskcache.stats(), context)
    finally:
        diskcache.set_enabled(None)
        if saved_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_dir

    ref_out, ref_stats = _run(module, seed)
    _assert_same(ref_out, plain_out, f"rehydrated vs plain: {context}")
    got_out, got_stats, report = _run_sharded(module, seed)
    _XPROC_CORPUS["sharded" if report["mode"] == "sharded" else "rejected"] += 1
    _assert_same(got_out, ref_out, f"sharded vs in-process: {context}")
    assert got_stats.cycles == ref_stats.cycles, (
        f"sharded cycles diverge: {context}")
    assert got_stats.instructions == ref_stats.instructions, (
        f"sharded instruction count diverges: {context}")
    assert dict(got_stats.counts) == dict(ref_stats.counts), (
        f"sharded per-opcode counts diverge: {context}")


def test_zz_corpus_exercised_partial_fallback():
    """Runs after the matrix above (pytest preserves file order): the corpus
    must have engaged the region-granular path, not just whole-function."""
    assert sum(_CORPUS.values()) == FUZZ_N
    assert _CORPUS["partial"] > 0, _CORPUS


def test_zz_corpus_exercised_batching():
    """The forced-batch differential must have run on every Nth seed and
    actually widened kernels (legality rejections are fine, but a corpus
    where batching never applies means the hook fuzzes a dead layer)."""
    assert sum(_BATCH_CORPUS.values()) == len(range(0, FUZZ_N, _BATCH_EVERY))
    assert _BATCH_CORPUS["batched"] > 0, _BATCH_CORPUS


def test_zz_corpus_exercised_cross_process_sharding():
    """The cross-process differential must have run on every ~25th seed
    and actually sharded kernels across worker processes."""
    expected = len([s for s in range(FUZZ_N) if s % _XPROC_EVERY == 1])
    if expected == 0:
        pytest.skip("FUZZ_N too small for the cross-process cadence")
    assert sum(_XPROC_CORPUS.values()) == expected
    assert _XPROC_CORPUS["sharded"] > 0, _XPROC_CORPUS
