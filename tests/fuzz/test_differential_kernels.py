"""Differential SPMD kernel fuzzer (issue 4, satellite of partial fallback).

Each seed deterministically generates one random SPMD kernel (see
``repro.benchsuite.fuzzgen``) and compiles it three ways:

* **plain** — the normal Parsimony pipeline (fully vectorized);
* **partial** — with an injected single-shot ``vectorize_block`` fault,
  which engages region-granular scalar fallback when the failing block
  admits a valid region (and whole-function fallback otherwise);
* **whole** — with a ``vectorize`` fault, which always degrades the
  entire function to the scalar pipeline.

All three executions over the same seeded inputs must agree **bitwise**
on every output array.  ``N_THREADS`` is coprime to all gang sizes, so
the tail gang is exercised on every kernel.

Every third seed additionally pits a **gang-batched** build (forced
``REPRO_BATCH=2`` — auto selection would pick a batch too wide for 37
threads and route everything through the remainder loop) against an
unbatched build, comparing outputs *and* ``ExecStats`` bitwise: gang
batching is accounting-transparent by contract, so cycles, instruction
counts, and per-opcode tallies must not move.

Tier-1 runs ``REPRO_FUZZ_N`` seeds (default 200); CI's fuzz-smoke job and
local soak runs scale it up via the environment::

    REPRO_FUZZ_N=500 python -m pytest tests/fuzz -q
"""

import os

import numpy as np
import pytest

from repro.benchsuite.fuzzgen import N_THREADS, generate_kernel, workload_arrays
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.vm import Interpreter

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "200"))

#: Corpus-wide tally of how each degraded compile landed, so the suite can
#: assert the fuzzer actually exercises the region path (not just the
#: whole-function one) instead of silently fuzzing a dead feature.
_CORPUS = {"partial": 0, "whole": 0, "clean": 0}

#: Every Nth seed also runs the forced-batch differential below.
_BATCH_EVERY = 3

#: Tally of how those forced-batch compiles landed, so the suite can
#: assert the batching layer actually engages on the fuzz corpus.
_BATCH_CORPUS = {"batched": 0, "rejected": 0}


def _run(module, seed):
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    a = interp.memory.alloc_array(A)
    b = interp.memory.alloc_array(B)
    c = interp.memory.alloc_array(C)
    out = interp.memory.alloc_array(OUT)
    iout = interp.memory.alloc_array(IOUT)
    interp.run("kernel", a, b, c, out, iout, sv, si, N_THREADS)
    outputs = (
        interp.memory.read_array(out, np.float32, N_THREADS),
        interp.memory.read_array(iout, np.int32, N_THREADS),
    )
    return outputs, interp.stats


def _classify(module):
    for f in module.functions.values():
        if f.attrs.get("parsimony_partial_fallback"):
            return "partial"
    for f in module.functions.values():
        if f.attrs.get("parsimony_fallback"):
            return "whole"
    return "clean"


def _assert_same(got, want, context):
    np.testing.assert_array_equal(got[0], want[0], err_msg=f"{context}: OUT")
    np.testing.assert_array_equal(got[1], want[1], err_msg=f"{context}: IOUT")


@pytest.mark.parametrize("seed", range(FUZZ_N))
def test_differential_fuzz_kernel(seed):
    kernel = generate_kernel(seed)
    context = f"seed={seed} gang={kernel.gang_size}\n{kernel.source}"

    plain = compile_parsimony(kernel.source)
    plain_out, _ = _run(plain, seed)

    with inject(FaultPlan(site="vectorize")):
        whole = compile_parsimony(kernel.source)
    assert _classify(whole) == "whole", context
    _assert_same(_run(whole, seed)[0], plain_out, f"whole vs plain: {context}")

    # Fault the (seed%6)-th emitted block: depending on the kernel's shape
    # this lands on a valid region (partial fallback), the entry block
    # (whole-function fallback), or past the last emission (clean build) —
    # all three must still be bit-identical to the plain build.
    with inject(FaultPlan(site="vectorize_block", after=seed % 6, times=1)):
        degraded = compile_parsimony(kernel.source)
    _CORPUS[_classify(degraded)] += 1
    _assert_same(_run(degraded, seed)[0], plain_out,
                 f"degraded vs plain: {context}")

    if seed % _BATCH_EVERY == 0:
        _batched_differential(kernel, seed, plain_out, context)


def _batched_differential(kernel, seed, plain_out, context):
    """Forced-batch build vs unbatched build: outputs and ExecStats."""
    saved = {k: os.environ.get(k) for k in ("REPRO_BATCH", "REPRO_NO_BATCH")}
    try:
        os.environ.pop("REPRO_BATCH", None)
        os.environ["REPRO_NO_BATCH"] = "1"
        reference = compile_parsimony(kernel.source)
        del os.environ["REPRO_NO_BATCH"]
        # B=2: small enough that batched bodies execute real trips at
        # every gang size (auto selection over 37 threads would not).
        os.environ["REPRO_BATCH"] = "2"
        batched = compile_parsimony(kernel.source)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    applied = bool(batched.attrs.get("batch_applied"))
    _BATCH_CORPUS["batched" if applied else "rejected"] += 1

    ref_out, ref_stats = _run(reference, seed)
    got_out, got_stats = _run(batched, seed)
    _assert_same(ref_out, plain_out, f"unbatched vs plain: {context}")
    _assert_same(got_out, ref_out, f"batched vs unbatched: {context}")
    assert got_stats.cycles == ref_stats.cycles, (
        f"batched cycles diverge: {context}")
    assert got_stats.instructions == ref_stats.instructions, (
        f"batched instruction count diverges: {context}")
    assert dict(got_stats.counts) == dict(ref_stats.counts), (
        f"batched per-opcode counts diverge: {context}")


def test_zz_corpus_exercised_partial_fallback():
    """Runs after the matrix above (pytest preserves file order): the corpus
    must have engaged the region-granular path, not just whole-function."""
    assert sum(_CORPUS.values()) == FUZZ_N
    assert _CORPUS["partial"] > 0, _CORPUS


def test_zz_corpus_exercised_batching():
    """The forced-batch differential must have run on every Nth seed and
    actually widened kernels (legality rejections are fine, but a corpus
    where batching never applies means the hook fuzzes a dead layer)."""
    assert sum(_BATCH_CORPUS.values()) == len(range(0, FUZZ_N, _BATCH_EVERY))
    assert _BATCH_CORPUS["batched"] > 0, _BATCH_CORPUS
