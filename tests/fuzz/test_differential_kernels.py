"""Differential SPMD kernel fuzzer (issue 4, satellite of partial fallback).

Each seed deterministically generates one random SPMD kernel (see
``repro.benchsuite.fuzzgen``) and compiles it three ways:

* **plain** — the normal Parsimony pipeline (fully vectorized);
* **partial** — with an injected single-shot ``vectorize_block`` fault,
  which engages region-granular scalar fallback when the failing block
  admits a valid region (and whole-function fallback otherwise);
* **whole** — with a ``vectorize`` fault, which always degrades the
  entire function to the scalar pipeline.

All three executions over the same seeded inputs must agree **bitwise**
on every output array.  ``N_THREADS`` is coprime to all gang sizes, so
the tail gang is exercised on every kernel.

Tier-1 runs ``REPRO_FUZZ_N`` seeds (default 200); CI's fuzz-smoke job and
local soak runs scale it up via the environment::

    REPRO_FUZZ_N=500 python -m pytest tests/fuzz -q
"""

import os

import numpy as np
import pytest

from repro.benchsuite.fuzzgen import N_THREADS, generate_kernel, workload_arrays
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.vm import Interpreter

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "200"))

#: Corpus-wide tally of how each degraded compile landed, so the suite can
#: assert the fuzzer actually exercises the region path (not just the
#: whole-function one) instead of silently fuzzing a dead feature.
_CORPUS = {"partial": 0, "whole": 0, "clean": 0}


def _run(module, seed):
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    a = interp.memory.alloc_array(A)
    b = interp.memory.alloc_array(B)
    c = interp.memory.alloc_array(C)
    out = interp.memory.alloc_array(OUT)
    iout = interp.memory.alloc_array(IOUT)
    interp.run("kernel", a, b, c, out, iout, sv, si, N_THREADS)
    return (
        interp.memory.read_array(out, np.float32, N_THREADS),
        interp.memory.read_array(iout, np.int32, N_THREADS),
    )


def _classify(module):
    for f in module.functions.values():
        if f.attrs.get("parsimony_partial_fallback"):
            return "partial"
    for f in module.functions.values():
        if f.attrs.get("parsimony_fallback"):
            return "whole"
    return "clean"


def _assert_same(got, want, context):
    np.testing.assert_array_equal(got[0], want[0], err_msg=f"{context}: OUT")
    np.testing.assert_array_equal(got[1], want[1], err_msg=f"{context}: IOUT")


@pytest.mark.parametrize("seed", range(FUZZ_N))
def test_differential_fuzz_kernel(seed):
    kernel = generate_kernel(seed)
    context = f"seed={seed} gang={kernel.gang_size}\n{kernel.source}"

    plain = compile_parsimony(kernel.source)
    plain_out = _run(plain, seed)

    with inject(FaultPlan(site="vectorize")):
        whole = compile_parsimony(kernel.source)
    assert _classify(whole) == "whole", context
    _assert_same(_run(whole, seed), plain_out, f"whole vs plain: {context}")

    # Fault the (seed%6)-th emitted block: depending on the kernel's shape
    # this lands on a valid region (partial fallback), the entry block
    # (whole-function fallback), or past the last emission (clean build) —
    # all three must still be bit-identical to the plain build.
    with inject(FaultPlan(site="vectorize_block", after=seed % 6, times=1)):
        degraded = compile_parsimony(kernel.source)
    _CORPUS[_classify(degraded)] += 1
    _assert_same(_run(degraded, seed), plain_out, f"degraded vs plain: {context}")


def test_zz_corpus_exercised_partial_fallback():
    """Runs after the matrix above (pytest preserves file order): the corpus
    must have engaged the region-granular path, not just whole-function."""
    assert sum(_CORPUS.values()) == FUZZ_N
    assert _CORPUS["partial"] > 0, _CORPUS
