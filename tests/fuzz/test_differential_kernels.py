"""Differential SPMD kernel fuzzer (issue 4, satellite of partial fallback).

Each seed deterministically generates one random SPMD kernel (see
``repro.benchsuite.fuzzgen``) and compiles it three ways:

* **plain** — the normal Parsimony pipeline (fully vectorized);
* **partial** — with an injected single-shot ``vectorize_block`` fault,
  which engages region-granular scalar fallback when the failing block
  admits a valid region (and whole-function fallback otherwise);
* **whole** — with a ``vectorize`` fault, which always degrades the
  entire function to the scalar pipeline.

All three executions over the same seeded inputs must agree **bitwise**
on every output array.  ``N_THREADS`` is coprime to all gang sizes, so
the tail gang is exercised on every kernel.

Kernels containing a cross-lane intrinsic — a gang reduction
(``psim_reduce_*_sync``, possibly repeated inside a uniform-trip loop)
or a lane exchange (``psim_shuffle_sync`` butterflies/rotations) — have
no scalar execution strategy — cross-lane communication cannot be
scalarized — so for those the degraded legs must raise ``CompileError``
instead of falling back (tallied as the ``sync`` corpus bucket); the
vector-engine differentials below still apply to them.

Every fifth seed additionally runs the plain module through the
**whole-kernel codegen** engine (``Interpreter(codegen=True)``, see
``repro.backend.codegen``) and compares outputs *and* ``ExecStats``
bitwise against the decoded engine: codegen is accounting-transparent by
contract.  Bailouts are legal (the kernel silently runs decoded) but
tallied, so a corpus where codegen never compiles fails the suite.

Every third seed additionally pits a **gang-batched** build (forced
``REPRO_BATCH=2`` — auto selection would pick a batch too wide for 37
threads and route everything through the remainder loop) against an
unbatched build, comparing outputs *and* ``ExecStats`` bitwise: gang
batching is accounting-transparent by contract, so cycles, instruction
counts, and per-opcode tallies must not move.

Tier-1 runs ``REPRO_FUZZ_N`` seeds (default 200); CI's fuzz-smoke job and
local soak runs scale it up via the environment::

    REPRO_FUZZ_N=500 python -m pytest tests/fuzz -q
"""

import atexit
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro import diskcache, shard
from repro.benchsuite.fuzzgen import N_THREADS, generate_kernel, workload_arrays
from repro.diagnostics import CompileError
from repro.driver import clear_compile_cache, compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.vm import Interpreter

FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "200"))

#: Corpus-wide tally of how each degraded compile landed, so the suite can
#: assert the fuzzer actually exercises the region path (not just the
#: whole-function one) instead of silently fuzzing a dead feature.
#: ``sync`` counts reduction kernels whose degraded legs correctly raised
#: (no scalar strategy exists for cross-lane communication).
_CORPUS = {"partial": 0, "whole": 0, "clean": 0, "sync": 0}

#: Every Nth seed also runs the forced-batch differential below.
_BATCH_EVERY = 3

#: Tally of how those forced-batch compiles landed, so the suite can
#: assert the batching layer actually engages on the fuzz corpus.
_BATCH_CORPUS = {"batched": 0, "rejected": 0}

#: Every Nth seed also runs the forced-codegen differential below.
_CODEGEN_EVERY = 5

#: Tally of how the codegen compiles landed, so the suite can assert the
#: whole-kernel engine actually compiles fuzz kernels (bailouts are legal
#: but a corpus that only bails fuzzes a dead engine).  ``shuffle``
#: counts codegen-leg kernels carrying cross-lane exchanges, so the leg
#: provably exercises them.
_CODEGEN_CORPUS = {"compiled": 0, "bailed": 0, "shuffle": 0}

#: Every ~25th seed additionally runs the cross-process differential:
#: compile + persist in a *subprocess* (disk cache), rehydrate in the
#: parent, run sharded across worker processes, compare bitwise.
_XPROC_EVERY = 25

#: Tally of how the sharded launches landed (legality rejections are
#: fine; a corpus where sharding never engages fuzzes a dead layer).
_XPROC_CORPUS = {"sharded": 0, "rejected": 0}

_XPROC_DIR = None


def _xproc_cache_dir():
    global _XPROC_DIR
    if _XPROC_DIR is None:
        _XPROC_DIR = tempfile.mkdtemp(prefix="repro-fuzz-xproc-")
        atexit.register(shutil.rmtree, _XPROC_DIR, ignore_errors=True)
    return _XPROC_DIR


def _run(module, seed):
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    a = interp.memory.alloc_array(A)
    b = interp.memory.alloc_array(B)
    c = interp.memory.alloc_array(C)
    out = interp.memory.alloc_array(OUT)
    iout = interp.memory.alloc_array(IOUT)
    interp.run("kernel", a, b, c, out, iout, sv, si, N_THREADS)
    outputs = (
        interp.memory.read_array(out, np.float32, N_THREADS),
        interp.memory.read_array(iout, np.int32, N_THREADS),
    )
    return outputs, interp.stats


def _classify(module):
    for f in module.functions.values():
        if f.attrs.get("parsimony_partial_fallback"):
            return "partial"
    for f in module.functions.values():
        if f.attrs.get("parsimony_fallback"):
            return "whole"
    return "clean"


def _assert_same(got, want, context):
    np.testing.assert_array_equal(got[0], want[0], err_msg=f"{context}: OUT")
    np.testing.assert_array_equal(got[1], want[1], err_msg=f"{context}: IOUT")


@pytest.mark.parametrize("seed", range(FUZZ_N))
def test_differential_fuzz_kernel(seed):
    kernel = generate_kernel(seed)
    context = f"seed={seed} gang={kernel.gang_size}\n{kernel.source}"

    plain = compile_parsimony(kernel.source)
    plain_out, plain_stats = _run(plain, seed)

    if kernel.has_reduction or kernel.has_shuffle:
        # Cross-lane communication (reductions, lane exchanges) has no
        # scalar strategy: the degraded legs must refuse loudly
        # (CompileError), never fall back to a semantically different
        # kernel.
        with pytest.raises(CompileError):
            with inject(FaultPlan(site="vectorize")):
                compile_parsimony(kernel.source)
        try:
            with inject(FaultPlan(site="vectorize_block", after=seed % 6,
                                  times=1)):
                degraded = compile_parsimony(kernel.source)
        except CompileError:
            # The faulted region contained the sync point: correctly
            # refused rather than scalarized.
            pass
        else:
            # The fault missed every emitted block (clean) or landed on a
            # sync-free region (partial, with the reduction kept in vector
            # code) — either way the build must agree with plain.  A
            # whole-function fallback here would be a bug: it cannot
            # represent the reduction.
            assert _classify(degraded) in ("clean", "partial"), context
            _assert_same(_run(degraded, seed)[0], plain_out,
                         f"degraded-sync vs plain: {context}")
        _CORPUS["sync"] += 1
    else:
        with inject(FaultPlan(site="vectorize")):
            whole = compile_parsimony(kernel.source)
        assert _classify(whole) == "whole", context
        _assert_same(_run(whole, seed)[0], plain_out,
                     f"whole vs plain: {context}")

        # Fault the (seed%6)-th emitted block: depending on the kernel's
        # shape this lands on a valid region (partial fallback), the entry
        # block (whole-function fallback), or past the last emission
        # (clean build) — all three must still be bit-identical to the
        # plain build.
        with inject(FaultPlan(site="vectorize_block", after=seed % 6,
                              times=1)):
            degraded = compile_parsimony(kernel.source)
        _CORPUS[_classify(degraded)] += 1
        _assert_same(_run(degraded, seed)[0], plain_out,
                     f"degraded vs plain: {context}")

    if seed % _BATCH_EVERY == 0:
        _batched_differential(kernel, seed, plain_out, context)

    if seed % _CODEGEN_EVERY == 2:
        _codegen_differential(kernel, plain, seed, plain_out, plain_stats,
                              context)

    if seed % _XPROC_EVERY == 1:
        _cross_process_differential(kernel, seed, plain_out, context)


def _batched_differential(kernel, seed, plain_out, context):
    """Forced-batch build vs unbatched build: outputs and ExecStats."""
    saved = {k: os.environ.get(k) for k in ("REPRO_BATCH", "REPRO_NO_BATCH")}
    try:
        os.environ.pop("REPRO_BATCH", None)
        os.environ["REPRO_NO_BATCH"] = "1"
        reference = compile_parsimony(kernel.source)
        del os.environ["REPRO_NO_BATCH"]
        # B=2: small enough that batched bodies execute real trips at
        # every gang size (auto selection over 37 threads would not).
        os.environ["REPRO_BATCH"] = "2"
        batched = compile_parsimony(kernel.source)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    applied = bool(batched.attrs.get("batch_applied"))
    _BATCH_CORPUS["batched" if applied else "rejected"] += 1

    ref_out, ref_stats = _run(reference, seed)
    got_out, got_stats = _run(batched, seed)
    _assert_same(ref_out, plain_out, f"unbatched vs plain: {context}")
    _assert_same(got_out, ref_out, f"batched vs unbatched: {context}")
    assert got_stats.cycles == ref_stats.cycles, (
        f"batched cycles diverge: {context}")
    assert got_stats.instructions == ref_stats.instructions, (
        f"batched instruction count diverges: {context}")
    assert dict(got_stats.counts) == dict(ref_stats.counts), (
        f"batched per-opcode counts diverge: {context}")


def _codegen_differential(kernel, plain, seed, plain_out, plain_stats,
                          context):
    """Whole-kernel codegen engine vs decoded engine on the same module:
    outputs and ExecStats must agree bitwise (accounting transparency is
    the codegen contract — block-merged charges sum to the exact decoded
    totals because every per-instruction cost is a dyadic rational)."""
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(plain, codegen=True)
    addrs = [interp.memory.alloc_array(a) for a in (A, B, C, OUT, IOUT)]
    interp.run("kernel", *addrs, sv, si, N_THREADS)
    got_out = (
        interp.memory.read_array(addrs[3], np.float32, N_THREADS),
        interp.memory.read_array(addrs[4], np.int32, N_THREADS),
    )
    report = interp.codegen_report()
    _CODEGEN_CORPUS["bailed" if report["bailouts"] else "compiled"] += 1
    if kernel.has_shuffle:
        _CODEGEN_CORPUS["shuffle"] += 1
    _assert_same(got_out, plain_out, f"codegen vs decoded: {context}")
    got_stats = interp.stats
    assert got_stats.cycles == plain_stats.cycles, (
        f"codegen cycles diverge: {context}")
    assert got_stats.instructions == plain_stats.instructions, (
        f"codegen instruction count diverges: {context}")
    assert dict(got_stats.counts) == dict(plain_stats.counts), (
        f"codegen per-opcode counts diverge: {context}")


def _run_sharded(module, seed, shards=3):
    """Like :func:`_run`, but through the supervised multi-process engine."""
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    addrs = [interp.memory.alloc_array(a) for a in (A, B, C, OUT, IOUT)]
    result = shard.run_sharded(
        module, "kernel", (*addrs, sv, si, N_THREADS),
        memory=interp.memory, shards=shards,
    )
    outputs = (
        interp.memory.read_array(addrs[3], np.float32, N_THREADS),
        interp.memory.read_array(addrs[4], np.int32, N_THREADS),
    )
    return outputs, result.stats, result.report


def _cross_process_differential(kernel, seed, plain_out, context):
    """Compile + persist in a subprocess, rehydrate from the disk cache in
    the parent, run sharded across worker processes: outputs and ExecStats
    must agree bitwise end-to-end."""
    cache_dir = _xproc_cache_dir()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_DISK_CACHE"] = "1"
    child = (
        "import sys\n"
        "from repro import diskcache\n"
        "from repro.driver import compile_parsimony\n"
        "compile_parsimony(sys.stdin.read())\n"
        "stats = diskcache.stats()\n"
        "assert stats['writes'] + stats['hits'] >= 1, stats\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", child], input=kernel.source.encode(),
        env=env, capture_output=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"child compile failed: {proc.stderr.decode()[-500:]}\n{context}"
    )

    saved_dir = os.environ.get("REPRO_CACHE_DIR")
    clear_compile_cache()  # force the parent through the disk layer
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    diskcache.set_enabled(True)
    diskcache.reset_stats()
    try:
        module = compile_parsimony(kernel.source)
        assert diskcache.stats()["hits"] >= 1, (diskcache.stats(), context)
    finally:
        diskcache.set_enabled(None)
        if saved_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_dir

    ref_out, ref_stats = _run(module, seed)
    _assert_same(ref_out, plain_out, f"rehydrated vs plain: {context}")
    got_out, got_stats, report = _run_sharded(module, seed)
    _XPROC_CORPUS["sharded" if report["mode"] == "sharded" else "rejected"] += 1
    _assert_same(got_out, ref_out, f"sharded vs in-process: {context}")
    assert got_stats.cycles == ref_stats.cycles, (
        f"sharded cycles diverge: {context}")
    assert got_stats.instructions == ref_stats.instructions, (
        f"sharded instruction count diverges: {context}")
    assert dict(got_stats.counts) == dict(ref_stats.counts), (
        f"sharded per-opcode counts diverge: {context}")


def test_zz_corpus_exercised_partial_fallback():
    """Runs after the matrix above (pytest preserves file order): the corpus
    must have engaged the region-granular path, not just whole-function,
    and must have generated reduction kernels (the ``sync`` bucket)."""
    assert sum(_CORPUS.values()) == FUZZ_N
    assert _CORPUS["partial"] > 0, _CORPUS
    assert _CORPUS["sync"] > 0, _CORPUS


def test_zz_corpus_exercised_batching():
    """The forced-batch differential must have run on every Nth seed and
    actually widened kernels (legality rejections are fine, but a corpus
    where batching never applies means the hook fuzzes a dead layer)."""
    assert sum(_BATCH_CORPUS.values()) == len(range(0, FUZZ_N, _BATCH_EVERY))
    assert _BATCH_CORPUS["batched"] > 0, _BATCH_CORPUS


def test_zz_corpus_exercised_codegen():
    """The forced-codegen differential must have run on every Nth seed and
    actually compiled kernels (bailouts are legal, but a corpus where the
    whole-kernel engine never engages fuzzes a dead layer)."""
    expected = len([s for s in range(FUZZ_N) if s % _CODEGEN_EVERY == 2])
    if expected == 0:
        pytest.skip("FUZZ_N too small for the codegen cadence")
    assert _CODEGEN_CORPUS["compiled"] + _CODEGEN_CORPUS["bailed"] == expected
    assert _CODEGEN_CORPUS["compiled"] > 0, _CODEGEN_CORPUS
    if expected >= 20:
        # Cross-lane exchange kernels must flow through the codegen leg
        # (p≈0.3 per seed: 20 draws miss with probability < 0.1%).
        assert _CODEGEN_CORPUS["shuffle"] > 0, _CODEGEN_CORPUS


def test_zz_corpus_exercised_cross_process_sharding():
    """The cross-process differential must have run on every ~25th seed
    and actually sharded kernels across worker processes."""
    expected = len([s for s in range(FUZZ_N) if s % _XPROC_EVERY == 1])
    if expected == 0:
        pytest.skip("FUZZ_N too small for the cross-process cadence")
    assert sum(_XPROC_CORPUS.values()) == expected
    assert _XPROC_CORPUS["sharded"] > 0, _XPROC_CORPUS
