"""Auto-vectorizer tests: success cases, legality rejections, semantics."""

import numpy as np
import pytest

from repro.autovec import AutoVecConfig, auto_vectorize_module
from repro.backend import AVX512
from repro.driver import compile_autovec, compile_scalar, execute
from repro.vm import Interpreter


def build(source, fast_math=False):
    return compile_autovec(source, AVX512, fast_math=fast_math)


def run_with_arrays(module, fn, arrays, scalars=()):
    interp = Interpreter(module)
    addrs = [interp.memory.alloc_array(a) for a in arrays]
    result = interp.run(fn, *addrs, *scalars)
    outs = [
        interp.memory.read_array(addr, a.dtype, a.size)
        for addr, a in zip(addrs, arrays)
    ]
    return result, outs, interp


SAXPY = """
void saxpy(f32* x, f32* y, f32 a, i32 n) {
    for (i32 i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
"""


def test_saxpy_vectorizes_and_matches_scalar():
    module = build(SAXPY)
    x = np.linspace(0, 1, 100, dtype=np.float32)
    y0 = np.linspace(1, 2, 100, dtype=np.float32)
    _, (x_out, y_out), interp = run_with_arrays(module, "saxpy", [x, y0.copy()], (2.0, 100))
    np.testing.assert_array_equal(y_out, np.float32(2.0) * x + y0)
    assert interp.stats.count("vload") > 0  # really vectorized
    # 100 elements at VF 16 -> 6 vector iterations + 4 scalar remainder
    assert interp.stats.counts.get("vstore", 0) == 6


def test_remainder_loop_handles_small_n():
    module = build(SAXPY)
    x = np.ones(3, dtype=np.float32)
    y = np.zeros(3, dtype=np.float32)
    _, (_, y_out), interp = run_with_arrays(module, "saxpy", [x, y], (5.0, 3))
    np.testing.assert_array_equal(y_out, np.full(3, 5.0, dtype=np.float32))
    assert interp.stats.count("vload") == 0  # too short: scalar path only


def test_integer_sum_reduction():
    src = """
    u32 total(u32* a, i32 n) {
        u32 acc = 0;
        for (i32 i = 0; i < n; i++) { acc += a[i]; }
        return acc;
    }
    """
    module = build(src)
    a = np.arange(77, dtype=np.uint32)
    result, _, interp = run_with_arrays(module, "total", [a], (77,))
    assert result == a.sum()
    assert interp.stats.count("reduce_add") == 1


def test_float_reduction_requires_fast_math():
    src = """
    f32 total(f32* a, i32 n) {
        f32 acc = 0.0f;
        for (i32 i = 0; i < n; i++) { acc += a[i]; }
        return acc;
    }
    """
    module = build(src)  # fast_math=False
    a = np.ones(64, dtype=np.float32)
    _, _, interp = run_with_arrays(module, "total", [a], (64,))
    assert interp.stats.count("vload") == 0  # refused without fast-math

    module = build(src, fast_math=True)
    result, _, interp = run_with_arrays(module, "total", [a], (64,))
    assert result == 64.0
    assert interp.stats.count("vload") > 0


def test_loop_carried_dependence_rejected():
    """Listing 1's adjacent-copy: a[i+1] = a[i] must NOT vectorize."""
    src = """
    void shift(u32* a, i32 n) {
        for (i32 i = 0; i < n; i++) {
            a[i + 1] = a[i];
        }
    }
    """
    module = build(src)
    a = np.arange(40, dtype=np.uint32)
    _, (a_out,), interp = run_with_arrays(module, "shift", [a], (39,))
    # serial semantics preserved: everything becomes a[0]
    np.testing.assert_array_equal(a_out, np.zeros(40, dtype=np.uint32))
    assert interp.stats.count("vload") == 0


def test_distance_beyond_vf_is_allowed():
    src = """
    void farshift(u32* a, i32 n) {
        for (i32 i = 0; i < n; i++) {
            a[i + 64] = a[i] + 1;
        }
    }
    """
    module = build(src)  # VF=16 < distance 64: safe
    a = np.zeros(128, dtype=np.uint32)
    a[:64] = np.arange(64)
    _, (a_out,), interp = run_with_arrays(module, "farshift", [a], (64,))
    np.testing.assert_array_equal(a_out[64:], np.arange(64, dtype=np.uint32) + 1)
    assert interp.stats.count("vload") > 0


def test_if_conversion_enables_vectorization():
    src = """
    void relu(f32* x, f32* y, i32 n) {
        for (i32 i = 0; i < n; i++) {
            f32 v = x[i];
            if (v < 0.0f) { y[i] = 0.0f; } else { y[i] = v; }
        }
    }
    """
    module = build(src)
    x = np.linspace(-1, 1, 48, dtype=np.float32)
    y = np.zeros(48, dtype=np.float32)
    _, (_, y_out), interp = run_with_arrays(module, "relu", [x, y], (48,))
    np.testing.assert_array_equal(y_out, np.maximum(x, 0))
    assert interp.stats.count("vload") > 0


def test_indirect_access_rejected():
    src = """
    void hist(u32* idx, u32* out, i32 n) {
        for (i32 i = 0; i < n; i++) {
            out[idx[i]] = out[idx[i]] + 1;
        }
    }
    """
    module = build(src)
    idx = np.zeros(32, dtype=np.uint32)
    out = np.zeros(4, dtype=np.uint32)
    _, (_, out_v), interp = run_with_arrays(module, "hist", [idx, out], (32,))
    assert out_v[0] == 32  # serial histogram semantics kept
    assert interp.stats.count("gather", "scatter", "vload") == 0


def test_strided_interleaved_load():
    src = """
    void deinterleave(u32* src, u32* dst, i32 n) {
        for (i32 i = 0; i < n; i++) {
            dst[i] = src[2 * i];
        }
    }
    """
    module = build(src)
    src_a = np.arange(96, dtype=np.uint32)
    dst = np.zeros(48, dtype=np.uint32)
    _, (_, dst_out), interp = run_with_arrays(module, "deinterleave", [src_a, dst], (48,))
    np.testing.assert_array_equal(dst_out, src_a[::2])
    assert interp.stats.count("vload") > 0
    assert interp.stats.count("gather") == 0


def test_call_in_loop_rejected():
    # A self-recursive helper cannot be inlined away, so the call survives
    # into the loop body and vectorization must refuse it.
    src = """
    i32 helper(i32 x) {
        if (x <= 0) { return 0; }
        return helper(x - 1) + 1;
    }
    void f(i32* a, i32 n) {
        for (i32 i = 0; i < n; i++) { a[i] = helper(a[i]) + 1; }
    }
    """
    module = build(src)
    a = np.zeros(32, dtype=np.int32)
    _, (a_out,), interp = run_with_arrays(module, "f", [a.view(np.uint32)], (32,))
    np.testing.assert_array_equal(a_out, np.ones(32, dtype=np.uint32))
    assert interp.stats.count("vload") == 0


def test_math_call_blocks_vectorization_without_veclib():
    """Without -fveclib, a libm call in the body blocks vectorization (the
    LLVM default); with a vector math library it vectorizes."""
    src = """
    void vexp(f32* x, f32* y, i32 n) {
        for (i32 i = 0; i < n; i++) { y[i] = exp(x[i]); }
    }
    """
    module = build(src)  # default: no vector math library
    x = np.linspace(0, 1, 32, dtype=np.float32)
    y = np.zeros(32, dtype=np.float32)
    _, (_, y_out), interp = run_with_arrays(module, "vexp", [x, y], (32,))
    np.testing.assert_allclose(y_out, np.exp(x), rtol=1e-6)
    assert interp.stats.count("vload") == 0

    from repro.autovec import AutoVecConfig, auto_vectorize_module
    from repro.driver import compile_scalar
    from repro.passes import standard_pipeline

    module = compile_scalar(src)
    auto_vectorize_module(module, AVX512, AutoVecConfig(vector_math=True))
    standard_pipeline().run(module)
    _, (_, y_out), interp = run_with_arrays(module, "vexp", [x, y], (32,))
    np.testing.assert_allclose(y_out, np.exp(x), rtol=1e-6)
    assert any(k.startswith("ext:ml.sleef.exp") for k in interp.stats.counts)


def test_autovec_speedup_on_streaming_kernel():
    """The whole point: vector cycles well below scalar cycles."""
    x = np.linspace(0, 1, 512, dtype=np.float32)
    y = np.ones(512, dtype=np.float32)

    def measure(module):
        interp = Interpreter(module)
        ax = interp.memory.alloc_array(x)
        ay = interp.memory.alloc_array(y)
        interp.run("saxpy", ax, ay, 2.0, 512)
        return interp.stats.cycles

    scalar_cycles = measure(compile_scalar(SAXPY))
    vector_cycles = measure(build(SAXPY))
    assert vector_cycles < scalar_cycles / 4
