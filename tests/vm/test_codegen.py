"""Whole-kernel codegen engine tests (issue 8).

The codegen engine (``repro.backend.codegen``) linearizes a vectorized
kernel's structurized CFG into ONE generated Python function and retires
the per-block dispatch loop.  Its contract is accounting transparency:
bit-identical outputs, memory images, and ``ExecStats`` (cycles,
instruction counts, per-opcode tallies, per-function attribution) versus
every prior engine — reference, predecoded, fused, batched — for
completed runs, and exact trap-point state via wholesale replay on the
predecoded twin for trapped runs.

Covered here:

- fig4-wide bitwise matrix: codegen vs reference / predecoded / fused;
- mid-kernel budget-trap replay (trap identity, trap-point stats, and
  memory bitwise vs the decoded engine, plus the replay counter);
- mask-seam kernels: nested divergent loops, break/continue lowering,
  masked early exit, and an IR-level early ``ret`` under a branch;
- fault injection at the ``codegen`` site (bails to the decoded engine);
- ``REPRO_NO_CODEGEN=1`` escape hatch restores the prior engine exactly;
- disk-cache rehydration of the generated source in a child process;
- unparsable engine env flags emit a structured ``ReproWarning``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import autotune, diskcache
from repro.backend import codegen as cg
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.benchsuite.runner import _GUARD_BYTES, build_impl
from repro.diagnostics import ReproWarning
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.ir import (
    I32,
    BasicBlock,
    Constant,
    Function,
    FunctionType,
    Instruction,
    IRBuilder,
    Module,
    UndefValue,
    verify_function,
)
from repro.vm import ExecutionLimitExceeded, Interpreter


def _run_workload(module, workload, **kw):
    """Run ``kernel`` on a benchsuite workload; returns (interp, snapshot)."""
    interp = Interpreter(module, **kw)
    addrs = []
    for array in workload.arrays:
        addrs.append(interp.memory.alloc_array(array))
        interp.memory.alloc(_GUARD_BYTES)
    interp.reset_stats()
    ret = interp.run("kernel", *addrs, *workload.scalars)
    return interp, _snapshot(interp, ret)


def _snapshot(interp, ret):
    s = interp.stats
    return {
        "mem": interp.memory.data.copy(),
        "ret": None if ret is None else np.asarray(ret).copy(),
        "cycles": s.cycles,
        "instructions": s.instructions,
        "counts": dict(s.counts),
        "func_cycles": dict(interp.func_cycles),
        "func_calls": dict(interp.func_calls),
        "edge_cycles": dict(interp.edge_cycles),
        "edge_calls": dict(interp.edge_calls),
    }


def _assert_bitwise(got, want, context):
    for key in ("cycles", "instructions", "counts", "func_cycles",
                "func_calls", "edge_cycles", "edge_calls"):
        assert got[key] == want[key], f"{context}: {key} diverges"
    np.testing.assert_array_equal(got["mem"], want["mem"],
                                  err_msg=f"{context}: memory image")
    assert (got["ret"] is None) == (want["ret"] is None), context
    if got["ret"] is not None:
        np.testing.assert_array_equal(got["ret"], want["ret"],
                                      err_msg=f"{context}: return value")


# -- fig4-wide bitwise matrix -------------------------------------------------

ORACLES = {
    "reference": dict(predecode=False),
    "predecoded": dict(predecode=True, superinstructions=False),
    "fused": dict(predecode=True, superinstructions=True),
}


@pytest.mark.parametrize("spec", BENCHMARKS, ids=lambda s: s.name)
def test_codegen_matches_every_engine_on_fig4(spec):
    """Outputs, memory, ExecStats, and attribution bitwise vs all prior
    engines; the codegen engine must actually compile (no bailouts)."""
    workload = spec.workload()
    module = build_impl(spec, "parsimony")
    _, want = _run_workload(module, workload, codegen=False,
                            **ORACLES["reference"])
    for label, kw in list(ORACLES.items())[1:]:
        _, got = _run_workload(module, workload, codegen=False, **kw)
        _assert_bitwise(got, want, f"{spec.name}: {label} vs reference")
    interp, got = _run_workload(module, workload, codegen=True)
    report = interp.codegen_report()
    assert not report["bailouts"], f"{spec.name}: {report['bailouts']}"
    assert report["calls"] > 0, f"{spec.name}: codegen never engaged"
    _assert_bitwise(got, want, f"{spec.name}: codegen vs reference")


# -- mid-kernel budget-trap replay --------------------------------------------

TRAP_SRC = """
void kernel(f32* OUT, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        f32 x = 0.0f;
        i32 k = 0;
        while (k < 200) {
            x = x + 1.0f + (f32)k;
            k = k + 1;
        }
        OUT[i] = x;
    }
}
"""


def test_budget_trap_replays_on_predecoded_twin():
    """A mid-kernel budget trap under codegen must replay wholesale on the
    predecoded twin: trap identity, trap-point stats, and memory all match
    the decoded engine bit-for-bit (the block-merged charges alone would
    only be approximate at the trap point)."""
    module = compile_parsimony(TRAP_SRC)
    out = np.zeros(37, np.float32)

    def trap_run(codegen):
        interp = Interpreter(module, max_instructions=500, codegen=codegen)
        addr = interp.memory.alloc_array(out)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run("kernel", addr, 37)
        return interp

    decoded = trap_run(False)
    compiled = trap_run(True)
    assert compiled.codegen_stats["replays"] == 1
    # Trap fires on exactly the first instruction past the budget, and the
    # replayed trap point matches the decoded engine's bitwise.
    assert decoded.stats.instructions == 501
    assert compiled.stats.instructions == decoded.stats.instructions
    assert compiled.stats.cycles == decoded.stats.cycles
    assert dict(compiled.stats.counts) == dict(decoded.stats.counts)
    np.testing.assert_array_equal(compiled.memory.data, decoded.memory.data)


def test_completed_run_does_not_replay():
    module = compile_parsimony(TRAP_SRC)
    interp = Interpreter(module, codegen=True)
    addr = interp.memory.alloc_array(np.zeros(37, np.float32))
    interp.run("kernel", addr, 37)
    report = interp.codegen_report()
    assert report["replays"] == 0
    assert report["calls"] > 0 and not report["bailouts"]


# -- mask-seam kernels --------------------------------------------------------

NESTED_DIVERGENT_SRC = """
void kernel(i32* A, i32* OUT, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        i32 v = A[i];
        i32 acc = 0;
        i32 j = 0;
        while (j < abs(v % 5) + 1) {
            i32 k = 0;
            while (k < abs((v + j) % 3) + 1) {
                acc = acc + k * j + 1;
                k = k + 1;
            }
            j = j + 1;
        }
        OUT[i] = acc;
    }
}
"""

BREAK_CONTINUE_SRC = """
void kernel(i32* A, i32* OUT, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        i32 v = A[i];
        i32 acc = 0;
        i32 j = 0;
        while (j < 16) {
            j = j + 1;
            if ((v + j) % 3 == 0) {
                continue;
            }
            if (j > abs(v % 7) + 2) {
                break;
            }
            acc = acc + j;
        }
        OUT[i] = acc + j * 100;
    }
}
"""

MASKED_EARLY_EXIT_SRC = """
void kernel(i32* A, i32* OUT, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        i32 v = A[i];
        if (v < 0) {
            OUT[i] = -1;
        } else {
            i32 acc = 0;
            i32 k = 0;
            while (k < v % 9 + 1) {
                acc = acc + k * k;
                k = k + 1;
            }
            OUT[i] = acc;
        }
    }
}
"""

_SEAM_IDS = ["nested-divergent-loops", "break-continue", "masked-early-exit"]


@pytest.mark.parametrize(
    "source", [NESTED_DIVERGENT_SRC, BREAK_CONTINUE_SRC,
               MASKED_EARLY_EXIT_SRC], ids=_SEAM_IDS)
def test_mask_seam_kernels_bitwise(source):
    """Divergence seams — nested divergent loops, continue/break lowering,
    masked early exit — must not perturb outputs or accounting."""
    module = compile_parsimony(source)
    rng = np.random.default_rng(7)
    A = rng.integers(-40, 41, 37).astype(np.int32)

    def run(codegen):
        interp = Interpreter(module, codegen=codegen)
        a = interp.memory.alloc_array(A)
        o = interp.memory.alloc_array(np.zeros(37, np.int32))
        interp.run("kernel", a, o, 37)
        return (interp, interp.memory.read_array(o, np.int32, 37))

    ref, ref_out = run(False)
    got, got_out = run(True)
    assert not got.codegen_report()["bailouts"], got.codegen_report()
    np.testing.assert_array_equal(got_out, ref_out)
    assert got.stats.cycles == ref.stats.cycles
    assert got.stats.instructions == ref.stats.instructions
    assert dict(got.stats.counts) == dict(ref.stats.counts)


def _early_ret_module():
    """IR-level early return under a branch: ret in one arm, fallthrough
    work in the other — exercises the emitter's ret-under-conditional path
    (no postdominator join to linearize past)."""
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    entry = f.add_block("entry")
    early = f.add_block("early")
    work = f.add_block("work")
    b = IRBuilder(f, entry)
    cond = b.icmp("slt", f.args[0], Constant(I32, 0))
    b.condbr(cond, early, work)
    b.position_at_end(early)
    b.ret(Constant(I32, -1))
    b.position_at_end(work)
    b.ret(b.binop("mul", f.args[0], Constant(I32, 3)))
    verify_function(f)
    return module, f


@pytest.mark.parametrize("x,expect", [(-5, -1 & 0xFFFFFFFF), (7, 21)],
                         ids=["early-ret", "fallthrough"])
def test_ir_early_return_under_branch(x, expect):
    module, f = _early_ret_module()
    ref = Interpreter(module, codegen=False)
    got = Interpreter(module, codegen=True)
    assert ref.run(f, x) == got.run(f, x) == expect
    assert not got.codegen_report()["bailouts"]
    assert got.stats.cycles == ref.stats.cycles
    assert got.stats.instructions == ref.stats.instructions
    assert dict(got.stats.counts) == dict(ref.stats.counts)


# -- bailout burn-down matrix -------------------------------------------------
#
# Shapes behind the retired bailout reasons (multi-exit-loop,
# multi-level-break/continue, batched-terminator:ret, mixed-batch-body)
# must now compile AND run bitwise-identical to the reference engine;
# reasons kept deliberately (function-too-large, batched-internal-call)
# get pinning tests so retirements stay intentional.


def _run_scalar_pair(module, f, args_list):
    """Run ``f`` through the reference and codegen engines over each arg
    tuple; asserts bitwise-equal results and ExecStats, zero bailouts."""
    ref = Interpreter(module, predecode=False, codegen=False)
    got = Interpreter(module, codegen=True)
    for args in args_list:
        assert ref.run(f, *args) == got.run(f, *args), args
    report = got.codegen_report()
    assert not report["bailouts"], report
    assert report["calls"] > 0, report
    assert got.stats.cycles == ref.stats.cycles
    assert got.stats.instructions == ref.stats.instructions
    assert dict(got.stats.counts) == dict(ref.stats.counts)


def _multi_exit_module():
    """Serial loop with two *distinct* exit blocks — the normal trip-count
    exit plus an early return out of the body — the shape behind the
    retired ``multi-exit-loop`` bailout (now a dispatch-variable merge)."""
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    latch = f.add_block("latch")
    exit_a = f.add_block("exit_a")
    exit_b = f.add_block("exit_b")
    b = IRBuilder(f, entry)
    b.br(header)
    b.position_at_end(header)
    i = b.phi(I32, "i")
    i.append_operand(Constant(I32, 0))
    i.append_operand(entry)
    b.condbr(b.icmp("ult", i, f.args[0]), body, exit_a)
    b.position_at_end(body)
    b.condbr(b.icmp("eq", i, Constant(I32, 3)), exit_b, latch)
    b.position_at_end(latch)
    nxt = b.binop("add", i, Constant(I32, 1))
    i.append_operand(nxt)
    i.append_operand(latch)
    b.br(header)
    b.position_at_end(exit_a)
    b.ret(b.binop("mul", i, Constant(I32, 2)))
    b.position_at_end(exit_b)
    b.ret(Constant(I32, 777))
    verify_function(f)
    return module, f


def test_multi_exit_loop_retired():
    module, f = _multi_exit_module()
    _run_scalar_pair(module, f, [(0,), (2,), (3,), (9,)])


def _multi_level_module(kind):
    """Nested serial loops where the inner body jumps straight past the
    inner loop — to the function exit (``break``) or back to the *outer*
    header (``continue``) — the shapes behind the retired
    ``multi-level-break``/``multi-level-continue`` bailouts."""
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    entry = f.add_block("entry")
    oh = f.add_block("outer_header")
    ih = f.add_block("inner_header")
    ibody = f.add_block("inner_body")
    ilatch = f.add_block("inner_latch")
    olatch = f.add_block("outer_latch")
    done = f.add_block("done")
    b = IRBuilder(f, entry)
    b.br(oh)
    b.position_at_end(oh)
    j = b.phi(I32, "j")
    acc = b.phi(I32, "acc")
    j.append_operand(Constant(I32, 0))
    j.append_operand(entry)
    acc.append_operand(Constant(I32, 0))
    acc.append_operand(entry)
    b.condbr(b.icmp("ult", j, f.args[0]), ih, done)
    b.position_at_end(ih)
    k = b.phi(I32, "k")
    acc2 = b.phi(I32, "acc2")
    k.append_operand(Constant(I32, 0))
    k.append_operand(oh)
    acc2.append_operand(acc)
    acc2.append_operand(oh)
    b.condbr(b.icmp("ult", k, j), ibody, olatch)
    b.position_at_end(ibody)
    acc3 = b.binop("add", acc2, Constant(I32, 1))
    escape = b.icmp("eq", b.binop("add", j, k), Constant(I32, 5))
    if kind == "break":
        b.condbr(escape, done, ilatch)
    else:
        j_skip = b.binop("add", j, Constant(I32, 2))
        b.condbr(escape, oh, ilatch)
        j.append_operand(j_skip)
        j.append_operand(ibody)
        acc.append_operand(acc3)
        acc.append_operand(ibody)
    b.position_at_end(ilatch)
    k2 = b.binop("add", k, Constant(I32, 1))
    k.append_operand(k2)
    k.append_operand(ilatch)
    acc2.append_operand(acc3)
    acc2.append_operand(ilatch)
    b.br(ih)
    b.position_at_end(olatch)
    j2 = b.binop("add", j, Constant(I32, 1))
    j.append_operand(j2)
    j.append_operand(olatch)
    acc.append_operand(acc2)
    acc.append_operand(olatch)
    b.br(oh)
    b.position_at_end(done)
    if kind == "break":
        r = b.phi(I32, "r")
        r.append_operand(acc)
        r.append_operand(oh)
        r.append_operand(acc3)
        r.append_operand(ibody)
        b.ret(r)
    else:
        b.ret(acc)
    verify_function(f)
    return module, f


@pytest.mark.parametrize("kind", ["break", "continue"])
def test_multi_level_transfer_retired(kind):
    module, f = _multi_level_module(kind)
    _run_scalar_pair(module, f, [(0,), (1,), (4,), (8,)])


def _annotate(instr, mult):
    """Narrow charge prototype + multiplicity, the way ``backend.batch``
    annotates widened instructions (operand types preserved as undefs)."""
    proto = Instruction(
        instr.opcode, instr.type,
        [UndefValue(op.type) for op in instr.operands
         if not isinstance(op, (BasicBlock, Function))],
    )
    instr.attrs["batch_charges"] = (proto,)
    instr.attrs["batch_mult"] = mult


def _mixed_batched_module():
    """Hand-built batched function whose body mixes annotated and plain
    instructions and ends in an annotated ``ret`` — the shapes behind the
    retired ``mixed-batch-body`` and ``batched-terminator:ret`` bailouts.
    The decoded engine cannot run mixed blocks at all (its batch decode
    requires annotations on every instruction), so the oracle is the
    reference engine, which gates per instruction."""
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    f.attrs["batched"] = 2
    entry = f.add_block("entry")
    b = IRBuilder(f, entry)
    a = b.binop("add", f.args[0], Constant(I32, 7))
    _annotate(a, 2)
    m = b.binop("mul", a, Constant(I32, 3))  # plain: the mixed body
    r = b.ret(m)
    _annotate(r, 2)
    verify_function(f)
    return module, f


def test_mixed_batch_body_and_batched_ret_retired():
    module, f = _mixed_batched_module()
    _run_scalar_pair(module, f, [(0,), (5,), (41,)])


def test_function_too_large_bailout_pinned(monkeypatch):
    """The size guard stays: an oversized function must bail (not emit a
    pathological source) and still run bitwise via the decoded engine."""
    monkeypatch.setattr(cg, "MAX_CODEGEN_INSTRS", 4)
    module, f = _early_ret_module()
    ref = Interpreter(module, codegen=False)
    got = Interpreter(module, codegen=True)
    assert ref.run(f, 7) == got.run(f, 7)
    assert got.codegen_bailouts == {"function-too-large": 1}
    assert got.codegen_report()["calls"] == 0
    assert got.stats.cycles == ref.stats.cycles
    assert dict(got.stats.counts) == dict(ref.stats.counts)


def _batched_internal_call_module():
    module = Module("t")
    g = Function("g", FunctionType(I32, (I32,)), ["y"])
    module.add_function(g)
    bg = IRBuilder(g, g.add_block("entry"))
    bg.ret(bg.binop("add", g.args[0], Constant(I32, 1)))
    verify_function(g)
    f = Function("f", FunctionType(I32, (I32,)), ["x"])
    module.add_function(f)
    f.attrs["batched"] = 2
    b = IRBuilder(f, f.add_block("entry"))
    c = b.call(g, [f.args[0]])
    c.attrs["batch_mult"] = 2
    c.attrs["batch_charges"] = ()
    r = b.ret(c)
    _annotate(r, 2)
    verify_function(f)
    return module, f


def test_batched_internal_call_bailout_pinned():
    """An *annotated* internal call has no narrow-prototype emission: the
    bailout is deliberate (unannotated internal calls in batched bodies
    do compile)."""
    module, f = _batched_internal_call_module()
    interp = Interpreter(module)
    with pytest.raises(cg.CodegenBailout) as exc:
        cg.emit_function(interp, f)
    assert exc.value.reason == "batched-internal-call"


def test_bailout_memo_keyed_by_batch_fingerprint():
    """Satellite bugfix: a bailout memoized against one batching
    configuration must not suppress emission for another.  Stripping the
    batch annotations mutates only attrs — block/instruction counts (and
    object identity) are unchanged, so only the batch fingerprint in the
    memo separates the two configurations."""
    module, f = _batched_internal_call_module()
    interp = Interpreter(module)
    with pytest.raises(cg.CodegenBailout):
        cg.emit_function(interp, f)
    with pytest.raises(cg.CodegenBailout):
        cg.emit_function(interp, f)  # memoized replay, still a bailout

    # Unbatched re-run of the same Function object: attrs-only mutation.
    del f.attrs["batched"]
    for block in f.blocks:
        for ins in block.instructions:
            ins.attrs.pop("batch_mult", None)
            ins.attrs.pop("batch_charges", None)
    source, bindings = cg.emit_function(interp, f)  # must NOT replay
    assert "_kfn" in source

    # And the plain configuration actually runs, bitwise.
    _run_scalar_pair(module, f, [(3,), (12,)])


# -- fault injection at the codegen site --------------------------------------

def test_codegen_fault_site_bails_to_decoded():
    """An injected fault at the ``codegen`` site must land in the bailout
    table and degrade to the decoded engine — never trap the run."""
    module = compile_parsimony(TRAP_SRC)
    interp = Interpreter(module, codegen=True)
    function = module.get("kernel")
    with inject(FaultPlan(site="codegen")):
        kfn = interp._codegen_compile(function)
    assert kfn is None
    assert interp.codegen_bailouts == {"injected-fault": 1}
    # The bailout is sticky: the armed engine now runs decoded, with
    # results identical to a codegen=False interpreter.
    addr = interp.memory.alloc_array(np.zeros(37, np.float32))
    interp.run("kernel", addr, 37)
    assert interp.codegen_report()["calls"] == 0
    ref = Interpreter(module, codegen=False)
    ref_addr = ref.memory.alloc_array(np.zeros(37, np.float32))
    ref.run("kernel", ref_addr, 37)
    np.testing.assert_array_equal(
        interp.memory.read_array(addr, np.float32, 37),
        ref.memory.read_array(ref_addr, np.float32, 37),
    )
    assert interp.stats.cycles == ref.stats.cycles


def test_active_fault_plan_disarms_codegen():
    """While any fault plan is armed, run() skips the replay umbrella and
    codegen stays disarmed — replaying would double-fire one-shot plans."""
    module = compile_parsimony(TRAP_SRC)
    interp = Interpreter(module, codegen=True)
    addr = interp.memory.alloc_array(np.zeros(37, np.float32))
    with inject(FaultPlan(site="worker_crash")):  # unrelated site, armed
        interp.run("kernel", addr, 37)
    assert interp.codegen_report()["calls"] == 0


# -- escape hatch -------------------------------------------------------------

def test_no_codegen_escape_hatch(monkeypatch):
    """``REPRO_NO_CODEGEN=1`` beats even an explicit ``codegen=True`` and
    restores the prior engine exactly."""
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    module = compile_parsimony(TRAP_SRC)
    interp = Interpreter(module, codegen=True)
    assert interp.codegen is False
    addr = interp.memory.alloc_array(np.zeros(37, np.float32))
    interp.run("kernel", addr, 37)
    report = interp.codegen_report()
    assert report["enabled"] is False
    assert report["calls"] == 0 and report["compiles"] == 0

    monkeypatch.delenv("REPRO_NO_CODEGEN")
    ref = Interpreter(module, codegen=False)
    ref_addr = ref.memory.alloc_array(np.zeros(37, np.float32))
    ref.run("kernel", ref_addr, 37)
    assert interp.stats.cycles == ref.stats.cycles
    assert interp.stats.instructions == ref.stats.instructions
    assert dict(interp.stats.counts) == dict(ref.stats.counts)


def test_unparsable_engine_flags_warn(monkeypatch):
    """Garbage in an engine env flag is a visible misconfiguration, not a
    silent request for the default (the historical ``in ("1", "true")``
    parse ignored it)."""
    module = compile_parsimony(TRAP_SRC)
    monkeypatch.setenv("REPRO_NO_CODEGEN", "yes-please")
    with pytest.warns(ReproWarning, match="REPRO_NO_CODEGEN"):
        interp = Interpreter(module)
    assert interp.codegen is False  # default kept
    monkeypatch.delenv("REPRO_NO_CODEGEN")

    monkeypatch.setenv("REPRO_NO_FUSE", "nope")
    with pytest.warns(ReproWarning, match="REPRO_NO_FUSE"):
        engine = autotune.engine_config(None, None)
    assert engine.endswith("/fused")  # default (fusion on) kept


# -- disk-cache rehydration in a child process --------------------------------

REHYDRATE_SRC = NESTED_DIVERGENT_SRC

_CHILD = """
import json, sys
import numpy as np
from repro.driver import compile_parsimony
from repro.vm import Interpreter

module = compile_parsimony(sys.stdin.read())
interp = Interpreter(module, codegen=True)
A = np.arange(-18, 19, dtype=np.int32)
a = interp.memory.alloc_array(A)
o = interp.memory.alloc_array(np.zeros(37, np.int32))
interp.run("kernel", a, o, 37)
print(json.dumps({
    "out": interp.memory.read_array(o, np.int32, 37).tolist(),
    "cycles": interp.stats.cycles,
    "instructions": interp.stats.instructions,
    "report": interp.codegen_report(),
}))
"""


def test_generated_source_rehydrates_from_disk_in_child(tmp_path):
    """A child process with a cold in-memory cache must rehydrate the
    generated code object from the disk cache (``disk_hits``), and its run
    must agree bitwise with the parent's."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env["REPRO_DISK_CACHE"] = "1"
    env.pop("REPRO_NO_CODEGEN", None)

    # Parent leg: same kernel through the codegen engine with the disk
    # layer on, which persists the compiled code object.
    saved_dir = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path)
    diskcache.set_enabled(True)
    diskcache.reset_stats()
    cg._CODE_CACHE.clear()
    try:
        module = compile_parsimony(REHYDRATE_SRC)
        interp = Interpreter(module, codegen=True)
        A = np.arange(-18, 19, dtype=np.int32)
        a = interp.memory.alloc_array(A)
        o = interp.memory.alloc_array(np.zeros(37, np.int32))
        interp.run("kernel", a, o, 37)
        parent_out = interp.memory.read_array(o, np.int32, 37)
        assert diskcache.code_stats()["writes"] >= 1, diskcache.code_stats()
    finally:
        diskcache.set_enabled(None)
        if saved_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_dir

    proc = subprocess.run(
        [sys.executable, "-c", _CHILD], input=REHYDRATE_SRC.encode(),
        env=env, capture_output=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()[-800:]
    child = json.loads(proc.stdout)
    report = child["report"]
    assert report["disk_hits"] >= 1, report
    assert report["compiles"] == 0, report  # rehydrated, not re-compiled
    assert not report["bailouts"], report
    np.testing.assert_array_equal(np.array(child["out"], np.int32),
                                  parent_out)
    assert child["cycles"] == interp.stats.cycles
    assert child["instructions"] == interp.stats.instructions
