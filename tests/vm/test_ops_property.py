"""Property-based tests (hypothesis): VM operational semantics.

The single invariant everything else rests on: for every integer opcode,
the vector semantics equal the scalar semantics applied lane-wise.  The
interpreter, the constant folder, and the vectorizer all assume it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.types import F32, FloatType, I8, I16, I32, I64, IntType
from repro.vm import ops as vmops

INT_TYPES = [I8, I16, I32, I64]

_BINOPS = [
    "add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr",
    "smin", "smax", "umin", "umax",
    "addsat_s", "addsat_u", "subsat_s", "subsat_u",
    "mulhi_s", "mulhi_u", "avg_u", "abd_u",
]
_DIV_OPS = ["sdiv", "udiv", "srem", "urem"]
_ICMP_PREDS = ["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"]


def lanes_for(type, data):
    return np.array([v & ((1 << type.bits) - 1) for v in data],
                    dtype=np.dtype(f"u{max(1, type.bits // 8)}"))


@st.composite
def int_type_and_lanes(draw, n=8):
    type = draw(st.sampled_from(INT_TYPES))
    mx = (1 << type.bits) - 1
    a = draw(st.lists(st.integers(0, mx), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(0, mx), min_size=n, max_size=n))
    return type, a, b


@settings(max_examples=200, deadline=None)
@given(data=int_type_and_lanes(), op=st.sampled_from(_BINOPS))
def test_vector_binop_matches_scalar_lanewise(data, op):
    type, a, b = data
    va, vb = lanes_for(type, a), lanes_for(type, b)
    vec = vmops.eval_vector_binop(op, type, va, vb)
    for lane in range(len(a)):
        scalar = vmops.eval_scalar_binop(op, type, a[lane], b[lane])
        assert int(vec[lane]) == scalar, (
            f"{op} {type}: lane {lane}: a={a[lane]} b={b[lane]} "
            f"vector={int(vec[lane])} scalar={scalar}"
        )


@settings(max_examples=100, deadline=None)
@given(data=int_type_and_lanes(), op=st.sampled_from(_DIV_OPS))
def test_vector_division_matches_scalar_lanewise(data, op):
    type, a, b = data
    b = [v if v != 0 else 1 for v in b]
    # Avoid the single overflow corner INT_MIN / -1 (UB in C, inconsistent
    # across numpy versions).
    if op in ("sdiv", "srem"):
        minval = 1 << (type.bits - 1)
        b = [v if v != (1 << type.bits) - 1 or True else v for v in b]
        a = [v if v != minval else minval - 1 for v in a]
    va, vb = lanes_for(type, a), lanes_for(type, b)
    vec = vmops.eval_vector_binop(op, type, va, vb)
    for lane in range(len(a)):
        scalar = vmops.eval_scalar_binop(op, type, a[lane], b[lane])
        assert int(vec[lane]) == scalar


@settings(max_examples=150, deadline=None)
@given(data=int_type_and_lanes(), pred=st.sampled_from(_ICMP_PREDS))
def test_vector_icmp_matches_scalar_lanewise(data, pred):
    type, a, b = data
    va, vb = lanes_for(type, a), lanes_for(type, b)
    vec = vmops.eval_vector_icmp(pred, type, va, vb)
    for lane in range(len(a)):
        scalar = vmops.eval_scalar_icmp(pred, type, a[lane], b[lane])
        assert int(bool(vec[lane])) == scalar


_CASTS = [
    ("trunc", I32, I8), ("trunc", I64, I16), ("zext", I8, I32),
    ("zext", I16, I64), ("sext", I8, I32), ("sext", I16, I64),
]


@settings(max_examples=150, deadline=None)
@given(
    value=st.integers(0, (1 << 64) - 1),
    cast=st.sampled_from(_CASTS),
)
def test_vector_cast_matches_scalar(value, cast):
    op, src, dst = cast
    v = value & ((1 << src.bits) - 1)
    scalar = vmops.eval_scalar_cast(op, src, dst, v)
    arr = lanes_for(src, [v] * 4)
    vec = vmops.eval_vector_cast(op, src, dst, arr)
    assert int(vec[0]) == scalar


@settings(max_examples=100, deadline=None)
@given(
    a=st.floats(-1e6, 1e6, width=32),
    b=st.floats(-1e6, 1e6, width=32),
    op=st.sampled_from(["fadd", "fsub", "fmul", "fmin", "fmax"]),
)
def test_f32_scalar_rounding_matches_vector(a, b, op):
    """Scalar f32 semantics round exactly like numpy float32 vector math —
    the invariant behind every bit-identical cross-implementation check."""
    scalar = vmops.eval_scalar_binop(op, F32, a, b)
    va = np.array([a], dtype=np.float32)
    vb = np.array([b], dtype=np.float32)
    vec = vmops.eval_vector_binop(op, F32, va, vb)
    assert scalar == float(vec[0])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=16, max_size=16))
def test_saturating_ops_stay_in_range(data):
    a = lanes_for(I8, data)
    b = lanes_for(I8, data[::-1])
    for op in ("addsat_u", "subsat_u", "avg_u", "abd_u"):
        out = vmops.eval_vector_binop(op, I8, a, b)
        assert out.dtype == np.uint8
        assert (out <= 255).all()
