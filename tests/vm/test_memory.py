"""Unit tests for the flat VM memory (bounds, guards, masked semantics)."""

import numpy as np
import pytest

from repro.ir.types import F32, I8, I16, I32
from repro.vm import Memory, MemoryError_


def test_alloc_alignment():
    mem = Memory()
    a = mem.alloc(10, align=64)
    b = mem.alloc(10, align=64)
    assert a % 64 == 0 and b % 64 == 0 and b >= a + 10


def test_null_page_traps():
    mem = Memory()
    with pytest.raises(MemoryError_, match="NULL"):
        mem.load_scalar(0, I32)
    with pytest.raises(MemoryError_, match="NULL"):
        mem.store_scalar(4, I8, 1)


def test_out_of_bounds_traps():
    mem = Memory(size=4096)
    with pytest.raises(MemoryError_, match="out-of-bounds"):
        mem.load_scalar(4095, I32)


def test_scalar_roundtrip_types():
    mem = Memory()
    addr = mem.alloc(64)
    mem.store_scalar(addr, I16, 0xBEEF)
    assert mem.load_scalar(addr, I16) == 0xBEEF
    mem.store_scalar(addr, F32, 1.5)
    assert mem.load_scalar(addr, F32) == 1.5


def test_masked_tail_load_does_not_fault_at_array_end():
    """A tail gang's inactive lanes may point past the array; masked packed
    loads must only require bounds up to the last active lane."""
    mem = Memory(size=4096)
    addr = mem.alloc(4096 - 128)  # consume almost everything
    tail = mem.alloc(8)  # 8 bytes left at the very end
    mask = np.zeros(64, dtype=bool)
    mask[:8] = True
    out = mem.load_packed(tail, I8, 64, mask)  # full width would fault
    assert len(out) == 64
    # all-inactive: no bounds check at all
    none = mem.load_packed(tail + 10_000, I8, 64, np.zeros(64, dtype=bool))
    assert (none == 0).all()


def test_masked_store_preserves_inactive_lanes():
    mem = Memory()
    addr = mem.alloc_array(np.arange(16, dtype=np.uint8))
    mask = np.zeros(16, dtype=bool)
    mask[::2] = True
    mem.store_packed(addr, I8, np.full(16, 99, np.uint8), mask)
    got = mem.read_array(addr, np.uint8, 16)
    assert (got[::2] == 99).all()
    assert (got[1::2] == np.arange(16, dtype=np.uint8)[1::2]).all()


def test_gather_scatter_masked():
    mem = Memory()
    addr = mem.alloc_array(np.arange(32, dtype=np.uint32))
    addrs = np.array([addr + 4 * i for i in (3, 1, 30, 7)], dtype=np.uint64)
    mask = np.array([True, False, True, True])
    out = mem.gather(addrs, I32, mask)
    assert out.tolist() == [3, 0, 30, 7]
    mem.scatter(addrs, I32, np.array([100, 101, 102, 103], np.uint32), mask)
    data = mem.read_array(addr, np.uint32, 32)
    assert data[3] == 100 and data[1] == 1 and data[30] == 102 and data[7] == 103


def test_out_of_memory():
    mem = Memory(size=1024)
    with pytest.raises(MemoryError_, match="out of VM memory"):
        mem.alloc(4096)
