"""Unit tests for the flat VM memory (bounds, guards, masked semantics)."""

import numpy as np
import pytest

from repro.ir.types import F32, I8, I16, I32
from repro.vm import Memory, MemoryError_


def test_alloc_alignment():
    mem = Memory()
    a = mem.alloc(10, align=64)
    b = mem.alloc(10, align=64)
    assert a % 64 == 0 and b % 64 == 0 and b >= a + 10


def test_null_page_traps():
    mem = Memory()
    with pytest.raises(MemoryError_, match="NULL"):
        mem.load_scalar(0, I32)
    with pytest.raises(MemoryError_, match="NULL"):
        mem.store_scalar(4, I8, 1)


def test_out_of_bounds_traps():
    mem = Memory(size=4096)
    with pytest.raises(MemoryError_, match="out-of-bounds"):
        mem.load_scalar(4095, I32)


def test_scalar_roundtrip_types():
    mem = Memory()
    addr = mem.alloc(64)
    mem.store_scalar(addr, I16, 0xBEEF)
    assert mem.load_scalar(addr, I16) == 0xBEEF
    mem.store_scalar(addr, F32, 1.5)
    assert mem.load_scalar(addr, F32) == 1.5


def test_masked_tail_load_does_not_fault_at_array_end():
    """A tail gang's inactive lanes may point past the array; masked packed
    loads must only require bounds up to the last active lane."""
    mem = Memory(size=4096)
    addr = mem.alloc(4096 - 128)  # consume almost everything
    tail = mem.alloc(8)  # 8 bytes left at the very end
    mask = np.zeros(64, dtype=bool)
    mask[:8] = True
    out = mem.load_packed(tail, I8, 64, mask)  # full width would fault
    assert len(out) == 64
    # all-inactive: no bounds check at all
    none = mem.load_packed(tail + 10_000, I8, 64, np.zeros(64, dtype=bool))
    assert (none == 0).all()


def test_masked_store_preserves_inactive_lanes():
    mem = Memory()
    addr = mem.alloc_array(np.arange(16, dtype=np.uint8))
    mask = np.zeros(16, dtype=bool)
    mask[::2] = True
    mem.store_packed(addr, I8, np.full(16, 99, np.uint8), mask)
    got = mem.read_array(addr, np.uint8, 16)
    assert (got[::2] == 99).all()
    assert (got[1::2] == np.arange(16, dtype=np.uint8)[1::2]).all()


def test_gather_scatter_masked():
    mem = Memory()
    addr = mem.alloc_array(np.arange(32, dtype=np.uint32))
    addrs = np.array([addr + 4 * i for i in (3, 1, 30, 7)], dtype=np.uint64)
    mask = np.array([True, False, True, True])
    out = mem.gather(addrs, I32, mask)
    assert out.tolist() == [3, 0, 30, 7]
    mem.scatter(addrs, I32, np.array([100, 101, 102, 103], np.uint32), mask)
    data = mem.read_array(addr, np.uint32, 32)
    assert data[3] == 100 and data[1] == 1 and data[30] == 102 and data[7] == 103


def test_out_of_memory():
    mem = Memory(size=1024)
    with pytest.raises(MemoryError_, match="out of VM memory"):
        mem.alloc(4096)


# -- the VM contract: trap-before-any-write (see DESIGN.md) ---------------------------


def test_scatter_traps_before_any_write():
    """One bad lane anywhere in a scatter must leave *all* of memory
    untouched, including lanes that individually were in bounds."""
    mem = Memory(size=4096)
    addr = mem.alloc_array(np.arange(8, dtype=np.uint32))
    addrs = np.array([addr, addr + 4, 2**40, addr + 12], dtype=np.uint64)
    values = np.array([100, 101, 102, 103], np.uint32)
    with pytest.raises(MemoryError_, match="out-of-bounds"):
        mem.scatter(addrs, I32, values)
    assert mem.read_array(addr, np.uint32, 8).tolist() == list(range(8))


def test_scatter_reports_first_offending_lane_in_lane_order():
    mem = Memory(size=4096)
    addr = mem.alloc_array(np.zeros(8, np.uint32))
    # lane 1 hits the NULL page, lane 2 is out of bounds; lane order says
    # the NULL lane is the one reported, same as a per-lane loop would.
    addrs = np.array([addr, 3, 2**40, addr + 4], dtype=np.uint64)
    with pytest.raises(MemoryError_, match="NULL"):
        mem.scatter(addrs, I32, np.zeros(4, np.uint32))


def test_masked_bad_lanes_are_exempt_from_the_contract():
    mem = Memory(size=4096)
    addr = mem.alloc_array(np.zeros(4, np.uint32))
    addrs = np.array([addr, 2**40, 3, addr + 12], dtype=np.uint64)
    mask = np.array([True, False, False, True])
    mem.scatter(addrs, I32, np.array([7, 8, 9, 10], np.uint32), mask)
    assert mem.read_array(addr, np.uint32, 4).tolist() == [7, 0, 0, 10]


def test_packed_store_traps_before_any_write():
    mem = Memory(size=4096)
    addr = mem.alloc_array(np.arange(64, dtype=np.uint8))
    with pytest.raises(MemoryError_, match="out-of-bounds"):
        mem.store_packed(4096 - 8, I8, np.full(64, 7, np.uint8))
    assert mem.read_array(addr, np.uint8, 64).tolist() == list(range(64))


def test_injected_memory_faults_fire_per_site():
    from repro.faultinject import FaultPlan, InjectedFault, inject

    mem = Memory()
    addr = mem.alloc_array(np.arange(4, dtype=np.uint32))
    addrs = np.array([addr, addr + 4], dtype=np.uint64)
    with inject(FaultPlan(site="memory", match="check")):
        with pytest.raises(InjectedFault):
            mem.load_scalar(addr, I32)
        mem.gather(addrs, I32)  # vector path unaffected by "check" plans
    with inject(FaultPlan(site="memory", match="lanes")):
        with pytest.raises(InjectedFault):
            mem.scatter(addrs, I32, np.zeros(2, np.uint32))
        # trap-before-any-write holds for injected faults too
    assert mem.read_array(addr, np.uint32, 4).tolist() == [0, 1, 2, 3]
