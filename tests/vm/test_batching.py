"""Gang-batching equivalence (issue 5 tentpole).

The batching layer widens the vectorized gang loop from G to G×B lanes
and must be **invisible** to everything but wall-clock:

* every fig4 kernel's batched build is bit-identical to the unbatched
  build on outputs *and* ``ExecStats`` (cycles, instructions, per-opcode
  counts — the narrow-prototype charging contract);
* a budget trap that lands inside a batched chunk replays that chunk on
  the unbatched twin, reproducing the trap's message, stats, and memory
  effects exactly;
* cross-gang-unsafe kernels (atomics, gang-sync shuffles/reductions,
  private alloca storage, partial-fallback seams) are rejected by the
  legality scan, run unbatched, and surface in ``vm.batch.rejected``.
"""

import numpy as np
import pytest

from repro import autotune, telemetry
from repro.backend.batch import batch_module, batching_request, select_batch_factor
from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.diagnostics import ReproWarning
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.ir import Constant, Function, FunctionType, I32, IRBuilder, Module
from repro.vm import ExecutionLimitExceeded, Interpreter

SPECS = {spec.name: spec for spec in BENCHMARKS}


def _assert_stats_equal(got, want, context):
    assert got.cycles == want.cycles, f"{context}: cycles diverge"
    assert got.instructions == want.instructions, (
        f"{context}: instruction counts diverge")
    assert dict(got.counts) == dict(want.counts), (
        f"{context}: per-opcode counts diverge")


# ---------------------------------------------------------------------------
# fig4-wide differential: batched vs unbatched, outputs and ExecStats
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SPECS))
def test_fig4_batched_matches_unbatched(name, monkeypatch):
    spec = SPECS[name]
    batched = run_impl(spec, "parsimony")
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    unbatched = run_impl(spec, "parsimony")

    _assert_stats_equal(batched.stats, unbatched.stats, name)
    sig_b, sig_u = batched.output_signature(), unbatched.output_signature()
    assert len(sig_b) == len(sig_u), name
    for got, want in zip(sig_b, sig_u):
        np.testing.assert_array_equal(got, want, err_msg=name)


def test_batched_fused_matches_batched_unfused():
    """Superinstruction fusion composes with batching: the batched module's
    remainder/entry blocks still fuse, and stats stay identical."""
    spec = SPECS["mandelbrot"]
    fused = run_impl(spec, "parsimony", superinstructions=True)
    unfused = run_impl(spec, "parsimony", superinstructions=False)
    _assert_stats_equal(fused.stats, unfused.stats, "mandelbrot fused-vs-unfused")
    for got, want in zip(fused.output_signature(), unfused.output_signature()):
        np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# mid-batch budget-trap replay
# ---------------------------------------------------------------------------

#: Divergent per-lane loop (trip count varies with the thread index), so a
#: mid-run trap lands inside a batched chunk with live activity masks.
TRAP_SRC = """
void kernel(f32* a, f32* out, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        f32 x = a[i];
        f32 acc = 0.0f;
        i32 k = 0;
        i32 lim = (i32)(i % 17ul) + 3;
        while (k < lim) {
            acc = acc + x * 0.25f + (f32)k;
            k = k + 1;
        }
        out[i] = acc;
    }
}
"""

_TRAP_N = 256


def _run_trapping(module, budget):
    interp = Interpreter(module, max_instructions=budget)
    rng = np.random.default_rng(7)
    a = interp.memory.alloc_array(rng.random(_TRAP_N, dtype=np.float32))
    out = interp.memory.alloc_array(np.zeros(_TRAP_N, np.float32))
    trap = None
    try:
        interp.run("kernel", a, out, _TRAP_N)
    except ExecutionLimitExceeded as exc:
        trap = str(exc)
    return trap, interp.stats, interp.memory.read_array(
        out, np.float32, _TRAP_N), interp


def test_mid_batch_budget_trap_replays_bit_exactly(monkeypatch):
    batched = compile_parsimony(TRAP_SRC)
    assert batched.attrs.get("batch_applied"), batched.attrs.get("batch_rejected")
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    reference = compile_parsimony(TRAP_SRC)
    assert "batch_factor" not in reference.attrs
    monkeypatch.delenv("REPRO_NO_BATCH")

    # Total instruction count of a clean run, to aim budgets mid-stream.
    _, clean_stats, clean_out, _ = _run_trapping(reference, 500_000_000)
    total = clean_stats.instructions

    # A generous budget does not trap and replays nothing.
    trap, stats, out, interp = _run_trapping(batched, 500_000_000)
    assert trap is None and interp.batch_replays == 0
    _assert_stats_equal(stats, clean_stats, "clean batched run")
    np.testing.assert_array_equal(out, clean_out)

    # Budgets landing inside the batched region: the trap message, stats,
    # and memory effects must reproduce the unbatched engine's exactly,
    # via one gang-by-gang replay of the trapping chunk.
    for budget in (total // 4, total // 2, total - 1):
        want_trap, want_stats, want_out, _ = _run_trapping(reference, budget)
        assert want_trap is not None
        got_trap, got_stats, got_out, interp = _run_trapping(batched, budget)
        assert got_trap == want_trap, f"budget={budget}"
        assert interp.batch_replays == 1, f"budget={budget}"
        _assert_stats_equal(got_stats, want_stats, f"budget={budget}")
        np.testing.assert_array_equal(got_out, want_out,
                                      err_msg=f"budget={budget}")


# ---------------------------------------------------------------------------
# legality-rejection matrix
# ---------------------------------------------------------------------------

_TEMPLATE = """
void kernel(u32* a, u32* out, u64 n) {{
    psim (gang_size=8, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {body}
    }}
}}
"""

REJECTED = {
    "atomic": (
        # The atomic fastpath lowers this through per-lane extracts; either
        # the atomicrmw itself or its extractelement chain trips the scan.
        "u32 v = a[i];\n        psim_atomic_add(out, v);",
        "in gang loop",
    ),
    "gang_shuffle": (
        "u32 v = a[i];\n        out[i] = psim_shuffle_sync(v, psim_get_lane_num() ^ 1);",
        "shuffle",
    ),
    "gang_reduction": (
        "u32 v = psim_reduce_add_sync(a[i]);\n        out[i] = v;",
        "reduce",
    ),
    "private_alloca": (
        "u32 V[4];\n        V[0] = a[i];\n        V[1] = V[0] + 1u;\n"
        "        V[2] = V[1] + 1u;\n        V[3] = V[2] + 1u;\n"
        "        out[i] = V[(u64)(a[i] % 4u)];",
        "alloca",
    ),
}


@pytest.mark.parametrize("case", sorted(REJECTED))
def test_legality_rejects_cross_gang_unsafe_kernels(case):
    body, expect = REJECTED[case]
    module = compile_parsimony(_TEMPLATE.format(body=body),
                               module_name=f"reject.{case}")
    assert not module.attrs.get("batch_applied"), case
    rejected = module.attrs.get("batch_rejected")
    assert rejected, f"{case}: kernel was not marked rejected"
    reasons = " | ".join(entry["reason"] for entry in rejected)
    assert expect in reasons, f"{case}: {reasons}"

    # Rejected kernels still execute correctly — just unbatched.
    interp = Interpreter(module)
    a = interp.memory.alloc_array(np.arange(1, 33, dtype=np.uint32))
    out = interp.memory.alloc_array(np.zeros(32, np.uint32))
    interp.run("kernel", a, out, 32)
    assert interp.batch_replays == 0


def test_partial_fallback_seam_is_rejected():
    """A region-granular scalar fallback outlines part of the gang loop
    into an internal call; the batcher must refuse to widen across it."""
    src = _TEMPLATE.format(
        body="u32 v = a[i];\n"
             "        if (v > 16u) { v = v * 3u; } else { v = v + 7u; }\n"
             "        out[i] = v;")
    seam = None
    for after in range(8):
        with inject(FaultPlan(site="vectorize_block", after=after, times=1)):
            module = compile_parsimony(src, module_name=f"seam.{after}")
        if any(f.attrs.get("parsimony_partial_fallback")
               for f in module.functions.values()):
            seam = module
            break
    assert seam is not None, "no fault offset produced a partial fallback"

    # Fault injection already gates batching off in the driver; feeding the
    # seamed module to the pass directly must hit the legality wall too.
    report = batch_module(seam, None)
    assert not report["applied"]
    assert report["rejected"], report
    # Outlining stages region state through allocas and an internal call;
    # whichever the scan reaches first, the seam must not be widened over.
    reasons = " | ".join(r for _, _, r in report["rejected"])
    assert ("partial-fallback seam" in reasons or "alloca" in reasons
            or "gang loop" in reasons), reasons


def test_rejections_surface_in_telemetry():
    spec = SPECS["binomial_options"]
    with telemetry.collect() as session:
        run_impl(spec, "parsimony")
    totals = session.vm_batch_totals()
    assert totals["vm.batch.rejected"] > 0, totals
    assert totals["vm.batch.applied"] == 0, totals


# ---------------------------------------------------------------------------
# batch-factor selection
# ---------------------------------------------------------------------------

def test_batch_factor_selection():
    # Auto: largest power of two keeping G*B within the lane target.
    assert select_batch_factor(8) * 8 <= 256
    assert select_batch_factor(8) >= 2
    # Requests floor to a power of two; 0/1 disable.
    assert select_batch_factor(8, 8) == 8
    assert select_batch_factor(8, 7) == 4
    assert select_batch_factor(8, 1) == 1
    assert select_batch_factor(8, 0) == 1


# ---------------------------------------------------------------------------
# environment-knob parsing
# ---------------------------------------------------------------------------

def test_batching_request_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert batching_request() is None
    monkeypatch.setenv("REPRO_BATCH", "8")
    assert batching_request() == 8
    # Disable always wins over a forced factor.
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    assert batching_request() == 0


def test_unparsable_batch_request_warns(monkeypatch):
    """An unparsable REPRO_BATCH is a misconfiguration, not a silent auto
    request: the fallback to the cost model must come with a structured
    warning (issue 6 satellite)."""
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    monkeypatch.setenv("REPRO_BATCH", "banana")
    with pytest.warns(ReproWarning, match="unparsable REPRO_BATCH") as caught:
        assert batching_request() is None
    diag = caught[0].message.diagnostic
    assert diag.stage == "backend"
    assert diag.pass_name == "batch"
    assert diag.detail == {"variable": "REPRO_BATCH", "value": "banana"}


# ---------------------------------------------------------------------------
# non-power-of-two gang sizes
# ---------------------------------------------------------------------------

def _step_loop_module(step):
    """A module holding the canonical gang loop with the given step — the
    front-end refuses non-power-of-two gang sizes outright, so exercising
    the batcher's own rejection path needs hand-built IR."""
    f = Function("kernel", FunctionType(I32, (I32,)), ["n"])
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    b.br(header)
    b.position_at_end(header)
    phi = b.phi(I32, "i")
    phi.append_operand(Constant(I32, 0))
    phi.append_operand(entry)
    b.condbr(b.icmp("ult", phi, f.args[0]), body, exit_)
    b.position_at_end(body)
    nxt = b.add(phi, Constant(I32, step))
    phi.append_operand(nxt)
    phi.append_operand(body)
    b.br(header)
    b.position_at_end(exit_)
    b.ret(Constant(I32, 0))
    module = Module(f"step{step}")
    module.add_function(f)
    return module


def test_non_power_of_two_gang_size_is_a_recorded_rejection():
    """A 12-wide gang loop must not be silently left unbatched: the reason
    lands in the report and in ``module.attrs["batch_rejected"]`` — the
    record ``run_impl`` rolls up into ``vm.batch.rejected`` telemetry."""
    module = _step_loop_module(12)
    report = batch_module(module, None)
    assert not report["applied"]
    assert report["factor"] == 1
    reasons = [r for _, _, r in report["rejected"]]
    assert "non-power-of-two gang size 12" in reasons, reasons
    recorded = module.attrs["batch_rejected"]
    assert any(e["reason"] == "non-power-of-two gang size 12" for e in recorded)
    assert module.attrs["batch_factor"] == 1

    # Power-of-two steps take the normal path on the identical CFG shape.
    pow2 = _step_loop_module(8)
    report = batch_module(pow2, None)
    assert not any("non-power-of-two" in r for _, _, r in report["rejected"])


# ---------------------------------------------------------------------------
# profile-guided selection (issue 6 tentpole): the autotune state machine
# ---------------------------------------------------------------------------

@pytest.fixture
def tuner_store(tmp_path, monkeypatch):
    """Isolated on-disk profile store + clean counters per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
    monkeypatch.delenv("REPRO_NO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    autotune.reset_stats()
    yield tmp_path
    autotune.clear()
    autotune.reset_stats()


def test_choose_factor_needs_a_decisive_win():
    # Real batching wins are multiples: far outside the margin.
    assert autotune.choose_factor({1: 10.0, 16: 2.0}) == 16
    # A batched config that merely ties (within PIN_MARGIN) loses to the
    # safe unbatched side — sampling noise must not pin it.
    assert autotune.choose_factor({1: 10.0, 2: 9.0}) == 1
    # Just inside the margin still ties; decisively past it, batching wins.
    assert autotune.choose_factor({1: 10.0, 2: 10.0 / autotune.PIN_MARGIN}) == 1
    assert autotune.choose_factor({1: 10.0, 2: 10.0 / autotune.PIN_MARGIN - 1e-6}) == 2
    assert autotune.choose_factor({1: 26.0}) == 1


def test_measure_pin_decision_cycle(tuner_store):
    fp = autotune.fingerprint("void kernel() {}")
    engine = autotune.engine_config(True)
    assert engine == "avx512/fused"

    dec = autotune.decision(fp, engine)
    assert dec["state"] == "measure"
    assert dec["requests"] == autotune.CANDIDATE_REQUESTS

    measured = {1: 0.010, 16: 0.002}
    for factor, wall in measured.items():
        autotune.record_measurement(fp, engine, factor, wall)
    best = autotune.choose_factor(measured)
    assert best == 16
    reason = autotune.pin(fp, engine, best, measured[best], measured,
                          request=None)
    assert "measured fastest" in reason

    dec = autotune.decision(fp, engine)
    assert dec["state"] == "pinned"
    assert dec["factor"] == 16
    # The pin replays the *request* the winner compiled from (auto here):
    # a forced factor batches multi-gang-loop kernels differently.
    assert dec["request"] is None
    assert autotune.stats()["pins"] == 1
    assert autotune.stats()["measurements"] == 2


def test_pin_margin_prefers_smaller_factor_reason(tuner_store):
    fp = autotune.fingerprint("tie")
    engine = autotune.engine_config(True)
    measured = {1: 0.010, 2: 0.009}
    best = autotune.choose_factor(measured)
    assert best == 1
    reason = autotune.pin(fp, engine, best, measured[best], measured,
                          request=0)
    assert "preferring simpler B" in reason
    assert autotune.pinned_request(fp, engine) == 0


def test_deopt_drops_pin_after_sustained_regression(tuner_store):
    fp = autotune.fingerprint("deopt")
    engine = autotune.engine_config(True)
    autotune.pin(fp, engine, 8, 0.010, {1: 0.050, 8: 0.010}, request=8)

    slow = autotune.DEOPT_RATIO * 0.010 * 1.1
    # One-off noise (fewer than DEOPT_WINDOW slow samples) is forgiven...
    for _ in range(autotune.DEOPT_WINDOW - 1):
        assert autotune.observe(fp, engine, 8, slow) is None
    assert autotune.decision(fp, engine)["state"] == "pinned"
    # ...a faster sample ratchets the baseline and clears the window...
    assert autotune.observe(fp, engine, 8, 0.008) is None
    for _ in range(autotune.DEOPT_WINDOW - 1):
        assert autotune.observe(fp, engine, 8, slow) is None
    # ...but a full window of slow samples drops the pin.
    assert autotune.observe(fp, engine, 8, slow) == "deopt"
    dec = autotune.decision(fp, engine)
    assert dec["state"] == "measure"
    assert "deopt" in dec["reason"]
    assert autotune.stats()["deopts"] == 1


def test_corrupt_profile_entry_is_discarded(tuner_store):
    fp = autotune.fingerprint("corrupt")
    engine = autotune.engine_config(True)
    autotune.pin(fp, engine, 2, 0.001, {1: 0.010, 2: 0.001}, request=2)
    path = autotune._entry_path(fp, engine)
    assert path.exists()

    autotune._ENTRY_CACHE.clear()
    path.write_text("{ not json")
    dec = autotune.decision(fp, engine)
    assert dec["state"] == "measure"
    assert not path.exists()  # damaged entry unlinked, not resurrected
    assert autotune.stats()["errors"] >= 1


def test_autotuned_stencil_matches_unbatched_bitwise(tuner_store, monkeypatch):
    """The issue-6 acceptance pair: REPRO_AUTOTUNE=1 on the regression
    kernel (stencil) yields outputs and ExecStats bit-identical to the
    plain unbatched engine, and the sweep surfaces measure/pin telemetry."""
    monkeypatch.setenv("REPRO_AUTOTUNE_REPS", "1")
    spec = SPECS["stencil"]

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    unbatched = run_impl(spec, "parsimony")
    monkeypatch.delenv("REPRO_NO_BATCH")

    monkeypatch.setenv("REPRO_AUTOTUNE", "1")
    with telemetry.collect() as session:
        tuned = run_impl(spec, "parsimony")   # measurement sweep + pin
        pinned = run_impl(spec, "parsimony")  # rehydrates the pin

    _assert_stats_equal(tuned.stats, unbatched.stats, "stencil autotuned")
    _assert_stats_equal(pinned.stats, unbatched.stats, "stencil pinned")
    for got, want in zip(tuned.output_signature(),
                         unbatched.output_signature()):
        np.testing.assert_array_equal(got, want)

    totals = session.vm_autotune_totals()
    assert totals.get("vm.autotune.measure", 0) >= 2, totals
    assert totals.get("vm.autotune.pin") == 1, totals
    states = [r["autotune"]["state"] for r in session.vm_runs
              if r.get("autotune")]
    assert states == ["measured", "pinned"], states
