"""Decode-level superinstruction tests.

Pins the accounting-transparency contract of the fused engine: for every
fusion pattern, on randomized inputs, the fused pre-decoded engine must
produce bit-identical results *and* bit-identical ``ExecStats`` to both
the unfused pre-decoded engine and the reference engine — including when
the instruction budget traps mid-window.  Also covers decode-cache
invalidation of fused blocks, the fusion toggle/escape hatch, the
fusion report, and call-edge attribution.
"""

import numpy as np
import pytest

from repro.ir import (
    F32,
    I32,
    I64,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    VectorType,
    verify_function,
)
from repro.vm import ExecutionLimitExceeded, Interpreter
from repro.vm.interp import FUSION_PATTERNS

ENGINES = ("fused", "unfused", "reference")


def _interp(module, mode, **kwargs):
    return Interpreter(
        module,
        predecode=mode != "reference",
        superinstructions=mode == "fused",
        **kwargs,
    )


def _stats_snapshot(interp):
    s = interp.stats
    return (s.cycles, s.instructions, dict(s.counts))


def _compare_engines(module, run, seeds=range(8), expect_hits=()):
    """Run fused/unfused/reference on identical randomized inputs.

    ``run(interp, rng)`` executes the kernel and returns a comparable
    result; all three engines must agree bit-for-bit on it and on
    ``ExecStats``.  ``expect_hits`` patterns must fire in the fused engine
    (otherwise the equivalence claim is vacuous).
    """
    for seed in seeds:
        outcomes = {}
        for mode in ENGINES:
            interp = _interp(module, mode)
            result = run(interp, np.random.default_rng(seed))
            outcomes[mode] = (result, _stats_snapshot(interp))
            if mode == "fused":
                for pattern in expect_hits:
                    assert interp.fuse_hits.get(pattern, 0) > 0, (
                        f"seed {seed}: pattern {pattern!r} never fired"
                    )
        for mode in ("fused", "unfused"):
            got_result, got_stats = outcomes[mode]
            want_result, want_stats = outcomes["reference"]
            np.testing.assert_array_equal(
                np.asarray(got_result), np.asarray(want_result),
                err_msg=f"seed {seed}: {mode} result differs from reference",
            )
            assert got_stats == want_stats, (
                f"seed {seed}: {mode} ExecStats differ from reference"
            )


# -- per-pattern equivalence matrix -------------------------------------------

def _gep_load_module():
    module = Module("t")
    f = Function("f", FunctionType(I32, (PointerType(I32), I64)), ["p", "i"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    b.ret(b.load(b.gep(f.args[0], f.args[1])))
    verify_function(f)
    return module


def test_gep_load_pattern():
    module = _gep_load_module()

    def run(interp, rng):
        data = rng.integers(0, 2**31, size=16, dtype=np.uint32)
        addr = interp.memory.alloc_array(data)
        return interp.run("f", addr, int(rng.integers(0, 16)))

    _compare_engines(module, run, expect_hits=("window", "gep_load"))


def _gep_store_module():
    module = Module("t")
    f = Function(
        "f", FunctionType(I32, (PointerType(I32), I64, I32)), ["p", "i", "v"]
    )
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    b.store(f.args[2], b.gep(f.args[0], f.args[1]))
    b.ret(f.args[2])
    verify_function(f)
    return module


def test_gep_store_pattern():
    module = _gep_store_module()

    def run(interp, rng):
        data = np.zeros(16, dtype=np.uint32)
        addr = interp.memory.alloc_array(data)
        idx = int(rng.integers(0, 16))
        val = int(rng.integers(0, 2**31))
        interp.run("f", addr, idx, val)
        return interp.memory.read_array(addr, np.uint32, 16)

    _compare_engines(module, run, expect_hits=("window", "gep_store"))


def _binop_chain_module(opcodes, type_):
    module = Module("t")
    f = Function("f", FunctionType(type_, (type_, type_)), ["x", "y"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    acc = f.args[0]
    for opcode in opcodes:
        acc = b.binop(opcode, acc, f.args[1])
    b.ret(acc)
    verify_function(f)
    return module


def test_binop_binop_int_chain():
    module = _binop_chain_module(("add", "mul", "xor", "sub", "and"), I32)

    def run(interp, rng):
        return interp.run(
            "f", int(rng.integers(0, 2**32)), int(rng.integers(0, 2**32))
        )

    _compare_engines(module, run, expect_hits=("window", "binop_binop"))


def test_binop_binop_float_chain():
    module = _binop_chain_module(("fmul", "fadd", "fsub", "fdiv"), F32)

    def run(interp, rng):
        x = float(np.float32(rng.uniform(-1e3, 1e3)))
        y = float(np.float32(rng.uniform(-1e3, 1e3)))
        return interp.run("f", x, y)

    _compare_engines(module, run, expect_hits=("window", "binop_binop"))


def _cmp_condbr_module(cmp):
    """Count down from n — every iteration ends in icmp/fcmp + condbr."""
    module = Module("t")
    f = Function("f", FunctionType(I32, (I32,)), ["n"])
    module.add_function(f)
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b = IRBuilder(f, entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I32, "i")
    total = b.phi(I32, "total")
    nxt = b.sub(i, b.const(I32, 1))
    acc = b.binop("add", total, i)
    if cmp == "icmp":
        cond = b.icmp("ugt", nxt, b.const(I32, 0))
    else:
        fi = b.cast("uitofp", nxt, F32)
        cond = b.fcmp("ogt", fi, b.const(F32, 0.0))
    b.condbr(cond, loop, done)
    for phi, first, again in ((i, f.args[0], nxt), (total, b.const(I32, 0), acc)):
        phi.append_operand(first)
        phi.append_operand(entry)
        phi.append_operand(again)
        phi.append_operand(loop)
    b.position_at_end(done)
    b.ret(acc)
    verify_function(f)
    return module


@pytest.mark.parametrize("cmp", ["icmp", "fcmp"])
def test_cmp_condbr_pattern(cmp):
    module = _cmp_condbr_module(cmp)

    def run(interp, rng):
        return interp.run("f", int(rng.integers(1, 50)))

    _compare_engines(module, run, expect_hits=("cmp_condbr",))


def _stream_triple_module():
    module = Module("t")
    ptr = PointerType(F32)
    f = Function("f", FunctionType(I32, (ptr, ptr)), ["src", "dst"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    mask = b.all_ones_mask(8)
    v = b.vload(f.args[0], 8, mask)
    o = b.binop("fadd", v, v)
    b.vstore(o, f.args[1], mask)
    b.ret(b.const(I32, 0))
    verify_function(f)
    return module


def test_vload_binop_vstore_pattern():
    module = _stream_triple_module()

    def run(interp, rng):
        src = rng.uniform(-100, 100, size=8).astype(np.float32)
        a_src = interp.memory.alloc_array(src)
        a_dst = interp.memory.alloc_array(np.zeros(8, dtype=np.float32))
        interp.run("f", a_src, a_dst)
        return interp.memory.read_array(a_dst, np.float32, 8)

    _compare_engines(module, run, expect_hits=("window", "vload_binop_vstore"))


def test_fusion_patterns_all_covered():
    """Every advertised pattern has a matrix test in this module."""
    assert set(FUSION_PATTERNS) == {
        "window", "gep_load", "gep_store", "binop_binop",
        "vload_binop_vstore", "cmp_condbr",
    }


# -- instruction-budget traps inside fused groups -----------------------------

@pytest.mark.parametrize("limit", [1, 2, 3, 4, 5, 6])
def test_budget_trap_mid_window_matches_reference(limit):
    """A bulk-charged window crossing the budget must roll back to the
    exact reference trap state (instructions == limit + 1, same counts)."""
    module = _binop_chain_module(("add", "mul", "xor", "sub", "and", "or"), I32)
    outcomes = {}
    for mode in ENGINES:
        interp = _interp(module, mode, max_instructions=limit)
        with pytest.raises(ExecutionLimitExceeded, match="@f"):
            interp.run("f", 7, 9)
        outcomes[mode] = _stats_snapshot(interp)
        assert interp.stats.instructions == limit + 1
    assert outcomes["fused"] == outcomes["reference"]
    assert outcomes["unfused"] == outcomes["reference"]


@pytest.mark.parametrize("limit", [3, 4, 5, 10, 17])
def test_budget_trap_in_loop_matches_reference(limit):
    module = _cmp_condbr_module("icmp")
    outcomes = {}
    for mode in ENGINES:
        interp = _interp(module, mode, max_instructions=limit)
        with pytest.raises(ExecutionLimitExceeded, match="@f"):
            interp.run("f", 1000)
        outcomes[mode] = _stats_snapshot(interp)
        assert interp.stats.instructions == limit + 1
    assert outcomes["fused"] == outcomes["reference"]
    assert outcomes["unfused"] == outcomes["reference"]


def test_budget_trap_mid_memory_window_leaves_exact_state():
    """Trapping ops inside a window keep exact interleaved accounting, so
    a store before the trap point has happened, one after it has not."""
    module = Module("t")
    ptr = PointerType(I32)
    f = Function("f", FunctionType(I32, (ptr,)), ["p"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    one = b.const(I64, 1)
    b.store(b.const(I32, 11), b.gep(f.args[0], b.const(I64, 0)))
    b.store(b.const(I32, 22), b.gep(f.args[0], one))
    b.store(b.const(I32, 33), b.gep(f.args[0], b.const(I64, 2)))
    b.ret(b.const(I32, 0))
    verify_function(f)

    cells = {}
    for mode in ENGINES:
        interp = _interp(module, mode, max_instructions=3)
        addr = interp.memory.alloc_array(np.zeros(3, dtype=np.uint32))
        with pytest.raises(ExecutionLimitExceeded):
            interp.run("f", addr)
        cells[mode] = interp.memory.read_array(addr, np.uint32, 3).tolist()
    assert cells["fused"] == cells["reference"]
    assert cells["unfused"] == cells["reference"]


# -- decode-cache invalidation ------------------------------------------------

def test_clear_decode_cache_invalidates_fused_blocks():
    module = _binop_chain_module(("add", "mul"), I32)
    interp = Interpreter(module, superinstructions=True)
    assert interp.run("f", 3, 5) == (3 + 5) * 5
    assert interp.fuse_static.get("window", 0) > 0

    # Transform the module: the accumulation chain becomes sub/xor.
    f = module.functions["f"]
    instrs = [i for i in f.blocks[0].instructions if i.opcode in ("add", "mul")]
    instrs[0].opcode = "sub"
    instrs[1].opcode = "xor"

    # Stale decode: the fused window still computes the old chain.
    assert interp.run("f", 3, 5) == (3 + 5) * 5

    interp.clear_decode_cache()
    assert interp.fuse_static == {}
    assert interp.run("f", 3, 5) == ((3 - 5) & 0xFFFFFFFF) ^ 5
    assert interp.fuse_static.get("window", 0) > 0


# -- toggle / escape hatch ----------------------------------------------------

def test_superinstructions_default_and_escape_hatch(monkeypatch):
    module = _binop_chain_module(("add", "mul"), I32)
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    assert Interpreter(module).superinstructions is True
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    assert Interpreter(module).superinstructions is False
    # An explicit argument always wins over the environment.
    assert Interpreter(module, superinstructions=True).superinstructions is True


def test_unfused_engine_records_no_hits():
    module = _binop_chain_module(("add", "mul", "sub"), I32)
    interp = Interpreter(module, superinstructions=False)
    interp.run("f", 1, 2)
    assert interp.fuse_hits == {}
    assert interp.fusion_report()["superinstructions"] is False


def test_fusion_report_and_hotspots_entry():
    module = _binop_chain_module(("add", "mul", "sub"), I32)
    interp = Interpreter(module, superinstructions=True)
    interp.run("f", 1, 2)
    report = interp.fusion_report()
    assert report["superinstructions"] is True
    assert report["sites"].get("window", 0) > 0
    assert report["hits"].get("window", 0) > 0
    fuse_entries = [h for h in interp.hotspots() if h["function"] == "(vm.fuse)"]
    assert len(fuse_entries) == 1
    assert fuse_entries[0]["fusion"]["hits"] == report["hits"]

    # reset_stats drops run counters but keeps decode-time site counters.
    interp.reset_stats()
    assert interp.fuse_hits == {}
    assert interp.fuse_static.get("window", 0) > 0


# -- call-edge attribution ----------------------------------------------------

def _call_module():
    module = Module("t")
    helper = Function("helper", FunctionType(I32, (I32,)), ["x"])
    module.add_function(helper)
    hb = IRBuilder(helper, helper.add_block("entry"))
    hb.ret(hb.binop("add", helper.args[0], hb.const(I32, 1)))
    main = Function("main", FunctionType(I32, (I32,)), ["x"])
    module.add_function(main)
    mb = IRBuilder(main, main.add_block("entry"))
    a = mb.call(helper, [main.args[0]])
    c = mb.call(helper, [a])
    mb.ret(c)
    verify_function(helper)
    verify_function(main)
    return module


def test_call_edge_attribution():
    module = _call_module()
    interp = Interpreter(module)
    assert interp.run("main", 40) == 42

    edges = {(e["caller"], e["callee"]): e for e in interp.call_edges()}
    assert ("<root>", "main") in edges
    assert ("main", "helper") in edges
    assert edges[("main", "helper")]["calls"] == 2
    assert edges[("<root>", "main")]["calls"] == 1
    # The root edge's inclusive cycles cover the whole run.
    assert edges[("<root>", "main")]["inclusive_cycles"] == pytest.approx(
        interp.stats.cycles
    )
    assert edges[("main", "helper")]["inclusive_cycles"] > 0

    hot = {h["function"]: h for h in interp.hotspots()}
    assert hot["helper"]["callers"]["main"]["calls"] == 2
    assert hot["main"]["callers"]["<root>"]["calls"] == 1


def test_telemetry_vm_fuse_totals():
    from repro import telemetry

    module = _binop_chain_module(("add", "mul", "sub"), I32)
    with telemetry.collect() as session:
        interp = Interpreter(module, superinstructions=True)
        interp.run("f", 1, 2)
        telemetry.record_vm_run(
            "t/f", interp.stats, interp.hotspots(),
            fusion=interp.fusion_report(), wall_seconds=0.001,
        )
    totals = session.vm_fuse_totals()
    assert totals.get("vm.fuse.window", 0) > 0
    doc = session.as_dict()
    assert doc["vm"]["fuse_totals"] == totals
    assert doc["vm"]["runs"][0]["wall_seconds"] == 0.001
