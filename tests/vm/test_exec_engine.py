"""Execution-engine tests for this PR's correctness and performance work:

- ``atomicrmw`` op matrix, including the signed ``smin``/``smax`` forms the
  VM previously mis-evaluated through unsigned comparison.
- Budget enforcement inside phi evaluation (previously unmetered, so a
  phi-only spin loop could run forever).
- ``reset_stats`` in-place semantics.
- Pre-decoded engine equivalence: identical results *and* bit-identical
  ``ExecStats`` versus the reference interpreter on the fig4 suite.
"""

import numpy as np
import pytest

from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.driver import compile_parsimony
from repro.ir import (
    I32,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    verify_function,
)
from repro.ir.instructions import ATOMIC_RMW_OPS
from repro.vm import ExecutionLimitExceeded, Interpreter


# -- atomicrmw op matrix ------------------------------------------------------

def _atomic_module(op):
    module = Module("t")
    f = Function(
        "f", FunctionType(I32, (PointerType(I32), I32)), ["ptr", "val"]
    )
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    b.ret(b.atomicrmw(op, f.args[0], f.args[1]))
    verify_function(f)
    return module, f


NEG5 = -5 & 0xFFFFFFFF

# (op, memory-before, operand, memory-after).  The smin/smax rows pit a
# negative cell against a small positive operand, so an unsigned compare
# gives the wrong answer on both.
ATOMIC_CASES = [
    ("add", 10, 7, 17),
    ("sub", 10, 7, 3),
    ("and", 0b1100, 0b1010, 0b1000),
    ("or", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("umax", 5, NEG5, NEG5),
    ("umin", 5, NEG5, 5),
    ("smax", NEG5, 3, 3),
    ("smin", NEG5, 3, NEG5),
]


def test_atomic_cases_cover_every_rmw_op():
    assert {case[0] for case in ATOMIC_CASES} == set(ATOMIC_RMW_OPS)


@pytest.mark.parametrize("predecode", [True, False], ids=["decoded", "reference"])
@pytest.mark.parametrize("op,before,operand,after", ATOMIC_CASES,
                         ids=[c[0] for c in ATOMIC_CASES])
def test_atomicrmw_matrix(op, before, operand, after, predecode):
    module, f = _atomic_module(op)
    interp = Interpreter(module, predecode=predecode)
    addr = interp.memory.alloc_array(np.array([before], dtype=np.uint32))
    old = interp.run(f, addr, operand)
    assert old == before, f"{op}: must return the pre-update value"
    cell = interp.memory.read_array(addr, np.uint32, 1)[0]
    assert cell == after, f"{op}: wrong read-modify-write result"


def test_builder_rejects_unknown_atomic_op():
    module = Module("t")
    f = Function(
        "f", FunctionType(I32, (PointerType(I32), I32)), ["ptr", "val"]
    )
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    with pytest.raises(ValueError, match="atomicrmw.*nand"):
        b.atomicrmw("nand", f.args[0], f.args[1])


SIGNED_ATOMIC_SRC = """
void kernel(i32* acc, i32* vals, u64 n) {
    psim (gang_size=8, num_threads=n) {
        u64 i = psim_get_thread_num();
        i32 v = vals[i];
        psim_atomic_smin(&acc[0], v);
        psim_atomic_smax(&acc[1], v);
    }
}
"""


def test_frontend_signed_atomic_intrinsics():
    """psim_atomic_smin/smax reduce signed extrema across the gang."""
    module = compile_parsimony(SIGNED_ATOMIC_SRC)
    interp = Interpreter(module)
    acc = np.array([100, -100], dtype=np.int32)
    vals = np.array([-4, -1, 3, 2, 0, -2, 1, -3], dtype=np.int32)
    acc_addr = interp.memory.alloc_array(acc)
    vals_addr = interp.memory.alloc_array(vals)
    interp.run("kernel", acc_addr, vals_addr, vals.size)
    out = interp.memory.read_array(acc_addr, np.int32, 2)
    np.testing.assert_array_equal(out, [-4, 3])


# -- phi budget enforcement ---------------------------------------------------

def _spin_module():
    """while (1) i = phi(...) — every dynamic instruction is a phi or br."""
    module = Module("t")
    f = Function("spin", FunctionType(I32, ()), [])
    module.add_function(f)
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    b = IRBuilder(f, entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I32, "i")
    b.br(loop)
    i.append_operand(Constant(I32, 0))
    i.append_operand(entry)
    i.append_operand(i)
    i.append_operand(loop)
    verify_function(f)
    return module, f


@pytest.mark.parametrize("predecode", [True, False], ids=["decoded", "reference"])
def test_phi_loop_hits_instruction_budget(predecode):
    module, f = _spin_module()
    limit = 50
    interp = Interpreter(module, max_instructions=limit, predecode=predecode)
    with pytest.raises(ExecutionLimitExceeded, match="@spin"):
        interp.run(f)
    # The budget check runs after every charge, phis included, so the trap
    # fires on exactly the first instruction past the limit.
    assert interp.stats.instructions == limit + 1


# -- reset_stats --------------------------------------------------------------

def test_reset_stats_zeroes_in_place():
    module, f = _atomic_module("add")
    interp = Interpreter(module)
    stats = interp.stats

    addr = interp.memory.alloc_array(np.array([0], dtype=np.uint32))
    interp.run(f, addr, 1)
    first = (stats.cycles, stats.instructions, dict(stats.counts))
    assert first[1] > 0

    returned = interp.reset_stats()
    assert returned is stats, "reset must mutate, not replace, the stats object"
    assert interp.stats is stats
    assert (stats.cycles, stats.instructions, stats.counts) == (0.0, 0, {})
    assert interp.hotspots() == []

    interp.run(f, addr, 1)
    second = (stats.cycles, stats.instructions, dict(stats.counts))
    assert second == first, "a reset run must re-measure from zero"


# -- pre-decoded vs reference equivalence on the fig4 suite -------------------

@pytest.mark.parametrize("impl", ["scalar", "autovec", "parsimony", "ispc"])
@pytest.mark.parametrize("spec", BENCHMARKS, ids=lambda s: s.name)
def test_predecode_matches_reference(spec, impl):
    """All three engines — fused, unfused pre-decoded, reference — must
    produce bit-identical outputs and bit-identical ``ExecStats``."""
    from repro.benchsuite.runner import build_impl

    module = build_impl(spec, impl)
    fused = run_impl(spec, impl, module=module, predecode=True,
                     superinstructions=True)
    unfused = run_impl(spec, impl, module=module, predecode=True,
                       superinstructions=False)
    slow = run_impl(spec, impl, module=module, predecode=False)

    for fast in (fused, unfused):
        assert fast.stats.cycles == slow.stats.cycles
        assert fast.stats.instructions == slow.stats.instructions
        assert fast.stats.counts == slow.stats.counts
        assert len(fast.outputs) == len(slow.outputs)
        for got, want in zip(fast.outputs, slow.outputs):
            np.testing.assert_array_equal(got, want)
        if fast.returned is not None or slow.returned is not None:
            np.testing.assert_array_equal(
                np.asarray(fast.returned), np.asarray(slow.returned)
            )
