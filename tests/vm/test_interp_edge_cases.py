"""Interpreter edge cases: traps, limits, undef, stack discipline."""

import numpy as np
import pytest

from repro.ir import (
    I32,
    I64,
    VOID,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    UndefValue,
)
from repro.vm import ExecutionLimitExceeded, Interpreter, VMTrap


def build_module(make):
    module = Module("t")
    make(module)
    return module


def test_infinite_loop_hits_instruction_limit():
    def make(module):
        f = Function("spin", FunctionType(VOID, ()), [])
        module.add_function(f)
        entry = f.add_block("entry")
        loop = f.add_block("loop")
        b = IRBuilder(f, entry)
        b.br(loop)
        b.position_at_end(loop)
        b.br(loop)

    module = build_module(make)
    interp = Interpreter(module, max_instructions=10_000)
    with pytest.raises(ExecutionLimitExceeded):
        interp.run("spin")


def test_unreachable_traps():
    def make(module):
        f = Function("f", FunctionType(VOID, ()), [])
        module.add_function(f)
        b = IRBuilder(f, f.add_block("entry"))
        b.unreachable()

    with pytest.raises(VMTrap, match="unreachable"):
        Interpreter(build_module(make)).run("f")


def test_call_depth_limit():
    def make(module):
        f = Function("rec", FunctionType(I32, (I32,)), ["x"])
        module.add_function(f)
        b = IRBuilder(f, f.add_block("entry"))
        r = b.call(f, [f.args[0]])
        b.ret(r)

    with pytest.raises(VMTrap, match="depth"):
        Interpreter(build_module(make)).run("rec", 1)


def test_wrong_arity_rejected():
    def make(module):
        f = Function("f", FunctionType(I32, (I32,)), ["x"])
        module.add_function(f)
        b = IRBuilder(f, f.add_block("entry"))
        b.ret(f.args[0])

    interp = Interpreter(build_module(make))
    with pytest.raises(TypeError, match="takes 1 args"):
        interp.run("f")


def test_undef_values_execute_as_zero():
    def make(module):
        f = Function("f", FunctionType(I32, ()), [])
        module.add_function(f)
        b = IRBuilder(f, f.add_block("entry"))
        v = b.add(UndefValue(I32), Constant(I32, 5))
        b.ret(v)

    assert Interpreter(build_module(make)).run("f") == 5


def test_alloca_stack_discipline_across_calls():
    """Frame-local allocas are reclaimed on return: many calls must not
    exhaust VM memory."""

    def make(module):
        callee = Function("worker", FunctionType(I32, ()), [])
        module.add_function(callee)
        b = IRBuilder(callee, callee.add_block("entry"))
        slot = b.alloca(I64, 4096, "big")
        b.store(Constant(I64, 7), slot)
        b.ret(b.trunc(b.load(slot), I32))

        f = Function("main", FunctionType(I32, ()), [])
        module.add_function(f)
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        b.br(header)
        b.position_at_end(header)
        i = b.phi(I32, "i")
        i.append_operand(Constant(I32, 0))
        i.append_operand(entry)
        b.condbr(b.icmp("ult", i, Constant(I32, 1000)), body, exit_)
        b.position_at_end(body)
        b.call(callee, [])
        nxt = b.add(i, Constant(I32, 1))
        i.append_operand(nxt)
        i.append_operand(body)
        b.br(header)
        b.position_at_end(exit_)
        b.ret(Constant(I32, 0))

    # 1000 calls x 32KiB alloca would blow the default arena without the
    # per-frame reset.
    Interpreter(build_module(make)).run("main")


def test_stats_accumulate_across_runs():
    def make(module):
        f = Function("f", FunctionType(I32, (I32,)), ["x"])
        module.add_function(f)
        b = IRBuilder(f, f.add_block("entry"))
        b.ret(b.add(f.args[0], Constant(I32, 1)))

    interp = Interpreter(build_module(make))
    interp.run("f", 1)
    once = interp.stats.instructions
    interp.run("f", 2)
    assert interp.stats.instructions == 2 * once
