"""Interpreter unit tests: arithmetic semantics, control flow, memory."""

import numpy as np
import pytest

from repro.backend import AVX512
from repro.ir import (
    F32,
    I8,
    I32,
    I64,
    VOID,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    VectorType,
    verify_function,
)
from repro.vm import Interpreter, Memory, VMTrap


def run_fn(build, ret_type, arg_types, args, arg_names=None):
    """Build a single-function module with ``build(builder, func)`` and run it."""
    module = Module("t")
    f = Function("f", FunctionType(ret_type, tuple(arg_types)), arg_names)
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    build(b, f)
    verify_function(f)
    interp = Interpreter(module)
    return interp.run(f, *args)


def test_add_and_ret():
    def build(b, f):
        b.ret(b.add(f.args[0], f.args[1]))

    assert run_fn(build, I32, [I32, I32], [5, 7]) == 12


def test_wraparound_semantics():
    def build(b, f):
        b.ret(b.add(f.args[0], f.args[1]))

    assert run_fn(build, I8, [I8, I8], [200, 100]) == (300 & 0xFF)


def test_signed_division_truncates_toward_zero():
    def build(b, f):
        b.ret(b.sdiv(f.args[0], f.args[1]))

    # -7 / 2 == -3 (trunc), not -4 (floor)
    result = run_fn(build, I32, [I32, I32], [-7 & 0xFFFFFFFF, 2])
    assert result == (-3 & 0xFFFFFFFF)


def test_division_by_zero_traps():
    def build(b, f):
        b.ret(b.udiv(f.args[0], f.args[1]))

    with pytest.raises(VMTrap):
        run_fn(build, I32, [I32, I32], [1, 0])


def test_loop_sum():
    """for (i = 0; i < n; i++) acc += i  — exercises phis and branches."""

    module = Module("t")
    f = Function("sum", FunctionType(I32, (I32,)), ["n"])
    module.add_function(f)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    zero = Constant(I32, 0)
    one = Constant(I32, 1)
    b.br(header)

    b.position_at_end(header)
    i_phi = b.phi(I32, "i")
    acc_phi = b.phi(I32, "acc")
    cond = b.icmp("slt", i_phi, f.args[0])
    b.condbr(cond, body, exit_)

    b.position_at_end(body)
    acc2 = b.add(acc_phi, i_phi)
    i2 = b.add(i_phi, one)
    b.br(header)

    i_phi.append_operand(zero)
    i_phi.append_operand(entry)
    i_phi.append_operand(i2)
    i_phi.append_operand(body)
    acc_phi.append_operand(zero)
    acc_phi.append_operand(entry)
    acc_phi.append_operand(acc2)
    acc_phi.append_operand(body)

    b.position_at_end(exit_)
    b.ret(acc_phi)
    verify_function(f)

    interp = Interpreter(module)
    assert interp.run(f, 10) == 45
    assert interp.stats.cycles > 0
    assert interp.stats.counts["condbr"] == 11


def test_memory_load_store():
    def build(b, f):
        ptr = f.args[0]
        x = b.load(ptr)
        p1 = b.gep(ptr, Constant(I32, 1))
        b.store(b.add(x, Constant(I32, 100)), p1)
        b.ret()

    module = Module("t")
    f = Function("f", FunctionType(VOID, (PointerType(I32),)), ["p"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    build(b, f)
    verify_function(f)
    interp = Interpreter(module)
    addr = interp.memory.alloc_array(np.array([42, 0], dtype=np.uint32))
    interp.run(f, addr)
    assert interp.memory.read_array(addr, np.uint32, 2).tolist() == [42, 142]


def test_vector_ops_and_masks():
    from repro.ir import I1

    module = Module("t")
    f = Function("f", FunctionType(VOID, (PointerType(I32),)), ["p"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    full = b.all_ones_mask(8)
    half = Constant(VectorType(I1, 8), [1, 1, 1, 1, 0, 0, 0, 0])
    x = b.vload(f.args[0], 8, full)
    y = b.add(x, b.broadcast(Constant(I32, 10), 8))
    b.vstore(y, f.args[0], half)
    b.ret()
    verify_function(f)
    interp = Interpreter(module)
    addr = interp.memory.alloc_array(np.arange(8, dtype=np.uint32))
    interp.run(f, addr)
    out = interp.memory.read_array(addr, np.uint32, 8).tolist()
    assert out == [10, 11, 12, 13, 4, 5, 6, 7]


def test_gather_scatter_and_shuffle():
    module = Module("t")
    f = Function("f", FunctionType(VOID, (PointerType(I32), PointerType(I32))), ["src", "dst"])
    module.add_function(f)
    b = IRBuilder(f, f.add_block("entry"))
    full = b.all_ones_mask(4)
    base = b.ptrtoint(f.args[0])
    basev = b.broadcast(base, 4)
    # reversed indices: 3,2,1,0 scaled by 4 bytes
    offs = Constant(VectorType(I64, 4), [12, 8, 4, 0])
    addrs = b.inttoptr(b.add(basev, offs), VectorType(PointerType(I32), 4))
    g = b.gather(addrs, full)
    b.vstore(g, f.args[1], full)
    b.ret()
    verify_function(f)
    interp = Interpreter(module)
    src = interp.memory.alloc_array(np.array([1, 2, 3, 4], dtype=np.uint32))
    dst = interp.memory.alloc_array(np.zeros(4, dtype=np.uint32))
    interp.run(f, src, dst)
    assert interp.memory.read_array(dst, np.uint32, 4).tolist() == [4, 3, 2, 1]
    # gather must be costed much higher than a packed load
    gather_cost = interp.stats.counts.get("gather")
    assert gather_cost == 1


def test_f32_rounding_consistency():
    """Scalar f32 math must round like numpy float32 vector math."""

    def build(b, f):
        b.ret(b.fmul(f.args[0], f.args[1]))

    r = run_fn(build, F32, [F32, F32], [1.1, 2.3])
    assert r == float(np.float32(np.float32(1.1) * np.float32(2.3)))


def test_saturating_ops():
    def build(b, f):
        b.ret(b.addsat_u(f.args[0], f.args[1]))

    assert run_fn(build, I8, [I8, I8], [200, 100]) == 255

    def build2(b, f):
        b.ret(b.subsat_u(f.args[0], f.args[1]))

    assert run_fn(build2, I8, [I8, I8], [10, 100]) == 0


def test_call_between_functions():
    module = Module("t")
    callee = Function("sq", FunctionType(I32, (I32,)), ["x"])
    module.add_function(callee)
    b = IRBuilder(callee, callee.add_block("entry"))
    b.ret(b.mul(callee.args[0], callee.args[0]))

    caller = Function("main", FunctionType(I32, (I32,)), ["x"])
    module.add_function(caller)
    b = IRBuilder(caller, caller.add_block("entry"))
    r = b.call(callee, [caller.args[0]])
    b.ret(b.add(r, Constant(I32, 1)))
    verify_function(caller)
    verify_function(callee)

    interp = Interpreter(module)
    assert interp.run(caller, 6) == 37
