"""The paper's §2.2 motivation listings, executed (see DESIGN.md).

Listing 1 (OpenMP/serial) and Listing 2 (ispc) live in
``tests/autovec`` and ``tests/ispc``; this file covers Listing 3
(explicit synchronization) and Listing 4 (atomics under the
non-gang-synchronous model).
"""

import numpy as np

from repro.backend import AVX2, AVX512, SSE4
from repro.driver import compile_parsimony
from repro.vm import Interpreter

LISTING3 = """
void foo(u32* a, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        u32 tmp = a[i];
        psim_gang_sync();    // explicit! (paper Listing 3)
        a[i + 1] = tmp;
    }
}
"""


def _run(src, fn, array, args, machine=AVX512):
    module = compile_parsimony(src)
    interp = Interpreter(module, machine=machine)
    addr = interp.memory.alloc_array(array)
    interp.run(fn, addr, *args)
    return interp.memory.read_array(addr, array.dtype, array.size)


def test_listing3_explicit_sync_gives_shift_semantics():
    """All gang loads happen before any gang store: a parallel shift."""
    n = 16
    a = np.arange(n + 1, dtype=np.uint32)
    out = _run(LISTING3, "foo", a, [n])
    np.testing.assert_array_equal(out[1:], np.arange(n, dtype=np.uint32))


def test_listing3_is_machine_width_independent():
    """Unlike Listing 2's ispc version, the gang size lives in the program,
    so the result is identical on 128/256/512-bit machines."""
    n = 16
    expected = None
    for machine in (SSE4, AVX2, AVX512):
        a = np.arange(n + 1, dtype=np.uint32)
        out = _run(LISTING3, "foo", a, [n], machine)
        if expected is None:
            expected = out
        np.testing.assert_array_equal(out, expected)


LISTING4 = """
void foo(u32* a, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        psim_atomic_add(a + i, (u32)1);
        psim_atomic_add(a + i + 1, (u32)1);
    }
}
"""


def test_listing4_adjacent_atomics():
    """Listing 4: two relaxed atomics to adjacent addresses.  In Parsimony's
    non-gang-synchronous model the compiler may reorder them (standard
    single-thread legality); the commutativity of the adds means the final
    counts are well-defined either way — and that is what we check."""
    n = 16
    a = np.zeros(n + 1, dtype=np.uint32)
    out = _run(LISTING4, "foo", a, [n])
    # every cell i gets +1 from thread i and +1 from thread i-1
    expected = np.ones(n + 1, dtype=np.uint32)
    expected[1:n] += 1
    np.testing.assert_array_equal(out, expected)


def test_boundary_gang_queries():
    """psim_is_head_gang/psim_is_tail_gang drive boundary work (§3)."""
    src = """
    void mark(u32* a, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            u32 tag = 0;
            if (psim_is_head_gang()) { tag = tag + 1; }
            if (psim_is_tail_gang()) { tag = tag + 2; }
            a[i] = tag;
        }
    }
    """
    n = 24
    out = _run(src, "mark", np.zeros(n, np.uint32), [n])
    np.testing.assert_array_equal(out[:8], 1)   # head gang
    np.testing.assert_array_equal(out[8:16], 0)  # middle
    np.testing.assert_array_equal(out[16:], 2)  # tail gang
