"""Unit tests for the PsimC lexer and parser."""

import pytest

from repro.frontend import LexError, ParseError, parse_expression, parse_program, tokenize
from repro.frontend import ast


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_tokenize_basics():
    assert kinds("x + 42") == [("ident", "x"), ("op", "+"), ("int", "42")]
    assert kinds("0xFF") == [("int", "0xFF")]
    assert kinds("1.5f") == [("float", "1.5f")]
    assert kinds("1e3") == [("float", "1e3")]
    assert kinds("a >> 2") == [("ident", "a"), ("op", ">>"), ("int", "2")]
    assert kinds("i32")[0][0] == "keyword"


def test_comments_skipped():
    assert kinds("a // comment\n + /* block\n comment */ b") == [
        ("ident", "a"), ("op", "+"), ("ident", "b"),
    ]


def test_unterminated_comment_rejected():
    with pytest.raises(LexError, match="unterminated"):
        tokenize("a /* never closed")


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a ` b")


def test_precedence_mul_over_add():
    expr = parse_expression("a + b * c")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_shift_vs_compare():
    expr = parse_expression("a << 1 < b")
    assert expr.op == "<"
    assert isinstance(expr.left, ast.Binary) and expr.left.op == "<<"


def test_ternary_right_associative():
    expr = parse_expression("a ? b : c ? d : e")
    assert isinstance(expr, ast.Ternary)
    assert isinstance(expr.els, ast.Ternary)


def test_unary_and_cast():
    expr = parse_expression("-(u8)x")
    assert isinstance(expr, ast.Unary) and expr.op == "-"
    assert isinstance(expr.operand, ast.Cast)
    assert expr.operand.target.name == "u8"


def test_deref_and_addrof():
    assert isinstance(parse_expression("*p"), ast.Deref)
    assert isinstance(parse_expression("&a[3]"), ast.AddrOf)


def test_index_chains():
    expr = parse_expression("a[b[i]]")
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.index, ast.Index)


def test_program_structure():
    program = parse_program("""
    i32 add(i32 a, i32 b) { return a + b; }
    void nothing() { }
    """)
    assert [f.name for f in program.functions] == ["add", "nothing"]
    assert program.functions[0].ret.name == "i32"
    assert [p.name for p in program.functions[0].params] == ["a", "b"]


def test_psim_statement_parses():
    program = parse_program("""
    void f(f32* a, u64 n) {
        psim (gang_size=16, num_threads=n) {
            u64 i = psim_get_thread_num();
            a[i] = 0.0f;
        }
    }
    """)
    stmt = program.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.PsimStmt)
    assert stmt.count_kind == "num_threads"


def test_parse_errors_have_line_numbers():
    with pytest.raises(ParseError, match=r"line \d+"):
        parse_program("i32 f() {\n  return 1;\n  + ;\n}")


def test_for_with_empty_clauses():
    program = parse_program("void f() { for (;;) { break; } }")
    loop = program.functions[0].body.stmts[0]
    assert isinstance(loop, ast.ForStmt)
    assert loop.init is None and loop.cond is None and loop.step is None


def test_increment_sugar():
    program = parse_program("void f() { for (i32 i = 0; i < 4; i++) { } }")
    step = program.functions[0].body.stmts[0].step
    assert isinstance(step, ast.Assign) and step.op == "+="
