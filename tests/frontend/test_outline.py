"""Tests for SPMD region outlining (paper §4.1, Listing 6)."""

import pytest

from repro.frontend import SemaError, compile_source
from repro.ir import print_function


SRC = """
void scale(f32* a, f32* b, u64 n, f32 k) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        b[i] = a[i] * k;
    }
}
"""


def test_outlined_functions_created():
    module = compile_source(SRC)
    names = set(module.functions)
    assert names == {"scale", "scale.psim0", "scale.psim0.tail"}


def test_spmd_annotations():
    module = compile_source(SRC)
    full = module.functions["scale.psim0"]
    tail = module.functions["scale.psim0.tail"]
    assert full.spmd is not None and not full.spmd.partial
    assert tail.spmd is not None and tail.spmd.partial
    assert full.spmd.gang_size == 16
    # captured (in first-reference order): b, a, k — n is only used as the
    # thread count, outside the body, so it is not captured
    assert [a.name for a in full.args] == ["b", "a", "k", "__gang_base", "__num_threads"]


def test_partial_variant_has_thread_guard():
    module = compile_source(SRC)
    tail = print_function(module.functions["scale.psim0.tail"])
    assert "icmp ult" in tail and "in_range" in tail
    full = print_function(module.functions["scale.psim0"])
    assert "in_range" not in full


def test_gang_loop_dispatches_full_and_partial():
    module = compile_source(SRC)
    text = print_function(module.functions["scale"])
    assert "call void @scale.psim0(" in text
    assert "call void @scale.psim0.tail(" in text
    # Listing 6 specialization: full gangs run in a tight loop over
    # n & ~(G-1); the partial gang is a single guarded call.
    assert "n_full" in text and "has_tail" in text


def test_static_exact_multiple_skips_tail():
    src = """
    void f(f32* a) {
        psim (gang_size=8, num_threads=64) {
            u64 i = psim_get_thread_num();
            a[i] = 1.0f;
        }
    }
    """
    module = compile_source(src)
    text = print_function(module.functions["f"])
    assert "call void @f.psim0(" in text
    assert "@f.psim0.tail(" not in text  # statically exact: no tail dispatch


def test_num_gangs_spelling():
    src = """
    void f(f32* a, u64 g) {
        psim (gang_size=4, num_gangs=g) {
            u64 i = psim_get_thread_num();
            a[i] = 0.0f;
        }
    }
    """
    module = compile_source(src)
    text = print_function(module.functions["f"])
    assert "mul" in text  # n_threads = g * 4


def test_gang_size_must_be_constant():
    src = """
    void f(f32* a, u64 g) {
        psim (gang_size=g, num_threads=64) { a[0] = 0.0f; }
    }
    """
    with pytest.raises(SemaError, match="compile-time constant"):
        compile_source(src)


def test_gang_size_must_be_power_of_two():
    src = """
    void f(f32* a) {
        psim (gang_size=12, num_threads=64) { a[0] = 0.0f; }
    }
    """
    with pytest.raises(SemaError, match="power of two"):
        compile_source(src)


def test_no_nested_psim():
    src = """
    void f(f32* a) {
        psim (gang_size=4, num_threads=16) {
            psim (gang_size=4, num_threads=16) { a[0] = 0.0f; }
        }
    }
    """
    with pytest.raises(SemaError, match="nest"):
        compile_source(src)


def test_no_return_inside_psim():
    src = """
    void f(f32* a) {
        psim (gang_size=4, num_threads=16) { return; }
    }
    """
    with pytest.raises(SemaError, match="return"):
        compile_source(src)


def test_cannot_assign_to_captured_scalar():
    src = """
    void f(f32* a, f32 k) {
        psim (gang_size=4, num_threads=16) { k = 1.0f; }
    }
    """
    with pytest.raises(SemaError, match="captured"):
        compile_source(src)


def test_psim_intrinsics_only_inside_region():
    with pytest.raises(SemaError, match="psim region"):
        compile_source("u64 f() { return psim_get_lane_num(); }")


def test_intrinsic_lowering_shapes():
    src = """
    void f(u32* a, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 lane = psim_get_lane_num();
            u64 tid = psim_get_thread_num();
            u64 gang = psim_get_gang_num();
            u64 total = psim_get_num_threads();
            bool head = psim_is_head_gang();
            bool tail = psim_is_tail_gang();
            a[tid] = (u32)(lane + gang + total) + (u32)head + (u32)tail;
        }
    }
    """
    module = compile_source(src)
    text = print_function(module.functions["f.psim0"])
    assert "call i64 @psim.lane_num()" in text
    assert "lshr" in text  # gang_num = base >> log2(G)


def test_horizontal_ops_lower_to_psim_externals():
    src = """
    void f(f32* a, u64 n) {
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            f32 v = a[i];
            psim_gang_sync();
            f32 s = psim_shuffle_sync(v, psim_get_lane_num() + 1);
            f32 r = psim_reduce_add_sync(s);
            bool any = psim_any_sync(v > 0.0f);
            a[i] = r + (f32)any;
        }
    }
    """
    module = compile_source(src)
    assert "psim.gang_sync" in module.externals
    assert "psim.shuffle.f32" in module.externals
    assert "psim.reduce_add.f32" in module.externals
    assert "psim.any" in module.externals
