"""End-to-end tests: PsimC source → IR → interpreter (scalar code only)."""

import numpy as np
import pytest

from repro.frontend import ParseError, SemaError, compile_source
from repro.passes import standard_pipeline
from repro.vm import Interpreter


def run(source, fn, *args, optimize=True, memory_setup=None):
    module = compile_source(source)
    if optimize:
        standard_pipeline().run(module)
    interp = Interpreter(module)
    extra = memory_setup(interp.memory) if memory_setup else ()
    return interp.run(fn, *args, *extra), interp


def test_arith_and_return():
    src = "i32 f(i32 a, i32 b) { return a * b + 2; }"
    result, _ = run(src, "f", 6, 7)
    assert result == 44


def test_unsigned_vs_signed_division():
    src = """
    i32 sd(i32 a, i32 b) { return a / b; }
    u32 ud(u32 a, u32 b) { return a / b; }
    """
    r, _ = run(src, "sd", -7 & 0xFFFFFFFF, 2)
    assert r == (-3 & 0xFFFFFFFF)
    r, _ = run(src, "ud", 0xFFFFFFFE, 2)
    assert r == 0x7FFFFFFF


def test_integer_promotion_u8():
    # u8 arithmetic promotes to i32, so 200 + 100 does not wrap
    src = "i32 f(u8 a, u8 b) { return a + b; }"
    r, _ = run(src, "f", 200, 100)
    assert r == 300


def test_control_flow_fib():
    src = """
    i64 fib(i32 n) {
        if (n < 2) { return (i64)n; }
        i64 a = 0; i64 b = 1;
        for (i32 i = 2; i <= n; i++) {
            i64 t = a + b;
            a = b;
            b = t;
        }
        return b;
    }
    """
    r, _ = run(src, "fib", 10)
    assert r == 55


def test_while_break_continue():
    src = """
    i32 f(i32 n) {
        i32 total = 0;
        i32 i = 0;
        while (true) {
            i++;
            if (i > n) { break; }
            if (i % 2 == 0) { continue; }
            total += i;
        }
        return total;
    }
    """
    r, _ = run(src, "f", 10)
    assert r == 1 + 3 + 5 + 7 + 9


def test_pointers_and_arrays():
    src = """
    void saxpy(f32* x, f32* y, f32 a, i32 n) {
        for (i32 i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
        }
    }
    """
    module = compile_source(src)
    standard_pipeline().run(module)
    interp = Interpreter(module)
    x = interp.memory.alloc_array(np.arange(8, dtype=np.float32))
    y = interp.memory.alloc_array(np.ones(8, dtype=np.float32))
    interp.run("saxpy", x, y, 2.0, 8)
    got = interp.memory.read_array(y, np.float32, 8)
    np.testing.assert_array_equal(got, 2.0 * np.arange(8, dtype=np.float32) + 1.0)


def test_local_array_and_addressof():
    src = """
    i32 f(i32 n) {
        i32 tmp[8];
        for (i32 i = 0; i < 8; i++) { tmp[i] = i * n; }
        i32 total = 0;
        for (i32 i = 0; i < 8; i++) { total += tmp[i]; }
        return total;
    }
    """
    r, _ = run(src, "f", 3)
    assert r == 3 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7)


def test_ternary_and_builtins():
    src = """
    i32 f(i32 a, i32 b) { return a > b ? a : b; }
    i32 g(i32 a, i32 b) { return max(a, b) + min(a, b) + abs(a - b); }
    f32 h(f32 x) { return sqrt(x); }
    """
    r, _ = run(src, "f", 3, 9)
    assert r == 9
    r, _ = run(src, "g", 3, 9)
    assert r == 9 + 3 + 6
    r, _ = run(src, "h", 16.0)
    assert r == 4.0


def test_saturating_builtins():
    src = """
    u8 f(u8 a, u8 b) { return addsat(a, b); }
    u8 g(u8 a, u8 b) { return subsat(a, b); }
    u8 h(u8 a, u8 b) { return avgr(a, b); }
    """
    assert run(src, "f", 200, 100)[0] == 255
    assert run(src, "g", 100, 200)[0] == 0
    assert run(src, "h", 1, 2)[0] == 2


def test_math_externals():
    src = "f64 f(f64 x, f64 y) { return pow(x, y) + exp(0.0) + floor(1.9); }"
    r, _ = run(src, "f", 2.0, 10.0)
    assert r == 1024.0 + 1.0 + 1.0


def test_function_calls():
    src = """
    i32 square(i32 x) { return x * x; }
    i32 f(i32 a) { return square(a) + square(a + 1); }
    """
    r, _ = run(src, "f", 3)
    assert r == 9 + 16


def test_shortcircuit_with_side_effect_guard():
    # RHS dereferences a pointer: must not be evaluated when LHS is false.
    src = """
    i32 f(i32* p, i32 use) {
        if (use != 0 && p[0] > 10) { return 1; }
        return 0;
    }
    """
    module = compile_source(src)
    standard_pipeline().run(module)
    interp = Interpreter(module)
    # NULL pointer, but use == 0 so the deref must be skipped
    assert interp.run("f", 0, 0) == 0


def test_parse_error():
    with pytest.raises(ParseError):
        compile_source("i32 f( { }")


def test_sema_errors():
    with pytest.raises(SemaError, match="undeclared"):
        compile_source("i32 f() { return x; }")
    with pytest.raises(SemaError, match="pointer"):
        compile_source("i32 f(i32 x) { return x[0]; }")
    with pytest.raises(SemaError, match="outside a loop"):
        compile_source("void f() { break; }")


def test_hex_literals_and_shifts():
    src = """
    u32 f(u32 x) { return (x << 4) | 0xF; }
    i32 g(i32 x) { return x >> 1; }
    u32 h(u32 x) { return x >> 1; }
    """
    assert run(src, "f", 1)[0] == 0x1F
    assert run(src, "g", -8 & 0xFFFFFFFF)[0] == (-4 & 0xFFFFFFFF)  # arithmetic
    assert run(src, "h", 0x80000000)[0] == 0x40000000  # logical


def test_casts():
    src = """
    u8 f(f32 x) { return (u8)x; }
    f32 g(u8 x) { return (f32)x * 0.5f; }
    i64 h(i32 x) { return (i64)x; }
    """
    assert run(src, "f", 200.7)[0] == 200
    assert run(src, "g", 9)[0] == 4.5
    assert run(src, "h", -1 & 0xFFFFFFFF)[0] == (-1 & 0xFFFFFFFFFFFFFFFF)  # sext
