"""Unit tests for PsimC semantic analysis: C conversions and diagnostics."""

import pytest

from repro.frontend import SemaError, compile_source, parse_program, analyze
from repro.frontend.ctypes import SCALAR_TYPES
from repro.frontend.sema import integer_promote, usual_arithmetic_conversion

I8T, U8T = SCALAR_TYPES["i8"], SCALAR_TYPES["u8"]
I16T, U16T = SCALAR_TYPES["i16"], SCALAR_TYPES["u16"]
I32T, U32T = SCALAR_TYPES["i32"], SCALAR_TYPES["u32"]
I64T, U64T = SCALAR_TYPES["i64"], SCALAR_TYPES["u64"]
F32T, F64T = SCALAR_TYPES["f32"], SCALAR_TYPES["f64"]
BOOL = SCALAR_TYPES["bool"]


def test_integer_promotion():
    assert integer_promote(U8T) == I32T
    assert integer_promote(I16T) == I32T
    assert integer_promote(BOOL) == I32T
    assert integer_promote(U32T) == U32T
    assert integer_promote(I64T) == I64T


@pytest.mark.parametrize(
    "a, b, expected",
    [
        (U8T, U8T, I32T),       # both promote
        (I32T, U32T, U32T),     # same width: unsigned wins
        (I32T, I64T, I64T),     # wider wins
        (U32T, I64T, I64T),     # unsigned narrow fits signed wide
        (I64T, U64T, U64T),
        (I32T, F32T, F32T),     # float wins
        (F32T, F64T, F64T),
        (U64T, F64T, F64T),
    ],
)
def test_usual_arithmetic_conversions(a, b, expected):
    assert usual_arithmetic_conversion(a, b) == expected
    assert usual_arithmetic_conversion(b, a) == expected


def test_signed_division_operator_selection():
    module = compile_source("""
    i32 sd(i32 a, i32 b) { return a / b; }
    u32 ud(u32 a, u32 b) { return a / b; }
    i32 sr(i32 a, i32 b) { return a >> b; }
    u32 ur(u32 a, u32 b) { return a >> b; }
    """)
    from repro.ir import print_function

    assert "sdiv" in print_function(module.functions["sd"])
    assert "udiv" in print_function(module.functions["ud"])
    assert "ashr" in print_function(module.functions["sr"])
    assert "lshr" in print_function(module.functions["ur"])


def test_condition_coercion_to_bool():
    # ints and pointers are usable as conditions (implicit != 0)
    compile_source("""
    i32 f(i32 x, i32* p) {
        if (x) { return 1; }
        if (p) { return 2; }
        return 0;
    }
    """)


def test_pointer_arithmetic_rules():
    compile_source("void f(f32* p, i32 i) { f32* q = p + i; *q = 0.0f; }")
    with pytest.raises(SemaError, match="pointer"):
        compile_source("void f(f32* p, f32* q) { f32* r = p + q; }")


def test_incompatible_pointer_comparison_rejected():
    with pytest.raises(SemaError, match="incompatible"):
        compile_source("bool f(f32* p, u8* q) { return p == q; }")


def test_float_modulo_rejected():
    with pytest.raises(SemaError, match="integer operands"):
        compile_source("f32 f(f32 a, f32 b) { return a % b; }")


def test_array_is_not_assignable():
    with pytest.raises(SemaError, match="array"):
        compile_source("void f(f32* p) { f32 t[4]; t = p; }")


def test_duplicate_declarations_rejected():
    with pytest.raises(SemaError, match="redeclaration"):
        compile_source("void f() { i32 x = 0; i32 x = 1; }")
    with pytest.raises(SemaError, match="duplicate function"):
        compile_source("void f() { } void f() { }")


def test_call_arity_and_types_checked():
    with pytest.raises(SemaError, match="expects 2 arguments"):
        compile_source("""
        i32 g(i32 a, i32 b) { return a; }
        i32 f() { return g(1); }
        """)
    with pytest.raises(SemaError, match="implicitly convert"):
        compile_source("""
        i32 g(i32* p) { return 0; }
        i32 f(i32 x) { return g(x); }
        """)


def test_capture_by_value_semantics():
    """Captured scalars are snapshots: region writes through pointers only."""
    import numpy as np

    from repro.driver import compile_parsimony
    from repro.vm import Interpreter

    module = compile_parsimony("""
    void f(u32* out, u64 n) {
        u32 k = 7;
        psim (gang_size=8, num_threads=n) {
            u64 i = psim_get_thread_num();
            out[i] = k;
        }
        k = 9;  // after the region: must not affect the captured snapshot
    }
    """)
    interp = Interpreter(module)
    out = interp.memory.alloc_array(np.zeros(8, np.uint32))
    interp.run("f", out, 8)
    assert interp.memory.read_array(out, np.uint32, 8).tolist() == [7] * 8
