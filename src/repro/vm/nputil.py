"""NumPy dtype mapping and two's-complement helpers for the VM.

Runtime representation conventions:

* scalar integers — Python ``int`` in canonical unsigned (masked) form;
* scalar floats — Python ``float`` (f32 values are rounded through
  ``numpy.float32`` at producer sites);
* pointers — Python ``int`` byte addresses into the flat memory;
* vectors — 1-D ``numpy`` arrays: unsigned dtypes for ints (signedness is
  applied per-operation, as in the sign-less IR), ``bool_`` for i1 lanes,
  native float dtypes for floats.
"""

from __future__ import annotations

import numpy as np

from ..ir.types import FloatType, IntType, PointerType, Type, VectorType

__all__ = [
    "elem_dtype",
    "signed_dtype",
    "mask_int",
    "to_signed",
    "from_signed",
    "signed_view",
    "as_unsigned",
]

_UNSIGNED = {1: np.bool_, 8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
_SIGNED = {8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}
_FLOAT = {32: np.float32, 64: np.float64}


def elem_dtype(type: Type):
    """The numpy dtype used to store lanes (or memory cells) of ``type``."""
    if isinstance(type, IntType):
        return np.dtype(_UNSIGNED[type.bits])
    if isinstance(type, FloatType):
        return np.dtype(_FLOAT[type.bits])
    if isinstance(type, PointerType):
        return np.dtype(np.uint64)
    raise TypeError(f"no dtype for {type}")


def signed_dtype(type: Type):
    """Signed companion dtype for an integer type (i1 treated as i8)."""
    if isinstance(type, IntType):
        return np.dtype(_SIGNED.get(type.bits, np.int8))
    raise TypeError(f"no signed dtype for {type}")


def mask_int(value: int, bits: int) -> int:
    """Canonicalize a Python int to ``bits``-wide two's complement."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int) -> int:
    """Reinterpret a canonical unsigned int as signed."""
    if value >= (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def from_signed(value: int, bits: int) -> int:
    """Mask a (possibly negative) int back to canonical unsigned form."""
    return value & ((1 << bits) - 1)


def signed_view(array: np.ndarray) -> np.ndarray:
    """View an unsigned integer array as its signed counterpart."""
    kind = array.dtype.kind
    if kind == "u":
        return array.view(np.dtype(f"i{array.dtype.itemsize}"))
    if kind == "b":
        return array.astype(np.int8)
    return array


def as_unsigned(array: np.ndarray) -> np.ndarray:
    """View a signed integer array back as unsigned."""
    if array.dtype.kind == "i":
        return array.view(np.dtype(f"u{array.dtype.itemsize}"))
    return array
