"""Flat byte-addressable memory for the VM.

A single ``numpy.uint8`` buffer with a bump allocator stands in for the
process address space.  Pointers in the IR are plain 64-bit byte addresses
into this buffer, which is what makes the vectorizer's *address shape*
decisions (§4.2.2) observable: packed accesses touch consecutive bytes,
strided/gathered accesses do not.

Address 0 is reserved as NULL; any access to the page ``[0, 16)`` traps.
Masked vector accesses never touch memory in inactive lanes (so
out-of-bounds addresses under a false mask bit are fine, as on real
hardware).

Trap ordering (the VM contract, see DESIGN.md): every access — scalar,
packed, gather, scatter — validates **all** the bytes it will touch
*before* writing or reading any of them, so a trapping access leaves
memory untouched.  The error reports the first offending lane in lane
order, identical to what a per-lane reference loop would report.

Fault injection: :func:`repro.faultinject.maybe_fail` hooks the bounds
checks (site ``"memory"``, names ``"check"`` / ``"lanes"``) so tests can
force deterministic memory faults without constructing bad addresses.
"""

from __future__ import annotations

import numpy as np

from .. import faultinject
from ..diagnostics import ExecutionError
from ..ir.types import Type
from .nputil import elem_dtype

__all__ = ["Memory", "MemoryError_"]


class MemoryError_(ExecutionError):
    """Raised on out-of-bounds or NULL-page access."""


_NULL_GUARD = 16


class Memory:
    """Flat memory with a bump allocator."""

    def __init__(self, size: int = 1 << 22):
        self.data = np.zeros(size, dtype=np.uint8)
        self._brk = 64  # leave a NULL guard region at the bottom

    @property
    def size(self) -> int:
        return len(self.data)

    # -- allocation ---------------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Allocate ``nbytes`` and return the base address."""
        addr = (self._brk + align - 1) & ~(align - 1)
        if addr + nbytes > self.size:
            raise MemoryError_(
                f"out of VM memory: want {nbytes} bytes at {addr}, size {self.size}"
            )
        self._brk = addr + nbytes
        return addr

    def alloc_array(self, array: np.ndarray, align: int = 64) -> int:
        """Allocate and copy a numpy array in; returns its address."""
        flat = np.ascontiguousarray(array).reshape(-1)
        raw = flat.view(np.uint8)
        addr = self.alloc(raw.nbytes, align)
        self.data[addr : addr + raw.nbytes] = raw
        return addr

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        """Copy ``count`` elements of ``dtype`` out of memory."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self._check(addr, nbytes)
        return self.data[addr : addr + nbytes].view(dtype).copy()

    def write_array(self, addr: int, array: np.ndarray) -> None:
        flat = np.ascontiguousarray(array).reshape(-1)
        raw = flat.view(np.uint8)
        self._check(addr, raw.nbytes)
        self.data[addr : addr + raw.nbytes] = raw

    # -- scalar access ------------------------------------------------------------

    def load_scalar(self, addr: int, type: Type):
        dtype = elem_dtype(type)
        self._check(addr, dtype.itemsize)
        cell = self.data[addr : addr + dtype.itemsize].view(dtype)[0]
        if type.is_float:
            return float(cell)
        return int(cell)

    def store_scalar(self, addr: int, type: Type, value) -> None:
        dtype = elem_dtype(type)
        self._check(addr, dtype.itemsize)
        self.data[addr : addr + dtype.itemsize].view(dtype)[0] = value

    # -- vector access ------------------------------------------------------------

    def load_packed(self, addr: int, type: Type, count: int, mask=None) -> np.ndarray:
        """Packed load of ``count`` consecutive elements.

        With a mask, inactive lanes read as zero and, when every lane is
        inactive, the address is never validated (mirrors hardware masked
        loads never faulting on inactive lanes).
        """
        dtype = elem_dtype(type)
        if mask is None or mask.all():
            nbytes = dtype.itemsize * count
            self._check(addr, nbytes)
            return self.data[addr : addr + nbytes].view(dtype).copy()
        if not mask.any():
            return np.zeros(count, dtype=dtype)
        # Bounds are only required up to the last active lane, as on real
        # hardware masked loads: a tail gang at the end of an array must not
        # fault on its inactive lanes.
        needed = int(np.nonzero(mask)[0][-1]) + 1
        nbytes = dtype.itemsize * needed
        self._check(addr, nbytes)
        out = np.zeros(count, dtype=dtype)
        out[:needed] = self.data[addr : addr + nbytes].view(dtype)
        out[~mask] = 0
        return out

    def store_packed(self, addr: int, type: Type, values: np.ndarray, mask=None) -> None:
        dtype = elem_dtype(type)
        if mask is None or mask.all():
            nbytes = dtype.itemsize * len(values)
            self._check(addr, nbytes)
            self.data[addr : addr + nbytes].view(dtype)[:] = values.astype(dtype, copy=False)
            return
        if not mask.any():
            return
        needed = int(np.nonzero(mask)[0][-1]) + 1
        nbytes = dtype.itemsize * needed
        self._check(addr, nbytes)
        view = self.data[addr : addr + nbytes].view(dtype)
        view[mask[:needed]] = values.astype(dtype, copy=False)[:needed][mask[:needed]]

    def gather(self, addrs: np.ndarray, type: Type, mask=None) -> np.ndarray:
        """Per-lane loads from arbitrary addresses, vectorized.

        All active lanes are bounds-checked up front (the batched check
        traps on the first bad lane, with the same message the scalar path
        produces), then fetched with one 2-D fancy-indexing read.
        """
        dtype = elem_dtype(type)
        count = len(addrs)
        out = np.zeros(count, dtype=dtype)
        if mask is None:
            lanes = None
            active = np.asarray(addrs, dtype=np.uint64)
        else:
            lanes = np.nonzero(mask)[0]
            active = np.asarray(addrs, dtype=np.uint64)[lanes]
        if active.size == 0:
            return out
        itemsize = dtype.itemsize
        self._check_lanes(active, itemsize)
        byte_idx = active[:, None].astype(np.int64) + np.arange(itemsize, dtype=np.int64)
        gathered = self.data[byte_idx].view(dtype)[:, 0]
        if lanes is None:
            out[:] = gathered
        else:
            out[lanes] = gathered
        return out

    def scatter(self, addrs: np.ndarray, type: Type, values: np.ndarray, mask=None) -> None:
        """Per-lane stores to arbitrary addresses, vectorized.

        Colliding lanes resolve last-lane-wins, matching the scalar
        lane-order loop (numpy fancy assignment applies indices in order).
        Unlike the scalar loop, the batched bounds check runs before any
        lane is written, so a trapping scatter leaves memory untouched.
        """
        dtype = elem_dtype(type)
        vals = values.astype(dtype, copy=False)
        if mask is None:
            active = np.asarray(addrs, dtype=np.uint64)
        else:
            lanes = np.nonzero(mask)[0]
            active = np.asarray(addrs, dtype=np.uint64)[lanes]
            vals = vals[lanes]
        if active.size == 0:
            return
        itemsize = dtype.itemsize
        self._check_lanes(active, itemsize)
        byte_idx = active[:, None].astype(np.int64) + np.arange(itemsize, dtype=np.int64)
        if dtype.kind == "b":
            raw = vals.astype(np.uint8).reshape(-1, 1)
        else:
            raw = np.ascontiguousarray(vals).view(np.uint8).reshape(-1, itemsize)
        self.data[byte_idx] = raw

    # -- internal -----------------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        faultinject.maybe_fail("memory", "check")
        if addr < _NULL_GUARD:
            raise MemoryError_(f"NULL-page access at address {addr}")
        if addr + nbytes > self.size:
            raise MemoryError_(
                f"out-of-bounds access: [{addr}, {addr + nbytes}) of {self.size}"
            )

    def _check_lanes(self, addrs: np.ndarray, nbytes: int) -> None:
        """Batched bounds check over a vector of lane addresses.

        Runs before any lane is read or written (trap-before-any-write is
        canonical — see the VM contract in DESIGN.md).  The comparison is
        phrased as ``addr > size - nbytes`` (not ``addr + nbytes > size``)
        so uint64 addresses near 2**64 cannot wrap around the addition and
        slip past the check.
        """
        faultinject.maybe_fail("memory", "lanes")
        bad = (addrs < _NULL_GUARD) | (addrs > self.size - nbytes)
        if bad.any():
            # Delegate the first offending lane (in lane order) to the
            # scalar check so the error message is identical.
            self._check(int(addrs[int(np.nonzero(bad)[0][0])]), nbytes)
