"""The VM: a direct interpreter for the IR with cycle cost accounting.

Executes scalar *and* vector IR (one unified engine), so the same machine
runs the un-vectorized baseline, the auto-vectorized code, the ispc-mode
output, the Parsimony output, and the hand-written intrinsics kernels —
exactly the five configurations the paper measures (§5).

Every dynamically executed instruction is charged by the
:class:`~repro.backend.costmodel.CostModel` on the configured
:class:`~repro.backend.machine.Machine`; ``run()`` returns the result plus
:class:`~repro.backend.machine.ExecStats` with cycles and per-opcode
counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..backend.costmodel import DEFAULT_COST_MODEL, CostModel
from ..backend.machine import AVX512, ExecStats, Machine
from ..ir.instructions import (
    CAST_OPS,
    FLOAT_BINOPS,
    INT_BINOPS,
    Instruction,
    REDUCE_OPS,
    UNARY_OPS,
)
from ..ir.module import BasicBlock, ExternalFunction, Function, Module
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..ir.values import Argument, Constant, UndefValue, Value
from .memory import Memory
from .nputil import elem_dtype, mask_int, to_signed
from .ops import (
    VMTrap,
    eval_scalar_binop,
    eval_scalar_cast,
    eval_scalar_fcmp,
    eval_scalar_icmp,
    eval_scalar_unop,
    eval_vector_binop,
    eval_vector_cast,
    eval_vector_fcmp,
    eval_vector_icmp,
    eval_vector_unop,
    round_float,
)

__all__ = ["Interpreter", "VMTrap", "ExecutionLimitExceeded"]


class ExecutionLimitExceeded(VMTrap):
    """The dynamic instruction budget was exhausted (likely infinite loop)."""


_MAX_CALL_DEPTH = 256


class Interpreter:
    """Executes functions from one module against a flat memory."""

    def __init__(
        self,
        module: Module,
        machine: Machine = AVX512,
        cost_model: Optional[CostModel] = None,
        memory: Optional[Memory] = None,
        max_instructions: int = 500_000_000,
    ):
        self.module = module
        self.machine = machine
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.memory = memory or Memory()
        self.max_instructions = max_instructions
        self.stats = ExecStats()
        self._cost_cache: Dict[int, float] = {}

    # -- public API -----------------------------------------------------------------

    def run(self, function, *args):
        """Execute ``function`` (a ``Function`` or name) with Python args."""
        if isinstance(function, str):
            function = self.module.get(function)
        if len(args) != len(function.args):
            raise TypeError(
                f"@{function.name} takes {len(function.args)} args, got {len(args)}"
            )
        argvals = [
            _coerce_arg(a.type, v) for a, v in zip(function.args, args)
        ]
        return self._exec_function(function, argvals, depth=0)

    # -- execution ---------------------------------------------------------------------

    def _exec_function(self, function: Function, argvals: List, depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise VMTrap(f"call depth exceeded calling @{function.name}")
        env: Dict[Value, object] = dict(zip(function.args, argvals))
        stack_mark = self.memory._brk  # frame-local alloca discipline
        block = function.entry
        prev: Optional[BasicBlock] = None
        stats = self.stats
        try:
            while True:
                instructions = block.instructions
                # Evaluate phis in parallel against the incoming edge.
                n_phi = 0
                if instructions and instructions[0].opcode == "phi":
                    phi_vals = []
                    for instr in instructions:
                        if instr.opcode != "phi":
                            break
                        n_phi += 1
                        phi_vals.append(
                            self._value(env, instr.phi_value_for(prev))
                        )
                        stats.charge("phi", 0.0)
                    for instr, val in zip(instructions[:n_phi], phi_vals):
                        env[instr] = val
                for instr in instructions[n_phi:]:
                    stats.charge(instr.opcode, self._cost(instr))
                    if stats.instructions > self.max_instructions:
                        raise ExecutionLimitExceeded(
                            f"exceeded {self.max_instructions} instructions in @{function.name}"
                        )
                    op = instr.opcode
                    if op == "br":
                        prev, block = block, instr.operands[0]
                        break
                    if op == "condbr":
                        cond = self._value(env, instr.operands[0])
                        target = instr.operands[1] if cond else instr.operands[2]
                        prev, block = block, target
                        break
                    if op == "ret":
                        if instr.operands:
                            return self._value(env, instr.operands[0])
                        return None
                    if op == "unreachable":
                        raise VMTrap(f"reached 'unreachable' in @{function.name}")
                    env[instr] = self._exec_instr(env, instr, depth)
        finally:
            self.memory._brk = stack_mark

    def _exec_instr(self, env: Dict, instr: Instruction, depth: int):
        op = instr.opcode
        ops = instr.operands
        vec = isinstance(instr.type, VectorType)

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            a = self._value(env, ops[0])
            b = self._value(env, ops[1])
            if vec:
                return eval_vector_binop(op, instr.type.elem, a, b)
            return eval_scalar_binop(op, instr.type, a, b)
        if op in UNARY_OPS:
            a = self._value(env, ops[0])
            if vec:
                return eval_vector_unop(op, instr.type.elem, a)
            return eval_scalar_unop(op, instr.type, a)
        if op == "icmp":
            a, b = self._value(env, ops[0]), self._value(env, ops[1])
            src_t = ops[0].type
            if isinstance(src_t, VectorType):
                return eval_vector_icmp(instr.attrs["pred"], src_t.elem, a, b)
            return eval_scalar_icmp(instr.attrs["pred"], src_t, a, b)
        if op == "fcmp":
            a, b = self._value(env, ops[0]), self._value(env, ops[1])
            if isinstance(ops[0].type, VectorType):
                return eval_vector_fcmp(instr.attrs["pred"], a, b)
            return eval_scalar_fcmp(instr.attrs["pred"], a, b)
        if op in CAST_OPS:
            v = self._value(env, ops[0])
            from_t, to_t = ops[0].type, instr.type
            if isinstance(to_t, VectorType):
                return eval_vector_cast(op, from_t.elem, to_t.elem, v)
            return eval_scalar_cast(op, from_t, to_t, v)
        if op == "select":
            cond = self._value(env, ops[0])
            a, b = self._value(env, ops[1]), self._value(env, ops[2])
            if isinstance(ops[0].type, VectorType) or vec:
                return np.where(cond, a, b)
            return a if cond else b
        if op == "fma":
            a, b, c = (self._value(env, o) for o in ops)
            if vec:
                return a * b + c
            return round_float(instr.type, round_float(instr.type, a * b) + c)

        # -- memory -------------------------------------------------------------------
        if op == "load":
            return self.memory.load_scalar(self._value(env, ops[0]), instr.type)
        if op == "store":
            value = self._value(env, ops[0])
            self.memory.store_scalar(self._value(env, ops[1]), ops[0].type, value)
            return None
        if op == "gep":
            base = self._value(env, ops[0])
            idx = self._value(env, ops[1])
            idx = to_signed(idx, ops[1].type.bits)
            return mask_int(base + idx * instr.type.pointee.size_bytes(), 64)
        if op == "alloca":
            size = instr.type.pointee.size_bytes() * instr.attrs.get("count", 1)
            return self.memory.alloc(max(size, 1))
        if op == "atomicrmw":
            addr = self._value(env, ops[0])
            val = self._value(env, ops[1])
            old = self.memory.load_scalar(addr, ops[1].type)
            new = eval_scalar_binop(
                {"add": "add", "sub": "sub", "and": "and", "or": "or",
                 "xor": "xor", "umax": "umax", "umin": "umin"}[instr.attrs["op"]],
                ops[1].type, old, val,
            )
            self.memory.store_scalar(addr, ops[1].type, new)
            return old

        # -- vector -------------------------------------------------------------------
        if op == "broadcast":
            scalar = self._value(env, ops[0])
            return np.full(instr.type.count, scalar, dtype=elem_dtype(instr.type.elem))
        if op == "extractelement":
            v = self._value(env, ops[0])
            idx = self._value(env, ops[1])
            lane = v[int(idx) % len(v)]
            return float(lane) if instr.type.is_float else int(lane)
        if op == "insertelement":
            v = self._value(env, ops[0]).copy()
            idx = self._value(env, ops[1])
            v[int(idx) % len(v)] = self._value(env, ops[2])
            return v
        if op == "shuffle":
            src = self._value(env, ops[0])
            idx = self._value(env, ops[1]).astype(np.int64) % len(src)
            return src[idx]
        if op == "shuffle2":
            both = np.concatenate(
                [self._value(env, ops[0]), self._value(env, ops[1])]
            )
            idx = self._value(env, ops[2]).astype(np.int64) % len(both)
            return both[idx]
        if op == "vload":
            addr = self._value(env, ops[0])
            mask = self._value(env, ops[1])
            return self.memory.load_packed(addr, instr.type.elem, instr.type.count, mask)
        if op == "vstore":
            value = self._value(env, ops[0])
            addr = self._value(env, ops[1])
            mask = self._value(env, ops[2])
            self.memory.store_packed(addr, ops[0].type.elem, value, mask)
            return None
        if op == "gather":
            addrs = self._value(env, ops[0])
            mask = self._value(env, ops[1])
            return self.memory.gather(addrs, instr.type.elem, mask)
        if op == "scatter":
            value = self._value(env, ops[0])
            addrs = self._value(env, ops[1])
            mask = self._value(env, ops[2])
            self.memory.scatter(addrs, ops[0].type.elem, value, mask)
            return None
        if op == "sad":
            a = self._value(env, ops[0]).astype(np.int64)
            b = self._value(env, ops[1]).astype(np.int64)
            diffs = np.abs(a - b).reshape(-1, 8).sum(axis=1)
            return diffs.astype(np.uint64)
        if op in REDUCE_OPS:
            return self._reduce(op, instr, self._value(env, ops[0]))
        if op == "mask_any":
            return 1 if bool(self._value(env, ops[0]).any()) else 0
        if op == "mask_all":
            return 1 if bool(self._value(env, ops[0]).all()) else 0
        if op == "mask_popcnt":
            return int(self._value(env, ops[0]).sum())

        # -- calls --------------------------------------------------------------------
        if op == "call":
            callee = ops[0]
            args = [self._value(env, o) for o in ops[1:]]
            if isinstance(callee, ExternalFunction):
                cost = callee.cost
                if callable(cost):
                    cost = cost(self.machine, [o.type for o in ops[1:]])
                self.stats.charge(f"ext:{callee.name}", float(cost))
                return callee.impl(*args)
            return self._exec_function(callee, args, depth + 1)

        raise NotImplementedError(f"interpreter: opcode {op}")

    def _reduce(self, op: str, instr: Instruction, v: np.ndarray):
        elem = instr.operands[0].type.elem
        if op == "reduce_add":
            if elem.is_float:
                return round_float(instr.type, float(np.sum(v, dtype=v.dtype)))
            if elem.bits == 1:
                return 1 if bool(np.bitwise_xor.reduce(v)) else 0
            return int(np.add.reduce(v, dtype=v.dtype))
        if op in ("reduce_min_s", "reduce_max_s"):
            from .nputil import from_signed, signed_view

            sv = signed_view(v)
            r = int(sv.min() if op.endswith("min_s") else sv.max())
            return from_signed(r, elem.bits)
        if op == "reduce_min_u":
            r = v.min()
            return float(r) if elem.is_float else int(r)
        if op == "reduce_max_u":
            r = v.max()
            return float(r) if elem.is_float else int(r)
        if op == "reduce_and":
            if elem.bits == 1:
                return 1 if bool(v.all()) else 0
            return int(np.bitwise_and.reduce(v))
        if op == "reduce_or":
            if elem.bits == 1:
                return 1 if bool(v.any()) else 0
            return int(np.bitwise_or.reduce(v))
        raise NotImplementedError(op)

    # -- helpers --------------------------------------------------------------------

    def _value(self, env: Dict, value: Value):
        if isinstance(value, (Instruction, Argument)):
            return env[value]
        if isinstance(value, Constant):
            return _constant_payload(value)
        if isinstance(value, UndefValue):
            return _undef_payload(value.type)
        if isinstance(value, (BasicBlock, Function, ExternalFunction)):
            return value
        raise TypeError(f"cannot evaluate {value!r}")

    def _cost(self, instr: Instruction) -> float:
        key = id(instr)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = self.cost_model.cost(instr, self.machine)
            self._cost_cache[key] = cost
        return cost


def _constant_payload(const: Constant):
    type = const.type
    if isinstance(type, VectorType):
        return np.array(const.value, dtype=elem_dtype(type.elem))
    if type.is_float:
        return round_float(type, const.value)
    return const.value


def _undef_payload(type: Type):
    if isinstance(type, VectorType):
        return np.zeros(type.count, dtype=elem_dtype(type.elem))
    if type.is_float:
        return 0.0
    return 0


def _coerce_arg(type: Type, value):
    if isinstance(type, VectorType):
        return np.asarray(value, dtype=elem_dtype(type.elem))
    if isinstance(type, FloatType):
        return round_float(type, float(value))
    if isinstance(type, (IntType, PointerType)):
        return mask_int(int(value), getattr(type, "bits", 64))
    raise TypeError(f"cannot pass argument of type {type}")
