"""The VM: a direct interpreter for the IR with cycle cost accounting.

Executes scalar *and* vector IR (one unified engine), so the same machine
runs the un-vectorized baseline, the auto-vectorized code, the ispc-mode
output, the Parsimony output, and the hand-written intrinsics kernels —
exactly the five configurations the paper measures (§5).

Every dynamically executed instruction is charged by the
:class:`~repro.backend.costmodel.CostModel` on the configured
:class:`~repro.backend.machine.Machine`; ``run()`` returns the result plus
:class:`~repro.backend.machine.ExecStats` with cycles and per-opcode
counts.

Execution engines
-----------------

The interpreter has two engines that produce bit-identical results *and*
bit-identical ``ExecStats``:

* the **pre-decoded engine** (default): each basic block is decoded once,
  on first entry, into a :class:`_DecodedBlock` — a list of
  ``(instr, opcode, cost, thunk)`` tuples whose thunks have already
  resolved the opcode dispatch, operand lookups, cost-model query, and
  type-directed specialization.  The per-dynamic-instruction work drops to
  one tuple unpack, three counter updates, and one call;
* the **reference engine** (``predecode=False``): the original
  opcode-string dispatch loop, kept as the executable specification the
  equivalence tests compare against.

Both engines assume the module is not mutated once execution has started;
call :meth:`Interpreter.clear_decode_cache` after transforming a function
that has already run.  Constant payloads are shared across dynamic uses in
the decoded engine — no opcode mutates its operand arrays, so this is
observationally equivalent to the reference engine's fresh-per-use arrays.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend.costmodel import DEFAULT_COST_MODEL, CostModel
from ..backend.machine import AVX512, ExecStats, Machine
from ..ir.instructions import (
    ATOMIC_RMW_OPS,
    CAST_OPS,
    FLOAT_BINOPS,
    INT_BINOPS,
    Instruction,
    REDUCE_OPS,
    UNARY_OPS,
)
from ..ir.module import BasicBlock, ExternalFunction, Function, Module
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..ir.values import Argument, Constant, UndefValue, Value
from .memory import Memory
from .nputil import elem_dtype, mask_int, to_signed
from .ops import (
    VMTrap,
    eval_scalar_binop,
    eval_scalar_cast,
    eval_scalar_fcmp,
    eval_scalar_icmp,
    eval_scalar_unop,
    eval_vector_binop,
    eval_vector_cast,
    eval_vector_fcmp,
    eval_vector_icmp,
    eval_vector_unop,
    round_float,
    scalar_binop_impl,
    scalar_fcmp_impl,
    scalar_icmp_impl,
)

__all__ = ["Interpreter", "VMTrap", "ExecutionLimitExceeded"]


class ExecutionLimitExceeded(VMTrap):
    """The dynamic instruction budget was exhausted (likely infinite loop)."""


_MAX_CALL_DEPTH = 256

# Terminator kinds in decoded form.
_T_BR = 0
_T_CONDBR = 1
_T_RET = 2
_T_UNREACHABLE = 3


class _DecodedBlock:
    """One basic block, decoded for the fast engine.

    ``phis``  — list of ``(instr, {pred_block: resolver})``;
    ``body``  — list of ``(instr, opcode, cost, thunk)`` for the non-phi,
    non-terminator instructions, where ``thunk(env, depth)`` computes the
    value;
    ``term``  — ``(_T_BR, cost, opcode, target)`` |
    ``(_T_CONDBR, cost, opcode, cond_resolver, iftrue, iffalse)`` |
    ``(_T_RET, cost, opcode, resolver_or_None)`` |
    ``(_T_UNREACHABLE, cost, opcode)``.
    """

    __slots__ = ("phis", "body", "term")

    def __init__(self, phis, body, term):
        self.phis = phis
        self.body = body
        self.term = term


class Interpreter:
    """Executes functions from one module against a flat memory."""

    def __init__(
        self,
        module: Module,
        machine: Machine = AVX512,
        cost_model: Optional[CostModel] = None,
        memory: Optional[Memory] = None,
        max_instructions: int = 500_000_000,
        predecode: bool = True,
    ):
        self.module = module
        self.machine = machine
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.memory = memory or Memory()
        self.max_instructions = max_instructions
        self.predecode = predecode
        self.stats = ExecStats()
        #: Exclusive (self-only) cycles per function name, for hot-spot telemetry.
        self.func_cycles: Dict[str, float] = {}
        #: Dynamic call count per function name.
        self.func_calls: Dict[str, int] = {}
        self._child_cycles = 0.0
        self._cost_cache: Dict[Instruction, float] = {}
        self._decoded: Dict[Function, Dict[BasicBlock, _DecodedBlock]] = {}

    # -- public API -----------------------------------------------------------------

    def run(self, function, *args):
        """Execute ``function`` (a ``Function`` or name) with Python args."""
        if isinstance(function, str):
            function = self.module.get(function)
        if len(args) != len(function.args):
            raise TypeError(
                f"@{function.name} takes {len(function.args)} args, got {len(args)}"
            )
        argvals = [
            _coerce_arg(a.type, v) for a, v in zip(function.args, args)
        ]
        return self._exec_function(function, argvals, depth=0)

    def reset_stats(self) -> ExecStats:
        """Zero all counters in place (``self.stats`` stays the same object).

        Reusing one interpreter for several timed runs without calling this
        silently accumulates cycles from earlier runs into every
        measurement.
        """
        stats = self.stats
        stats.cycles = 0.0
        stats.instructions = 0
        stats.counts.clear()
        self.func_cycles.clear()
        self.func_calls.clear()
        self._child_cycles = 0.0
        return stats

    def clear_decode_cache(self) -> None:
        """Drop decoded blocks and cached costs (after mutating the module)."""
        self._decoded.clear()
        self._cost_cache.clear()

    def hotspots(self) -> List[Dict[str, object]]:
        """Per-function cycle attribution, hottest first (for telemetry)."""
        return [
            {
                "function": name,
                "exclusive_cycles": cycles,
                "calls": self.func_calls.get(name, 0),
            }
            for name, cycles in sorted(
                self.func_cycles.items(), key=lambda kv: -kv[1]
            )
        ]

    # -- execution ---------------------------------------------------------------------

    def _exec_function(self, function: Function, argvals: List, depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise VMTrap(f"call depth exceeded calling @{function.name}")
        stats = self.stats
        cycles_at_entry = stats.cycles
        saved_child_cycles = self._child_cycles
        self._child_cycles = 0.0
        try:
            if self.predecode:
                return self._exec_decoded(function, argvals, depth)
            return self._exec_reference(function, argvals, depth)
        finally:
            inclusive = stats.cycles - cycles_at_entry
            exclusive = inclusive - self._child_cycles
            name = function.name
            fc = self.func_cycles
            fc[name] = fc.get(name, 0.0) + exclusive
            calls = self.func_calls
            calls[name] = calls.get(name, 0) + 1
            self._child_cycles = saved_child_cycles + inclusive

    # -- pre-decoded engine ---------------------------------------------------------

    def _exec_decoded(self, function: Function, argvals: List, depth: int):
        decoded = self._decoded.get(function)
        if decoded is None:
            decoded = self._decoded[function] = {}
        env: Dict[Value, object] = dict(zip(function.args, argvals))
        memory = self.memory
        stack_mark = memory._brk  # frame-local alloca discipline
        stats = self.stats
        counts = stats.counts
        limit = self.max_instructions
        block = function.entry
        prev: Optional[BasicBlock] = None
        try:
            while True:
                d = decoded.get(block)
                if d is None:
                    d = decoded[block] = self._decode_block(block, function)
                phis = d.phis
                if phis:
                    # Evaluate phis in parallel against the incoming edge.
                    phi_vals = []
                    for _, edges in phis:
                        resolver = edges.get(prev)
                        if resolver is None:
                            raise KeyError(
                                f"phi has no incoming edge from block {prev.name}"
                            )
                        phi_vals.append(resolver(env))
                        stats.cycles += 0.0
                        stats.instructions += 1
                        counts["phi"] = counts.get("phi", 0) + 1
                        if stats.instructions > limit:
                            raise ExecutionLimitExceeded(
                                f"exceeded {limit} instructions in @{function.name}"
                            )
                    for (instr, _), val in zip(phis, phi_vals):
                        env[instr] = val
                for instr, opcode, cost, thunk in d.body:
                    stats.cycles += cost
                    stats.instructions += 1
                    counts[opcode] = counts.get(opcode, 0) + 1
                    if stats.instructions > limit:
                        raise ExecutionLimitExceeded(
                            f"exceeded {limit} instructions in @{function.name}"
                        )
                    env[instr] = thunk(env, depth)
                term = d.term
                stats.cycles += term[1]
                stats.instructions += 1
                opcode = term[2]
                counts[opcode] = counts.get(opcode, 0) + 1
                if stats.instructions > limit:
                    raise ExecutionLimitExceeded(
                        f"exceeded {limit} instructions in @{function.name}"
                    )
                kind = term[0]
                if kind == _T_BR:
                    prev, block = block, term[3]
                elif kind == _T_CONDBR:
                    prev = block
                    block = term[4] if term[3](env) else term[5]
                elif kind == _T_RET:
                    resolver = term[3]
                    return resolver(env) if resolver is not None else None
                else:
                    raise VMTrap(f"reached 'unreachable' in @{function.name}")
        finally:
            memory._brk = stack_mark

    # -- decoding --------------------------------------------------------------------

    def _decode_block(self, block: BasicBlock, function: Function) -> _DecodedBlock:
        instructions = block.instructions
        if not instructions or not instructions[-1].is_terminator:
            raise VMTrap(
                f"block {block.name} in @{function.name} has no terminator"
            )
        phis = []
        i = 0
        while i < len(instructions) and instructions[i].opcode == "phi":
            instr = instructions[i]
            edges = {
                pred: self._resolver(value)
                for value, pred in instr.phi_incoming()
            }
            phis.append((instr, edges))
            i += 1
        body = [
            (instr, instr.opcode, self._cost(instr), self._decode_instr(instr))
            for instr in instructions[i:-1]
        ]
        term_instr = instructions[-1]
        cost = self._cost(term_instr)
        op = term_instr.opcode
        tops = term_instr.operands
        if op == "br":
            term: Tuple = (_T_BR, cost, op, tops[0])
        elif op == "condbr":
            term = (_T_CONDBR, cost, op, self._resolver(tops[0]), tops[1], tops[2])
        elif op == "ret":
            if tops:
                resolver = self._resolver(tops[0])
                if isinstance(tops[0], (Constant, UndefValue)) and isinstance(
                    tops[0].type, VectorType
                ):
                    # Shared constant payloads must not leak to callers who
                    # may mutate the returned array.
                    inner = resolver
                    resolver = lambda env: inner(env).copy()
                term = (_T_RET, cost, op, resolver)
            else:
                term = (_T_RET, cost, op, None)
        elif op == "unreachable":
            term = (_T_UNREACHABLE, cost, op)
        else:
            raise NotImplementedError(f"interpreter: terminator {op}")
        return _DecodedBlock(phis, body, term)

    def _resolver(self, value: Value):
        """A 1-arg callable ``resolver(env)`` producing the operand's payload."""
        if isinstance(value, (Instruction, Argument)):
            return operator.itemgetter(value)
        if isinstance(value, Constant):
            payload = _constant_payload(value)
            return lambda env: payload
        if isinstance(value, UndefValue):
            payload = _undef_payload(value.type)
            return lambda env: payload
        if isinstance(value, (BasicBlock, Function, ExternalFunction)):
            return lambda env: value
        raise TypeError(f"cannot evaluate {value!r}")

    def _decode_instr(self, instr: Instruction):
        """Compile one non-phi, non-terminator instruction into a thunk.

        The thunk signature is ``thunk(env, depth) -> payload``; opcode
        dispatch, operand resolution strategy, cost lookup, and
        type-directed specialization all happen here, once per static
        instruction.
        """
        op = instr.opcode
        ops = instr.operands
        vec = isinstance(instr.type, VectorType)

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            if vec:
                elem = instr.type.elem
                return lambda env, depth: eval_vector_binop(op, elem, a(env), b(env))
            impl = scalar_binop_impl(op, instr.type)
            return lambda env, depth: impl(a(env), b(env))
        if op in UNARY_OPS:
            a = self._resolver(ops[0])
            if vec:
                elem = instr.type.elem
                return lambda env, depth: eval_vector_unop(op, elem, a(env))
            t = instr.type
            return lambda env, depth: eval_scalar_unop(op, t, a(env))
        if op == "icmp":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            pred = instr.attrs["pred"]
            src_t = ops[0].type
            if isinstance(src_t, VectorType):
                elem = src_t.elem
                return lambda env, depth: eval_vector_icmp(pred, elem, a(env), b(env))
            impl = scalar_icmp_impl(pred, src_t)
            return lambda env, depth: impl(a(env), b(env))
        if op == "fcmp":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            pred = instr.attrs["pred"]
            if isinstance(ops[0].type, VectorType):
                return lambda env, depth: eval_vector_fcmp(pred, a(env), b(env))
            impl = scalar_fcmp_impl(pred)
            return lambda env, depth: impl(a(env), b(env))
        if op in CAST_OPS:
            v = self._resolver(ops[0])
            from_t, to_t = ops[0].type, instr.type
            if isinstance(to_t, VectorType):
                from_e, to_e = from_t.elem, to_t.elem
                return lambda env, depth: eval_vector_cast(op, from_e, to_e, v(env))
            return lambda env, depth: eval_scalar_cast(op, from_t, to_t, v(env))
        if op == "select":
            cond = self._resolver(ops[0])
            a = self._resolver(ops[1])
            b = self._resolver(ops[2])
            if isinstance(ops[0].type, VectorType) or vec:
                return lambda env, depth: np.where(cond(env), a(env), b(env))
            return lambda env, depth: a(env) if cond(env) else b(env)
        if op == "fma":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            c = self._resolver(ops[2])
            if vec:
                return lambda env, depth: a(env) * b(env) + c(env)
            t = instr.type
            return lambda env, depth: round_float(
                t, round_float(t, a(env) * b(env)) + c(env)
            )

        # -- memory -------------------------------------------------------------------
        memory = self.memory
        if op == "load":
            addr = self._resolver(ops[0])
            t = instr.type
            return lambda env, depth: memory.load_scalar(addr(env), t)
        if op == "store":
            value = self._resolver(ops[0])
            addr = self._resolver(ops[1])
            t = ops[0].type
            def _store(env, depth):
                memory.store_scalar(addr(env), t, value(env))
                return None
            return _store
        if op == "gep":
            base = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            bits = ops[1].type.bits
            esize = instr.type.pointee.size_bytes()
            return lambda env, depth: mask_int(
                base(env) + to_signed(idx(env), bits) * esize, 64
            )
        if op == "alloca":
            size = max(
                instr.type.pointee.size_bytes() * instr.attrs.get("count", 1), 1
            )
            return lambda env, depth: memory.alloc(size)
        if op == "atomicrmw":
            rmw = instr.attrs["op"]
            if rmw not in ATOMIC_RMW_OPS:
                raise VMTrap(f"atomicrmw: unsupported op {rmw!r}")
            addr = self._resolver(ops[0])
            val = self._resolver(ops[1])
            t = ops[1].type
            impl = scalar_binop_impl(rmw, t)
            def _atomicrmw(env, depth):
                a = addr(env)
                old = memory.load_scalar(a, t)
                memory.store_scalar(a, t, impl(old, val(env)))
                return old
            return _atomicrmw

        # -- vector -------------------------------------------------------------------
        if op == "broadcast":
            scalar = self._resolver(ops[0])
            count = instr.type.count
            dtype = elem_dtype(instr.type.elem)
            return lambda env, depth: np.full(count, scalar(env), dtype=dtype)
        if op == "extractelement":
            v = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            if instr.type.is_float:
                def _extract(env, depth):
                    a = v(env)
                    return float(a[int(idx(env)) % len(a)])
            else:
                def _extract(env, depth):
                    a = v(env)
                    return int(a[int(idx(env)) % len(a)])
            return _extract
        if op == "insertelement":
            v = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            elt = self._resolver(ops[2])
            def _insert(env, depth):
                a = v(env).copy()
                a[int(idx(env)) % len(a)] = elt(env)
                return a
            return _insert
        if op == "shuffle":
            src = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            def _shuffle(env, depth):
                a = src(env)
                return a[idx(env).astype(np.int64) % len(a)]
            return _shuffle
        if op == "shuffle2":
            lo = self._resolver(ops[0])
            hi = self._resolver(ops[1])
            idx = self._resolver(ops[2])
            def _shuffle2(env, depth):
                both = np.concatenate([lo(env), hi(env)])
                return both[idx(env).astype(np.int64) % len(both)]
            return _shuffle2
        if op == "vload":
            addr = self._resolver(ops[0])
            mask = self._resolver(ops[1])
            elem, count = instr.type.elem, instr.type.count
            return lambda env, depth: memory.load_packed(
                addr(env), elem, count, mask(env)
            )
        if op == "vstore":
            value = self._resolver(ops[0])
            addr = self._resolver(ops[1])
            mask = self._resolver(ops[2])
            elem = ops[0].type.elem
            def _vstore(env, depth):
                memory.store_packed(addr(env), elem, value(env), mask(env))
                return None
            return _vstore
        if op == "gather":
            addrs = self._resolver(ops[0])
            mask = self._resolver(ops[1])
            elem = instr.type.elem
            return lambda env, depth: memory.gather(addrs(env), elem, mask(env))
        if op == "scatter":
            value = self._resolver(ops[0])
            addrs = self._resolver(ops[1])
            mask = self._resolver(ops[2])
            elem = ops[0].type.elem
            def _scatter(env, depth):
                memory.scatter(addrs(env), elem, value(env), mask(env))
                return None
            return _scatter
        if op == "sad":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            def _sad(env, depth):
                diffs = np.abs(
                    a(env).astype(np.int64) - b(env).astype(np.int64)
                ).reshape(-1, 8).sum(axis=1)
                return diffs.astype(np.uint64)
            return _sad
        if op in REDUCE_OPS:
            v = self._resolver(ops[0])
            reduce = self._reduce
            return lambda env, depth: reduce(op, instr, v(env))
        if op == "mask_any":
            m = self._resolver(ops[0])
            return lambda env, depth: 1 if bool(m(env).any()) else 0
        if op == "mask_all":
            m = self._resolver(ops[0])
            return lambda env, depth: 1 if bool(m(env).all()) else 0
        if op == "mask_popcnt":
            m = self._resolver(ops[0])
            return lambda env, depth: int(m(env).sum())

        # -- calls --------------------------------------------------------------------
        if op == "call":
            callee = ops[0]
            arg_resolvers = [self._resolver(o) for o in ops[1:]]
            if isinstance(callee, ExternalFunction):
                cost = callee.cost
                if callable(cost):
                    cost = cost(self.machine, [o.type for o in ops[1:]])
                cost = float(cost)
                label = f"ext:{callee.name}"
                impl = callee.impl
                def _ext_call(env, depth):
                    self.stats.charge(label, cost)
                    return impl(*[r(env) for r in arg_resolvers])
                return _ext_call
            def _call(env, depth):
                return self._exec_function(
                    callee, [r(env) for r in arg_resolvers], depth + 1
                )
            return _call

        raise NotImplementedError(f"interpreter: opcode {op}")

    # -- reference engine ------------------------------------------------------------

    def _exec_reference(self, function: Function, argvals: List, depth: int):
        env: Dict[Value, object] = dict(zip(function.args, argvals))
        stack_mark = self.memory._brk  # frame-local alloca discipline
        block = function.entry
        prev: Optional[BasicBlock] = None
        stats = self.stats
        try:
            while True:
                instructions = block.instructions
                # Evaluate phis in parallel against the incoming edge.
                n_phi = 0
                if instructions and instructions[0].opcode == "phi":
                    phi_vals = []
                    for instr in instructions:
                        if instr.opcode != "phi":
                            break
                        n_phi += 1
                        phi_vals.append(
                            self._value(env, instr.phi_value_for(prev))
                        )
                        stats.charge("phi", 0.0)
                        if stats.instructions > self.max_instructions:
                            raise ExecutionLimitExceeded(
                                f"exceeded {self.max_instructions} instructions"
                                f" in @{function.name}"
                            )
                    for instr, val in zip(instructions[:n_phi], phi_vals):
                        env[instr] = val
                for instr in instructions[n_phi:]:
                    stats.charge(instr.opcode, self._cost(instr))
                    if stats.instructions > self.max_instructions:
                        raise ExecutionLimitExceeded(
                            f"exceeded {self.max_instructions} instructions in @{function.name}"
                        )
                    op = instr.opcode
                    if op == "br":
                        prev, block = block, instr.operands[0]
                        break
                    if op == "condbr":
                        cond = self._value(env, instr.operands[0])
                        target = instr.operands[1] if cond else instr.operands[2]
                        prev, block = block, target
                        break
                    if op == "ret":
                        if instr.operands:
                            return self._value(env, instr.operands[0])
                        return None
                    if op == "unreachable":
                        raise VMTrap(f"reached 'unreachable' in @{function.name}")
                    env[instr] = self._exec_instr(env, instr, depth)
        finally:
            self.memory._brk = stack_mark

    def _exec_instr(self, env: Dict, instr: Instruction, depth: int):
        op = instr.opcode
        ops = instr.operands
        vec = isinstance(instr.type, VectorType)

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            a = self._value(env, ops[0])
            b = self._value(env, ops[1])
            if vec:
                return eval_vector_binop(op, instr.type.elem, a, b)
            return eval_scalar_binop(op, instr.type, a, b)
        if op in UNARY_OPS:
            a = self._value(env, ops[0])
            if vec:
                return eval_vector_unop(op, instr.type.elem, a)
            return eval_scalar_unop(op, instr.type, a)
        if op == "icmp":
            a, b = self._value(env, ops[0]), self._value(env, ops[1])
            src_t = ops[0].type
            if isinstance(src_t, VectorType):
                return eval_vector_icmp(instr.attrs["pred"], src_t.elem, a, b)
            return eval_scalar_icmp(instr.attrs["pred"], src_t, a, b)
        if op == "fcmp":
            a, b = self._value(env, ops[0]), self._value(env, ops[1])
            if isinstance(ops[0].type, VectorType):
                return eval_vector_fcmp(instr.attrs["pred"], a, b)
            return eval_scalar_fcmp(instr.attrs["pred"], a, b)
        if op in CAST_OPS:
            v = self._value(env, ops[0])
            from_t, to_t = ops[0].type, instr.type
            if isinstance(to_t, VectorType):
                return eval_vector_cast(op, from_t.elem, to_t.elem, v)
            return eval_scalar_cast(op, from_t, to_t, v)
        if op == "select":
            cond = self._value(env, ops[0])
            a, b = self._value(env, ops[1]), self._value(env, ops[2])
            if isinstance(ops[0].type, VectorType) or vec:
                return np.where(cond, a, b)
            return a if cond else b
        if op == "fma":
            a, b, c = (self._value(env, o) for o in ops)
            if vec:
                return a * b + c
            return round_float(instr.type, round_float(instr.type, a * b) + c)

        # -- memory -------------------------------------------------------------------
        if op == "load":
            return self.memory.load_scalar(self._value(env, ops[0]), instr.type)
        if op == "store":
            value = self._value(env, ops[0])
            self.memory.store_scalar(self._value(env, ops[1]), ops[0].type, value)
            return None
        if op == "gep":
            base = self._value(env, ops[0])
            idx = self._value(env, ops[1])
            idx = to_signed(idx, ops[1].type.bits)
            return mask_int(base + idx * instr.type.pointee.size_bytes(), 64)
        if op == "alloca":
            size = instr.type.pointee.size_bytes() * instr.attrs.get("count", 1)
            return self.memory.alloc(max(size, 1))
        if op == "atomicrmw":
            rmw = instr.attrs["op"]
            if rmw not in ATOMIC_RMW_OPS:
                raise VMTrap(f"atomicrmw: unsupported op {rmw!r}")
            addr = self._value(env, ops[0])
            val = self._value(env, ops[1])
            old = self.memory.load_scalar(addr, ops[1].type)
            new = eval_scalar_binop(rmw, ops[1].type, old, val)
            self.memory.store_scalar(addr, ops[1].type, new)
            return old

        # -- vector -------------------------------------------------------------------
        if op == "broadcast":
            scalar = self._value(env, ops[0])
            return np.full(instr.type.count, scalar, dtype=elem_dtype(instr.type.elem))
        if op == "extractelement":
            v = self._value(env, ops[0])
            idx = self._value(env, ops[1])
            lane = v[int(idx) % len(v)]
            return float(lane) if instr.type.is_float else int(lane)
        if op == "insertelement":
            v = self._value(env, ops[0]).copy()
            idx = self._value(env, ops[1])
            v[int(idx) % len(v)] = self._value(env, ops[2])
            return v
        if op == "shuffle":
            src = self._value(env, ops[0])
            idx = self._value(env, ops[1]).astype(np.int64) % len(src)
            return src[idx]
        if op == "shuffle2":
            both = np.concatenate(
                [self._value(env, ops[0]), self._value(env, ops[1])]
            )
            idx = self._value(env, ops[2]).astype(np.int64) % len(both)
            return both[idx]
        if op == "vload":
            addr = self._value(env, ops[0])
            mask = self._value(env, ops[1])
            return self.memory.load_packed(addr, instr.type.elem, instr.type.count, mask)
        if op == "vstore":
            value = self._value(env, ops[0])
            addr = self._value(env, ops[1])
            mask = self._value(env, ops[2])
            self.memory.store_packed(addr, ops[0].type.elem, value, mask)
            return None
        if op == "gather":
            addrs = self._value(env, ops[0])
            mask = self._value(env, ops[1])
            return self.memory.gather(addrs, instr.type.elem, mask)
        if op == "scatter":
            value = self._value(env, ops[0])
            addrs = self._value(env, ops[1])
            mask = self._value(env, ops[2])
            self.memory.scatter(addrs, ops[0].type.elem, value, mask)
            return None
        if op == "sad":
            a = self._value(env, ops[0]).astype(np.int64)
            b = self._value(env, ops[1]).astype(np.int64)
            diffs = np.abs(a - b).reshape(-1, 8).sum(axis=1)
            return diffs.astype(np.uint64)
        if op in REDUCE_OPS:
            return self._reduce(op, instr, self._value(env, ops[0]))
        if op == "mask_any":
            return 1 if bool(self._value(env, ops[0]).any()) else 0
        if op == "mask_all":
            return 1 if bool(self._value(env, ops[0]).all()) else 0
        if op == "mask_popcnt":
            return int(self._value(env, ops[0]).sum())

        # -- calls --------------------------------------------------------------------
        if op == "call":
            callee = ops[0]
            args = [self._value(env, o) for o in ops[1:]]
            if isinstance(callee, ExternalFunction):
                cost = callee.cost
                if callable(cost):
                    cost = cost(self.machine, [o.type for o in ops[1:]])
                self.stats.charge(f"ext:{callee.name}", float(cost))
                return callee.impl(*args)
            return self._exec_function(callee, args, depth + 1)

        raise NotImplementedError(f"interpreter: opcode {op}")

    def _reduce(self, op: str, instr: Instruction, v: np.ndarray):
        elem = instr.operands[0].type.elem
        if op == "reduce_add":
            if elem.is_float:
                return round_float(instr.type, float(np.sum(v, dtype=v.dtype)))
            if elem.bits == 1:
                return 1 if bool(np.bitwise_xor.reduce(v)) else 0
            return int(np.add.reduce(v, dtype=v.dtype))
        if op in ("reduce_min_s", "reduce_max_s"):
            from .nputil import from_signed, signed_view

            sv = signed_view(v)
            r = int(sv.min() if op.endswith("min_s") else sv.max())
            return from_signed(r, elem.bits)
        if op == "reduce_min_u":
            r = v.min()
            return float(r) if elem.is_float else int(r)
        if op == "reduce_max_u":
            r = v.max()
            return float(r) if elem.is_float else int(r)
        if op == "reduce_and":
            if elem.bits == 1:
                return 1 if bool(v.all()) else 0
            return int(np.bitwise_and.reduce(v))
        if op == "reduce_or":
            if elem.bits == 1:
                return 1 if bool(v.any()) else 0
            return int(np.bitwise_or.reduce(v))
        raise NotImplementedError(op)

    # -- helpers --------------------------------------------------------------------

    def _value(self, env: Dict, value: Value):
        if isinstance(value, (Instruction, Argument)):
            return env[value]
        if isinstance(value, Constant):
            return _constant_payload(value)
        if isinstance(value, UndefValue):
            return _undef_payload(value.type)
        if isinstance(value, (BasicBlock, Function, ExternalFunction)):
            return value
        raise TypeError(f"cannot evaluate {value!r}")

    def _cost(self, instr: Instruction) -> float:
        # Keyed by the instruction object (identity hash): unlike id(), a
        # live key can never be recycled to alias a different instruction.
        cost = self._cost_cache.get(instr)
        if cost is None:
            cost = self.cost_model.cost(instr, self.machine)
            self._cost_cache[instr] = cost
        return cost


def _constant_payload(const: Constant):
    type = const.type
    if isinstance(type, VectorType):
        return np.array(const.value, dtype=elem_dtype(type.elem))
    if type.is_float:
        return round_float(type, const.value)
    return const.value


def _undef_payload(type: Type):
    if isinstance(type, VectorType):
        return np.zeros(type.count, dtype=elem_dtype(type.elem))
    if type.is_float:
        return 0.0
    return 0


def _coerce_arg(type: Type, value):
    if isinstance(type, VectorType):
        return np.asarray(value, dtype=elem_dtype(type.elem))
    if isinstance(type, FloatType):
        return round_float(type, float(value))
    if isinstance(type, (IntType, PointerType)):
        return mask_int(int(value), getattr(type, "bits", 64))
    raise TypeError(f"cannot pass argument of type {type}")
