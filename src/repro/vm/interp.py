"""The VM: a direct interpreter for the IR with cycle cost accounting.

Executes scalar *and* vector IR (one unified engine), so the same machine
runs the un-vectorized baseline, the auto-vectorized code, the ispc-mode
output, the Parsimony output, and the hand-written intrinsics kernels —
exactly the five configurations the paper measures (§5).

Every dynamically executed instruction is charged by the
:class:`~repro.backend.costmodel.CostModel` on the configured
:class:`~repro.backend.machine.Machine`; ``run()`` returns the result plus
:class:`~repro.backend.machine.ExecStats` with cycles and per-opcode
counts.

Execution engines
-----------------

The interpreter has two engines that produce bit-identical results *and*
bit-identical ``ExecStats``:

* the **pre-decoded engine** (default): each basic block is decoded once,
  on first entry, into a :class:`_DecodedBlock` — a list of
  ``(instr, opcode, cost, thunk)`` tuples whose thunks have already
  resolved the opcode dispatch, operand lookups, cost-model query, and
  type-directed specialization.  The per-dynamic-instruction work drops to
  one tuple unpack, three counter updates, and one call;
* the **reference engine** (``predecode=False``): the original
  opcode-string dispatch loop, kept as the executable specification the
  equivalence tests compare against.

Superinstructions
-----------------

On top of pre-decoding, the decoder peephole-fuses the dominant dynamic
chains into single composite thunks (``superinstructions=True``, the
default; ``REPRO_NO_FUSE=1`` disables it process-wide):

=====================  =========================================================
pattern                fused chain
=====================  =========================================================
``window``             maximal call-free run of body instructions (ALU ops,
                       cmps, casts, selects, shuffles, and the memory ops)
                       compiled by decode-time codegen into one generated
                       Python function; the hottest scalar ops are inlined
                       as raw expressions (no impl-callable either)
``gep_load``           address computation + dependent scalar load,
                       embedded in a ``window`` and counted per pair
``gep_store``          address computation + dependent scalar store,
                       embedded in a ``window`` and counted per pair
``binop_binop``        dependent int/float binop chains (accumulation),
                       embedded in a ``window`` and counted per pair
``vload_binop_vstore`` streaming triple packed load → vector binop → packed
                       store, embedded in a ``window`` and counted per triple
``cmp_condbr``         scalar icmp/fcmp + the conditional branch it feeds
                       (block terminator fusion, outside windows)
=====================  =========================================================

Phi runs are batched the same way: one resolver sweep, one bulk charge,
one ``dict.update`` per block entry.

Fusion is **accounting-transparent**: inside a window, trapping or
side-effecting constituents (loads, stores, divisions, float→int casts)
keep the exact per-constituent accounting of the reference engine —
charge the cost-model cycles, bump the per-opcode counter, check the
instruction budget, *then* execute — in program order, so ``ExecStats``
stays bit-identical to the reference engine even when a constituent
traps mid-group.  Pure runs between them, and batched phi sweeps, are
bulk-charged (nothing in them can trap, so the reorder is unobservable);
an instruction budget crossing inside a bulk charge is rolled back to
the exact reference trap point before raising.  An intermediate value is only
elided from the environment when every consumer is inside the same group
(checked against the IR's def-use chains), which is what removes the
per-instruction env writes and tuple unpacks the dispatch loop otherwise
pays.

Both engines assume the module is not mutated once execution has started;
call :meth:`Interpreter.clear_decode_cache` after transforming a function
that has already run (this also drops fused blocks and decode-time fusion
counters).  Constant payloads are shared across dynamic uses in
the decoded engine — no opcode mutates its operand arrays, so this is
observationally equivalent to the reference engine's fresh-per-use arrays.
"""

from __future__ import annotations

import operator
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import faultinject
from ..backend.costmodel import DEFAULT_COST_MODEL, CostModel
from ..envflags import env_flag
from ..backend.machine import AVX512, ExecStats, Machine
from ..ir.instructions import (
    ATOMIC_RMW_OPS,
    CAST_OPS,
    FLOAT_BINOPS,
    INT_BINOPS,
    Instruction,
    REDUCE_OPS,
    UNARY_OPS,
)
from ..ir.module import BasicBlock, ExternalFunction, Function, Module
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..ir.values import Argument, Constant, UndefValue, Value
from .memory import Memory, MemoryError_
from .nputil import elem_dtype, mask_int, to_signed
from .ops import (
    VMTrap,
    _c_float,
    gang_activity_count,
    eval_scalar_binop,
    eval_scalar_cast,
    eval_scalar_fcmp,
    eval_scalar_icmp,
    eval_scalar_unop,
    eval_vector_binop,
    eval_vector_cast,
    eval_vector_fcmp,
    eval_vector_icmp,
    eval_vector_unop,
    round_float,
    scalar_binop_impl,
    scalar_fcmp_impl,
    scalar_icmp_impl,
    vector_binop_impl,
)

__all__ = ["Interpreter", "VMTrap", "ExecutionLimitExceeded"]


class ExecutionLimitExceeded(VMTrap):
    """The dynamic instruction budget was exhausted (likely infinite loop)."""


_MAX_CALL_DEPTH = 256

#: Sentinel distinguishing "never attempted" from a sticky ``None``
#: bailout in the per-function codegen memo.
_CODEGEN_UNCOMPILED = object()

# Terminator kinds in decoded form.
_T_BR = 0
_T_CONDBR = 1
_T_RET = 2
_T_UNREACHABLE = 3
_T_FUSED_CMPBR = 4

#: Names of every fusion pattern the decoder reports.  ``window`` is the
#: carrier group (one codegen superinstruction per call-free run); the
#: named chains of the fusion table are detected *inside* windows and
#: counted per embedded occurrence.
FUSION_PATTERNS = (
    "window",
    "vload_binop_vstore",
    "gep_load",
    "gep_store",
    "binop_binop",
    "cmp_condbr",
)

#: Opcodes that are pure and can never trap: safe to bulk-charge inside a
#: codegen window.  Integer div/rem trap on zero and scalar fptosi/fptoui
#: raise on nan/inf, so they get exact interleaved accounting instead.
_PURE_OPS = frozenset(
    (INT_BINOPS - {"sdiv", "udiv", "srem", "urem"})
    | FLOAT_BINOPS
    | UNARY_OPS
    | (CAST_OPS - {"fptosi", "fptoui"})
    | REDUCE_OPS
    | {
        "icmp", "fcmp", "select", "fma", "gep", "broadcast",
        "extractelement", "insertelement", "shuffle", "shuffle2", "sad",
        "mask_any", "mask_all", "mask_popcnt",
    }
)

#: Opcodes that can trap (or touch VM state) mid-group: fusable, but each
#: one keeps the reference engine's exact charge-then-execute accounting
#: inside the generated window.
_EXACT_OPS = frozenset(
    {
        "load", "store", "vload", "vstore", "gather", "scatter",
        "alloca", "atomicrmw",
        "sdiv", "udiv", "srem", "urem",
        "fptosi", "fptoui",
    }
)

#: Everything a window may contain — every body opcode except ``call``
#: (calls re-enter the interpreter and split the group).
_GROUP_OPS = _PURE_OPS | _EXACT_OPS

_BINOPS = INT_BINOPS | FLOAT_BINOPS


def _budget_trap(interp, fname: str):
    """Raise the budget trap exactly as the main dispatch loop words it."""
    limit = interp.max_instructions
    raise ExecutionLimitExceeded(f"exceeded {limit} instructions in @{fname}")


#: Generated window source → compiled code object.  The source text embeds
#: only structure (opcode strings, costs, hoisted-name wiring), never
#: payloads, so groups with the same shape share one ``compile()`` across
#: all interpreters in the process; per-group state binds at ``exec`` time
#: through default arguments.
_WINDOW_CODE_CACHE: Dict[str, object] = {}


def _bulk_limit_repair(stats: ExecStats, meta, limit: int, fname: str):
    """Exact trap point for a bulk-charged group that crossed the budget.

    ``meta`` is the ``(opcode, cost)`` list of the bulk-charged
    constituents, in program order.  The reference engine raises while
    charging instruction ``limit + 1``; roll back every charge past that
    point, then raise with the counters exactly as the reference engine
    would leave them.
    """
    over = stats.instructions - (limit + 1)
    if over > 0:
        counts = stats.counts
        for opcode, cost in meta[len(meta) - over:]:
            stats.cycles -= cost
            remaining = counts[opcode] - 1
            if remaining:
                counts[opcode] = remaining
            else:
                # The reference engine creates a counter key only when it
                # charges the opcode; a full rollback must erase the key,
                # not leave a zero (counts compare with ``==``).
                del counts[opcode]
    stats.instructions = limit + 1
    raise ExecutionLimitExceeded(f"exceeded {limit} instructions in @{fname}")


def _uses_exactly(value: Value, user, idx: int) -> bool:
    """True iff ``value`` has exactly one use: operand ``idx`` of ``user``."""
    uses = value.uses
    return len(uses) == 1 and uses[0][0] is user and uses[0][1] == idx


def _all_uses_by(value: Value, user) -> bool:
    """True iff every use of ``value`` is an operand of ``user``."""
    uses = value.uses
    return bool(uses) and all(u is user for u, _ in uses)


def _cmp_condbr_fusible(cond_instr: Instruction, term_instr: Instruction) -> bool:
    """True iff the block's trailing scalar cmp can fuse into its condbr."""
    cond = term_instr.operands[0]
    return (
        cond is cond_instr
        and cond.opcode in ("icmp", "fcmp")
        and not isinstance(cond.operands[0].type, VectorType)
        and _uses_exactly(cond, term_instr, 0)
    )


def _embedded_idioms(group) -> Dict[str, int]:
    """Count the named fusion chains embedded in one codegen group.

    The decode-level pattern table (``gep_load``, ``gep_store``,
    ``binop_binop``, ``vload_binop_vstore``) is realized *inside* windows:
    the group keeps the producer's value in a Python local, which is
    exactly what each named chain's dedicated thunk would do.  This
    function recovers the per-pattern telemetry counters.
    """
    idioms: Dict[str, int] = {}

    def bump(pattern: str) -> None:
        idioms[pattern] = idioms.get(pattern, 0) + 1

    for x, y in zip(group, group[1:]):
        xo, yo = x.opcode, y.opcode
        if xo == "gep" and yo == "load" and y.operands[0] is x and _uses_exactly(x, y, 0):
            bump("gep_load")
        elif xo == "gep" and yo == "store" and y.operands[1] is x and _uses_exactly(x, y, 1):
            bump("gep_store")
        elif (
            xo in _BINOPS
            and yo in _BINOPS
            and (y.operands[0] is x or y.operands[1] is x)
        ):
            bump("binop_binop")
    for v, o, s in zip(group, group[1:], group[2:]):
        if (
            v.opcode == "vload"
            and s.opcode == "vstore"
            and o.opcode in _BINOPS
            and isinstance(o.type, VectorType)
            and (o.operands[0] is v or o.operands[1] is v)
            and s.operands[0] is o
            and _all_uses_by(v, o)
            and _uses_exactly(o, s, 0)
        ):
            bump("vload_binop_vstore")
    return idioms


class _DecodedBlock:
    """One basic block, decoded for the fast engine.

    ``phis``  — list of ``(instr, {pred_block: resolver})``;
    ``phi_plan`` — with superinstructions on, ``{pred_block: (targets,
    resolvers)}`` for batched parallel-phi assignment (``None`` when fusion
    is off); a predecessor missing from any phi's edge map has no plan
    entry, and the runtime falls back to the per-phi walk to raise the
    reference error;
    ``body``  — list of ``(instr, opcode, cost, thunk)`` for the non-phi,
    non-terminator instructions, where ``thunk(env, depth)`` computes the
    value;
    ``term``  — ``(_T_BR, cost, opcode, target)`` |
    ``(_T_CONDBR, cost, opcode, cond_resolver, iftrue, iffalse)`` |
    ``(_T_RET, cost, opcode, resolver_or_None)`` |
    ``(_T_UNREACHABLE, cost, opcode)``;
    ``batch`` — ``None`` for ordinary blocks, else the gang-batched decode
    ``(phis, body, term)`` described at :meth:`Interpreter._decode_batch_block`
    (and the other fields are unused).
    """

    __slots__ = ("phis", "phi_plan", "body", "term", "batch")

    def __init__(self, phis, body, term, phi_plan=None, batch=None):
        self.phis = phis
        self.phi_plan = phi_plan
        self.body = body
        self.term = term
        self.batch = batch


class Interpreter:
    """Executes functions from one module against a flat memory."""

    def __init__(
        self,
        module: Module,
        machine: Machine = AVX512,
        cost_model: Optional[CostModel] = None,
        memory: Optional[Memory] = None,
        max_instructions: int = 500_000_000,
        predecode: bool = True,
        superinstructions: Optional[bool] = None,
        codegen: Optional[bool] = None,
    ):
        self.module = module
        self.machine = machine
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.memory = memory or Memory()
        self.max_instructions = max_instructions
        self.predecode = predecode
        if superinstructions is None:
            superinstructions = not env_flag("REPRO_NO_FUSE")
        self.superinstructions = superinstructions
        if codegen is None:
            codegen = env_flag("REPRO_CODEGEN")
        if env_flag("REPRO_NO_CODEGEN"):
            # The escape hatch beats everything, including an explicit
            # ``codegen=True`` — it must restore the prior engine exactly.
            codegen = False
        #: Whole-kernel codegen engine (see :mod:`repro.backend.codegen`):
        #: linearized functions bypass the dispatch loop entirely.  Rides
        #: on top of predecode (the decoded engine stays the bailout and
        #: trap-replay fallback).
        self.codegen = bool(codegen) and predecode
        self.stats = ExecStats()
        #: Exclusive (self-only) cycles per function name, for hot-spot telemetry.
        self.func_cycles: Dict[str, float] = {}
        #: Dynamic call count per function name.
        self.func_calls: Dict[str, int] = {}
        #: (caller, callee) -> inclusive cycles / dynamic calls along that edge.
        #: The root edge uses caller name ``"<root>"``.
        self.edge_cycles: Dict[Tuple[str, str], float] = {}
        self.edge_calls: Dict[Tuple[str, str], int] = {}
        #: Dynamic executions per fusion pattern (run counter, like stats).
        self.fuse_hits: Dict[str, int] = {}
        #: Fused sites per pattern, counted at decode time (decode artifact).
        self.fuse_static: Dict[str, int] = {}
        self._call_stack: List[str] = []
        self._child_cycles = 0.0
        self._cost_cache: Dict[Instruction, float] = {}
        self._decoded: Dict[Function, Dict[BasicBlock, _DecodedBlock]] = {}
        #: Trap replays on the unbatched twin this run (see :meth:`run`).
        self.batch_replays = 0
        self._fallback_interp: Optional["Interpreter"] = None
        self._batch_cache: Dict[Instruction, tuple] = {}
        #: Linearized function cache: Function -> generated callable, or
        #: ``None`` (sticky) when emission bailed out.
        self._codegen_fns: Dict[Function, object] = {}
        #: ``vm.codegen.*`` counters.  compiles/cache_hits/disk_hits are
        #: decode artifacts; calls/replays are run counters
        #: (:meth:`reset_stats` zeroes only the latter).
        self.codegen_stats: Dict[str, int] = {
            "compiles": 0, "cache_hits": 0, "disk_hits": 0,
            "calls": 0, "replays": 0,
        }
        #: Bailout reason -> count (decode artifact).
        self.codegen_bailouts: Dict[str, int] = {}
        #: True only while executing under :meth:`_run_replayable`: the
        #: generated code's block-merged charges are exact for completed
        #: runs but approximate at trap points, so the codegen engine
        #: requires the replay umbrella.
        self._codegen_armed = False
        #: When set (a ``repro.shard._ShardRun``), the top-level decoded
        #: dispatch loop executes only this shard's slice of every matched
        #: gang loop and rolls serial charges back on shards > 0 — see
        #: :mod:`repro.shard`.  ``None`` = normal full execution.
        self.shard = None

    # -- public API -----------------------------------------------------------------

    def run(self, function, *args):
        """Execute ``function`` (a ``Function`` or name) with Python args."""
        if isinstance(function, str):
            function = self.module.get(function)
        if len(args) != len(function.args):
            raise TypeError(
                f"@{function.name} takes {len(function.args)} args, got {len(args)}"
            )
        argvals = [
            _coerce_arg(a.type, v) for a, v in zip(function.args, args)
        ]
        if not faultinject.active() and self.shard is None:
            # Sharded runs bypass trap replay: a shard that traps fails the
            # whole launch over to the supervisor's full in-process rerun,
            # which takes this path and is authoritative.
            batch_twin = self.module.attrs.get("batch_fallback")
            if batch_twin is not None:
                return self._run_replayable(function, argvals, args, batch_twin)
            if self.codegen:
                # Codegen traps replay on the predecoded twin of the same
                # module, so trap identity / trap-point stats / memory
                # effects are authoritative even across emission seams.
                return self._run_replayable(
                    function, argvals, args, self.module
                )
        return self._exec_function(function, argvals, depth=0)

    def _run_replayable(
        self, function: Function, argvals: List, args,
        fallback_module: Module,
    ):
        """Top-level run with the gang-batching trap-replay contract.

        Any :class:`ExecutionError` raised while running a batched module
        (a genuine kernel trap, a budget trap, or a spurious batched-only
        trap from a finished gang's unmasked lanes) rolls the VM back to
        the pre-run state and replays the call wholesale on
        ``fallback_module`` — the unbatched twin stashed in
        ``module.attrs["batch_fallback"]``, or the module itself under
        the codegen engine (the fallback interpreter always runs with
        ``codegen=False``, i.e. the predecoded twin).  The replay's
        outcome — result or trap — is authoritative, so trap identity,
        trap-point ``ExecStats``, and attribution all match the fallback
        engine bit-for-bit.  Skipped under active fault injection: the
        driver never batches then, and replaying would double-fire
        one-shot fault plans.
        """
        memory = self.memory
        saved_data = memory.data.copy()
        saved_brk = memory._brk
        stats = self.stats
        snap = (
            stats.cycles, stats.instructions, dict(stats.counts),
            dict(self.func_cycles), dict(self.func_calls),
            dict(self.edge_cycles), dict(self.edge_calls),
            dict(self.fuse_hits), self._child_cycles,
        )
        self._codegen_armed = self.codegen
        try:
            return self._exec_function(function, argvals, depth=0)
        except (VMTrap, MemoryError_):
            memory.data[:] = saved_data
            memory._brk = saved_brk
            stats.cycles, stats.instructions = snap[0], snap[1]
            stats.counts.clear()
            stats.counts.update(snap[2])
            for live, saved in (
                (self.func_cycles, snap[3]), (self.func_calls, snap[4]),
                (self.edge_cycles, snap[5]), (self.edge_calls, snap[6]),
                (self.fuse_hits, snap[7]),
            ):
                live.clear()
                live.update(saved)
            self._child_cycles = snap[8]
            if fallback_module is self.module:
                self.codegen_stats["replays"] += 1
            else:
                self.batch_replays += 1
            fb = self._fallback_interp
            if fb is None:
                fb = self._fallback_interp = Interpreter(
                    fallback_module,
                    machine=self.machine,
                    cost_model=self.cost_model,
                    memory=memory,
                    max_instructions=self.max_instructions,
                    predecode=self.predecode,
                    superinstructions=self.superinstructions,
                    codegen=False,
                )
            fb.reset_stats()
            try:
                return fb.run(function.name, *args)
            finally:
                # Merge whatever the replay charged — including a trap's
                # partial charges — into this interpreter's counters.
                stats.merge(fb.stats)
                for live, other in (
                    (self.func_cycles, fb.func_cycles),
                    (self.edge_cycles, fb.edge_cycles),
                ):
                    for k, v in other.items():
                        live[k] = live.get(k, 0.0) + v
                for live, other in (
                    (self.func_calls, fb.func_calls),
                    (self.edge_calls, fb.edge_calls),
                    (self.fuse_hits, fb.fuse_hits),
                ):
                    for k, v in other.items():
                        live[k] = live.get(k, 0) + v
                self._child_cycles += fb._child_cycles
        finally:
            self._codegen_armed = False

    def reset_stats(self) -> ExecStats:
        """Zero all counters in place (``self.stats`` stays the same object).

        Reusing one interpreter for several timed runs without calling this
        silently accumulates cycles from earlier runs into every
        measurement.
        """
        stats = self.stats
        stats.cycles = 0.0
        stats.instructions = 0
        stats.counts.clear()
        self.func_cycles.clear()
        self.func_calls.clear()
        self.edge_cycles.clear()
        self.edge_calls.clear()
        self.fuse_hits.clear()
        self._child_cycles = 0.0
        self.batch_replays = 0
        self.codegen_stats["calls"] = 0
        self.codegen_stats["replays"] = 0
        return stats

    def clear_decode_cache(self) -> None:
        """Drop decoded blocks and cached costs (after mutating the module).

        Fused blocks are invalidated along with plain ones; the decode-time
        fusion site counters reset with them (dynamic ``fuse_hits`` are run
        counters and belong to :meth:`reset_stats` instead).
        """
        self._decoded.clear()
        self._cost_cache.clear()
        self._batch_cache.clear()
        self.fuse_static.clear()
        self._codegen_fns.clear()
        self.codegen_bailouts.clear()
        for key in ("compiles", "cache_hits", "disk_hits"):
            self.codegen_stats[key] = 0

    def hotspots(self) -> List[Dict[str, object]]:
        """Per-function cycle attribution, hottest first (for telemetry).

        Each entry carries the function's exclusive cycles plus its incoming
        call edges (``callers``: caller name → inclusive cycles and dynamic
        calls along that edge; the entry function's caller is ``"<root>"``).
        When superinstruction fusion fired, a final ``"(vm.fuse)"`` entry
        reports the decode-time fusion sites and dynamic hits per pattern.
        """
        incoming: Dict[str, Dict[str, Dict[str, object]]] = {}
        for (caller, callee), cycles in self.edge_cycles.items():
            incoming.setdefault(callee, {})[caller] = {
                "inclusive_cycles": cycles,
                "calls": self.edge_calls.get((caller, callee), 0),
            }
        entries: List[Dict[str, object]] = [
            {
                "function": name,
                "exclusive_cycles": cycles,
                "calls": self.func_calls.get(name, 0),
                "callers": incoming.get(name, {}),
            }
            for name, cycles in sorted(
                self.func_cycles.items(), key=lambda kv: -kv[1]
            )
        ]
        if any(self.fuse_hits.values()):
            entries.append(
                {
                    "function": "(vm.fuse)",
                    "exclusive_cycles": 0.0,
                    "calls": 0,
                    "callers": {},
                    "fusion": self.fusion_report(),
                }
            )
        return entries

    def call_edges(self) -> List[Dict[str, object]]:
        """Caller→callee cycle edges, heaviest first (for telemetry)."""
        return [
            {
                "caller": caller,
                "callee": callee,
                "inclusive_cycles": cycles,
                "calls": self.edge_calls.get((caller, callee), 0),
            }
            for (caller, callee), cycles in sorted(
                self.edge_cycles.items(), key=lambda kv: -kv[1]
            )
        ]

    def fusion_report(self) -> Dict[str, object]:
        """Decode-time fusion summary: sites fused per pattern and dynamic
        executions per pattern (``vm.fuse.<pattern>`` in telemetry)."""
        return {
            "superinstructions": self.superinstructions,
            "sites": dict(self.fuse_static),
            "hits": dict(self.fuse_hits),
        }

    # -- execution ---------------------------------------------------------------------

    def _exec_function(self, function: Function, argvals: List, depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise VMTrap(f"call depth exceeded calling @{function.name}")
        stats = self.stats
        cycles_at_entry = stats.cycles
        saved_child_cycles = self._child_cycles
        self._child_cycles = 0.0
        name = function.name
        stack = self._call_stack
        caller = stack[-1] if stack else "<root>"
        stack.append(name)
        try:
            if self._codegen_armed:
                # Armed only inside _run_replayable: the generated code
                # bulk-charges per block, so its trap-point stats are
                # approximate and a replay on the predecoded twin must be
                # standing by.  Sharded and fault-injected runs skip the
                # wrapper and therefore transparently use the decoded
                # engine.
                kfn = self._codegen_fns.get(
                    function, _CODEGEN_UNCOMPILED
                )
                if kfn is _CODEGEN_UNCOMPILED:
                    kfn = self._codegen_compile(function)
                if kfn is not None:
                    self.codegen_stats["calls"] += 1
                    return kfn(argvals, depth)
            if self.predecode:
                return self._exec_decoded(function, argvals, depth)
            return self._exec_reference(function, argvals, depth)
        finally:
            stack.pop()
            inclusive = stats.cycles - cycles_at_entry
            exclusive = inclusive - self._child_cycles
            fc = self.func_cycles
            fc[name] = fc.get(name, 0.0) + exclusive
            calls = self.func_calls
            calls[name] = calls.get(name, 0) + 1
            edge = (caller, name)
            ec = self.edge_cycles
            ec[edge] = ec.get(edge, 0.0) + inclusive
            en = self.edge_calls
            en[edge] = en.get(edge, 0) + 1
            self._child_cycles = saved_child_cycles + inclusive

    # -- whole-kernel codegen engine -------------------------------------------------

    def _codegen_compile(self, function: Function):
        """Linearize ``function`` into one generated callable (or ``None``).

        Bailouts are sticky per function (the reason lands in
        ``codegen_bailouts``); successful compiles report their source
        origin in ``codegen_stats`` (``compiles`` / ``cache_hits`` /
        ``disk_hits``).  Emission failures of *any* kind degrade to the
        decoded engine — codegen is an accelerator, never a requirement.
        """
        from ..backend import codegen as _cg

        bailouts = self.codegen_bailouts
        kfn = None
        try:
            faultinject.maybe_fail("codegen", function.name)
            source, bindings = _cg.emit_function(self, function)
            code, origin = _cg.compiled_code(source)
            kfn = _cg.bind_code(code, bindings)
        except _cg.CodegenBailout as exc:
            bailouts[exc.reason] = bailouts.get(exc.reason, 0) + 1
        except faultinject.InjectedFault:
            bailouts["injected-fault"] = bailouts.get("injected-fault", 0) + 1
        except Exception as exc:  # defensive: an emitter bug must not trap
            reason = f"error:{type(exc).__name__}"
            bailouts[reason] = bailouts.get(reason, 0) + 1
        else:
            key = {"cache": "cache_hits", "disk": "disk_hits"}.get(
                origin, "compiles"
            )
            self.codegen_stats[key] += 1
        self._codegen_fns[function] = kfn
        return kfn

    def codegen_report(self) -> Dict[str, object]:
        """Whole-kernel codegen summary (``vm.codegen.*`` in telemetry)."""
        return {
            "enabled": self.codegen,
            "compiles": self.codegen_stats["compiles"],
            "cache_hits": self.codegen_stats["cache_hits"],
            "disk_hits": self.codegen_stats["disk_hits"],
            "calls": self.codegen_stats["calls"],
            "replays": self.codegen_stats["replays"],
            "bailouts": dict(self.codegen_bailouts),
        }

    # -- pre-decoded engine ---------------------------------------------------------

    def _exec_decoded(self, function: Function, argvals: List, depth: int):
        decoded = self._decoded.get(function)
        if decoded is None:
            decoded = self._decoded[function] = {}
        env: Dict[Value, object] = dict(zip(function.args, argvals))
        memory = self.memory
        stack_mark = memory._brk  # frame-local alloca discipline
        stats = self.stats
        counts = stats.counts
        limit = self.max_instructions
        fuse_hits = self.fuse_hits
        block = function.entry
        prev: Optional[BasicBlock] = None
        if function.attrs.get("batched"):
            # Per-frame divergent-loop gang-activity state (see
            # ``_exec_batch_block``): loop id -> committed / pending count.
            activity: Dict[str, int] = {}
            pending: Dict[str, int] = {}
        else:
            activity = pending = None  # type: ignore[assignment]
        shard = self.shard
        ctl = (shard.controller(function, self)
               if shard is not None and depth == 0 else None)
        try:
            while True:
                if ctl is not None:
                    jump = ctl.step(block, prev, env)
                    if jump is not None:
                        prev, block = jump
                        continue
                d = decoded.get(block)
                if d is None:
                    d = decoded[block] = self._decode_block(block, function)
                if d.batch is not None:
                    done, payload = self._exec_batch_block(
                        d.batch, env, depth, function, prev, activity, pending
                    )
                    if done:
                        if ctl is not None:
                            ctl.finish()
                        return payload
                    prev, block = block, payload
                    continue
                phis = d.phis
                if phis:
                    plan_map = d.phi_plan
                    if plan_map is not None:
                        # Batched parallel-phi assignment: resolve every
                        # incoming value (pure), bulk-charge the group, then
                        # assign via dict.update.  phi cost is 0.0, so the
                        # bulk charge touches only the instruction counter;
                        # a budget crossing is repaired to the exact
                        # reference trap point before raising.
                        plan = plan_map.get(prev)
                        if plan is None:
                            for _, edges in phis:
                                if prev not in edges:
                                    raise KeyError(
                                        f"phi has no incoming edge from block {prev.name}"
                                    )
                            raise KeyError(
                                f"phi has no incoming edge from block {prev.name}"
                            )
                        resolvers = plan[1]
                        vals = [r(env) for r in resolvers]
                        ni = stats.instructions + len(vals)
                        stats.instructions = ni
                        counts["phi"] = counts.get("phi", 0) + len(vals)
                        if ni > limit:
                            counts["phi"] -= ni - limit - 1
                            stats.instructions = limit + 1
                            raise ExecutionLimitExceeded(
                                f"exceeded {limit} instructions in @{function.name}"
                            )
                        env.update(zip(plan[0], vals))
                    else:
                        # Evaluate phis in parallel against the incoming edge.
                        phi_vals = []
                        for _, edges in phis:
                            resolver = edges.get(prev)
                            if resolver is None:
                                raise KeyError(
                                    f"phi has no incoming edge from block {prev.name}"
                                )
                            phi_vals.append(resolver(env))
                            stats.cycles += 0.0
                            stats.instructions += 1
                            counts["phi"] = counts.get("phi", 0) + 1
                            if stats.instructions > limit:
                                raise ExecutionLimitExceeded(
                                    f"exceeded {limit} instructions in @{function.name}"
                                )
                        for (instr, _), val in zip(phis, phi_vals):
                            env[instr] = val
                for instr, opcode, cost, thunk in d.body:
                    stats.cycles += cost
                    stats.instructions += 1
                    counts[opcode] = counts.get(opcode, 0) + 1
                    if stats.instructions > limit:
                        raise ExecutionLimitExceeded(
                            f"exceeded {limit} instructions in @{function.name}"
                        )
                    env[instr] = thunk(env, depth)
                term = d.term
                kind = term[0]
                if kind == _T_FUSED_CMPBR:
                    # Fused cmp+condbr: per-constituent accounting in the
                    # reference engine's charge-then-execute order.
                    stats.cycles += term[1]
                    stats.instructions += 1
                    opcode = term[2]
                    counts[opcode] = counts.get(opcode, 0) + 1
                    if stats.instructions > limit:
                        raise ExecutionLimitExceeded(
                            f"exceeded {limit} instructions in @{function.name}"
                        )
                    cond = term[3](env)
                    stats.cycles += term[6]
                    stats.instructions += 1
                    counts["condbr"] = counts.get("condbr", 0) + 1
                    if stats.instructions > limit:
                        raise ExecutionLimitExceeded(
                            f"exceeded {limit} instructions in @{function.name}"
                        )
                    fuse_hits["cmp_condbr"] = fuse_hits.get("cmp_condbr", 0) + 1
                    prev = block
                    block = term[4] if cond else term[5]
                    continue
                stats.cycles += term[1]
                stats.instructions += 1
                opcode = term[2]
                counts[opcode] = counts.get(opcode, 0) + 1
                if stats.instructions > limit:
                    raise ExecutionLimitExceeded(
                        f"exceeded {limit} instructions in @{function.name}"
                    )
                if kind == _T_BR:
                    prev, block = block, term[3]
                elif kind == _T_CONDBR:
                    prev = block
                    block = term[4] if term[3](env) else term[5]
                elif kind == _T_RET:
                    if ctl is not None:
                        ctl.finish()
                    resolver = term[3]
                    return resolver(env) if resolver is not None else None
                else:
                    raise VMTrap(f"reached 'unreachable' in @{function.name}")
        finally:
            memory._brk = stack_mark

    # -- decoding --------------------------------------------------------------------

    def _decode_block(self, block: BasicBlock, function: Function) -> _DecodedBlock:
        instructions = block.instructions
        if not instructions or not instructions[-1].is_terminator:
            raise VMTrap(
                f"block {block.name} in @{function.name} has no terminator"
            )
        if any("batch_mult" in instr.attrs for instr in instructions):
            return self._decode_batch_block(block, function)
        phis = []
        i = 0
        while i < len(instructions) and instructions[i].opcode == "phi":
            instr = instructions[i]
            edges = {
                pred: self._resolver(value)
                for value, pred in instr.phi_incoming()
            }
            phis.append((instr, edges))
            i += 1
        body_instrs = instructions[i:-1]
        term_instr = instructions[-1]
        phi_plan = None
        if self.superinstructions:
            if phis:
                targets = tuple(instr for instr, _ in phis)
                common = set(phis[0][1])
                for _, edges in phis[1:]:
                    common &= set(edges)
                phi_plan = {
                    pred: (targets, tuple(edges[pred] for _, edges in phis))
                    for pred in common
                }
            reserve = (
                term_instr.opcode == "condbr"
                and bool(body_instrs)
                and _cmp_condbr_fusible(body_instrs[-1], term_instr)
            )
            body = self._fuse_body(body_instrs, function, reserve)
        else:
            body = [
                (instr, instr.opcode, self._cost(instr), self._decode_instr(instr))
                for instr in body_instrs
            ]
        cost = self._cost(term_instr)
        op = term_instr.opcode
        tops = term_instr.operands
        if op == "br":
            term: Tuple = (_T_BR, cost, op, tops[0])
        elif op == "condbr":
            fused_term = None
            if self.superinstructions and body:
                fused_term = self._fuse_cmp_condbr(body, term_instr, cost)
            if fused_term is not None:
                term = fused_term
            else:
                term = (
                    _T_CONDBR, cost, op, self._resolver(tops[0]), tops[1], tops[2]
                )
        elif op == "ret":
            if tops:
                resolver = self._resolver(tops[0])
                if isinstance(tops[0], (Constant, UndefValue)) and isinstance(
                    tops[0].type, VectorType
                ):
                    # Shared constant payloads must not leak to callers who
                    # may mutate the returned array.
                    inner = resolver
                    resolver = lambda env: inner(env).copy()
                term = (_T_RET, cost, op, resolver)
            else:
                term = (_T_RET, cost, op, None)
        elif op == "unreachable":
            term = (_T_UNREACHABLE, cost, op)
        else:
            raise NotImplementedError(f"interpreter: terminator {op}")
        return _DecodedBlock(phis, body, term, phi_plan)

    # -- gang-batched blocks ----------------------------------------------------------
    #
    # Blocks annotated by ``repro.backend.batch`` execute B gangs per VM
    # step.  Each annotated instruction carries narrow charge prototypes
    # (``batch_charges``) and a multiplicity spec (``batch_mult``): the
    # number of unbatched-engine executions one batched step stands for.
    # A spec is an int (static multiplicity — loop-invariant code charges
    # ×B, header bookkeeping ×0) or a tuple of divergent-loop ids ending
    # in the static B; the VM resolves the first id with a live activity
    # count, so code under a divergent loop charges once per gang that
    # would still be iterating in the unbatched engine.  Superinstruction
    # fusion never applies inside batched blocks (their remainder twins
    # carry no annotations and fuse normally).

    def _batch_info(self, instr: Instruction):
        """``(charge_items, multspec)`` for an annotated instruction.

        ``charge_items`` is a tuple of ``(counts_key, narrow_cost)``; an
        external-call prototype contributes the unbatched engine's two
        charges (``call`` dispatch + the narrow ``ext:`` cost)."""
        cached = self._batch_cache.get(instr)
        if cached is not None:
            return cached
        items = []
        for proto in instr.attrs["batch_charges"]:
            if proto.opcode == "call":
                callee = proto.operands[0]
                ext_cost = callee.cost
                if callable(ext_cost):
                    ext_cost = ext_cost(
                        self.machine, [o.type for o in proto.operands[1:]]
                    )
                items.append(("call", self._cost(proto)))
                items.append((f"ext:{callee.name}", float(ext_cost)))
            else:
                items.append((proto.opcode, self._cost(proto)))
        info = (tuple(items), instr.attrs["batch_mult"])
        self._batch_cache[instr] = info
        return info

    @staticmethod
    def _batch_mult(spec, activity) -> int:
        if type(spec) is int:
            return spec
        for lid in spec:
            if type(lid) is int:
                return lid
            live = activity.get(lid)
            if live is not None:
                return live
        return 0  # pragma: no cover - specs always end in the static B

    def _batch_thunk(self, instr: Instruction):
        """Value thunk for a batched instruction.  Identical to the plain
        decode except for external calls, whose normal thunk charges the
        wide ``ext:`` cost internally — batched charging comes exclusively
        from the narrow prototypes."""
        if instr.opcode == "call" and isinstance(
            instr.operands[0], ExternalFunction
        ):
            impl = instr.operands[0].impl
            arg_resolvers = [self._resolver(o) for o in instr.operands[1:]]
            return lambda env, depth: impl(*[r(env) for r in arg_resolvers])
        return self._decode_instr(instr)

    def _decode_batch_block(self, block: BasicBlock, function: Function):
        """Decode an annotated block into ``(phis, body, term)``:

        ``phis`` — ``(instr, {pred: resolver}, items, multspec)``;
        ``body`` — ``(instr, items, multspec, thunk, activity)`` where
        ``activity`` is ``None`` or ``(loop_id, B, mask_resolver)`` for
        the divergent-loop ``mask_any``;
        ``term`` — ``(_T_BR, items, multspec, target)`` |
        ``(_T_CONDBR, items, multspec, cond_resolver, iftrue, iffalse,
        backedge_or_None)`` | ``(_T_UNREACHABLE, items, multspec)``.
        """
        instructions = block.instructions
        phis = []
        i = 0
        while instructions[i].opcode == "phi":
            instr = instructions[i]
            edges = {
                pred: self._resolver(value)
                for value, pred in instr.phi_incoming()
            }
            items, spec = self._batch_info(instr)
            phis.append((instr, edges, items, spec))
            i += 1
        body = []
        for instr in instructions[i:-1]:
            items, spec = self._batch_info(instr)
            act = None
            ba = instr.attrs.get("batch_activity")
            if ba is not None:
                act = (ba[0], ba[1], self._resolver(instr.operands[0]))
            body.append((instr, items, spec, self._batch_thunk(instr), act))
        term_instr = instructions[-1]
        items, spec = self._batch_info(term_instr)
        op = term_instr.opcode
        tops = term_instr.operands
        if op == "br":
            term: Tuple = (_T_BR, items, spec, tops[0])
        elif op == "condbr":
            term = (
                _T_CONDBR, items, spec, self._resolver(tops[0]),
                tops[1], tops[2], term_instr.attrs.get("batch_backedge"),
            )
        elif op == "unreachable":
            term = (_T_UNREACHABLE, items, spec)
        else:  # pragma: no cover - legality forbids ret/other inside the loop
            raise NotImplementedError(f"interpreter: batched terminator {op}")
        return _DecodedBlock((), (), None, batch=(tuple(phis), tuple(body), term))

    def _exec_batch_block(self, batch, env, depth, function, prev,
                          activity, pending):
        """Run one batched block; returns ``(False, next_block)`` or
        ``(True, return_value)``.

        Charging per instruction: each narrow charge item is applied
        ``m`` times at once (``cycles += cost·m`` is exact — the cost
        table is dyadic), with a single budget check per instruction.
        Prefix sums of the unbatched engine's charge sequence are a
        superset, so a budget crossing happens here iff the unbatched
        engine traps; the replay protocol then reproduces its exact trap
        point.
        """
        stats = self.stats
        counts = stats.counts
        limit = self.max_instructions
        phis, body, term = batch
        if phis:
            vals = []
            for instr, edges, items, spec in phis:
                resolver = edges.get(prev)
                if resolver is None:
                    raise KeyError(
                        f"phi has no incoming edge from block {prev.name}"
                    )
                vals.append(resolver(env))
                m = self._batch_mult(spec, activity)
                if m:
                    for key, cost in items:
                        stats.cycles += cost * m
                        stats.instructions += m
                        counts[key] = counts.get(key, 0) + m
                    if stats.instructions > limit:
                        raise ExecutionLimitExceeded(
                            f"exceeded {limit} instructions in @{function.name}"
                        )
            for (instr, _, _, _), val in zip(phis, vals):
                env[instr] = val
        for instr, items, spec, thunk, act in body:
            m = self._batch_mult(spec, activity)
            if m:
                for key, cost in items:
                    stats.cycles += cost * m
                    stats.instructions += m
                    counts[key] = counts.get(key, 0) + m
                if stats.instructions > limit:
                    raise ExecutionLimitExceeded(
                        f"exceeded {limit} instructions in @{function.name}"
                    )
            env[instr] = thunk(env, depth)
            if act is not None:
                pending[act[0]] = gang_activity_count(act[2](env), act[1])
        kind = term[0]
        m = self._batch_mult(term[2], activity)
        if m:
            for key, cost in term[1]:
                stats.cycles += cost * m
                stats.instructions += m
                counts[key] = counts.get(key, 0) + m
            if stats.instructions > limit:
                raise ExecutionLimitExceeded(
                    f"exceeded {limit} instructions in @{function.name}"
                )
        if kind == _T_BR:
            return False, term[3]
        if kind == _T_CONDBR:
            target = term[4] if term[3](env) else term[5]
            backedge = term[6]
            if backedge is not None:
                # Divergent-loop backedge: the condbr charged with the
                # *previous* iteration's activity above; commit the count
                # the mask_any just computed before the next iteration
                # (or drop the loop's state on exit).
                lid, taken_idx = backedge
                if target is (term[4] if taken_idx == 1 else term[5]):
                    activity[lid] = pending[lid]
                else:
                    activity.pop(lid, None)
                    pending.pop(lid, None)
            return False, target
        raise VMTrap(f"reached 'unreachable' in @{function.name}")

    # -- superinstruction fusion ------------------------------------------------------
    #
    # Every composite thunk preserves the reference engine's accounting
    # contract per constituent: charge cycles, bump the opcode counter,
    # check the instruction budget, then execute — in program order.  The
    # main loop performs that sequence for the group's FIRST constituent
    # (the body tuple carries its opcode and cost); the thunk does it for
    # the rest.  A constituent trapping mid-group therefore leaves
    # ``ExecStats`` exactly as the reference engine would.

    def _fuse_body(self, instrs, function: Function, reserve_last: bool = False):
        """Decode a block body, fusing call-free runs into codegen windows.

        Returns the decoded body list; fused entries are
        ``(last_instr, first_opcode, first_cost, composite_thunk)`` so the
        main loop's accounting covers the first constituent and its env
        write lands on the group's result.

        A window is a maximal run of non-call instructions compiled into
        one generated Python function (see :meth:`_codegen_group`); the
        named chains of the fusion table (``gep_load``, ``gep_store``,
        ``binop_binop``, ``vload_binop_vstore``) are detected inside each
        window and counted per embedded occurrence.  With ``reserve_last``
        the final instruction is left un-fused so the terminator decode
        can claim it for ``cmp_condbr``.
        """
        fname = function.name
        body = []
        fuse_static = self.fuse_static
        n = len(instrs)
        m = n - 1 if reserve_last else n
        j = 0
        while j < m:
            instr = instrs[j]
            op = instr.opcode
            if op in _GROUP_OPS:
                k = j + 1
                while k < m and instrs[k].opcode in _GROUP_OPS:
                    k += 1
                if k - j >= 2:
                    group = instrs[j:k]
                    thunk, idioms = self._codegen_group(group, fname)
                    body.append((group[-1], op, self._cost(instr), thunk))
                    fuse_static["window"] = fuse_static.get("window", 0) + 1
                    for pat, cnt in idioms.items():
                        fuse_static[pat] = fuse_static.get(pat, 0) + cnt
                    j = k
                    continue
            body.append(
                (instr, op, self._cost(instr), self._decode_instr(instr))
            )
            j += 1
        if reserve_last:
            instr = instrs[n - 1]
            body.append(
                (instr, instr.opcode, self._cost(instr), self._decode_instr(instr))
            )
        return body

    def _fuse_cmp_condbr(self, body, term_instr: Instruction, br_cost: float):
        """Try to fuse the block's trailing scalar cmp into its condbr.

        Returns a ``_T_FUSED_CMPBR`` term tuple (and pops the cmp off
        ``body``), or ``None`` when the pattern does not apply.
        """
        cond = term_instr.operands[0]
        if not _cmp_condbr_fusible(body[-1][0], term_instr):
            return None
        a = self._resolver(cond.operands[0])
        b = self._resolver(cond.operands[1])
        pred = cond.attrs["pred"]
        if cond.opcode == "icmp":
            impl = scalar_icmp_impl(pred, cond.operands[0].type)
        else:
            impl = scalar_fcmp_impl(pred)
        body.pop()
        self.fuse_static["cmp_condbr"] = self.fuse_static.get("cmp_condbr", 0) + 1
        return (
            _T_FUSED_CMPBR,
            self._cost(cond),
            cond.opcode,
            lambda env: impl(a(env), b(env)),
            term_instr.operands[1],
            term_instr.operands[2],
            br_cost,
        )

    def _binop_impl(self, instr: Instruction):
        """One pre-resolved 2-arg callable for a scalar or vector binop."""
        if isinstance(instr.type, VectorType):
            return vector_binop_impl(instr.opcode, instr.type.elem)
        return scalar_binop_impl(instr.opcode, instr.type)

    def _value_impl(self, instr: Instruction):
        """A value-level callable ``fn(*operand_payloads) -> payload``.

        Unlike :meth:`_decode_instr` thunks, these do not read ``env`` —
        the window codegen wires operands itself (locals for in-window
        values, ``env`` reads only at the window boundary).  Defined for
        every ``_GROUP_OPS`` opcode; operands map positionally.
        """
        op = instr.opcode
        ops = instr.operands
        vec = isinstance(instr.type, VectorType)

        if op in _BINOPS:
            return self._binop_impl(instr)
        if op in UNARY_OPS:
            if vec:
                elem = instr.type.elem
                return lambda a: eval_vector_unop(op, elem, a)
            t = instr.type
            return lambda a: eval_scalar_unop(op, t, a)
        if op == "icmp":
            pred = instr.attrs["pred"]
            src_t = ops[0].type
            if isinstance(src_t, VectorType):
                elem = src_t.elem
                return lambda a, b: eval_vector_icmp(pred, elem, a, b)
            return scalar_icmp_impl(pred, src_t)
        if op == "fcmp":
            pred = instr.attrs["pred"]
            if isinstance(ops[0].type, VectorType):
                return lambda a, b: eval_vector_fcmp(pred, a, b)
            return scalar_fcmp_impl(pred)
        if op in CAST_OPS:
            from_t, to_t = ops[0].type, instr.type
            if isinstance(to_t, VectorType):
                from_e, to_e = from_t.elem, to_t.elem
                return lambda v: eval_vector_cast(op, from_e, to_e, v)
            return lambda v: eval_scalar_cast(op, from_t, to_t, v)
        if op == "select":
            if isinstance(ops[0].type, VectorType) or vec:
                return lambda c, a, b: np.where(c, a, b)
            return lambda c, a, b: a if c else b
        if op == "fma":
            if vec:
                return lambda a, b, c: a * b + c
            t = instr.type
            return lambda a, b, c: round_float(t, round_float(t, a * b) + c)
        if op == "gep":
            bits = ops[1].type.bits
            esize = instr.type.pointee.size_bytes()
            return lambda base, idx: mask_int(
                base + to_signed(idx, bits) * esize, 64
            )
        if op == "broadcast":
            count = instr.type.count
            dtype = elem_dtype(instr.type.elem)
            return lambda s: np.full(count, s, dtype=dtype)
        if op == "extractelement":
            if instr.type.is_float:
                return lambda v, i: float(v[int(i) % len(v)])
            return lambda v, i: int(v[int(i) % len(v)])
        if op == "insertelement":
            def _insert(v, i, e):
                v = v.copy()
                v[int(i) % len(v)] = e
                return v
            return _insert
        if op == "shuffle":
            return lambda a, i: a[i.astype(np.int64) % len(a)]
        if op == "shuffle2":
            def _shuffle2(lo, hi, i):
                both = np.concatenate([lo, hi])
                return both[i.astype(np.int64) % len(both)]
            return _shuffle2
        if op == "sad":
            def _sad(a, b):
                diffs = np.abs(
                    a.astype(np.int64) - b.astype(np.int64)
                ).reshape(-1, 8).sum(axis=1)
                return diffs.astype(np.uint64)
            return _sad
        if op in REDUCE_OPS:
            reduce = self._reduce
            return lambda v: reduce(op, instr, v)
        if op == "mask_any":
            return lambda m: 1 if bool(m.any()) else 0
        if op == "mask_all":
            return lambda m: 1 if bool(m.all()) else 0
        if op == "mask_popcnt":
            return lambda m: int(m.sum())

        # -- trapping / side-effecting ops (exact interleaved accounting) -------------
        memory = self.memory
        if op == "load":
            t = instr.type
            return lambda addr: memory.load_scalar(addr, t)
        if op == "store":
            t = ops[0].type
            def _store(v, addr):
                memory.store_scalar(addr, t, v)
                return None
            return _store
        if op == "vload":
            elem, count = instr.type.elem, instr.type.count
            return lambda addr, mask: memory.load_packed(addr, elem, count, mask)
        if op == "vstore":
            elem = ops[0].type.elem
            def _vstore(v, addr, mask):
                memory.store_packed(addr, elem, v, mask)
                return None
            return _vstore
        if op == "gather":
            elem = instr.type.elem
            return lambda addrs, mask: memory.gather(addrs, elem, mask)
        if op == "scatter":
            elem = ops[0].type.elem
            def _scatter(v, addrs, mask):
                memory.scatter(addrs, elem, v, mask)
                return None
            return _scatter
        if op == "alloca":
            size = max(
                instr.type.pointee.size_bytes() * instr.attrs.get("count", 1), 1
            )
            return lambda: memory.alloc(size)
        if op == "atomicrmw":
            rmw = instr.attrs["op"]
            if rmw not in ATOMIC_RMW_OPS:
                raise VMTrap(f"atomicrmw: unsupported op {rmw!r}")
            t = ops[1].type
            impl = scalar_binop_impl(rmw, t)
            def _atomicrmw(addr, val):
                old = memory.load_scalar(addr, t)
                memory.store_scalar(addr, t, impl(old, val))
                return old
            return _atomicrmw
        raise NotImplementedError(f"window codegen: opcode {op}")

    # Scalar opcodes the window codegen emits as raw Python expressions
    # instead of impl-callable invocations.  Each template must reproduce
    # the corresponding ops.py impl bit-for-bit (incl. NaN behaviour) —
    # see _inline_expr.
    _INLINE_FBIN = {"fadd": "+", "fsub": "-", "fmul": "*"}
    _INLINE_IBIN = {"add": "+", "sub": "-", "mul": "*"}
    _INLINE_IBIT = {"and": "&", "or": "|", "xor": "^"}
    _INLINE_CMP_U = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                     "ugt": ">", "uge": ">="}
    _INLINE_CMP_S = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
    # Ordered fcmp preds where the Python operator already yields False on
    # NaN, matching eval_scalar_fcmp's unordered->0 rule.  "one" is NOT
    # inlinable: Python `nan != x` is True but the reference returns 0.
    _INLINE_FCMP = {"oeq": "==", "olt": "<", "ole": "<=",
                    "ogt": ">", "oge": ">="}

    def _inline_expr(self, instr: Instruction, argrefs, hoist):
        """Emit a scalar op as a plain expression, or ``None`` to fall back.

        Skips the impl-lambda call layer (and for f32 floats the
        round_float wrapper) for the ops that dominate benchsuite
        dispatch.  Every template is bit-identical to the ops.py impl;
        vectors and anything subtle (shifts, division, signed-overflowing
        casts to float, ...) fall back to :meth:`_value_impl`.
        """
        op = instr.opcode
        t = instr.type
        if isinstance(t, VectorType):
            return None
        # Mask reductions: scalar-typed with one vector operand; they gate
        # every divergent-loop backedge, so skipping the closure layer
        # matters.  Same truthiness as the _value_impl lambdas.
        if op == "mask_any":
            return f"(1 if {argrefs[0]}.any() else 0)"
        if op == "mask_all":
            return f"(1 if {argrefs[0]}.all() else 0)"
        if op == "mask_popcnt":
            # Hoisted: window code objects exec with empty __builtins__.
            i = hoist(int, key=("b", "int"))
            return f"{i}({argrefs[0]}.sum())"
        sym = self._INLINE_FBIN.get(op)
        if sym is not None and isinstance(t, FloatType):
            a, b = argrefs
            if t.bits == 32:
                cf = hoist(_c_float, key=("cf",))
                return f"{cf}({a} {sym} {b}).value"
            return f"({a} {sym} {b})"
        if isinstance(t, IntType):
            sym = self._INLINE_IBIN.get(op)
            if sym is not None:
                a, b = argrefs
                mask = (1 << t.bits) - 1
                return f"(({a} {sym} {b}) & {mask:#x})"
            sym = self._INLINE_IBIT.get(op)
            if sym is not None:
                a, b = argrefs
                return f"({a} {sym} {b})"
        if op in ("icmp", "fcmp"):
            src_t = instr.operands[0].type
            if isinstance(src_t, VectorType):
                return None
            pred = instr.attrs["pred"]
            a, b = argrefs
            if op == "fcmp":
                sym = self._INLINE_FCMP.get(pred)
                return None if sym is None else f"(1 if {a} {sym} {b} else 0)"
            sym = self._INLINE_CMP_U.get(pred)
            if sym is not None:
                return f"(1 if {a} {sym} {b} else 0)"
            sym = self._INLINE_CMP_S.get(pred)
            if sym is not None:
                # XOR with the sign bit maps two's-complement order onto
                # unsigned order, so no to_signed() calls are needed.
                sb = 1 << (getattr(src_t, "bits", 64) - 1)
                return f"(1 if ({a} ^ {sb:#x}) {sym} ({b} ^ {sb:#x}) else 0)"
            return None
        if op == "select" and not isinstance(instr.operands[0].type, VectorType):
            c, a, b = argrefs
            return f"({a} if {c} else {b})"
        if op == "gep":
            base, idx = argrefs
            bits = instr.operands[1].type.bits
            esize = t.pointee.size_bytes()
            ts = hoist(to_signed, key=("ts",))
            return (
                f"(({base} + {ts}({idx}, {bits}) * {esize})"
                " & 0xffffffffffffffff)"
            )
        if op in ("trunc", "zext", "sext") and isinstance(t, IntType):
            src_t = instr.operands[0].type
            if not isinstance(src_t, IntType):
                return None
            (v,) = argrefs
            if op == "zext":
                return v
            if op == "trunc":
                mask = (1 << t.bits) - 1
                return f"({v} & {mask:#x})"
            sb = 1 << (src_t.bits - 1)
            mask = (1 << t.bits) - 1
            return f"((({v} ^ {sb:#x}) - {sb:#x}) & {mask:#x})"
        return None

    def _codegen_group(self, group, fname: str):
        """Compile a call-free run of instructions into one window thunk.

        Decode-time codegen: the group becomes a single generated Python
        function whose operand values live in locals — no per-op dispatch,
        no tuple unpacks, and ``env`` writes only for values used outside
        the group.  Accounting follows the kind of each constituent:

        * **pure runs** (``_PURE_OPS``) are bulk-charged — one cycles add,
          one instruction add, one merged counter update per opcode, one
          budget check — before their computations execute; nothing in the
          run can trap, so the reordering is unobservable, and a budget
          crossing is rolled back to the exact reference trap point by
          :func:`_bulk_limit_repair`;
        * **trapping/side-effecting ops** (``_EXACT_OPS``) keep the
          reference engine's exact charge-then-execute interleave, so a
          mid-group trap leaves ``ExecStats`` bit-identical.

        The group's first constituent is charged by the main dispatch loop
        (the body tuple carries its opcode and cost), so its accounting is
        omitted here.  Every hoisted object is bound as a default
        argument, so the generated code runs on locals only.  Costs are
        dyadic rationals well inside float53, so a merged cycles add is
        bit-identical to sequential accumulation.

        Returns ``(thunk, idioms)`` where ``idioms`` counts the named
        fusion chains embedded in the group (``gep_load``, ``gep_store``,
        ``binop_binop``, ``vload_binop_vstore``), each reported under its
        own ``vm.fuse.<pattern>`` counter.
        """
        stats = self.stats
        hoisted = {
            "_s": stats,
            "_c": stats.counts,
            "_interp": self,
            "_repair": _bulk_limit_repair,
            "_trap": _budget_trap,
            "_fh": self.fuse_hits,
            "_fname": fname,
        }
        memo: Dict[object, str] = {}

        def hoist(obj, key=None):
            key = id(obj) if key is None else key
            name = memo.get(key)
            if name is None:
                name = f"_h{len(memo)}"
                memo[key] = name
                hoisted[name] = obj
            return name

        local: Dict[Value, str] = {}
        lines: List[str] = []

        def emit_bulk_acct(instrs):
            total = 0.0
            opcount: Dict[str, int] = {}
            meta = []
            for ins in instrs:
                c = self._cost(ins)
                total += c
                opcount[ins.opcode] = opcount.get(ins.opcode, 0) + 1
                meta.append((ins.opcode, c))
            if total:
                lines.append(f"    _s.cycles += {total!r}")
            lines.append(f"    _s.instructions += {len(meta)}")
            for opc, cnt in opcount.items():
                lines.append(f"    _c[{opc!r}] = _c.get({opc!r}, 0) + {cnt}")
            lines.append("    if _s.instructions > _interp.max_instructions:")
            lines.append(
                f"        _repair(_s, {hoist(tuple(meta))},"
                " _interp.max_instructions, _fname)"
            )

        def emit_exact_acct(ins):
            c = self._cost(ins)
            if c:
                lines.append(f"    _s.cycles += {c!r}")
            lines.append("    _s.instructions += 1")
            opc = ins.opcode
            lines.append(f"    _c[{opc!r}] = _c.get({opc!r}, 0) + 1")
            lines.append("    if _s.instructions > _interp.max_instructions:")
            lines.append("        _trap(_interp, _fname)")

        def emit_compute(s, ins):
            argrefs = []
            for v in ins.operands:
                name = local.get(v)
                if name is not None:
                    argrefs.append(name)
                elif isinstance(v, Constant):
                    argrefs.append(hoist(_constant_payload(v), key=("c", id(v))))
                elif isinstance(v, UndefValue):
                    argrefs.append(hoist(_undef_payload(v.type), key=("u", id(v))))
                else:
                    argrefs.append(f"env[{hoist(v)}]")
            expr = self._inline_expr(ins, argrefs, hoist)
            if expr is None:
                fn = hoist(self._value_impl(ins))
                expr = f"{fn}({', '.join(argrefs)})"
            local[ins] = f"v{s}"
            lines.append(f"    v{s} = {expr}")

        pending: List[Tuple[int, Instruction]] = []

        def flush_pure():
            if not pending:
                return
            accted = [ins for s, ins in pending if s != 0]
            if accted:
                emit_bulk_acct(accted)
            for s, ins in pending:
                emit_compute(s, ins)
            pending.clear()

        for s, ins in enumerate(group):
            if ins.opcode in _EXACT_OPS:
                flush_pure()
                if s != 0:
                    emit_exact_acct(ins)
                emit_compute(s, ins)
            else:
                pending.append((s, ins))
        flush_pure()

        idioms = _embedded_idioms(group)
        lines.append("    _fh['window'] = _fh.get('window', 0) + 1")
        for pat, cnt in idioms.items():
            lines.append(f"    _fh[{pat!r}] = _fh.get({pat!r}, 0) + {cnt}")
        inside = set(group)
        for s, ins in enumerate(group[:-1]):
            if any(u not in inside for u, _ in ins.uses):
                lines.append(f"    env[{hoist(ins)}] = v{s}")
        lines.append(f"    return v{len(group) - 1}")

        params = ", ".join(f"{k}={k}" for k in hoisted)
        src = f"def _win(env, depth, {params}):\n" + "\n".join(lines)
        code = _WINDOW_CODE_CACHE.get(src)
        if code is None:
            code = _WINDOW_CODE_CACHE[src] = compile(
                src, "<repro-vm-window>", "exec"
            )
        g = dict(hoisted)
        # Hygiene-empty builtins (every name must be hoisted), except
        # __import__: numpy's lazy C-level imports resolve it through the
        # calling frame's builtins, so the first .sum()/.any() ever run
        # inside a window would raise KeyError('__import__') without it.
        g["__builtins__"] = {"__import__": __import__}
        exec(code, g)
        return g["_win"], idioms

    def _resolver(self, value: Value):
        """A 1-arg callable ``resolver(env)`` producing the operand's payload."""
        if isinstance(value, (Instruction, Argument)):
            return operator.itemgetter(value)
        if isinstance(value, Constant):
            payload = _constant_payload(value)
            return lambda env: payload
        if isinstance(value, UndefValue):
            payload = _undef_payload(value.type)
            return lambda env: payload
        if isinstance(value, (BasicBlock, Function, ExternalFunction)):
            return lambda env: value
        raise TypeError(f"cannot evaluate {value!r}")

    def _decode_instr(self, instr: Instruction):
        """Compile one non-phi, non-terminator instruction into a thunk.

        The thunk signature is ``thunk(env, depth) -> payload``; opcode
        dispatch, operand resolution strategy, cost lookup, and
        type-directed specialization all happen here, once per static
        instruction.
        """
        op = instr.opcode
        ops = instr.operands
        vec = isinstance(instr.type, VectorType)

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            if vec:
                elem = instr.type.elem
                return lambda env, depth: eval_vector_binop(op, elem, a(env), b(env))
            impl = scalar_binop_impl(op, instr.type)
            return lambda env, depth: impl(a(env), b(env))
        if op in UNARY_OPS:
            a = self._resolver(ops[0])
            if vec:
                elem = instr.type.elem
                return lambda env, depth: eval_vector_unop(op, elem, a(env))
            t = instr.type
            return lambda env, depth: eval_scalar_unop(op, t, a(env))
        if op == "icmp":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            pred = instr.attrs["pred"]
            src_t = ops[0].type
            if isinstance(src_t, VectorType):
                elem = src_t.elem
                return lambda env, depth: eval_vector_icmp(pred, elem, a(env), b(env))
            impl = scalar_icmp_impl(pred, src_t)
            return lambda env, depth: impl(a(env), b(env))
        if op == "fcmp":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            pred = instr.attrs["pred"]
            if isinstance(ops[0].type, VectorType):
                return lambda env, depth: eval_vector_fcmp(pred, a(env), b(env))
            impl = scalar_fcmp_impl(pred)
            return lambda env, depth: impl(a(env), b(env))
        if op in CAST_OPS:
            v = self._resolver(ops[0])
            from_t, to_t = ops[0].type, instr.type
            if isinstance(to_t, VectorType):
                from_e, to_e = from_t.elem, to_t.elem
                return lambda env, depth: eval_vector_cast(op, from_e, to_e, v(env))
            return lambda env, depth: eval_scalar_cast(op, from_t, to_t, v(env))
        if op == "select":
            cond = self._resolver(ops[0])
            a = self._resolver(ops[1])
            b = self._resolver(ops[2])
            if isinstance(ops[0].type, VectorType) or vec:
                return lambda env, depth: np.where(cond(env), a(env), b(env))
            return lambda env, depth: a(env) if cond(env) else b(env)
        if op == "fma":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            c = self._resolver(ops[2])
            if vec:
                return lambda env, depth: a(env) * b(env) + c(env)
            t = instr.type
            return lambda env, depth: round_float(
                t, round_float(t, a(env) * b(env)) + c(env)
            )

        # -- memory -------------------------------------------------------------------
        memory = self.memory
        if op == "load":
            addr = self._resolver(ops[0])
            t = instr.type
            return lambda env, depth: memory.load_scalar(addr(env), t)
        if op == "store":
            value = self._resolver(ops[0])
            addr = self._resolver(ops[1])
            t = ops[0].type
            def _store(env, depth):
                memory.store_scalar(addr(env), t, value(env))
                return None
            return _store
        if op == "gep":
            base = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            bits = ops[1].type.bits
            esize = instr.type.pointee.size_bytes()
            return lambda env, depth: mask_int(
                base(env) + to_signed(idx(env), bits) * esize, 64
            )
        if op == "alloca":
            size = max(
                instr.type.pointee.size_bytes() * instr.attrs.get("count", 1), 1
            )
            return lambda env, depth: memory.alloc(size)
        if op == "atomicrmw":
            rmw = instr.attrs["op"]
            if rmw not in ATOMIC_RMW_OPS:
                raise VMTrap(f"atomicrmw: unsupported op {rmw!r}")
            addr = self._resolver(ops[0])
            val = self._resolver(ops[1])
            t = ops[1].type
            impl = scalar_binop_impl(rmw, t)
            def _atomicrmw(env, depth):
                a = addr(env)
                old = memory.load_scalar(a, t)
                memory.store_scalar(a, t, impl(old, val(env)))
                return old
            return _atomicrmw

        # -- vector -------------------------------------------------------------------
        if op == "broadcast":
            scalar = self._resolver(ops[0])
            count = instr.type.count
            dtype = elem_dtype(instr.type.elem)
            return lambda env, depth: np.full(count, scalar(env), dtype=dtype)
        if op == "extractelement":
            v = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            if instr.type.is_float:
                def _extract(env, depth):
                    a = v(env)
                    return float(a[int(idx(env)) % len(a)])
            else:
                def _extract(env, depth):
                    a = v(env)
                    return int(a[int(idx(env)) % len(a)])
            return _extract
        if op == "insertelement":
            v = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            elt = self._resolver(ops[2])
            def _insert(env, depth):
                a = v(env).copy()
                a[int(idx(env)) % len(a)] = elt(env)
                return a
            return _insert
        if op == "shuffle":
            src = self._resolver(ops[0])
            idx = self._resolver(ops[1])
            def _shuffle(env, depth):
                a = src(env)
                return a[idx(env).astype(np.int64) % len(a)]
            return _shuffle
        if op == "shuffle2":
            lo = self._resolver(ops[0])
            hi = self._resolver(ops[1])
            idx = self._resolver(ops[2])
            def _shuffle2(env, depth):
                both = np.concatenate([lo(env), hi(env)])
                return both[idx(env).astype(np.int64) % len(both)]
            return _shuffle2
        if op == "vload":
            addr = self._resolver(ops[0])
            mask = self._resolver(ops[1])
            elem, count = instr.type.elem, instr.type.count
            return lambda env, depth: memory.load_packed(
                addr(env), elem, count, mask(env)
            )
        if op == "vstore":
            value = self._resolver(ops[0])
            addr = self._resolver(ops[1])
            mask = self._resolver(ops[2])
            elem = ops[0].type.elem
            def _vstore(env, depth):
                memory.store_packed(addr(env), elem, value(env), mask(env))
                return None
            return _vstore
        if op == "gather":
            addrs = self._resolver(ops[0])
            mask = self._resolver(ops[1])
            elem = instr.type.elem
            return lambda env, depth: memory.gather(addrs(env), elem, mask(env))
        if op == "scatter":
            value = self._resolver(ops[0])
            addrs = self._resolver(ops[1])
            mask = self._resolver(ops[2])
            elem = ops[0].type.elem
            def _scatter(env, depth):
                memory.scatter(addrs(env), elem, value(env), mask(env))
                return None
            return _scatter
        if op == "sad":
            a = self._resolver(ops[0])
            b = self._resolver(ops[1])
            def _sad(env, depth):
                diffs = np.abs(
                    a(env).astype(np.int64) - b(env).astype(np.int64)
                ).reshape(-1, 8).sum(axis=1)
                return diffs.astype(np.uint64)
            return _sad
        if op in REDUCE_OPS:
            v = self._resolver(ops[0])
            reduce = self._reduce
            return lambda env, depth: reduce(op, instr, v(env))
        if op == "mask_any":
            m = self._resolver(ops[0])
            return lambda env, depth: 1 if bool(m(env).any()) else 0
        if op == "mask_all":
            m = self._resolver(ops[0])
            return lambda env, depth: 1 if bool(m(env).all()) else 0
        if op == "mask_popcnt":
            m = self._resolver(ops[0])
            return lambda env, depth: int(m(env).sum())

        # -- calls --------------------------------------------------------------------
        if op == "call":
            callee = ops[0]
            arg_resolvers = [self._resolver(o) for o in ops[1:]]
            if isinstance(callee, ExternalFunction):
                cost = callee.cost
                if callable(cost):
                    cost = cost(self.machine, [o.type for o in ops[1:]])
                cost = float(cost)
                label = f"ext:{callee.name}"
                impl = callee.impl
                def _ext_call(env, depth):
                    self.stats.charge(label, cost)
                    return impl(*[r(env) for r in arg_resolvers])
                return _ext_call
            def _call(env, depth):
                return self._exec_function(
                    callee, [r(env) for r in arg_resolvers], depth + 1
                )
            return _call

        raise NotImplementedError(f"interpreter: opcode {op}")

    # -- reference engine ------------------------------------------------------------

    def _exec_reference(self, function: Function, argvals: List, depth: int):
        env: Dict[Value, object] = dict(zip(function.args, argvals))
        stack_mark = self.memory._brk  # frame-local alloca discipline
        block = function.entry
        prev: Optional[BasicBlock] = None
        stats = self.stats
        counts = stats.counts
        batched = function.attrs.get("batched")
        # Divergent-loop gang-activity state; see _exec_batch_block.
        activity: Dict[str, int] = {}
        pending: Dict[str, int] = {}

        def charge_batched(instr) -> None:
            items, spec = self._batch_info(instr)
            m = self._batch_mult(spec, activity)
            if m:
                for key, cost in items:
                    stats.cycles += cost * m
                    stats.instructions += m
                    counts[key] = counts.get(key, 0) + m
                if stats.instructions > self.max_instructions:
                    raise ExecutionLimitExceeded(
                        f"exceeded {self.max_instructions} instructions"
                        f" in @{function.name}"
                    )

        try:
            while True:
                instructions = block.instructions
                # Evaluate phis in parallel against the incoming edge.
                n_phi = 0
                if instructions and instructions[0].opcode == "phi":
                    phi_vals = []
                    for instr in instructions:
                        if instr.opcode != "phi":
                            break
                        n_phi += 1
                        phi_vals.append(
                            self._value(env, instr.phi_value_for(prev))
                        )
                        if batched and "batch_mult" in instr.attrs:
                            charge_batched(instr)
                        else:
                            stats.charge("phi", 0.0)
                            if stats.instructions > self.max_instructions:
                                raise ExecutionLimitExceeded(
                                    f"exceeded {self.max_instructions} instructions"
                                    f" in @{function.name}"
                                )
                    for instr, val in zip(instructions[:n_phi], phi_vals):
                        env[instr] = val
                for instr in instructions[n_phi:]:
                    annotated = batched and "batch_mult" in instr.attrs
                    if annotated:
                        charge_batched(instr)
                    else:
                        stats.charge(instr.opcode, self._cost(instr))
                        if stats.instructions > self.max_instructions:
                            raise ExecutionLimitExceeded(
                                f"exceeded {self.max_instructions} instructions in @{function.name}"
                            )
                    op = instr.opcode
                    if op == "br":
                        prev, block = block, instr.operands[0]
                        break
                    if op == "condbr":
                        cond = self._value(env, instr.operands[0])
                        target = instr.operands[1] if cond else instr.operands[2]
                        if annotated:
                            backedge = instr.attrs.get("batch_backedge")
                            if backedge is not None:
                                lid, taken_idx = backedge
                                if target is instr.operands[taken_idx]:
                                    activity[lid] = pending[lid]
                                else:
                                    activity.pop(lid, None)
                                    pending.pop(lid, None)
                        prev, block = block, target
                        break
                    if op == "ret":
                        if instr.operands:
                            return self._value(env, instr.operands[0])
                        return None
                    if op == "unreachable":
                        raise VMTrap(f"reached 'unreachable' in @{function.name}")
                    if annotated and op == "call" and isinstance(
                        instr.operands[0], ExternalFunction
                    ):
                        # Batched charging comes from the narrow prototypes;
                        # bypass the impl path that charges the wide cost.
                        env[instr] = instr.operands[0].impl(
                            *[self._value(env, o) for o in instr.operands[1:]]
                        )
                    else:
                        env[instr] = self._exec_instr(env, instr, depth)
                    ba = instr.attrs.get("batch_activity") if annotated else None
                    if ba is not None:
                        pending[ba[0]] = gang_activity_count(
                            self._value(env, instr.operands[0]), ba[1]
                        )
        finally:
            self.memory._brk = stack_mark

    def _exec_instr(self, env: Dict, instr: Instruction, depth: int):
        op = instr.opcode
        ops = instr.operands
        vec = isinstance(instr.type, VectorType)

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            a = self._value(env, ops[0])
            b = self._value(env, ops[1])
            if vec:
                return eval_vector_binop(op, instr.type.elem, a, b)
            return eval_scalar_binop(op, instr.type, a, b)
        if op in UNARY_OPS:
            a = self._value(env, ops[0])
            if vec:
                return eval_vector_unop(op, instr.type.elem, a)
            return eval_scalar_unop(op, instr.type, a)
        if op == "icmp":
            a, b = self._value(env, ops[0]), self._value(env, ops[1])
            src_t = ops[0].type
            if isinstance(src_t, VectorType):
                return eval_vector_icmp(instr.attrs["pred"], src_t.elem, a, b)
            return eval_scalar_icmp(instr.attrs["pred"], src_t, a, b)
        if op == "fcmp":
            a, b = self._value(env, ops[0]), self._value(env, ops[1])
            if isinstance(ops[0].type, VectorType):
                return eval_vector_fcmp(instr.attrs["pred"], a, b)
            return eval_scalar_fcmp(instr.attrs["pred"], a, b)
        if op in CAST_OPS:
            v = self._value(env, ops[0])
            from_t, to_t = ops[0].type, instr.type
            if isinstance(to_t, VectorType):
                return eval_vector_cast(op, from_t.elem, to_t.elem, v)
            return eval_scalar_cast(op, from_t, to_t, v)
        if op == "select":
            cond = self._value(env, ops[0])
            a, b = self._value(env, ops[1]), self._value(env, ops[2])
            if isinstance(ops[0].type, VectorType) or vec:
                return np.where(cond, a, b)
            return a if cond else b
        if op == "fma":
            a, b, c = (self._value(env, o) for o in ops)
            if vec:
                return a * b + c
            return round_float(instr.type, round_float(instr.type, a * b) + c)

        # -- memory -------------------------------------------------------------------
        if op == "load":
            return self.memory.load_scalar(self._value(env, ops[0]), instr.type)
        if op == "store":
            value = self._value(env, ops[0])
            self.memory.store_scalar(self._value(env, ops[1]), ops[0].type, value)
            return None
        if op == "gep":
            base = self._value(env, ops[0])
            idx = self._value(env, ops[1])
            idx = to_signed(idx, ops[1].type.bits)
            return mask_int(base + idx * instr.type.pointee.size_bytes(), 64)
        if op == "alloca":
            size = instr.type.pointee.size_bytes() * instr.attrs.get("count", 1)
            return self.memory.alloc(max(size, 1))
        if op == "atomicrmw":
            rmw = instr.attrs["op"]
            if rmw not in ATOMIC_RMW_OPS:
                raise VMTrap(f"atomicrmw: unsupported op {rmw!r}")
            addr = self._value(env, ops[0])
            val = self._value(env, ops[1])
            old = self.memory.load_scalar(addr, ops[1].type)
            new = eval_scalar_binop(rmw, ops[1].type, old, val)
            self.memory.store_scalar(addr, ops[1].type, new)
            return old

        # -- vector -------------------------------------------------------------------
        if op == "broadcast":
            scalar = self._value(env, ops[0])
            return np.full(instr.type.count, scalar, dtype=elem_dtype(instr.type.elem))
        if op == "extractelement":
            v = self._value(env, ops[0])
            idx = self._value(env, ops[1])
            lane = v[int(idx) % len(v)]
            return float(lane) if instr.type.is_float else int(lane)
        if op == "insertelement":
            v = self._value(env, ops[0]).copy()
            idx = self._value(env, ops[1])
            v[int(idx) % len(v)] = self._value(env, ops[2])
            return v
        if op == "shuffle":
            src = self._value(env, ops[0])
            idx = self._value(env, ops[1]).astype(np.int64) % len(src)
            return src[idx]
        if op == "shuffle2":
            both = np.concatenate(
                [self._value(env, ops[0]), self._value(env, ops[1])]
            )
            idx = self._value(env, ops[2]).astype(np.int64) % len(both)
            return both[idx]
        if op == "vload":
            addr = self._value(env, ops[0])
            mask = self._value(env, ops[1])
            return self.memory.load_packed(addr, instr.type.elem, instr.type.count, mask)
        if op == "vstore":
            value = self._value(env, ops[0])
            addr = self._value(env, ops[1])
            mask = self._value(env, ops[2])
            self.memory.store_packed(addr, ops[0].type.elem, value, mask)
            return None
        if op == "gather":
            addrs = self._value(env, ops[0])
            mask = self._value(env, ops[1])
            return self.memory.gather(addrs, instr.type.elem, mask)
        if op == "scatter":
            value = self._value(env, ops[0])
            addrs = self._value(env, ops[1])
            mask = self._value(env, ops[2])
            self.memory.scatter(addrs, ops[0].type.elem, value, mask)
            return None
        if op == "sad":
            a = self._value(env, ops[0]).astype(np.int64)
            b = self._value(env, ops[1]).astype(np.int64)
            diffs = np.abs(a - b).reshape(-1, 8).sum(axis=1)
            return diffs.astype(np.uint64)
        if op in REDUCE_OPS:
            return self._reduce(op, instr, self._value(env, ops[0]))
        if op == "mask_any":
            return 1 if bool(self._value(env, ops[0]).any()) else 0
        if op == "mask_all":
            return 1 if bool(self._value(env, ops[0]).all()) else 0
        if op == "mask_popcnt":
            return int(self._value(env, ops[0]).sum())

        # -- calls --------------------------------------------------------------------
        if op == "call":
            callee = ops[0]
            args = [self._value(env, o) for o in ops[1:]]
            if isinstance(callee, ExternalFunction):
                cost = callee.cost
                if callable(cost):
                    cost = cost(self.machine, [o.type for o in ops[1:]])
                self.stats.charge(f"ext:{callee.name}", float(cost))
                return callee.impl(*args)
            return self._exec_function(callee, args, depth + 1)

        raise NotImplementedError(f"interpreter: opcode {op}")

    def _reduce(self, op: str, instr: Instruction, v: np.ndarray):
        elem = instr.operands[0].type.elem
        if op == "reduce_add":
            if elem.is_float:
                return round_float(instr.type, float(np.sum(v, dtype=v.dtype)))
            if elem.bits == 1:
                return 1 if bool(np.bitwise_xor.reduce(v)) else 0
            return int(np.add.reduce(v, dtype=v.dtype))
        if op in ("reduce_min_s", "reduce_max_s"):
            from .nputil import from_signed, signed_view

            sv = signed_view(v)
            r = int(sv.min() if op.endswith("min_s") else sv.max())
            return from_signed(r, elem.bits)
        if op == "reduce_min_u":
            r = v.min()
            return float(r) if elem.is_float else int(r)
        if op == "reduce_max_u":
            r = v.max()
            return float(r) if elem.is_float else int(r)
        if op == "reduce_and":
            if elem.bits == 1:
                return 1 if bool(v.all()) else 0
            return int(np.bitwise_and.reduce(v))
        if op == "reduce_or":
            if elem.bits == 1:
                return 1 if bool(v.any()) else 0
            return int(np.bitwise_or.reduce(v))
        raise NotImplementedError(op)

    # -- helpers --------------------------------------------------------------------

    def _value(self, env: Dict, value: Value):
        if isinstance(value, (Instruction, Argument)):
            return env[value]
        if isinstance(value, Constant):
            return _constant_payload(value)
        if isinstance(value, UndefValue):
            return _undef_payload(value.type)
        if isinstance(value, (BasicBlock, Function, ExternalFunction)):
            return value
        raise TypeError(f"cannot evaluate {value!r}")

    def _cost(self, instr: Instruction) -> float:
        # Keyed by the instruction object (identity hash): unlike id(), a
        # live key can never be recycled to alias a different instruction.
        cost = self._cost_cache.get(instr)
        if cost is None:
            cost = self.cost_model.cost(instr, self.machine)
            self._cost_cache[instr] = cost
        return cost


def _constant_payload(const: Constant):
    type = const.type
    if isinstance(type, VectorType):
        return np.array(const.value, dtype=elem_dtype(type.elem))
    if type.is_float:
        return round_float(type, const.value)
    return const.value


def _undef_payload(type: Type):
    if isinstance(type, VectorType):
        return np.zeros(type.count, dtype=elem_dtype(type.elem))
    if type.is_float:
        return 0.0
    return 0


def _coerce_arg(type: Type, value):
    if isinstance(type, VectorType):
        return np.asarray(value, dtype=elem_dtype(type.elem))
    if isinstance(type, FloatType):
        return round_float(type, float(value))
    if isinstance(type, (IntType, PointerType)):
        return mask_int(int(value), getattr(type, "bits", 64))
    raise TypeError(f"cannot pass argument of type {type}")
