"""Operational semantics for IR arithmetic, compares, and casts.

Two evaluation paths share these tables: scalar values (Python ints /
floats) and vector values (numpy arrays).  Integer semantics are two's
complement with silent wraparound, matching LLVM's sign-less integers;
signedness comes from the opcode (``sdiv`` vs ``udiv`` etc.).

f32 scalar results are rounded through ``numpy.float32`` so that scalar
and vectorized executions of the same program produce bit-identical
results — the property every benchmark's cross-implementation check
relies on.
"""

from __future__ import annotations

import ctypes
import math

import numpy as np

from ..diagnostics import ExecutionError
from ..ir.types import FloatType, IntType, Type
from .nputil import (
    as_unsigned,
    elem_dtype,
    from_signed,
    mask_int,
    signed_dtype,
    signed_view,
    to_signed,
)

__all__ = [
    "VMTrap",
    "eval_scalar_binop",
    "eval_vector_binop",
    "eval_scalar_unop",
    "eval_vector_unop",
    "eval_scalar_icmp",
    "eval_vector_icmp",
    "eval_scalar_fcmp",
    "eval_vector_fcmp",
    "eval_scalar_cast",
    "eval_vector_cast",
    "round_float",
    "scalar_binop_impl",
    "scalar_icmp_impl",
    "scalar_fcmp_impl",
    "vector_binop_impl",
    "gang_activity_count",
]


class VMTrap(ExecutionError):
    """Runtime trap (division by zero, unreachable, ...)."""


#: Fast f64→f32→f64 round-trip.  ``ctypes.c_float`` performs the same IEEE
#: round-to-nearest-even conversion as ``np.float32`` (verified bit-exact,
#: including nan/inf/-0.0 and overflow-to-inf) at roughly half the cost —
#: this sits on the hot path of every scalar f32 binop.
_c_float = ctypes.c_float


def round_float(type: Type, value: float) -> float:
    """Round a scalar float result to the storage precision of ``type``."""
    if isinstance(type, FloatType) and type.bits == 32:
        return _c_float(value).value
    return float(value)


# --------------------------------------------------------------------------------
# scalar integer binops
# --------------------------------------------------------------------------------


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise VMTrap("signed division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _i_add(bits, a, b):
    return mask_int(a + b, bits)


def _i_sub(bits, a, b):
    return mask_int(a - b, bits)


def _i_mul(bits, a, b):
    return mask_int(a * b, bits)


def _i_and(bits, a, b):
    return a & b


def _i_or(bits, a, b):
    return a | b


def _i_xor(bits, a, b):
    return a ^ b


def _i_shl(bits, a, b):
    return mask_int(a << (b & (bits - 1)), bits)


def _i_lshr(bits, a, b):
    return a >> (b & (bits - 1))


def _i_ashr(bits, a, b):
    return from_signed(to_signed(a, bits) >> (b & (bits - 1)), bits)


def _i_sdiv(bits, a, b):
    return from_signed(_sdiv(to_signed(a, bits), to_signed(b, bits)), bits)


def _i_udiv(bits, a, b):
    if b == 0:
        raise VMTrap("unsigned division by zero")
    return a // b


def _i_srem(bits, a, b):
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if sb == 0:
        raise VMTrap("signed remainder by zero")
    return from_signed(sa - _sdiv(sa, sb) * sb, bits)


def _i_urem(bits, a, b):
    if b == 0:
        raise VMTrap("unsigned remainder by zero")
    return a % b


def _i_smin(bits, a, b):
    return from_signed(min(to_signed(a, bits), to_signed(b, bits)), bits)


def _i_smax(bits, a, b):
    return from_signed(max(to_signed(a, bits), to_signed(b, bits)), bits)


def _i_umin(bits, a, b):
    return min(a, b)


def _i_umax(bits, a, b):
    return max(a, b)


def _i_addsat_u(bits, a, b):
    return min(a + b, (1 << bits) - 1)


def _i_subsat_u(bits, a, b):
    return max(a - b, 0)


def _i_addsat_s(bits, a, b):
    half = 1 << (bits - 1)
    return from_signed(
        max(-half, min(half - 1, to_signed(a, bits) + to_signed(b, bits))), bits
    )


def _i_subsat_s(bits, a, b):
    half = 1 << (bits - 1)
    return from_signed(
        max(-half, min(half - 1, to_signed(a, bits) - to_signed(b, bits))), bits
    )


def _i_mulhi_s(bits, a, b):
    return from_signed((to_signed(a, bits) * to_signed(b, bits)) >> bits, bits)


def _i_mulhi_u(bits, a, b):
    return (a * b) >> bits


def _i_avg_u(bits, a, b):
    return (a + b + 1) >> 1


def _i_abd_u(bits, a, b):
    return max(a, b) - min(a, b)


#: Scalar integer binop implementations, ``impl(bits, a, b) -> result``.
SCALAR_INT_BINOPS = {
    "add": _i_add, "sub": _i_sub, "mul": _i_mul,
    "and": _i_and, "or": _i_or, "xor": _i_xor,
    "shl": _i_shl, "lshr": _i_lshr, "ashr": _i_ashr,
    "sdiv": _i_sdiv, "udiv": _i_udiv, "srem": _i_srem, "urem": _i_urem,
    "smin": _i_smin, "smax": _i_smax, "umin": _i_umin, "umax": _i_umax,
    "addsat_u": _i_addsat_u, "subsat_u": _i_subsat_u,
    "addsat_s": _i_addsat_s, "subsat_s": _i_subsat_s,
    "mulhi_s": _i_mulhi_s, "mulhi_u": _i_mulhi_u,
    "avg_u": _i_avg_u, "abd_u": _i_abd_u,
}


def _f_div(a, b):
    return a / b if b != 0.0 else math.copysign(math.inf, a) * math.copysign(1.0, b) if a != 0.0 else math.nan


def _f_rem(a, b):
    return math.fmod(a, b) if b != 0.0 else math.nan


#: Scalar float binop implementations (unrounded; callers round to type).
SCALAR_FLOAT_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _f_div,
    "frem": _f_rem,
    "fmin": lambda a, b: min(a, b),
    "fmax": lambda a, b: max(a, b),
}


def _f_div32(a, b):
    # True single-rounded float32 division.  Going through the f64
    # quotient and then rounding (``round_float``) double-rounds, which
    # differs from f32 division in rare near-tie cases and would break
    # the bitwise scalar/vector output agreement the fallback paths pin.
    with np.errstate(divide="ignore", invalid="ignore"):
        return float(np.float32(a) / np.float32(b))


def eval_scalar_binop(opcode: str, type: Type, a, b):
    if isinstance(type, FloatType):
        if opcode == "fdiv" and type.bits == 32:
            return _f_div32(a, b)
        impl = SCALAR_FLOAT_BINOPS.get(opcode)
        if impl is None:
            raise NotImplementedError(f"scalar float binop {opcode}")
        return round_float(type, impl(a, b))
    impl = SCALAR_INT_BINOPS.get(opcode)
    if impl is None:
        raise NotImplementedError(f"scalar int binop {opcode}")
    return impl(type.bits, a, b)


def scalar_binop_impl(opcode: str, type: Type):
    """Resolve ``(opcode, type)`` once, returning a 2-arg callable.

    Used by the pre-decoding interpreter so per-dynamic-instruction
    dispatch reduces to one call; produces exactly the same results as
    :func:`eval_scalar_binop`.
    """
    if isinstance(type, FloatType):
        if opcode == "fdiv" and type.bits == 32:
            return _f_div32
        impl = SCALAR_FLOAT_BINOPS.get(opcode)
        if impl is None:
            raise NotImplementedError(f"scalar float binop {opcode}")
        if type.bits == 32:
            return lambda a, b: _c_float(impl(a, b)).value
        return lambda a, b: float(impl(a, b))
    impl = SCALAR_INT_BINOPS.get(opcode)
    if impl is None:
        raise NotImplementedError(f"scalar int binop {opcode}")
    bits = type.bits
    return lambda a, b: impl(bits, a, b)


# --------------------------------------------------------------------------------
# vector binops
# --------------------------------------------------------------------------------

_WIDER = {np.uint8: np.uint16, np.uint16: np.uint32, np.uint32: np.uint64}
_WIDER_S = {np.uint8: np.int16, np.uint16: np.int32, np.uint32: np.int64}


def _widen_u(a: np.ndarray):
    wider = _WIDER.get(a.dtype.type)
    if wider is None:
        raise NotImplementedError(f"no wider dtype for {a.dtype}")
    return a.astype(wider)


def eval_vector_binop(opcode: str, elem: Type, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if isinstance(elem, FloatType):
        return _vector_float_binop(opcode, a, b)
    if elem.bits == 1:
        return _vector_bool_binop(opcode, a, b)
    bits = elem.bits
    dtype = elem_dtype(elem)
    if opcode == "add":
        return a + b
    if opcode == "sub":
        return a - b
    if opcode == "mul":
        return a * b
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return a << (b & np.uint64(bits - 1)).astype(dtype)
    if opcode == "lshr":
        return a >> (b & np.uint64(bits - 1)).astype(dtype)
    if opcode == "ashr":
        amount = signed_view((b & np.uint64(bits - 1)).astype(dtype))
        return as_unsigned(signed_view(a) >> amount)
    if opcode == "udiv":
        if (b == 0).any():
            raise VMTrap("vector unsigned division by zero")
        return a // b
    if opcode == "urem":
        if (b == 0).any():
            raise VMTrap("vector unsigned remainder by zero")
        return a % b
    if opcode == "sdiv":
        sa, sb = signed_view(a), signed_view(b)
        if (sb == 0).any():
            raise VMTrap("vector signed division by zero")
        # Truncated division as floor + sign correction, entirely in the
        # native signed dtype: abs() would wrap INT_MIN negative and turn
        # e.g. 1 / INT64_MIN into 1 instead of 0.  The wrapped q*sb below
        # is still exact because the true remainder fits the dtype.
        with np.errstate(all="ignore"):
            q = sa // sb
            r = sa - q * sb
            q = q + ((r != 0) & ((sa < 0) != (sb < 0)))
        return q.astype(signed_dtype(elem)).view(dtype)
    if opcode == "srem":
        q = eval_vector_binop("sdiv", elem, a, b)
        return a - eval_vector_binop("mul", elem, q, b)
    if opcode == "smin":
        return as_unsigned(np.minimum(signed_view(a), signed_view(b)))
    if opcode == "smax":
        return as_unsigned(np.maximum(signed_view(a), signed_view(b)))
    if opcode == "umin":
        return np.minimum(a, b)
    if opcode == "umax":
        return np.maximum(a, b)
    if opcode == "addsat_u":
        # Width-generic: unsigned overflow iff the wrapped sum is smaller.
        wrapped = a + b
        return np.where(wrapped < a, np.array((1 << bits) - 1, dtype=dtype), wrapped)
    if opcode == "subsat_u":
        return np.where(a < b, np.array(0, dtype=dtype), a - b)
    if opcode == "addsat_s":
        sa, sb = signed_view(a), signed_view(b)
        wrapped = signed_view(a + b)
        pos_ovf = (sa > 0) & (sb > 0) & (wrapped < 0)
        neg_ovf = (sa < 0) & (sb < 0) & (wrapped >= 0)
        smax_c = np.array((1 << (bits - 1)) - 1, dtype=wrapped.dtype)
        smin_c = np.array(-(1 << (bits - 1)), dtype=wrapped.dtype)
        return as_unsigned(np.where(pos_ovf, smax_c, np.where(neg_ovf, smin_c, wrapped)))
    if opcode == "subsat_s":
        sa, sb = signed_view(a), signed_view(b)
        wrapped = signed_view(a - b)
        pos_ovf = (sa >= 0) & (sb < 0) & (wrapped < 0)
        neg_ovf = (sa < 0) & (sb > 0) & (wrapped >= 0)
        smax_c = np.array((1 << (bits - 1)) - 1, dtype=wrapped.dtype)
        smin_c = np.array(-(1 << (bits - 1)), dtype=wrapped.dtype)
        return as_unsigned(np.where(pos_ovf, smax_c, np.where(neg_ovf, smin_c, wrapped)))
    if opcode == "mulhi_s":
        sa, sb = signed_view(a), signed_view(b)
        if bits < 64:
            wide = sa.astype(np.int64) * sb.astype(np.int64)
            return ((wide >> bits) & ((1 << bits) - 1)).astype(dtype)
        vals = [((to_signed(int(x), 64) * to_signed(int(y), 64)) >> 64) & ((1 << 64) - 1)
                for x, y in zip(a, b)]
        return np.array(vals, dtype=dtype)
    if opcode == "mulhi_u":
        if bits < 64:
            wide = a.astype(np.uint64) * b.astype(np.uint64)
            return (wide >> np.uint64(bits)).astype(dtype)
        vals = [(int(x) * int(y)) >> 64 for x, y in zip(a, b)]
        return np.array(vals, dtype=dtype)
    if opcode == "avg_u":
        # (a >> 1) + (b >> 1) + ((a | b) & 1): rounding average, no widening.
        one = np.array(1, dtype=dtype)
        return (a >> one) + (b >> one) + ((a | b) & one)
    if opcode == "abd_u":
        return np.maximum(a, b) - np.minimum(a, b)
    raise NotImplementedError(f"vector int binop {opcode}")


def _errstate_binop(sym_impl):
    def _impl(a, b):
        with np.errstate(all="ignore"):
            return sym_impl(a, b)
    return _impl


#: Pre-resolved hot vector binops (the decode/emit-time fast path of
#: :func:`vector_binop_impl`).  Each entry must be bit-identical to the
#: corresponding :func:`eval_vector_binop` branch.
_VECTOR_FLOAT_IMPLS = {
    "fadd": _errstate_binop(lambda a, b: a + b),
    "fsub": _errstate_binop(lambda a, b: a - b),
    "fmul": _errstate_binop(lambda a, b: a * b),
    "fmin": np.minimum,
    "fmax": np.maximum,
}
_VECTOR_INT_IMPLS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "umin": np.minimum,
    "umax": np.maximum,
}


def vector_binop_impl(opcode: str, elem: Type):
    """Resolve ``(opcode, elem)`` once, returning a 2-arg callable.

    The superinstruction decoder and the whole-kernel codegen emitter use
    this for binop constituents bound at decode/emit time; the hot
    opcodes skip :func:`eval_vector_binop`'s per-call dispatch chain
    entirely (each fast-path impl is the same expression that branch
    evaluates), everything else falls back to it.
    """
    if isinstance(elem, FloatType):
        impl = _VECTOR_FLOAT_IMPLS.get(opcode)
        if impl is not None:
            return impl
    elif elem.bits != 1:
        impl = _VECTOR_INT_IMPLS.get(opcode)
        if impl is not None:
            return impl
    return lambda a, b: eval_vector_binop(opcode, elem, a, b)


def _vector_bool_binop(opcode: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if opcode in ("and", "umin", "mul", "smax"):
        return a & b
    if opcode in ("or", "umax"):
        return a | b
    if opcode in ("xor", "add", "sub"):
        return a ^ b
    raise NotImplementedError(f"i1 vector binop {opcode}")


def _vector_float_binop(opcode: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Inactive lanes legitimately hold garbage in linearized SPMD code, so
    # overflow/invalid warnings from them are expected and suppressed.
    if opcode == "fadd":
        with np.errstate(all="ignore"):
            return a + b
    if opcode == "fsub":
        with np.errstate(all="ignore"):
            return a - b
    if opcode == "fmul":
        with np.errstate(all="ignore"):
            return a * b
    if opcode == "fdiv":
        with np.errstate(divide="ignore", invalid="ignore"):
            return a / b
    if opcode == "frem":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.fmod(a, b)
    if opcode == "fmin":
        return np.minimum(a, b)
    if opcode == "fmax":
        return np.maximum(a, b)
    raise NotImplementedError(f"vector float binop {opcode}")


# --------------------------------------------------------------------------------
# unary ops
# --------------------------------------------------------------------------------


def eval_scalar_unop(opcode: str, type: Type, a):
    if opcode == "fneg":
        return round_float(type, -a)
    if opcode == "fabs":
        return round_float(type, abs(a))
    if opcode == "fsqrt":
        if type.bits == 32:
            # Single-rounded f32 sqrt (see _f_div32 on double rounding).
            with np.errstate(invalid="ignore"):
                return float(np.sqrt(np.float32(a)))
        return round_float(type, math.sqrt(a) if a >= 0 else math.nan)
    if opcode == "iabs":
        sa = to_signed(a, type.bits)
        return from_signed(abs(sa), type.bits)
    if opcode == "not":
        return mask_int(~a, type.bits)
    raise NotImplementedError(f"scalar unop {opcode}")


def eval_vector_unop(opcode: str, elem: Type, a: np.ndarray) -> np.ndarray:
    if opcode == "fneg":
        return -a
    if opcode == "fabs":
        return np.abs(a)
    if opcode == "fsqrt":
        with np.errstate(invalid="ignore"):
            return np.sqrt(a)
    if opcode == "iabs":
        return as_unsigned(np.abs(signed_view(a)))
    if opcode == "not":
        if elem.bits == 1:
            return ~a
        return ~a
    raise NotImplementedError(f"vector unop {opcode}")


# --------------------------------------------------------------------------------
# compares
# --------------------------------------------------------------------------------


#: Unsigned comparisons (operate on canonical unsigned payloads directly).
_SCALAR_CMP_U = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}
#: Signed comparisons (operate on two's-complement reinterpretations).
_SCALAR_CMP_S = {
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def eval_scalar_icmp(pred: str, type: Type, a: int, b: int) -> int:
    impl = _SCALAR_CMP_U.get(pred)
    if impl is not None:
        return 1 if impl(a, b) else 0
    bits = getattr(type, "bits", 64)
    return 1 if _SCALAR_CMP_S[pred](to_signed(a, bits), to_signed(b, bits)) else 0


def scalar_icmp_impl(pred: str, type: Type):
    """Resolve ``(pred, type)`` once, returning a 2-arg callable."""
    impl = _SCALAR_CMP_U.get(pred)
    if impl is not None:
        return lambda a, b: 1 if impl(a, b) else 0
    signed = _SCALAR_CMP_S[pred]
    bits = getattr(type, "bits", 64)
    return lambda a, b: 1 if signed(to_signed(a, bits), to_signed(b, bits)) else 0


_VECTOR_ICMP = {
    "eq": np.equal, "ne": np.not_equal,
    "ult": np.less, "ule": np.less_equal, "ugt": np.greater, "uge": np.greater_equal,
    "slt": np.less, "sle": np.less_equal, "sgt": np.greater, "sge": np.greater_equal,
}
_SIGNED_PREDS = frozenset(("slt", "sle", "sgt", "sge"))


def eval_vector_icmp(pred: str, elem: Type, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if pred in _SIGNED_PREDS:
        a, b = signed_view(a), signed_view(b)
    return _VECTOR_ICMP[pred](a, b)


_SCALAR_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def eval_scalar_fcmp(pred: str, a: float, b: float) -> int:
    if math.isnan(a) or math.isnan(b):
        return 0
    return 1 if _SCALAR_FCMP[pred](a, b) else 0


def scalar_fcmp_impl(pred: str):
    """Resolve ``pred`` once, returning a 2-arg callable."""
    impl = _SCALAR_FCMP[pred]

    def run(a, b):
        if math.isnan(a) or math.isnan(b):
            return 0
        return 1 if impl(a, b) else 0

    return run


_VECTOR_FCMP = {
    "oeq": np.equal, "one": np.not_equal,
    "olt": np.less, "ole": np.less_equal, "ogt": np.greater, "oge": np.greater_equal,
}


def eval_vector_fcmp(pred: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    ordered = ~(np.isnan(a) | np.isnan(b))
    with np.errstate(invalid="ignore"):
        return _VECTOR_FCMP[pred](a, b) & ordered


# --------------------------------------------------------------------------------
# casts
# --------------------------------------------------------------------------------


def eval_scalar_cast(opcode: str, from_t: Type, to_t: Type, v):
    if opcode in ("bitcast", "ptrtoint", "inttoptr"):
        if from_t.is_float or to_t.is_float:
            src = elem_dtype(from_t)
            dst = elem_dtype(to_t)
            return _bit_reinterpret_scalar(v, src, dst, to_t)
        return mask_int(int(v), getattr(to_t, "bits", 64))
    if opcode == "trunc":
        return mask_int(v, to_t.bits)
    if opcode == "zext":
        return v
    if opcode == "sext":
        return from_signed(to_signed(v, from_t.bits), to_t.bits)
    if opcode in ("fptrunc", "fpext"):
        return round_float(to_t, v)
    if opcode == "fptosi":
        return from_signed(int(v), to_t.bits)
    if opcode == "fptoui":
        return mask_int(int(v), to_t.bits)
    if opcode == "sitofp":
        return round_float(to_t, float(to_signed(v, from_t.bits)))
    if opcode == "uitofp":
        return round_float(to_t, float(v))
    raise NotImplementedError(f"scalar cast {opcode}")


def _bit_reinterpret_scalar(v, src_dtype, dst_dtype, to_t: Type):
    arr = np.array([v], dtype=src_dtype).view(dst_dtype)
    return float(arr[0]) if to_t.is_float else int(arr[0])


def eval_vector_cast(opcode: str, from_elem: Type, to_elem: Type, v: np.ndarray) -> np.ndarray:
    dst = elem_dtype(to_elem)
    if opcode == "bitcast":
        return v.view(dst) if v.dtype.itemsize == dst.itemsize else v.astype(dst)
    if opcode in ("ptrtoint", "inttoptr"):
        return v.astype(dst)
    if opcode == "trunc":
        return v.astype(dst)
    if opcode == "zext":
        if from_elem.bits == 1:
            return v.astype(dst)
        return v.astype(dst)
    if opcode == "sext":
        if from_elem.bits == 1:
            return as_unsigned(np.where(v, -1, 0).astype(signed_dtype(to_elem)))
        return as_unsigned(signed_view(v).astype(signed_dtype(to_elem)))
    if opcode in ("fptrunc", "fpext"):
        return v.astype(dst)
    if opcode == "fptosi":
        with np.errstate(invalid="ignore"):
            return np.trunc(v).astype(np.int64).astype(signed_dtype(to_elem)).view(dst)
    if opcode == "fptoui":
        with np.errstate(invalid="ignore"):
            return (np.trunc(v).astype(np.int64) & ((1 << to_elem.bits) - 1)).astype(dst)
    if opcode == "sitofp":
        return signed_view(v).astype(dst)
    if opcode == "uitofp":
        if v.dtype == np.bool_:
            return v.astype(dst)
        return v.astype(dst)
    raise NotImplementedError(f"vector cast {opcode}")


def gang_activity_count(mask, batch: int) -> int:
    """Number of gangs with at least one active lane in a batched mask.

    The gang-batching layer executes ``batch`` gangs per VM step over
    ``batch × G``-lane values; its `ExecStats` accounting charges each
    divergent-loop iteration once per gang that would still be looping in
    the unbatched engine.  That multiplicity is exactly the number of
    per-gang blocks of the loop's continue-mask with any active lane,
    which the decoded engines obtain from this helper.

    The whole-kernel codegen emitter is batch-factor specialized and
    inlines this computation with a **literal** ``batch`` instead of
    calling here (``int(mask.reshape(B, -1).any(axis=1).sum())``) —
    keep the two forms in lockstep if the multiplicity definition
    ever changes.
    """
    m = np.asarray(mask)
    return int(m.reshape(batch, -1).any(axis=1).sum())
