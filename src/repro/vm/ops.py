"""Operational semantics for IR arithmetic, compares, and casts.

Two evaluation paths share these tables: scalar values (Python ints /
floats) and vector values (numpy arrays).  Integer semantics are two's
complement with silent wraparound, matching LLVM's sign-less integers;
signedness comes from the opcode (``sdiv`` vs ``udiv`` etc.).

f32 scalar results are rounded through ``numpy.float32`` so that scalar
and vectorized executions of the same program produce bit-identical
results — the property every benchmark's cross-implementation check
relies on.
"""

from __future__ import annotations

import math

import numpy as np

from ..ir.types import FloatType, IntType, Type
from .nputil import (
    as_unsigned,
    elem_dtype,
    from_signed,
    mask_int,
    signed_dtype,
    signed_view,
    to_signed,
)

__all__ = [
    "VMTrap",
    "eval_scalar_binop",
    "eval_vector_binop",
    "eval_scalar_unop",
    "eval_vector_unop",
    "eval_scalar_icmp",
    "eval_vector_icmp",
    "eval_scalar_fcmp",
    "eval_vector_fcmp",
    "eval_scalar_cast",
    "eval_vector_cast",
    "round_float",
]


class VMTrap(Exception):
    """Runtime trap (division by zero, unreachable, ...)."""


def round_float(type: Type, value: float) -> float:
    """Round a scalar float result to the storage precision of ``type``."""
    if isinstance(type, FloatType) and type.bits == 32:
        return float(np.float32(value))
    return float(value)


# --------------------------------------------------------------------------------
# scalar integer binops
# --------------------------------------------------------------------------------


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise VMTrap("signed division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def eval_scalar_binop(opcode: str, type: Type, a, b):
    if isinstance(type, FloatType):
        return _scalar_float_binop(opcode, type, a, b)
    bits = type.bits
    half = 1 << (bits - 1)
    top = (1 << bits) - 1
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    if opcode == "add":
        return mask_int(a + b, bits)
    if opcode == "sub":
        return mask_int(a - b, bits)
    if opcode == "mul":
        return mask_int(a * b, bits)
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return mask_int(a << (b & (bits - 1)), bits)
    if opcode == "lshr":
        return a >> (b & (bits - 1))
    if opcode == "ashr":
        return from_signed(sa >> (b & (bits - 1)), bits)
    if opcode == "sdiv":
        return from_signed(_sdiv(sa, sb), bits)
    if opcode == "udiv":
        if b == 0:
            raise VMTrap("unsigned division by zero")
        return a // b
    if opcode == "srem":
        if sb == 0:
            raise VMTrap("signed remainder by zero")
        return from_signed(sa - _sdiv(sa, sb) * sb, bits)
    if opcode == "urem":
        if b == 0:
            raise VMTrap("unsigned remainder by zero")
        return a % b
    if opcode == "smin":
        return from_signed(min(sa, sb), bits)
    if opcode == "smax":
        return from_signed(max(sa, sb), bits)
    if opcode == "umin":
        return min(a, b)
    if opcode == "umax":
        return max(a, b)
    if opcode == "addsat_u":
        return min(a + b, top)
    if opcode == "subsat_u":
        return max(a - b, 0)
    if opcode == "addsat_s":
        return from_signed(max(-half, min(half - 1, sa + sb)), bits)
    if opcode == "subsat_s":
        return from_signed(max(-half, min(half - 1, sa - sb)), bits)
    if opcode == "mulhi_s":
        return from_signed((sa * sb) >> bits, bits)
    if opcode == "mulhi_u":
        return (a * b) >> bits
    if opcode == "avg_u":
        return (a + b + 1) >> 1
    if opcode == "abd_u":
        return max(a, b) - min(a, b)
    raise NotImplementedError(f"scalar int binop {opcode}")


def _scalar_float_binop(opcode: str, type: Type, a: float, b: float) -> float:
    if opcode == "fadd":
        r = a + b
    elif opcode == "fsub":
        r = a - b
    elif opcode == "fmul":
        r = a * b
    elif opcode == "fdiv":
        r = a / b if b != 0.0 else math.copysign(math.inf, a) * math.copysign(1.0, b) if a != 0.0 else math.nan
    elif opcode == "frem":
        r = math.fmod(a, b) if b != 0.0 else math.nan
    elif opcode == "fmin":
        r = min(a, b)
    elif opcode == "fmax":
        r = max(a, b)
    else:
        raise NotImplementedError(f"scalar float binop {opcode}")
    return round_float(type, r)


# --------------------------------------------------------------------------------
# vector binops
# --------------------------------------------------------------------------------

_WIDER = {np.uint8: np.uint16, np.uint16: np.uint32, np.uint32: np.uint64}
_WIDER_S = {np.uint8: np.int16, np.uint16: np.int32, np.uint32: np.int64}


def _widen_u(a: np.ndarray):
    wider = _WIDER.get(a.dtype.type)
    if wider is None:
        raise NotImplementedError(f"no wider dtype for {a.dtype}")
    return a.astype(wider)


def eval_vector_binop(opcode: str, elem: Type, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if isinstance(elem, FloatType):
        return _vector_float_binop(opcode, a, b)
    if elem.bits == 1:
        return _vector_bool_binop(opcode, a, b)
    bits = elem.bits
    dtype = elem_dtype(elem)
    sa, sb = signed_view(a), signed_view(b)
    if opcode == "add":
        return a + b
    if opcode == "sub":
        return a - b
    if opcode == "mul":
        return a * b
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return a << (b & np.uint64(bits - 1)).astype(dtype)
    if opcode == "lshr":
        return a >> (b & np.uint64(bits - 1)).astype(dtype)
    if opcode == "ashr":
        amount = signed_view((b & np.uint64(bits - 1)).astype(dtype))
        return as_unsigned(sa >> amount)
    if opcode == "udiv":
        if (b == 0).any():
            raise VMTrap("vector unsigned division by zero")
        return a // b
    if opcode == "urem":
        if (b == 0).any():
            raise VMTrap("vector unsigned remainder by zero")
        return a % b
    if opcode == "sdiv":
        if (sb == 0).any():
            raise VMTrap("vector signed division by zero")
        q = np.abs(sa.astype(np.int64)) // np.abs(sb.astype(np.int64))
        q = np.where((sa < 0) != (sb < 0), -q, q)
        return q.astype(signed_dtype(elem)).view(dtype)
    if opcode == "srem":
        q = eval_vector_binop("sdiv", elem, a, b)
        return a - eval_vector_binop("mul", elem, q, b)
    if opcode == "smin":
        return as_unsigned(np.minimum(sa, sb))
    if opcode == "smax":
        return as_unsigned(np.maximum(sa, sb))
    if opcode == "umin":
        return np.minimum(a, b)
    if opcode == "umax":
        return np.maximum(a, b)
    if opcode == "addsat_u":
        # Width-generic: unsigned overflow iff the wrapped sum is smaller.
        wrapped = a + b
        return np.where(wrapped < a, np.array((1 << bits) - 1, dtype=dtype), wrapped)
    if opcode == "subsat_u":
        return np.where(a < b, np.array(0, dtype=dtype), a - b)
    if opcode == "addsat_s":
        wrapped = signed_view(a + b)
        pos_ovf = (sa > 0) & (sb > 0) & (wrapped < 0)
        neg_ovf = (sa < 0) & (sb < 0) & (wrapped >= 0)
        smax_c = np.array((1 << (bits - 1)) - 1, dtype=wrapped.dtype)
        smin_c = np.array(-(1 << (bits - 1)), dtype=wrapped.dtype)
        return as_unsigned(np.where(pos_ovf, smax_c, np.where(neg_ovf, smin_c, wrapped)))
    if opcode == "subsat_s":
        wrapped = signed_view(a - b)
        pos_ovf = (sa >= 0) & (sb < 0) & (wrapped < 0)
        neg_ovf = (sa < 0) & (sb > 0) & (wrapped >= 0)
        smax_c = np.array((1 << (bits - 1)) - 1, dtype=wrapped.dtype)
        smin_c = np.array(-(1 << (bits - 1)), dtype=wrapped.dtype)
        return as_unsigned(np.where(pos_ovf, smax_c, np.where(neg_ovf, smin_c, wrapped)))
    if opcode == "mulhi_s":
        if bits < 64:
            wide = sa.astype(np.int64) * sb.astype(np.int64)
            return ((wide >> bits) & ((1 << bits) - 1)).astype(dtype)
        vals = [((to_signed(int(x), 64) * to_signed(int(y), 64)) >> 64) & ((1 << 64) - 1)
                for x, y in zip(a, b)]
        return np.array(vals, dtype=dtype)
    if opcode == "mulhi_u":
        if bits < 64:
            wide = a.astype(np.uint64) * b.astype(np.uint64)
            return (wide >> np.uint64(bits)).astype(dtype)
        vals = [(int(x) * int(y)) >> 64 for x, y in zip(a, b)]
        return np.array(vals, dtype=dtype)
    if opcode == "avg_u":
        # (a >> 1) + (b >> 1) + ((a | b) & 1): rounding average, no widening.
        one = np.array(1, dtype=dtype)
        return (a >> one) + (b >> one) + ((a | b) & one)
    if opcode == "abd_u":
        return np.maximum(a, b) - np.minimum(a, b)
    raise NotImplementedError(f"vector int binop {opcode}")


def _vector_bool_binop(opcode: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if opcode in ("and", "umin", "mul", "smax"):
        return a & b
    if opcode in ("or", "umax"):
        return a | b
    if opcode in ("xor", "add", "sub"):
        return a ^ b
    raise NotImplementedError(f"i1 vector binop {opcode}")


def _vector_float_binop(opcode: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Inactive lanes legitimately hold garbage in linearized SPMD code, so
    # overflow/invalid warnings from them are expected and suppressed.
    if opcode == "fadd":
        with np.errstate(all="ignore"):
            return a + b
    if opcode == "fsub":
        with np.errstate(all="ignore"):
            return a - b
    if opcode == "fmul":
        with np.errstate(all="ignore"):
            return a * b
    if opcode == "fdiv":
        with np.errstate(divide="ignore", invalid="ignore"):
            return a / b
    if opcode == "frem":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.fmod(a, b)
    if opcode == "fmin":
        return np.minimum(a, b)
    if opcode == "fmax":
        return np.maximum(a, b)
    raise NotImplementedError(f"vector float binop {opcode}")


# --------------------------------------------------------------------------------
# unary ops
# --------------------------------------------------------------------------------


def eval_scalar_unop(opcode: str, type: Type, a):
    if opcode == "fneg":
        return round_float(type, -a)
    if opcode == "fabs":
        return round_float(type, abs(a))
    if opcode == "fsqrt":
        return round_float(type, math.sqrt(a) if a >= 0 else math.nan)
    if opcode == "iabs":
        sa = to_signed(a, type.bits)
        return from_signed(abs(sa), type.bits)
    if opcode == "not":
        return mask_int(~a, type.bits)
    raise NotImplementedError(f"scalar unop {opcode}")


def eval_vector_unop(opcode: str, elem: Type, a: np.ndarray) -> np.ndarray:
    if opcode == "fneg":
        return -a
    if opcode == "fabs":
        return np.abs(a)
    if opcode == "fsqrt":
        with np.errstate(invalid="ignore"):
            return np.sqrt(a)
    if opcode == "iabs":
        return as_unsigned(np.abs(signed_view(a)))
    if opcode == "not":
        if elem.bits == 1:
            return ~a
        return ~a
    raise NotImplementedError(f"vector unop {opcode}")


# --------------------------------------------------------------------------------
# compares
# --------------------------------------------------------------------------------


def eval_scalar_icmp(pred: str, type: Type, a: int, b: int) -> int:
    bits = getattr(type, "bits", 64)
    sa, sb = to_signed(a, bits), to_signed(b, bits)
    table = {
        "eq": a == b,
        "ne": a != b,
        "ult": a < b,
        "ule": a <= b,
        "ugt": a > b,
        "uge": a >= b,
        "slt": sa < sb,
        "sle": sa <= sb,
        "sgt": sa > sb,
        "sge": sa >= sb,
    }
    return 1 if table[pred] else 0


def eval_vector_icmp(pred: str, elem: Type, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if pred in ("slt", "sle", "sgt", "sge"):
        a, b = signed_view(a), signed_view(b)
    op = {
        "eq": np.equal, "ne": np.not_equal,
        "ult": np.less, "ule": np.less_equal, "ugt": np.greater, "uge": np.greater_equal,
        "slt": np.less, "sle": np.less_equal, "sgt": np.greater, "sge": np.greater_equal,
    }[pred]
    return op(a, b)


def eval_scalar_fcmp(pred: str, a: float, b: float) -> int:
    if math.isnan(a) or math.isnan(b):
        return 0
    table = {
        "oeq": a == b, "one": a != b,
        "olt": a < b, "ole": a <= b, "ogt": a > b, "oge": a >= b,
    }
    return 1 if table[pred] else 0


def eval_vector_fcmp(pred: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    ordered = ~(np.isnan(a) | np.isnan(b))
    op = {
        "oeq": np.equal, "one": np.not_equal,
        "olt": np.less, "ole": np.less_equal, "ogt": np.greater, "oge": np.greater_equal,
    }[pred]
    with np.errstate(invalid="ignore"):
        return op(a, b) & ordered


# --------------------------------------------------------------------------------
# casts
# --------------------------------------------------------------------------------


def eval_scalar_cast(opcode: str, from_t: Type, to_t: Type, v):
    if opcode in ("bitcast", "ptrtoint", "inttoptr"):
        if from_t.is_float or to_t.is_float:
            src = elem_dtype(from_t)
            dst = elem_dtype(to_t)
            return _bit_reinterpret_scalar(v, src, dst, to_t)
        return mask_int(int(v), getattr(to_t, "bits", 64))
    if opcode == "trunc":
        return mask_int(v, to_t.bits)
    if opcode == "zext":
        return v
    if opcode == "sext":
        return from_signed(to_signed(v, from_t.bits), to_t.bits)
    if opcode in ("fptrunc", "fpext"):
        return round_float(to_t, v)
    if opcode == "fptosi":
        return from_signed(int(v), to_t.bits)
    if opcode == "fptoui":
        return mask_int(int(v), to_t.bits)
    if opcode == "sitofp":
        return round_float(to_t, float(to_signed(v, from_t.bits)))
    if opcode == "uitofp":
        return round_float(to_t, float(v))
    raise NotImplementedError(f"scalar cast {opcode}")


def _bit_reinterpret_scalar(v, src_dtype, dst_dtype, to_t: Type):
    arr = np.array([v], dtype=src_dtype).view(dst_dtype)
    return float(arr[0]) if to_t.is_float else int(arr[0])


def eval_vector_cast(opcode: str, from_elem: Type, to_elem: Type, v: np.ndarray) -> np.ndarray:
    dst = elem_dtype(to_elem)
    if opcode == "bitcast":
        return v.view(dst) if v.dtype.itemsize == dst.itemsize else v.astype(dst)
    if opcode in ("ptrtoint", "inttoptr"):
        return v.astype(dst)
    if opcode == "trunc":
        return v.astype(dst)
    if opcode == "zext":
        if from_elem.bits == 1:
            return v.astype(dst)
        return v.astype(dst)
    if opcode == "sext":
        if from_elem.bits == 1:
            return as_unsigned(np.where(v, -1, 0).astype(signed_dtype(to_elem)))
        return as_unsigned(signed_view(v).astype(signed_dtype(to_elem)))
    if opcode in ("fptrunc", "fpext"):
        return v.astype(dst)
    if opcode == "fptosi":
        with np.errstate(invalid="ignore"):
            return np.trunc(v).astype(np.int64).astype(signed_dtype(to_elem)).view(dst)
    if opcode == "fptoui":
        with np.errstate(invalid="ignore"):
            return (np.trunc(v).astype(np.int64) & ((1 << to_elem.bits) - 1)).astype(dst)
    if opcode == "sitofp":
        return signed_view(v).astype(dst)
    if opcode == "uitofp":
        if v.dtype == np.bool_:
            return v.astype(dst)
        return v.astype(dst)
    raise NotImplementedError(f"vector cast {opcode}")
