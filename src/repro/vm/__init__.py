"""``repro.vm`` — execution engine: flat memory + IR interpreter with
cycle cost accounting (substitutes for running on the paper's AVX-512
Xeon; see DESIGN.md)."""

from .memory import Memory, MemoryError_
from .interp import ExecutionLimitExceeded, Interpreter
from .ops import VMTrap

__all__ = ["Memory", "MemoryError_", "Interpreter", "VMTrap", "ExecutionLimitExceeded"]
