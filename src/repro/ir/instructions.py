"""IR instructions.

A single generic ``Instruction`` class covers all opcodes; behaviour is
table-driven (the interpreter, verifier, printer, and the Parsimony
vectorizer all dispatch on ``opcode``).  This mirrors how the paper's pass
treats LLVM IR: a small, closed instruction set transformed case-by-case
(§4.2.3).

Opcode categories
-----------------

* integer binops: ``add sub mul sdiv udiv srem urem and or xor shl lshr
  ashr smin smax umin umax`` plus the "SIMD-flavoured" integer ops the Simd
  Library's hand-written kernels rely on: saturating ``addsat_s addsat_u
  subsat_s subsat_u``, ``mulhi_s mulhi_u`` (multiply, return upper half —
  called out in paper §7), rounding average ``avg_u`` and absolute
  difference ``abd_u``.
* float binops: ``fadd fsub fmul fdiv frem fmin fmax``
* unary: ``fneg fabs fsqrt iabs not``
* compares: ``icmp`` (attr ``pred`` in eq ne slt sle sgt sge ult ule ugt
  uge) and ``fcmp`` (attr ``pred`` in oeq one olt ole ogt oge)
* casts: ``trunc zext sext fptrunc fpext fptosi fptoui sitofp uitofp
  bitcast ptrtoint inttoptr``
* memory: ``alloca load store gep atomicrmw``
* vector (post-vectorization): ``broadcast extractelement insertelement
  shuffle shuffle2 vload vstore gather scatter sad`` and horizontal
  reductions ``reduce_add reduce_min_s reduce_min_u reduce_max_s
  reduce_max_u reduce_and reduce_or``, mask tests ``mask_any mask_all``
* control: ``br condbr ret``
* other: ``phi select call fma``

Memory-access masking follows the paper: *arithmetic* runs unmasked (phi →
select at join points keeps inactive lanes from clobbering live values),
while all vector *memory* accesses carry an explicit ``i1`` mask operand so
inactive lanes neither fault nor clobber memory (§4.2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .types import Type, VOID
from .values import Value

__all__ = [
    "Instruction",
    "INT_BINOPS",
    "FLOAT_BINOPS",
    "UNARY_OPS",
    "CAST_OPS",
    "VECTOR_MEM_OPS",
    "REDUCE_OPS",
    "TERMINATORS",
    "ATOMIC_RMW_OPS",
    "ICMP_PREDS",
    "FCMP_PREDS",
    "COMMUTATIVE_OPS",
]

INT_BINOPS = frozenset(
    """add sub mul sdiv udiv srem urem and or xor shl lshr ashr
       smin smax umin umax addsat_s addsat_u subsat_s subsat_u
       mulhi_s mulhi_u avg_u abd_u""".split()
)
FLOAT_BINOPS = frozenset("fadd fsub fmul fdiv frem fmin fmax".split())
UNARY_OPS = frozenset("fneg fabs fsqrt iabs not".split())
CAST_OPS = frozenset(
    """trunc zext sext fptrunc fpext fptosi fptoui sitofp uitofp
       bitcast ptrtoint inttoptr""".split()
)
VECTOR_MEM_OPS = frozenset("vload vstore gather scatter".split())
REDUCE_OPS = frozenset(
    "reduce_add reduce_min_s reduce_min_u reduce_max_s reduce_max_u reduce_and reduce_or".split()
)
TERMINATORS = frozenset("br condbr ret unreachable".split())

#: Ops accepted by ``atomicrmw`` — every one is also a scalar integer binop,
#: so the VM can evaluate the read-modify-write through the binop tables.
ATOMIC_RMW_OPS = frozenset("add sub and or xor umax umin smax smin".split())

ICMP_PREDS = frozenset("eq ne slt sle sgt sge ult ule ugt uge".split())
FCMP_PREDS = frozenset("oeq one olt ole ogt oge".split())

COMMUTATIVE_OPS = frozenset(
    """add mul and or xor smin smax umin umax addsat_s addsat_u
       mulhi_s mulhi_u avg_u abd_u fadd fmul fmin fmax""".split()
)


class Instruction(Value):
    """A single IR instruction.

    Operands are held in a private list with def-use bookkeeping: mutating
    them must go through ``set_operand`` so that ``Value.uses`` stays
    consistent and ``replace_all_uses_with`` works.
    """

    def __init__(
        self,
        opcode: str,
        type: Type,
        operands: List[Value],
        name: str = "",
        attrs: Optional[Dict] = None,
    ):
        super().__init__(type, name)
        self.opcode = opcode
        self.attrs: Dict = dict(attrs or {})
        self.parent = None  # set when inserted into a BasicBlock
        self._operands: List[Value] = []
        for op in operands:
            self._append_operand(op)

    # -- operand/use management --------------------------------------------------

    @property
    def operands(self) -> tuple:
        return tuple(self._operands)

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand of {self.opcode} is not a Value: {value!r}")
        idx = len(self._operands)
        self._operands.append(value)
        value.uses.append((self, idx))

    def set_operand(self, idx: int, value: Value) -> None:
        old = self._operands[idx]
        old.uses.remove((self, idx))
        self._operands[idx] = value
        value.uses.append((self, idx))

    def append_operand(self, value: Value) -> None:
        """Add an operand at the end (used when extending phis)."""
        self._append_operand(value)

    def drop_operands(self) -> None:
        """Remove this instruction from the use lists of its operands."""
        for idx, op in enumerate(self._operands):
            op.uses.remove((self, idx))
        self._operands = []

    def erase(self) -> None:
        """Unlink from the parent block and drop all operand uses."""
        if self.uses:
            raise RuntimeError(
                f"erasing {self.opcode} '{self.name}' which still has uses"
            )
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_operands()

    # -- classification -----------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_binop(self) -> bool:
        return self.opcode in INT_BINOPS or self.opcode in FLOAT_BINOPS

    @property
    def is_cast(self) -> bool:
        return self.opcode in CAST_OPS

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction may write memory or transfer control."""
        return self.opcode in (
            "store",
            "vstore",
            "scatter",
            "call",
            "atomicrmw",
            "br",
            "condbr",
            "ret",
            "unreachable",
        )

    # -- phi helpers ---------------------------------------------------------------

    def phi_incoming(self):
        """Yield ``(value, block)`` pairs for a phi instruction."""
        assert self.opcode == "phi"
        ops = self._operands
        for i in range(0, len(ops), 2):
            yield ops[i], ops[i + 1]

    def phi_value_for(self, block) -> Value:
        """The incoming value flowing in from predecessor ``block``."""
        for value, pred in self.phi_incoming():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming edge from block {block.name}")

    # -- control-flow helpers --------------------------------------------------------

    def successors(self):
        """Successor blocks for a terminator instruction."""
        if self.opcode == "br":
            return [self._operands[0]]
        if self.opcode == "condbr":
            return [self._operands[1], self._operands[2]]
        return []

    def __repr__(self) -> str:
        name = self.name or "?"
        return f"<{self.opcode} %{name}>"
