"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Lets tests and tools write IR as text (golden files, reduced repro cases)
and round-trip the printer's output.  The grammar is exactly the
printer's format:

    ; module m
    declare f32 @ml.exp.f32(f32)
    define void @kernel(i8* %src, i64 %n) {
    entry:
      %v = vload i8* %src, <8 x i1> <1, 1, 1, 1, 1, 1, 1, 1> -> <8 x i8>
      ...
    }

Externals declared with ``declare`` get a trapping stub implementation
(they exist for type-checking; tests that execute must register real
implementations or build modules through the runtime helpers).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import (
    CAST_OPS,
    FCMP_PREDS,
    FLOAT_BINOPS,
    ICMP_PREDS,
    INT_BINOPS,
    Instruction,
    REDUCE_OPS,
    UNARY_OPS,
)
from .module import BasicBlock, ExternalFunction, Function, Module, SpmdInfo
from .types import (
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
)
from ..diagnostics import CompileError
from .values import Constant, UndefValue, Value
from .verifier import verify_module

__all__ = ["parse_ir", "IRParseError"]


class IRParseError(CompileError, SyntaxError):
    """Malformed textual IR."""

    default_stage = "frontend"


_SCALAR_TYPES = {
    "void": VOID, "i1": I1, "i8": I8, "i16": I16, "i32": I32, "i64": I64,
    "f32": F32, "f64": F64,
}

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|;[^\n]*)
  | (?P<punct><|>|\(|\)|\[|\]|\{|\}|,|=|:|\*|->)
  | (?P<number>-?\d+\.\d+(e[+-]?\d+)?|-?\d+e[+-]?\d+|-?\d+|nan|-?inf)
  | (?P<global>@[\w.$-]+)
  | (?P<local>%[\w.$-]+)
  | (?P<word>[\w.$]+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            raise IRParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "number" and m.group(0).count(".") and not m.group("number"):
            kind = "word"
        if kind != "ws":
            tokens.append((kind, m.group(0)))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.module = Module("parsed")
        # Per-function state:
        self.values: Dict[str, Value] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        self.fixups: List[Tuple[Instruction, int, str]] = []

    # -- token helpers -----------------------------------------------------------

    @property
    def tok(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def advance(self) -> Tuple[str, str]:
        tok = self.tok
        self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.tok[1] == text:
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> None:
        if not self.accept(text):
            raise IRParseError(f"expected {text!r}, found {self.tok[1]!r}")

    # -- types ---------------------------------------------------------------------

    def at_type(self) -> bool:
        return self.tok[1] in _SCALAR_TYPES or self.tok[1] == "<"

    def parse_type(self) -> Type:
        if self.accept("<"):
            count = int(self.advance()[1])
            self.expect("x")
            elem = self.parse_type()
            self.expect(">")
            return VectorType(elem, count)
        word = self.advance()[1]
        base = _SCALAR_TYPES.get(word)
        if base is None:
            raise IRParseError(f"unknown type {word!r}")
        type: Type = base
        while self.accept("*"):
            type = PointerType(type)
        return type

    # -- values ----------------------------------------------------------------------

    def parse_typed_value(self) -> Tuple[Type, Value]:
        type = self.parse_type()
        return type, self.parse_value_of(type)

    def parse_value_of(self, type: Type) -> Value:
        kind, text = self.tok
        if kind == "local":
            self.advance()
            return self._lookup(text[1:], type)
        if text == "undef":
            self.advance()
            return UndefValue(type)
        if text == "<":  # vector constant
            self.advance()
            lanes = []
            while not self.accept(">"):
                lanes.append(self._parse_number())
                self.accept(",")
            return Constant(type, lanes)
        if kind == "number" or text in ("nan", "inf", "-inf"):
            return Constant(type, self._parse_number())
        if kind == "global":
            self.advance()
            return self.module.get(text[1:])
        raise IRParseError(f"cannot parse value {text!r}")

    def _parse_number(self):
        kind, text = self.advance()
        if text in ("nan", "inf", "-inf"):
            return float(text)
        if any(c in text for c in ".e") and not text.lstrip("-").isdigit():
            return float(text)
        return int(text)

    def _lookup(self, name: str, type: Type) -> Value:
        value = self.values.get(name)
        if value is None:
            # Forward reference: create a placeholder patched later.
            value = UndefValue(type)
            value.name = name
            self.fixups_pending = True
        return value

    # -- top level ----------------------------------------------------------------------

    def parse_module(self) -> Module:
        while self.tok[0] != "eof":
            word = self.tok[1]
            if word == "declare":
                self._parse_declare()
            elif word == "define":
                self._parse_define()
            else:
                raise IRParseError(f"expected declare/define, found {word!r}")
        verify_module(self.module)
        return self.module

    def _parse_declare(self) -> None:
        self.expect("declare")
        ret = self.parse_type()
        name = self.advance()[1][1:]
        self.expect("(")
        params = []
        while not self.accept(")"):
            params.append(self.parse_type())
            self.accept(",")

        def stub(*_args):
            raise RuntimeError(f"external @{name} has no implementation")

        self.module.add_external(
            ExternalFunction(name, FunctionType(ret, tuple(params)), stub)
        )

    def _parse_define(self) -> None:
        self.expect("define")
        ret = self.parse_type()
        name = self.advance()[1][1:]
        self.expect("(")
        param_types, param_names = [], []
        while not self.accept(")"):
            param_types.append(self.parse_type())
            param_names.append(self.advance()[1][1:])
            self.accept(",")
        function = Function(name, FunctionType(ret, tuple(param_types)), param_names)
        self.module.add_function(function)
        spmd = self._parse_spmd_annotation()
        function.spmd = spmd
        self.expect("{")

        self.values = {a.name: a for a in function.args}
        self.blocks = {}
        self.fixups = []

        # Pre-scan: create blocks in their textual order so forward
        # references (branches, phi edges) don't reorder the layout.
        scan = self.pos
        while self.tokens[scan][1] != "}":
            if self.tokens[scan + 1][1] == ":":
                self._block(function, self.tokens[scan][1])
                scan += 1
            scan += 1

        # Second pass: parse labels and instructions.
        current: Optional[BasicBlock] = None
        while not self.accept("}"):
            kind, text = self.tok
            if self.tokens[self.pos + 1][1] == ":" and kind in ("word", "number"):
                self.advance()
                self.advance()
                current = self._block(function, text)
                continue
            if current is None:
                raise IRParseError(f"instruction before first label in @{name}")
            self._parse_instruction(function, current)

        # Patch forward references.
        for instr, idx, ref in self.fixups:
            target = self.values.get(ref) or self.blocks.get(ref)
            if target is None:
                raise IRParseError(f"undefined value %{ref} in @{name}")
            instr.set_operand(idx, target)

    def _parse_spmd_annotation(self) -> Optional[SpmdInfo]:
        if self.tok[1].startswith("!"):
            # !spmd(gang_size=G, full|partial) — printed by print_function
            raise IRParseError("spmd annotations are not supported in text form")
        return None

    def _block(self, function: Function, label: str) -> BasicBlock:
        block = self.blocks.get(label)
        if block is None:
            block = BasicBlock(label)
            block.parent = function
            function.blocks.append(block)
            function._used_names.add(label)
            self.blocks[label] = block
        return block

    def _block_ref(self, function: Function) -> BasicBlock:
        self.expect("label")
        name = self.advance()[1][1:]
        return self._block(function, name)

    # -- instructions -----------------------------------------------------------------------

    def _parse_instruction(self, function: Function, block: BasicBlock) -> None:
        name = ""
        if self.tok[0] == "local":
            name = self.advance()[1][1:]
            self.expect("=")
        opcode = self.advance()[1]

        instr = self._build_instruction(function, opcode)
        if name:
            instr.name = name
            function._used_names.add(name)
            self.values[name] = instr
        block.instructions.append(instr)
        instr.parent = block

    def _operand(self, instr_ops: List, ref_fixups: List) -> None:
        """Parse ``type value`` recording forward-reference fixups."""
        type = self.parse_type()
        kind, text = self.tok
        if kind == "local" and text[1:] not in self.values:
            self.advance()
            placeholder = UndefValue(type)
            instr_ops.append(placeholder)
            ref_fixups.append((len(instr_ops) - 1, text[1:]))
        else:
            instr_ops.append(self.parse_value_of(type))

    def _build_instruction(self, function: Function, opcode: str) -> Instruction:
        ops: List[Value] = []
        late: List[Tuple[int, str]] = []
        attrs: Dict = {}
        rtype: Type = VOID

        def operand():
            self._operand(ops, late)

        if opcode in INT_BINOPS or opcode in FLOAT_BINOPS or opcode == "fma":
            self.accept("nsw")
            operand()
            while self.accept(","):
                operand()
            rtype = ops[0].type
        elif opcode in UNARY_OPS:
            operand()
            rtype = ops[0].type
        elif opcode in ("icmp", "fcmp"):
            pred = self.advance()[1]
            if pred not in (ICMP_PREDS | FCMP_PREDS):
                raise IRParseError(f"bad predicate {pred!r}")
            attrs["pred"] = pred
            operand()
            self.expect(",")
            operand()
            t = ops[0].type
            rtype = VectorType(I1, t.count) if isinstance(t, VectorType) else I1
        elif opcode in CAST_OPS:
            operand()
            self.expect("to")
            rtype = self.parse_type()
        elif opcode == "load":
            operand()
            rtype = ops[0].type.pointee
        elif opcode == "store":
            operand()
            self.expect(",")
            operand()
        elif opcode == "gep":
            operand()
            self.expect(",")
            operand()
            rtype = ops[0].type
        elif opcode == "alloca":
            elem = self.parse_type()
            count = 1
            if self.accept("x"):
                count = int(self.advance()[1])
            attrs["count"] = count
            rtype = PointerType(elem)
        elif opcode == "atomicrmw":
            attrs["op"] = self.advance()[1]
            operand()
            self.expect(",")
            operand()
            if self.tok[1] in ("relaxed", "acquire", "release", "seq_cst"):
                attrs["ordering"] = self.advance()[1]
            rtype = ops[1].type
        elif opcode == "phi":
            rtype = self.parse_type()
            while self.accept("["):
                kind, text = self.tok
                if kind == "local" and text[1:] not in self.values:
                    self.advance()
                    ops.append(UndefValue(rtype))
                    late.append((len(ops) - 1, text[1:]))
                else:
                    ops.append(self.parse_value_of(rtype))
                self.expect(",")
                label = self.advance()[1][1:]
                ops.append(self._block(function, label))
                self.expect("]")
                self.accept(",")
        elif opcode == "select":
            operand()
            self.expect(",")
            operand()
            self.expect(",")
            operand()
            rtype = ops[1].type
        elif opcode == "call":
            rtype = self.parse_type()
            callee_name = self.advance()[1][1:]
            callee = self.module.get(callee_name)
            ops.append(callee)
            self.expect("(")
            while not self.accept(")"):
                operand()
                self.accept(",")
        elif opcode == "br":
            ops.append(self._block_ref(function))
        elif opcode == "condbr":
            operand()
            self.expect(",")
            ops.append(self._block_ref(function))
            self.expect(",")
            ops.append(self._block_ref(function))
        elif opcode == "ret":
            if self.tok[1] == "void":
                self.advance()
            elif self.at_type():
                operand()
        elif opcode == "unreachable":
            pass
        elif opcode in ("vload", "gather", "broadcast", "shuffle", "shuffle2"):
            operand()
            while self.accept(","):
                operand()
            self.expect("->")
            rtype = self.parse_type()
        elif opcode in ("vstore", "scatter"):
            operand()
            while self.accept(","):
                operand()
        elif opcode in REDUCE_OPS or opcode in ("mask_any", "mask_all", "mask_popcnt",
                                                "extractelement", "insertelement", "sad"):
            operand()
            while self.accept(","):
                operand()
            if opcode in REDUCE_OPS:
                rtype = ops[0].type.elem
            elif opcode == "extractelement":
                rtype = ops[0].type.elem
            elif opcode == "insertelement":
                rtype = ops[0].type
            elif opcode == "sad":
                rtype = VectorType(I64, ops[0].type.count // 8)
            elif opcode == "mask_popcnt":
                rtype = I64
            else:
                rtype = I1
        else:
            raise IRParseError(f"unknown opcode {opcode!r}")

        instr = Instruction(opcode, rtype, ops, "", attrs)
        for idx, ref in late:
            self.fixups.append((instr, idx, ref))
        return instr


def parse_ir(text: str) -> Module:
    """Parse a textual IR module (printer format) and verify it."""
    parser = _Parser(text)
    header = re.search(r";\s*module\s+(\S+)", text)
    if header:
        parser.module.name = header.group(1)
    return parser.parse_module()
