"""IR verifier.

Checks structural and SSA well-formedness after construction and after
every pass: terminators, operand typing, phi/predecessor agreement, and
SSA dominance of uses.  Raising early here is what lets the Parsimony pass
be inserted "anywhere in the optimization pipeline" (§4.2) with confidence.
"""

from __future__ import annotations

from ..diagnostics import CompileError
from .cfg import DominatorTree
from .instructions import Instruction
from .module import BasicBlock, Function, Module
from .printer import format_instruction, print_function
from .types import I1
from .values import Argument, Constant, UndefValue, Value

__all__ = ["VerificationError", "verify_function", "verify_module"]


class VerificationError(CompileError):
    """Raised when the IR violates a structural or SSA invariant."""

    default_stage = "verifier"


def _fail(
    function: Function,
    message: str,
    block: BasicBlock = None,
    instr: Instruction = None,
) -> None:
    # The IR being rejected may be malformed enough that the printer itself
    # chokes on it (e.g. a phi with an odd operand list); the diagnostic
    # must still be raised.
    try:
        body = print_function(function)
    except Exception as exc:  # pragma: no cover - printer-dependent
        body = f"<function body unprintable: {exc}>"
    raise VerificationError(
        f"in @{function.name}: {message}\n{body}",
        function=function.name,
        block=block.name if block is not None else "",
        instruction=(instr.name or instr.opcode) if instr is not None else "",
    )


def verify_function(function: Function) -> None:
    from .. import faultinject

    faultinject.maybe_fail("verify", function.name)
    if not function.blocks:
        _fail(function, "function has no blocks")

    # Structural checks per block.
    for block in function.blocks:
        if block.parent is not function:
            _fail(function, f"block {block.name} has wrong parent")
        if block.terminator is None:
            _fail(function, f"block {block.name} lacks a terminator")
        seen_non_phi = False
        for instr in block.instructions:
            if instr.parent is not block:
                _fail(function, f"instr {format_instruction(instr)} has wrong parent")
            if instr.opcode == "phi":
                if seen_non_phi:
                    _fail(function, f"phi after non-phi in {block.name}")
            else:
                seen_non_phi = True
            if instr.is_terminator and instr is not block.instructions[-1]:
                _fail(function, f"terminator mid-block in {block.name}")
            _check_instruction(function, instr)

    # Phi / predecessor agreement.
    for block in function.blocks:
        preds = block.predecessors
        for phi in block.phis():
            incoming = dict((b, v) for v, b in phi.phi_incoming())
            if set(incoming) != set(preds):
                _fail(
                    function,
                    f"phi %{phi.name} in {block.name} has incoming "
                    f"{sorted(b.name for b in incoming)} but preds are "
                    f"{sorted(p.name for p in preds)}",
                )
            for value in incoming.values():
                if value.type != phi.type and not isinstance(value, UndefValue):
                    _fail(function, f"phi %{phi.name} incoming type mismatch")

    # SSA dominance: every use is dominated by its definition.
    dt = DominatorTree(function)
    reachable = set(dt.rpo)
    positions = {}
    for block in function.blocks:
        for idx, instr in enumerate(block.instructions):
            positions[instr] = (block, idx)
    for block in function.blocks:
        if block not in reachable:
            continue
        for idx, instr in enumerate(block.instructions):
            operand_blocks = (
                [b for _, b in instr.phi_incoming()] if instr.opcode == "phi" else None
            )
            for op_index, op in enumerate(instr.operands):
                if not isinstance(op, Instruction):
                    continue
                def_block, def_idx = positions.get(op, (None, None))
                if def_block is None:
                    _fail(
                        function,
                        f"use of detached instruction %{op.name} in {format_instruction(instr)}",
                    )
                if instr.opcode == "phi":
                    # The def must dominate the end of the incoming block.
                    pred = instr.operands[op_index + 1] if op_index % 2 == 0 else None
                    if pred is not None and pred in reachable:
                        if not dt.dominates(def_block, pred):
                            _fail(
                                function,
                                f"phi %{instr.name}: %{op.name} does not dominate "
                                f"incoming edge from {pred.name}",
                            )
                    continue
                if def_block is block:
                    if def_idx >= idx:
                        _fail(
                            function,
                            f"%{op.name} used before definition in {block.name}",
                        )
                elif not dt.dominates(def_block, block):
                    _fail(
                        function,
                        f"%{op.name} (def in {def_block.name}) does not dominate "
                        f"use in {block.name}",
                    )

    if function.attrs.get("parsimony_partial_region"):
        _check_partial_region(function)


def _check_partial_region(function: Function) -> None:
    """Seam invariants for the scalar helpers the region-granular fallback
    outlines (:mod:`repro.vectorizer.regions`).

    The vectorizer serializes the seam call one active lane at a time, so
    the helper must be a plain scalar function whose only communication
    with the vector caller is per-lane scalar parameters (including the
    out-slot pointers): void return, no SPMD annotation, no vector-typed
    parameters, and no ``psim.*`` intrinsics left inside (``lane_num`` is
    rewritten to the lane parameter; cross-lane intrinsics must have
    forced whole-function fallback instead).  ``noinline`` keeps the
    normalization pipeline from re-absorbing the body into the caller,
    which would re-trigger the original vectorization failure.
    """
    if function.spmd is not None:
        _fail(function, "partial-fallback region helper carries an SPMD annotation")
    if not function.return_type.is_void:
        _fail(function, "partial-fallback region helper must return void")
    if not function.attrs.get("noinline"):
        _fail(function, "partial-fallback region helper must be marked noinline")
    for arg in function.args:
        if arg.type.is_vector:
            _fail(
                function,
                f"partial-fallback region parameter {arg.name} is vector-typed; "
                f"the seam passes per-lane scalars only",
            )
    for block in function.blocks:
        for instr in block.instructions:
            if instr.opcode != "call":
                continue
            callee = getattr(instr.operands[0], "name", "")
            if callee.startswith("psim."):
                _fail(
                    function,
                    f"psim intrinsic {callee} inside an outlined "
                    f"partial-fallback region has no per-lane schedule",
                    block, instr,
                )


def _check_instruction(function: Function, instr: Instruction) -> None:
    op = instr.opcode
    ops = instr.operands
    block = instr.parent
    if op == "phi":
        # Structural phi invariants must hold before phi_incoming() may
        # pair the operand list up (agreement checks rely on it).
        if len(ops) % 2 != 0:
            _fail(
                function,
                f"phi %{instr.name} has a malformed incoming list "
                f"(odd operand count {len(ops)})",
                block, instr,
            )
        for idx, operand in enumerate(ops):
            if idx % 2 and not isinstance(operand, BasicBlock):
                _fail(
                    function,
                    f"phi %{instr.name} incoming slot {idx} is not a block",
                    block, instr,
                )
            if idx % 2 == 0 and isinstance(operand, BasicBlock):
                _fail(
                    function,
                    f"phi %{instr.name} value slot {idx} is a block",
                    block, instr,
                )
    elif op == "condbr":
        if ops[0].type != I1:
            _fail(function, f"condbr condition not i1: {format_instruction(instr)}",
                  block, instr)
        if not isinstance(ops[1], BasicBlock) or not isinstance(ops[2], BasicBlock):
            _fail(function, "condbr targets must be blocks", block, instr)
    elif op == "br":
        if not isinstance(ops[0], BasicBlock):
            _fail(function, "br target must be a block", block, instr)
    elif op == "ret":
        want = function.return_type
        if want.is_void:
            if ops:
                _fail(function, "ret with value in void function", block, instr)
        else:
            if not ops or ops[0].type != want:
                _fail(function, f"ret type mismatch (want {want})", block, instr)
    elif op == "store":
        if not ops[1].type.is_pointer or ops[1].type.pointee != ops[0].type:
            _fail(function, f"bad store: {format_instruction(instr)}", block, instr)
    elif op == "load":
        if not ops[0].type.is_pointer or ops[0].type.pointee != instr.type:
            _fail(function, f"bad load: {format_instruction(instr)}", block, instr)
    elif instr.is_binop:
        if ops[0].type != ops[1].type or ops[0].type != instr.type:
            _fail(function, f"binop type mismatch: {format_instruction(instr)}",
                  block, instr)
    elif op in ("icmp", "fcmp"):
        if ops[0].type != ops[1].type:
            _fail(function, f"{op} operand type mismatch: {format_instruction(instr)}",
                  block, instr)
    elif op == "select":
        if ops[1].type != ops[2].type or ops[1].type != instr.type:
            _fail(function, f"select type mismatch: {format_instruction(instr)}",
                  block, instr)
        cond = ops[0].type
        if cond.is_vector:
            if cond.elem != I1 or not instr.type.is_vector \
                    or cond.count != instr.type.count:
                _fail(
                    function,
                    f"select mask is not a matching <N x i1>: "
                    f"{format_instruction(instr)}",
                    block, instr,
                )
        elif cond != I1:
            _fail(function, f"select condition not i1: {format_instruction(instr)}",
                  block, instr)
    elif op in ("vload", "vstore", "gather", "scatter"):
        mask = ops[-1]
        if not (mask.type.is_vector and mask.type.elem == I1):
            _fail(function, f"{op} mask is not a <N x i1>: {format_instruction(instr)}",
                  block, instr)
        # Lane-count agreement between the data vector and its mask.
        data_type = instr.type if op in ("vload", "gather") else ops[0].type
        if not data_type.is_vector or data_type.count != mask.type.count:
            _fail(
                function,
                f"{op} lane-count mismatch ({data_type} under {mask.type} mask): "
                f"{format_instruction(instr)}",
                block, instr,
            )
    elif op in ("mask_any", "mask_all", "mask_popcnt"):
        if not (ops[0].type.is_vector and ops[0].type.elem == I1):
            _fail(
                function,
                f"{op} operand is not a <N x i1> mask: {format_instruction(instr)}",
                block, instr,
            )
    elif op == "broadcast":
        if not instr.type.is_vector or instr.type.elem != ops[0].type:
            _fail(function, f"bad broadcast: {format_instruction(instr)}", block, instr)


def verify_module(module: Module) -> None:
    for function in module.functions.values():
        if function.blocks:  # declarations have no body to verify
            verify_function(function)
