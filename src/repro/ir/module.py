"""Module, function, and basic-block containers.

``BasicBlock`` is itself a ``Value`` (of void type, like LLVM's label type)
so that branch and phi instructions can reference blocks through the normal
operand/def-use machinery; CFG edge rewriting then falls out of
``replace_all_uses_with``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from .instructions import Instruction
from .types import FunctionType, Type, VOID
from .values import Argument, Value

__all__ = ["BasicBlock", "Function", "ExternalFunction", "Module", "SpmdInfo"]


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str = ""):
        super().__init__(VOID, name)
        self.instructions: List[Instruction] = []
        self.parent: Optional["Function"] = None

    def append(self, instr: Instruction) -> Instruction:
        if self.instructions and self.instructions[-1].is_terminator:
            raise RuntimeError(f"appending after terminator in block {self.name}")
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    @property
    def predecessors(self) -> List["BasicBlock"]:
        preds = []
        for user, idx in self.uses:
            if (
                isinstance(user, Instruction)
                and user.opcode in ("br", "condbr")
                and user.parent is not None
                and user.parent not in preds
                # for condbr, operand 0 is the condition, 1/2 are targets
                and (user.opcode == "br" or idx in (1, 2))
            ):
                preds.append(user.parent)
        return preds

    def phis(self) -> List[Instruction]:
        return [i for i in self.instructions if i.opcode == "phi"]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if i.opcode != "phi"]

    def first_non_phi_index(self) -> int:
        for idx, instr in enumerate(self.instructions):
            if instr.opcode != "phi":
                return idx
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<block {self.name}>"


class SpmdInfo:
    """SPMD annotation attached to an outlined region function (§4.1).

    Records the metadata the front-end must communicate to the vectorizer:
    the gang size, whether this is the *partial* (tail) variant that needs a
    ``thread_id < num_threads`` guard, and which trailing arguments carry the
    gang base thread id and the total thread count.
    """

    def __init__(
        self,
        gang_size: int,
        partial: bool = False,
        base_arg_index: Optional[int] = None,
        nthreads_arg_index: Optional[int] = None,
    ):
        if gang_size < 1:
            raise ValueError("gang_size must be >= 1")
        self.gang_size = gang_size
        self.partial = partial
        self.base_arg_index = base_arg_index
        self.nthreads_arg_index = nthreads_arg_index

    def __repr__(self) -> str:
        kind = "partial" if self.partial else "full"
        return f"spmd(gang_size={self.gang_size}, {kind})"


class Function(Value):
    """An IR function: arguments plus a list of basic blocks.

    ``spmd`` holds the :class:`SpmdInfo` annotation for outlined SPMD region
    functions (``None`` for ordinary scalar functions).
    """

    def __init__(self, name: str, ftype: FunctionType, arg_names=None):
        super().__init__(ftype, name)
        self.ftype = ftype
        arg_names = arg_names or [f"arg{i}" for i in range(len(ftype.params))]
        self.args = [
            Argument(t, n, i, self) for i, (t, n) in enumerate(zip(ftype.params, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        self.spmd: Optional[SpmdInfo] = None
        self.attrs: Dict = {}
        self._name_counter = itertools.count()
        self._used_names: set = set()

    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def add_block(self, name: str = "bb", before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name))
        block.parent = self
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        for instr in list(block.instructions):
            instr.drop_operands()
            instr.parent = None
        block.instructions = []
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, hint: str = "v") -> str:
        hint = hint or "v"
        if hint not in self._used_names:
            self._used_names.add(hint)
            return hint
        while True:
            candidate = f"{hint}.{next(self._name_counter)}"
            if candidate not in self._used_names:
                self._used_names.add(candidate)
                return candidate

    def instructions(self):
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<function {self.name}>"


class ExternalFunction(Value):
    """A runtime-provided function (math library calls, prints, ...).

    ``impl`` is the Python callable the VM invokes; ``cost`` is either an
    integer cycle count or a callable ``(machine, arg_types) -> int`` the
    cost model consults per call.
    """

    def __init__(self, name: str, ftype: FunctionType, impl: Callable, cost=1):
        super().__init__(ftype, name)
        self.ftype = ftype
        self.impl = impl
        self.cost = cost

    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    def __repr__(self) -> str:
        return f"<external {self.name}>"


class Module:
    """A compilation unit: named functions plus external declarations."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.externals: Dict[str, ExternalFunction] = {}
        #: Module-level metadata (e.g. the gang-batching layer stores its
        #: batch factor, per-loop rejection reasons, and the unbatched
        #: fallback module here).  Cloned shallowly by ``clone_module``
        #: except for keys it knows hold module references.
        self.attrs: Dict[str, object] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function name: {func.name}")
        self.functions[func.name] = func
        return func

    def add_external(self, ext: ExternalFunction) -> ExternalFunction:
        self.externals[ext.name] = ext
        return ext

    def get(self, name: str):
        if name in self.functions:
            return self.functions[name]
        if name in self.externals:
            return self.externals[name]
        raise KeyError(f"no function named {name!r} in module {self.name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self.functions or name in self.externals

    def __repr__(self) -> str:
        return f"<module {self.name}: {list(self.functions)}>"
