"""IRBuilder: a typed, positioned construction API for the IR.

Every ``emit_*``-style method type-checks its operands, infers the result
type, creates the :class:`~repro.ir.instructions.Instruction`, and inserts
it at the current position.  This is the layer the front-end, the
vectorizer, and the hand-written "intrinsics" kernels all build IR through.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .instructions import (
    ATOMIC_RMW_OPS,
    CAST_OPS,
    FCMP_PREDS,
    FLOAT_BINOPS,
    ICMP_PREDS,
    INT_BINOPS,
    Instruction,
    REDUCE_OPS,
)
from .module import BasicBlock, ExternalFunction, Function
from .types import (
    I1,
    I64,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
)
from .values import Constant, Value

__all__ = ["IRBuilder"]


def _unify_lane_type(a: Type, b: Type) -> None:
    if a != b:
        raise TypeError(f"operand type mismatch: {a} vs {b}")


class IRBuilder:
    """Builds instructions into a function, one block at a time."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        self.block = block
        self._insert_index: Optional[int] = None  # None means "append"

    # -- positioning -------------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block
        self._insert_index = None

    def position_before(self, instr: Instruction) -> None:
        self.block = instr.parent
        self._insert_index = self.block.instructions.index(instr)

    def new_block(self, name: str = "bb") -> BasicBlock:
        return self.function.add_block(name)

    def insert(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        if instr.name == "" and not instr.type.is_void:
            instr.name = self.function.unique_name("v")
        else:
            instr.name = self.function.unique_name(instr.name or "v")
        if self._insert_index is None:
            self.block.append(instr)
        else:
            self.block.insert(self._insert_index, instr)
            self._insert_index += 1
        return instr

    # -- constants ---------------------------------------------------------------

    def const(self, type: Type, value) -> Constant:
        return Constant(type, value)

    def splat_const(self, elem: Type, value, count: int) -> Constant:
        return Constant(VectorType(elem, count), [value] * count)

    # -- integer / float binops ---------------------------------------------------

    def binop(self, opcode: str, a: Value, b: Value, name: str = "") -> Instruction:
        if opcode not in INT_BINOPS and opcode not in FLOAT_BINOPS:
            raise ValueError(f"unknown binop: {opcode}")
        _unify_lane_type(a.type, b.type)
        lane = a.type.scalar_type
        if opcode in INT_BINOPS and not lane.is_int:
            raise TypeError(f"{opcode} requires integer operands, got {a.type}")
        if opcode in FLOAT_BINOPS and not lane.is_float:
            raise TypeError(f"{opcode} requires float operands, got {a.type}")
        return self.insert(Instruction(opcode, a.type, [a, b], name or opcode))

    def __getattr__(self, opcode: str):
        # Exposes every binop as a builder method: b.add(x, y), b.fmul(x, y), ...
        if opcode in INT_BINOPS or opcode in FLOAT_BINOPS:
            return lambda a, b, name="": self.binop(opcode, a, b, name)
        raise AttributeError(opcode)

    # Named explicitly because ``and``/``or``/``not`` are Python keywords.
    def and_(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop("and", a, b, name)

    def or_(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop("or", a, b, name)

    def not_(self, a: Value, name: str = "") -> Instruction:
        if not a.type.scalar_type.is_int:
            raise TypeError(f"not requires integer operand, got {a.type}")
        return self.insert(Instruction("not", a.type, [a], name or "not"))

    # -- unary --------------------------------------------------------------------

    def unop(self, opcode: str, a: Value, name: str = "") -> Instruction:
        if opcode in ("fneg", "fabs", "fsqrt") and not a.type.scalar_type.is_float:
            raise TypeError(f"{opcode} requires float operand, got {a.type}")
        if opcode == "iabs" and not a.type.scalar_type.is_int:
            raise TypeError(f"iabs requires integer operand, got {a.type}")
        return self.insert(Instruction(opcode, a.type, [a], name or opcode))

    def fneg(self, a, name=""):
        return self.unop("fneg", a, name)

    def fabs(self, a, name=""):
        return self.unop("fabs", a, name)

    def fsqrt(self, a, name=""):
        return self.unop("fsqrt", a, name)

    def iabs(self, a, name=""):
        return self.unop("iabs", a, name)

    def fma(self, a: Value, b: Value, c: Value, name: str = "") -> Instruction:
        _unify_lane_type(a.type, b.type)
        _unify_lane_type(a.type, c.type)
        return self.insert(Instruction("fma", a.type, [a, b, c], name or "fma"))

    # -- compares -----------------------------------------------------------------

    def icmp(self, pred: str, a: Value, b: Value, name: str = "") -> Instruction:
        if pred not in ICMP_PREDS:
            raise ValueError(f"bad icmp predicate: {pred}")
        _unify_lane_type(a.type, b.type)
        lane = a.type.scalar_type
        if not (lane.is_int or lane.is_pointer):
            raise TypeError(f"icmp requires int/pointer operands, got {a.type}")
        rtype = VectorType(I1, a.type.count) if a.type.is_vector else I1
        return self.insert(
            Instruction("icmp", rtype, [a, b], name or f"cmp_{pred}", {"pred": pred})
        )

    def fcmp(self, pred: str, a: Value, b: Value, name: str = "") -> Instruction:
        if pred not in FCMP_PREDS:
            raise ValueError(f"bad fcmp predicate: {pred}")
        _unify_lane_type(a.type, b.type)
        if not a.type.scalar_type.is_float:
            raise TypeError(f"fcmp requires float operands, got {a.type}")
        rtype = VectorType(I1, a.type.count) if a.type.is_vector else I1
        return self.insert(
            Instruction("fcmp", rtype, [a, b], name or f"cmp_{pred}", {"pred": pred})
        )

    # -- casts ---------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to: Type, name: str = "") -> Value:
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast: {opcode}")
        if value.type.is_vector != to.is_vector:
            raise TypeError(f"cast between vector and scalar: {value.type} -> {to}")
        if value.type == to and opcode != "bitcast":
            return value
        return self.insert(Instruction(opcode, to, [value], name or opcode))

    def trunc(self, v, to, name=""):
        return self.cast("trunc", v, to, name)

    def zext(self, v, to, name=""):
        return self.cast("zext", v, to, name)

    def sext(self, v, to, name=""):
        return self.cast("sext", v, to, name)

    def fptrunc(self, v, to, name=""):
        return self.cast("fptrunc", v, to, name)

    def fpext(self, v, to, name=""):
        return self.cast("fpext", v, to, name)

    def fptosi(self, v, to, name=""):
        return self.cast("fptosi", v, to, name)

    def fptoui(self, v, to, name=""):
        return self.cast("fptoui", v, to, name)

    def sitofp(self, v, to, name=""):
        return self.cast("sitofp", v, to, name)

    def uitofp(self, v, to, name=""):
        return self.cast("uitofp", v, to, name)

    def bitcast(self, v, to, name=""):
        return self.cast("bitcast", v, to, name)

    def ptrtoint(self, v, to=I64, name=""):
        return self.cast("ptrtoint", v, to, name)

    def inttoptr(self, v, to, name=""):
        return self.cast("inttoptr", v, to, name)

    # -- memory ---------------------------------------------------------------------

    def alloca(self, type: Type, count: int = 1, name: str = "") -> Instruction:
        """Stack allocation of ``count`` elements of scalar ``type``."""
        return self.insert(
            Instruction(
                "alloca", PointerType(type), [], name or "stack", {"count": count}
            )
        )

    def load(self, ptr: Value, name: str = "") -> Instruction:
        if not ptr.type.is_pointer:
            raise TypeError(f"load from non-pointer: {ptr.type}")
        return self.insert(Instruction("load", ptr.type.pointee, [ptr], name or "ld"))

    def store(self, value: Value, ptr: Value) -> Instruction:
        if not ptr.type.is_pointer:
            raise TypeError(f"store to non-pointer: {ptr.type}")
        if ptr.type.pointee != value.type:
            raise TypeError(f"store type mismatch: {value.type} into {ptr.type}")
        return self.insert(Instruction("store", VOID, [value, ptr]))

    def gep(self, ptr: Value, index: Value, name: str = "") -> Instruction:
        """Pointer arithmetic: ``ptr + index * sizeof(pointee)``."""
        if not ptr.type.is_pointer:
            raise TypeError(f"gep on non-pointer: {ptr.type}")
        if not index.type.is_int:
            raise TypeError(f"gep index must be integer, got {index.type}")
        return self.insert(Instruction("gep", ptr.type, [ptr, index], name or "gep"))

    def atomicrmw(self, op: str, ptr: Value, value: Value, ordering: str = "relaxed"):
        if op not in ATOMIC_RMW_OPS:
            raise ValueError(
                f"atomicrmw: unsupported op {op!r} (expected one of "
                f"{', '.join(sorted(ATOMIC_RMW_OPS))})"
            )
        if not ptr.type.is_pointer or ptr.type.pointee != value.type:
            raise TypeError("atomicrmw type mismatch")
        return self.insert(
            Instruction(
                "atomicrmw",
                value.type,
                [ptr, value],
                "old",
                {"op": op, "ordering": ordering},
            )
        )

    # -- vector ops -------------------------------------------------------------------

    def broadcast(self, scalar: Value, count: int, name: str = "") -> Instruction:
        if not scalar.type.is_scalar:
            raise TypeError(f"broadcast of non-scalar: {scalar.type}")
        return self.insert(
            Instruction(
                "broadcast", VectorType(scalar.type, count), [scalar], name or "splat"
            )
        )

    def extractelement(self, vec: Value, index: Value, name: str = "") -> Instruction:
        if not vec.type.is_vector:
            raise TypeError(f"extractelement on non-vector: {vec.type}")
        return self.insert(
            Instruction("extractelement", vec.type.elem, [vec, index], name or "lane")
        )

    def insertelement(self, vec: Value, index: Value, value: Value, name: str = ""):
        if not vec.type.is_vector or vec.type.elem != value.type:
            raise TypeError("insertelement type mismatch")
        return self.insert(
            Instruction("insertelement", vec.type, [vec, index, value], name or "ins")
        )

    def shuffle(self, vec: Value, indices: Value, name: str = "") -> Instruction:
        """Any-to-any single-source permute; ``indices`` may be dynamic."""
        if not vec.type.is_vector or not indices.type.is_vector:
            raise TypeError("shuffle requires vector operands")
        rtype = VectorType(vec.type.elem, indices.type.count)
        return self.insert(Instruction("shuffle", rtype, [vec, indices], name or "shuf"))

    def shuffle2(self, a: Value, b: Value, indices: Value, name: str = "") -> Instruction:
        """Two-source permute: index ``i`` selects ``a`` lanes, ``i+count`` selects ``b``."""
        _unify_lane_type(a.type, b.type)
        rtype = VectorType(a.type.elem, indices.type.count)
        return self.insert(
            Instruction("shuffle2", rtype, [a, b, indices], name or "shuf2")
        )

    def vload(self, ptr: Value, count: int, mask: Value, name: str = "") -> Instruction:
        """Masked packed load of ``count`` consecutive elements at ``ptr``."""
        if not ptr.type.is_pointer:
            raise TypeError(f"vload from non-pointer: {ptr.type}")
        self._check_mask(mask, count)
        rtype = VectorType(ptr.type.pointee, count)
        return self.insert(Instruction("vload", rtype, [ptr, mask], name or "vld"))

    def vstore(self, value: Value, ptr: Value, mask: Value) -> Instruction:
        if not value.type.is_vector or not ptr.type.is_pointer:
            raise TypeError("vstore requires vector value and scalar pointer")
        if ptr.type.pointee != value.type.elem:
            raise TypeError(f"vstore type mismatch: {value.type} into {ptr.type}")
        self._check_mask(mask, value.type.count)
        return self.insert(Instruction("vstore", VOID, [value, ptr, mask]))

    def gather(self, ptrs: Value, mask: Value, name: str = "") -> Instruction:
        """Masked gather from a vector of pointers."""
        if not ptrs.type.is_vector or not ptrs.type.elem.is_pointer:
            raise TypeError(f"gather requires vector-of-pointer, got {ptrs.type}")
        self._check_mask(mask, ptrs.type.count)
        rtype = VectorType(ptrs.type.elem.pointee, ptrs.type.count)
        return self.insert(Instruction("gather", rtype, [ptrs, mask], name or "gather"))

    def scatter(self, value: Value, ptrs: Value, mask: Value) -> Instruction:
        if not ptrs.type.is_vector or not ptrs.type.elem.is_pointer:
            raise TypeError(f"scatter requires vector-of-pointer, got {ptrs.type}")
        if ptrs.type.elem.pointee != value.type.elem:
            raise TypeError("scatter type mismatch")
        self._check_mask(mask, value.type.count)
        return self.insert(Instruction("scatter", VOID, [value, ptrs, mask]))

    def reduce(self, opcode: str, vec: Value, name: str = "") -> Instruction:
        if opcode not in REDUCE_OPS:
            raise ValueError(f"unknown reduction: {opcode}")
        if not vec.type.is_vector:
            raise TypeError(f"reduce on non-vector: {vec.type}")
        return self.insert(Instruction(opcode, vec.type.elem, [vec], name or "red"))

    def mask_any(self, mask: Value, name: str = "") -> Instruction:
        self._check_mask(mask, mask.type.count)
        return self.insert(Instruction("mask_any", I1, [mask], name or "any"))

    def mask_all(self, mask: Value, name: str = "") -> Instruction:
        self._check_mask(mask, mask.type.count)
        return self.insert(Instruction("mask_all", I1, [mask], name or "all"))

    def mask_popcnt(self, mask: Value, name: str = "") -> Instruction:
        """Number of set lanes (kmov + popcnt on AVX-512)."""
        self._check_mask(mask, mask.type.count)
        return self.insert(Instruction("mask_popcnt", I64, [mask], name or "popcnt"))

    def sad(self, a: Value, b: Value, name: str = "") -> Instruction:
        """Sum of absolute differences over groups of 8 u8 lanes (vpsadbw)."""
        _unify_lane_type(a.type, b.type)
        if not a.type.is_vector or a.type.elem != IntType(8) or a.type.count % 8:
            raise TypeError("sad requires <8k x i8> operands")
        rtype = VectorType(I64, a.type.count // 8)
        return self.insert(Instruction("sad", rtype, [a, b], name or "sad"))

    def _check_mask(self, mask: Value, count: int) -> None:
        if not (mask.type.is_vector and mask.type.elem == I1 and mask.type.count == count):
            raise TypeError(f"bad mask type {mask.type} for width {count}")

    def all_ones_mask(self, count: int) -> Constant:
        return Constant(VectorType(I1, count), [1] * count)

    # -- other -----------------------------------------------------------------------

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Instruction:
        _unify_lane_type(a.type, b.type)
        if cond.type.is_vector:
            if cond.type.elem != I1 or not a.type.is_vector or a.type.count != cond.type.count:
                raise TypeError("vector select mask/operand mismatch")
        elif cond.type != I1:
            raise TypeError(f"select condition must be i1, got {cond.type}")
        return self.insert(Instruction("select", a.type, [cond, a, b], name or "sel"))

    def phi(self, type: Type, name: str = "") -> Instruction:
        return self.insert(Instruction("phi", type, [], name or "phi"))

    def call(self, callee, args: Sequence[Value], name: str = "") -> Instruction:
        ftype = callee.ftype
        if len(args) != len(ftype.params):
            raise TypeError(
                f"call to {callee.name}: expected {len(ftype.params)} args, got {len(args)}"
            )
        for arg, param in zip(args, ftype.params):
            if arg.type != param:
                raise TypeError(
                    f"call to {callee.name}: arg type {arg.type} != param {param}"
                )
        return self.insert(
            Instruction("call", ftype.ret, [callee, *args], name or callee.name)
        )

    # -- terminators --------------------------------------------------------------------

    def br(self, dest: BasicBlock) -> Instruction:
        return self.insert(Instruction("br", VOID, [dest]))

    def condbr(self, cond: Value, then: BasicBlock, els: BasicBlock) -> Instruction:
        if cond.type != I1:
            raise TypeError(f"condbr condition must be i1, got {cond.type}")
        return self.insert(Instruction("condbr", VOID, [cond, then, els]))

    def ret(self, value: Optional[Value] = None) -> Instruction:
        ops = [] if value is None else [value]
        return self.insert(Instruction("ret", VOID, ops))

    def unreachable(self) -> Instruction:
        return self.insert(Instruction("unreachable", VOID, []))
