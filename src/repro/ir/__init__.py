"""``repro.ir`` — the typed SSA intermediate representation.

This package substitutes for LLVM IR in the reproduction (see DESIGN.md):
types, values, instructions, module containers, a typed builder, CFG
analyses (dominators, natural loops), a printer, and a verifier.
"""

from .types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VoidType,
)
from .values import Argument, Constant, UndefValue, Value, const_bool, const_int
from .instructions import Instruction
from .module import BasicBlock, ExternalFunction, Function, Module, SpmdInfo
from .builder import IRBuilder
from .cfg import DominatorTree, Loop, dominance_frontiers, find_loops, reverse_postorder
from .printer import format_instruction, print_function, print_module
from .parser import IRParseError, parse_ir
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Type", "IntType", "FloatType", "PointerType", "VectorType", "VoidType",
    "FunctionType", "I1", "I8", "I16", "I32", "I64", "F32", "F64", "VOID",
    "Value", "Constant", "UndefValue", "Argument", "const_int", "const_bool",
    "Instruction", "BasicBlock", "Function", "ExternalFunction", "Module",
    "SpmdInfo", "IRBuilder", "DominatorTree", "dominance_frontiers",
    "find_loops", "Loop", "reverse_postorder", "format_instruction",
    "print_function", "print_module", "parse_ir", "IRParseError",
    "VerificationError", "verify_function", "verify_module",
]
