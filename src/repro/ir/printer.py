"""Textual IR printer (LLVM-flavoured) for debugging, tests, and goldens."""

from __future__ import annotations

from typing import List

from .instructions import Instruction
from .module import BasicBlock, ExternalFunction, Function, Module
from .values import Argument, Constant, UndefValue, Value

__all__ = ["print_module", "print_function", "format_instruction", "format_value"]


def format_value(value: Value) -> str:
    """Render a value reference as it appears in an operand position."""
    if isinstance(value, Constant):
        if value.type.is_vector:
            lanes = ", ".join(str(v) for v in value.as_signed())
            return f"{value.type} <{lanes}>"
        return f"{value.type} {value.as_signed()}"
    if isinstance(value, UndefValue):
        return f"{value.type} undef"
    if isinstance(value, BasicBlock):
        return f"label %{value.name}"
    if isinstance(value, (Function, ExternalFunction)):
        return f"@{value.name}"
    return f"{value.type} %{value.name}"


def _format_bare(value: Value) -> str:
    """Render a value reference without its type (phi incoming position)."""
    if isinstance(value, Constant):
        if value.type.is_vector:
            return "<" + ", ".join(str(v) for v in value.as_signed()) + ">"
        return str(value.as_signed())
    if isinstance(value, UndefValue):
        return "undef"
    return f"%{value.name}"


def format_instruction(instr: Instruction) -> str:
    ops = instr.operands
    attrs = instr.attrs

    def operand_list(items) -> str:
        return ", ".join(format_value(o) for o in items)

    lhs = "" if instr.type.is_void else f"%{instr.name} = "

    if instr.opcode == "phi":
        pairs = ", ".join(
            f"[ {_format_bare(v)}, %{b.name} ]" for v, b in instr.phi_incoming()
        )
        return f"{lhs}phi {instr.type} {pairs}"
    if instr.opcode in ("icmp", "fcmp"):
        return f"{lhs}{instr.opcode} {attrs['pred']} {operand_list(ops)}"
    if instr.opcode == "call":
        callee, *args = ops
        return f"{lhs}call {instr.type} @{callee.name}({operand_list(args)})"
    if instr.opcode == "alloca":
        return f"{lhs}alloca {instr.type.pointee} x {attrs.get('count', 1)}"
    if instr.opcode == "atomicrmw":
        return f"{lhs}atomicrmw {attrs['op']} {operand_list(ops)} {attrs.get('ordering', '')}".rstrip()
    if instr.opcode == "ret" and not ops:
        return "ret void"
    body = f"{instr.opcode} {operand_list(ops)}" if ops else instr.opcode
    if not instr.type.is_void and instr.is_cast:
        body += f" to {instr.type}"
    elif instr.opcode in ("vload", "gather", "broadcast", "shuffle", "shuffle2"):
        body += f" -> {instr.type}"
    return lhs + body


def print_function(function: Function) -> str:
    lines: List[str] = []
    args = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    header = f"define {function.return_type} @{function.name}({args})"
    if function.spmd is not None:
        header += f" !{function.spmd!r}"
    lines.append(header + " {")
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for ext in module.externals.values():
        params = ", ".join(map(repr, ext.ftype.params))
        parts.append(f"declare {ext.ftype.ret} @{ext.name}({params})")
    for function in module.functions.values():
        parts.append(print_function(function))
    return "\n\n".join(parts)
