"""Type system for the repro IR.

The IR is a typed SSA representation closely modelled on LLVM's, which is
what the Parsimony prototype targets (paper §4).  Types are immutable and
interned, so identity comparison (``is``) works for the common scalar types
and ``==`` works everywhere.

Supported kinds:

* ``IntType(bits)`` — sign-less integers (i1, i8, i16, i32, i64).  As in
  LLVM, signedness lives in the *operations* (``sdiv`` vs ``udiv``,
  ``icmp slt`` vs ``icmp ult``), not in the type.
* ``FloatType(bits)`` — IEEE binary32/binary64 (f32, f64).
* ``PointerType(pointee)`` — typed pointers into the VM's flat memory.
  Pointers are 64-bit integers at runtime.
* ``VectorType(elem, count)`` — fixed-length vectors of scalar elements.
  These appear after the Parsimony vectorization pass; ``count`` is the
  gang size, which the back-end later legalizes to machine width.
* ``VoidType``, ``FunctionType`` — the obvious.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "Type",
    "IntType",
    "FloatType",
    "PointerType",
    "VectorType",
    "VoidType",
    "FunctionType",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "VOID",
    "POINTER_BITS",
]

#: Width of a pointer at runtime.  The VM's flat memory is byte addressed
#: with 64-bit addresses, matching the x86-64 target of the paper.
POINTER_BITS = 64


class Type:
    """Base class for all IR types."""

    #: Populated by subclasses; used for interning and hashing.
    _key: tuple = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key == other._key  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key))

    def __reduce__(self):
        # Types are interned via __new__/__init__ taking exactly the intern
        # key, so unpickling re-enters the cache and preserves ``is``
        # identity (needed by the on-disk compile cache).
        return (type(self), tuple(self._key))

    # -- convenience predicates -------------------------------------------------

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_scalar(self) -> bool:
        """True for ints, floats, and pointers (anything with one lane)."""
        return self.is_int or self.is_float or self.is_pointer

    def size_bytes(self) -> int:
        """Size of a value of this type in the VM's memory, in bytes."""
        raise TypeError(f"type {self} has no memory size")

    @property
    def scalar_type(self) -> "Type":
        """The element type for vectors; the type itself for scalars."""
        return self.elem if isinstance(self, VectorType) else self


class IntType(Type):
    """A sign-less integer type of a fixed bit width."""

    _cache: dict = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits not in cls._cache:
            if bits not in (1, 8, 16, 32, 64):
                raise ValueError(f"unsupported integer width: {bits}")
            inst = super().__new__(cls)
            inst.bits = bits
            inst._key = (bits,)
            cls._cache[bits] = inst
        return cls._cache[bits]

    bits: int

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def __repr__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE-754 floating point type (f32 or f64)."""

    _cache: dict = {}

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in cls._cache:
            if bits not in (32, 64):
                raise ValueError(f"unsupported float width: {bits}")
            inst = super().__new__(cls)
            inst.bits = bits
            inst._key = (bits,)
            cls._cache[bits] = inst
        return cls._cache[bits]

    bits: int

    def size_bytes(self) -> int:
        return self.bits // 8

    def __repr__(self) -> str:
        return f"f{self.bits}"


class PointerType(Type):
    """A typed pointer.  ``pointee`` is the scalar type loaded/stored."""

    _cache: dict = {}

    def __new__(cls, pointee: Type) -> "PointerType":
        key = pointee
        if key not in cls._cache:
            if not (pointee.is_scalar or pointee.is_void):
                raise ValueError(f"pointer to non-scalar type: {pointee}")
            inst = super().__new__(cls)
            inst.pointee = pointee
            inst._key = (pointee,)
            cls._cache[key] = inst
        return cls._cache[key]

    pointee: Type

    @property
    def bits(self) -> int:
        return POINTER_BITS

    def size_bytes(self) -> int:
        return POINTER_BITS // 8

    def __repr__(self) -> str:
        return f"{self.pointee}*"


class VectorType(Type):
    """A fixed-length vector ``<count x elem>`` of scalar elements."""

    _cache: dict = {}

    def __new__(cls, elem: Type, count: int) -> "VectorType":
        key = (elem, count)
        if key not in cls._cache:
            if not elem.is_scalar:
                raise ValueError(f"vector of non-scalar type: {elem}")
            if count < 1:
                raise ValueError(f"vector length must be >= 1, got {count}")
            inst = super().__new__(cls)
            inst.elem = elem
            inst.count = count
            inst._key = key
            cls._cache[key] = inst
        return cls._cache[key]

    elem: Type
    count: int

    @property
    def bits(self) -> int:
        return self.elem.bits * self.count  # type: ignore[attr-defined]

    def size_bytes(self) -> int:
        return self.elem.size_bytes() * self.count

    def __repr__(self) -> str:
        return f"<{self.count} x {self.elem}>"


class VoidType(Type):
    """The type of instructions that produce no value."""

    _inst = None

    def __new__(cls) -> "VoidType":
        if cls._inst is None:
            cls._inst = super().__new__(cls)
        return cls._inst

    def __repr__(self) -> str:
        return "void"


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    def __init__(self, ret: Type, params: Tuple[Type, ...]):
        self.ret = ret
        self.params = tuple(params)
        self._key = (ret, self.params)

    def __repr__(self) -> str:
        params = ", ".join(map(repr, self.params))
        return f"{self.ret} ({params})"


# Interned singletons for the common types.
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
VOID = VoidType()
