"""SSA values: the base ``Value`` class, constants, undef, and arguments.

Every node in the IR dataflow graph is a ``Value`` with a ``type``.  Values
track their uses (def-use chains) so that passes can rewrite the graph with
``replace_all_uses_with``, mirroring LLVM's RAUW.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .types import IntType, Type, VectorType

__all__ = ["Value", "Constant", "UndefValue", "Argument", "const_int", "const_bool"]


class Value:
    """Base class for everything that can appear as an instruction operand."""

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        #: Def-use chain: list of ``(user_instruction, operand_index)`` pairs.
        self.uses: List[Tuple["Value", int]] = []

    @property
    def users(self):
        """The distinct instructions that use this value."""
        seen = []
        for user, _ in self.uses:
            if user not in seen:
                seen.append(user)
        return seen

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to use ``new`` instead."""
        if new is self:
            return
        for user, idx in list(self.uses):
            user.set_operand(idx, new)

    # Instructions override these; plain values have no operands.
    def set_operand(self, idx: int, value: "Value") -> None:  # pragma: no cover
        raise TypeError(f"{type(self).__name__} has no operands")

    def __repr__(self) -> str:
        return f"{self.type} %{self.name}" if self.name else f"{self.type} <anon>"


class Constant(Value):
    """A compile-time constant.

    For integer types the payload is a Python int stored in two's-complement
    canonical (non-negative) form; for float types a Python float; for vector
    types a tuple of per-lane payloads.
    """

    def __init__(self, type: Type, value):
        super().__init__(type)
        if isinstance(type, VectorType):
            value = tuple(
                _canonical_scalar(type.elem, v) for v in value
            )
            if len(value) != type.count:
                raise ValueError(
                    f"vector constant has {len(value)} lanes, type wants {type.count}"
                )
        else:
            value = _canonical_scalar(type, value)
        self.value = value

    def as_signed(self) -> Union[int, float, tuple]:
        """Interpret integer payload(s) as signed two's complement."""
        if isinstance(self.type, VectorType):
            return tuple(_to_signed(self.type.elem, v) for v in self.value)
        return _to_signed(self.type, self.value)

    @property
    def is_zero(self) -> bool:
        if isinstance(self.type, VectorType):
            return all(v == 0 for v in self.value)
        return self.value == 0

    def __repr__(self) -> str:
        return f"{self.type} {self.value}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


def _canonical_scalar(type: Type, value):
    """Canonicalize a scalar constant payload for its type."""
    if isinstance(type, IntType):
        return int(value) & ((1 << type.bits) - 1)
    if type.is_float:
        return float(value)
    if type.is_pointer:
        return int(value) & ((1 << 64) - 1)
    raise TypeError(f"cannot build constant of type {type}")


def _to_signed(type: Type, value: int):
    if isinstance(type, IntType) and value >= (1 << (type.bits - 1)):
        return value - (1 << type.bits)
    return value


def const_int(type: Type, value: int) -> Constant:
    """Shorthand for an integer ``Constant``."""
    return Constant(type, value)


def const_bool(value: bool) -> Constant:
    """Shorthand for an ``i1`` ``Constant``."""
    return Constant(IntType(1), 1 if value else 0)


class UndefValue(Value):
    """An undefined value of a given type (used for placeholder phi inputs)."""

    def __repr__(self) -> str:
        return f"{self.type} undef"


class Argument(Value):
    """A formal parameter of a ``Function``."""

    def __init__(self, type: Type, name: str, index: int, function=None):
        super().__init__(type, name)
        self.index = index
        self.function = function

    def __repr__(self) -> str:
        return f"{self.type} %{self.name}"
