"""Control-flow-graph analyses: orderings, dominators, natural loops.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm and
classic back-edge based natural-loop discovery.  These feed mem2reg, the
auto-vectorizer's loop finder, and the Parsimony structurizer/mask builder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .module import BasicBlock, Function

__all__ = [
    "reverse_postorder",
    "DominatorTree",
    "dominance_frontiers",
    "Loop",
    "find_loops",
]


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks reachable from entry, in reverse postorder."""
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on deep CFGs.
    stack = [(function.entry, iter(function.entry.successors))]
    visited.add(function.entry)
    while stack:
        _block, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succ.successors)))
                advanced = True
                break
        if not advanced:
            postorder.append(stack.pop()[0])
    return postorder[::-1]


class DominatorTree:
    """Immediate-dominator tree for the reachable CFG of a function."""

    def __init__(self, function: Function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()
        self.children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.rpo}
        for block, parent in self.idom.items():
            if parent is not None and parent is not block:
                self.children[parent].append(block)

    def _compute(self) -> None:
        entry = self.function.entry
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in block.predecessors if idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(idom, pred, new_idom)
                if idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom, b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
        while b1 is not b2:
            while self._rpo_index[b1] > self._rpo_index[b2]:
                b1 = idom[b1]
            while self._rpo_index[b2] > self._rpo_index[b1]:
                b2 = idom[b2]
        return b1

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexively)."""
        runner: Optional[BasicBlock] = b
        entry = self.function.entry
        while runner is not None:
            if runner is a:
                return True
            if runner is entry:
                return False
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)


def dominance_frontiers(dt: DominatorTree) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Cytron et al. dominance frontiers, for SSA phi placement."""
    df: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in dt.rpo}
    for block in dt.rpo:
        preds = [p for p in block.predecessors if p in dt._rpo_index]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner is not dt.idom[block]:
                df[runner].add(block)
                runner = dt.idom[runner]
                if runner is None:  # unreachable pred chains
                    break
    return df


class Loop:
    """A natural loop: header, body blocks, latches, and exits."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def latches(self) -> List[BasicBlock]:
        """Blocks inside the loop that branch back to the header."""
        return [p for p in self.header.predecessors if p in self.blocks]

    @property
    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) == 1 and outside[0].successors == [self.header]:
            return outside[0]
        return None

    def exiting_blocks(self) -> List[BasicBlock]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks:
            if any(s not in self.blocks for s in block.successors):
                result.append(block)
        return result

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        result = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks and succ not in result:
                    result.append(succ)
        return result

    @property
    def depth(self) -> int:
        depth, loop = 1, self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def is_innermost(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        return f"<loop header={self.header.name} blocks={len(self.blocks)}>"


def find_loops(function: Function, dt: Optional[DominatorTree] = None) -> List[Loop]:
    """Discover natural loops via back edges; returns loops nested-outermost
    first, with parent/child links populated."""
    dt = dt or DominatorTree(function)
    loops_by_header: Dict[BasicBlock, Loop] = {}
    for block in dt.rpo:
        for succ in block.successors:
            if dt.dominates(succ, block):  # back edge block -> succ
                header = succ
                body = loops_by_header.get(header)
                blocks = body.blocks if body else {header}
                # Walk predecessors backwards from the latch.
                stack = [block]
                while stack:
                    node = stack.pop()
                    if node in blocks:
                        continue
                    blocks.add(node)
                    stack.extend(p for p in node.predecessors if p in dt._rpo_index)
                if body is None:
                    loops_by_header[header] = Loop(header, blocks)

    loops = list(loops_by_header.values())
    # Establish nesting: a loop's parent is the smallest strictly-containing loop.
    for loop in loops:
        best = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks <= other.blocks:
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
        if best is not None:
            best.children.append(loop)
    loops.sort(key=lambda l: l.depth)
    return loops
