"""``repro.runtime`` — runtime libraries: vector math (SLEEF / ispc
builtin flavours, §6) and the ``psim.*`` intrinsic ABI shared by the
front-end and the vectorizer."""

from . import mathlib, psim_abi
from .mathlib import ISPC_BUILTIN, POW_SLEEF_OVER_ISPC, SLEEF

__all__ = ["mathlib", "psim_abi", "SLEEF", "ISPC_BUILTIN", "POW_SLEEF_OVER_ISPC"]
