"""Vectorized math libraries.

The paper's Parsimony prototype calls SLEEF for vector math while ispc
uses its own built-in SIMD math library (§6).  The one performance gap the
paper reports between the two systems — Binomial Options at 0.71× —
comes entirely from SLEEF's AVX-512 ``pow`` being **2.6× slower** than
ispc's built-in ``pow``.

We reproduce that structure: scalar math externals (``ml.exp.f32`` ...)
plus two vector flavours with identical numerics but distinct cost
tables — ``sleef`` (used by the Parsimony vectorizer) and ``ispc`` (used
by ispc mode) — whose only difference is the cost of ``pow``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from .. import faultinject
from ..ir.module import ExternalFunction, Module
from ..ir.types import FloatType, FunctionType, Type, VectorType

__all__ = [
    "MATH_FUNCTIONS",
    "scalar_math_external",
    "vector_math_external",
    "rehydrate_external",
    "SLEEF",
    "ISPC_BUILTIN",
    "POW_SLEEF_OVER_ISPC",
]

#: Measured by the paper's authors: SLEEF AVX-512 pow / ispc builtin pow.
POW_SLEEF_OVER_ISPC = 2.6

# numpy ufuncs give the vector semantics; scalar path reuses them on 0-d data.
_IMPL: Dict[str, Callable] = {
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "trunc": np.trunc,
    "exp": np.exp,
    "log": np.log,
    "exp2": np.exp2,
    "log2": np.log2,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "atan2": np.arctan2,
    "pow": np.power,
    "fmod": np.fmod,
    "cbrt": np.cbrt,
    "rsqrt": lambda x: 1.0 / np.sqrt(x),
}

#: Scalar cycle costs (x86 libm-ish reciprocal throughputs).
_SCALAR_COST: Dict[str, float] = {
    "floor": 1, "ceil": 1, "round": 1, "trunc": 1,
    "exp": 15, "log": 15, "exp2": 12, "log2": 12,
    "sin": 15, "cos": 15, "tan": 22,
    "asin": 22, "acos": 22, "atan": 20, "atan2": 25,
    "pow": 46, "fmod": 12, "cbrt": 26, "rsqrt": 12,
}

#: Vector cost per *machine op* for the SLEEF flavour.
_SLEEF_COST: Dict[str, float] = {
    "floor": 1, "ceil": 1, "round": 1, "trunc": 1,
    "exp": 9, "log": 9, "exp2": 7, "log2": 7,
    "sin": 10, "cos": 10, "tan": 16,
    "asin": 16, "acos": 16, "atan": 14, "atan2": 18,
    "pow": 52, "fmod": 8, "cbrt": 18, "rsqrt": 4,
}

SLEEF = "sleef"
ISPC_BUILTIN = "ispc"

MATH_FUNCTIONS = frozenset(_IMPL)


def _flavour_cost(flavour: str, name: str) -> float:
    cost = _SLEEF_COST[name]
    if flavour == ISPC_BUILTIN and name == "pow":
        cost = cost / POW_SLEEF_OVER_ISPC
    return cost


def _scalar_impl(name: str, ftype: Type, ext_name: str) -> Callable:
    fn = _IMPL[name]
    f32 = isinstance(ftype, FloatType) and ftype.bits == 32
    dtype = np.float32 if f32 else np.float64

    def impl(*args):
        faultinject.maybe_fail("mathlib", ext_name)
        # Evaluate through a 1-element array so the scalar flavour runs the
        # exact same ufunc inner loop as the vector flavour: numpy's scalar
        # and array paths are NOT bitwise-identical everywhere (e.g. the
        # array loop of ``power`` fast-paths small integral exponents),
        # and the fallback paths pin bitwise scalar/vector agreement.
        arrays = [np.array([a], dtype=dtype) for a in args]
        with np.errstate(all="ignore"):
            result = fn(*arrays)
        return float(result[0])

    return impl


def _vector_impl(name: str, ext_name: str) -> Callable:
    fn = _IMPL[name]

    def impl(*args):
        faultinject.maybe_fail("mathlib", ext_name)
        with np.errstate(all="ignore"):
            result = fn(*args)
        return result.astype(args[0].dtype, copy=False)

    return impl


def _nargs(name: str) -> int:
    return 2 if name in ("pow", "atan2", "fmod") else 1


def _build_scalar(name: str, ftype: FloatType) -> ExternalFunction:
    if name not in _IMPL:
        raise KeyError(f"unknown math function {name!r}")
    ext_name = f"ml.{name}.{ftype}"
    return ExternalFunction(
        ext_name,
        FunctionType(ftype, (ftype,) * _nargs(name)),
        _scalar_impl(name, ftype, ext_name),
        cost=float(_SCALAR_COST[name]),
    )


def _build_vector(
    flavour: str, name: str, elem: FloatType, lanes: int
) -> ExternalFunction:
    if name not in _IMPL:
        raise KeyError(f"unknown math function {name!r}")
    vec = VectorType(elem, lanes)
    per_op = _flavour_cost(flavour, name)

    def cost(machine, arg_types, _per_op=per_op, _vec=vec):
        return _per_op * machine.legalize_factor(_vec)

    ext_name = f"ml.{flavour}.{name}.{elem}x{lanes}"
    return ExternalFunction(
        ext_name,
        FunctionType(vec, (vec,) * _nargs(name)),
        _vector_impl(name, ext_name),
        cost=cost,
    )


def scalar_math_external(module: Module, name: str, ftype: FloatType) -> ExternalFunction:
    """Get-or-create the scalar external ``ml.<name>.<f32|f64>``."""
    ext_name = f"ml.{name}.{ftype}"
    if ext_name in module.externals:
        return module.externals[ext_name]
    return module.add_external(_build_scalar(name, ftype))


def vector_math_external(
    module: Module, name: str, elem: FloatType, lanes: int, flavour: str = SLEEF
) -> ExternalFunction:
    """Get-or-create the vector external ``ml.<flavour>.<name>.<fN>x<G>``.

    The call cost is ``per-machine-op cost × legalization factor``, charged
    via a cost callable so it adapts to whatever machine executes it.
    """
    ext_name = f"ml.{flavour}.{name}.{elem}x{lanes}"
    if ext_name in module.externals:
        return module.externals[ext_name]
    return module.add_external(_build_vector(flavour, name, elem, lanes))


def rehydrate_external(name: str) -> ExternalFunction:
    """Rebuild a detached ``ml.*`` external from its name alone.

    Math externals hold closure impls that cannot be pickled; the disk
    compile cache serializes them as their name and calls this on load.
    Raises ``KeyError``/``ValueError`` for names this module never built.
    """
    parts = name.split(".")
    if len(parts) == 3 and parts[0] == "ml":
        # ml.<fn>.<f32|f64>
        return _build_scalar(parts[1], FloatType(int(parts[2][1:])))
    if len(parts) == 4 and parts[0] == "ml":
        # ml.<flavour>.<fn>.<fN>x<lanes>
        elem_s, _, lanes_s = parts[3].partition("x")
        return _build_vector(
            parts[1], parts[2], FloatType(int(elem_s[1:])), int(lanes_s)
        )
    raise KeyError(f"not a math external name: {name!r}")
