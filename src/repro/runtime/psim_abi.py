"""The ``psim.*`` external ABI between the front-end and the vectorizer.

The front-end lowers Parsimony API calls (§3) inside outlined SPMD region
functions into calls to reserved ``psim.*`` externals.  They are pure
markers: the Parsimony vectorization pass pattern-matches and replaces
every one of them (§4.2.3), so their host implementation just raises —
executing an un-vectorized SPMD function is a programming error, since a
scalar interpretation cannot honour horizontal operations.
"""

from __future__ import annotations

from ..ir.module import ExternalFunction, Module
from ..ir.types import I1, I64, FunctionType, Type, VOID

__all__ = [
    "PSIM_PREFIX",
    "lane_num_external",
    "gang_sync_external",
    "shuffle_external",
    "broadcast_external",
    "reduce_external",
    "vote_external",
    "sad_external",
    "is_psim_external",
]

PSIM_PREFIX = "psim."


def _not_vectorized(*_args):
    raise RuntimeError(
        "psim.* intrinsic executed without vectorization; run the Parsimony "
        "pass (repro.vectorizer.vectorize_module) before executing SPMD code"
    )


def _declare(module: Module, name: str, ftype: FunctionType) -> ExternalFunction:
    if name in module.externals:
        return module.externals[name]
    return module.add_external(ExternalFunction(name, ftype, _not_vectorized, cost=0))


def is_psim_external(value) -> bool:
    return isinstance(value, ExternalFunction) and value.name.startswith(PSIM_PREFIX)


def lane_num_external(module: Module) -> ExternalFunction:
    """``psim.lane_num() -> i64``: this thread's lane within its gang."""
    return _declare(module, "psim.lane_num", FunctionType(I64, ()))


def gang_sync_external(module: Module) -> ExternalFunction:
    """``psim.gang_sync()``: execution barrier across the gang (§3)."""
    return _declare(module, "psim.gang_sync", FunctionType(VOID, ()))


def shuffle_external(module: Module, type: Type) -> ExternalFunction:
    """``psim.shuffle.<ty>(value, src_lane) -> <ty>``: any-to-any exchange."""
    return _declare(module, f"psim.shuffle.{type}", FunctionType(type, (type, I64)))


def broadcast_external(module: Module, type: Type) -> ExternalFunction:
    """``psim.broadcast.<ty>(value, root_lane) -> <ty>``."""
    return _declare(module, f"psim.broadcast.{type}", FunctionType(type, (type, I64)))


def reduce_external(module: Module, kind: str, type: Type, signed: bool) -> ExternalFunction:
    """``psim.reduce_<kind>[.s|.u].<ty>(value) -> <ty>`` over the gang."""
    sign = "" if type.is_float or kind == "add" else (".s" if signed else ".u")
    name = f"psim.reduce_{kind}{sign}.{type}"
    return _declare(module, name, FunctionType(type, (type,)))


def vote_external(module: Module, kind: str) -> ExternalFunction:
    """``psim.any`` / ``psim.all`` over the gang's i1 values."""
    return _declare(module, f"psim.{kind}", FunctionType(I1, (I1,)))


def sad_external(module: Module) -> ExternalFunction:
    """§7's opaque SAD abstraction: gang-wide sum of |a - b| over u8 pairs."""
    from ..ir.types import I8

    return _declare(module, "psim.sad", FunctionType(I64, (I8, I8)))
