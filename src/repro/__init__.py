"""Parsimony (CGO 2023) reproduction.

A pure-Python reimplementation of the full system stack from
*"Parsimony: Enabling SIMD/Vector Programming in Standard Compiler
Flows"* (Kandiah, Lustig, Villa, Nellans, Hardavellas):

* ``repro.ir`` / ``repro.passes`` — typed SSA IR + scalar middle-end
  (substitutes for LLVM);
* ``repro.frontend`` — *PsimC*, a C-like language with ``psim`` SPMD
  regions (substitutes for Parsimony-enabled C++/Clang);
* ``repro.vectorizer`` — **the Parsimony IR-to-IR vectorization pass**
  (the paper's contribution): shape analysis with SMT-verified rules,
  mask-based linearization, shape-directed instruction selection;
* ``repro.autovec`` — classical loop auto-vectorization baseline;
* ``repro.ispc`` — gang-synchronous, flag-coupled SPMD baseline;
* ``repro.simd`` — hand-written intrinsics kernel authoring;
* ``repro.backend`` / ``repro.vm`` — SIMD machine model + cycle-accounting
  VM (substitutes for the paper's AVX-512 Xeon);
* ``repro.benchsuite`` — the two evaluation suites (7 ispc benchmarks for
  Figure 4, 72 Simd Library kernels for Figure 5).

Quick start::

    from repro import compile_parsimony, Interpreter
    module = compile_parsimony('''
        void axpy(f32* x, f32* y, f32 a, u64 n) {
            psim (gang_size=16, num_threads=n) {
                u64 i = psim_get_thread_num();
                y[i] = a * x[i] + y[i];
            }
        }
    ''')
    # allocate arrays via Interpreter(module).memory; see examples/.
"""

from .backend import AVX2, AVX512, SSE4, CostModel, ExecStats, Machine
from .driver import (
    compile_autovec,
    compile_ispc,
    compile_parsimony,
    compile_scalar,
    execute,
)
from .frontend import compile_source
from .vectorizer import VectorizeConfig, vectorize_module
from .vm import Interpreter, Memory

__version__ = "1.0.0"

__all__ = [
    "AVX512", "AVX2", "SSE4", "Machine", "CostModel", "ExecStats",
    "compile_source", "compile_scalar", "compile_autovec",
    "compile_parsimony", "compile_ispc", "execute",
    "VectorizeConfig", "vectorize_module",
    "Interpreter", "Memory",
    "__version__",
]
