"""``repro.simd`` — hand-written intrinsics-style kernel authoring
(the Figure 5 "Hand-written AVX-512" baseline)."""

from .intrinsics import HandKernel, hand_kernel

__all__ = ["HandKernel", "hand_kernel"]
