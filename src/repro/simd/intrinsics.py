"""Hand-written SIMD kernel authoring API (the "intrinsics" baseline).

The paper's Figure 5 compares Parsimony against the Simd Library's
hand-written AVX-512 implementations.  This module is the equivalent
authoring surface here: a thin typed wrapper over the IR builder with
x86-flavoured conveniences (saturating u8 math, ``vpsadbw``-style SAD,
rounding averages, ``mulhi``, permutes), plus structured helpers for the
block loops every intrinsics kernel hand-rolls.

Like real intrinsics code, kernels written with this API are tied to a
vector width, handle their own induction arithmetic, and may use complex
instructions the vectorizer never emits — which is exactly why they edge
out Parsimony by a few percent on some kernels (§6).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

from ..ir import (
    F32,
    I1,
    I8,
    I16,
    I32,
    I64,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    Type,
    Value,
    VectorType,
    verify_function,
)

__all__ = ["HandKernel", "hand_kernel"]


class _Params:
    """Attribute access to a kernel's formal parameters."""

    def __init__(self, args):
        for arg in args:
            object.__setattr__(self, arg.name, arg)


class HandKernel:
    """Builds one hand-written vector function inside a module."""

    def __init__(self, module: Module, name: str, params: Sequence[Tuple[str, Type]],
                 ret: Type = None):
        from ..ir.types import VOID

        self.module = module
        ret = ret or VOID
        ftype = FunctionType(ret, tuple(t for _, t in params))
        self.func = Function(name, ftype, [n for n, _ in params])
        module.add_function(self.func)
        self.b = IRBuilder(self.func)
        self.b.position_at_end(self.b.new_block("entry"))
        # Parameters are exposed through the `p` namespace (k.p.src, k.p.n)
        # so that names like `b` cannot shadow builder attributes.
        self.p = _Params(self.func.args)

    # -- scalars ---------------------------------------------------------------

    def const(self, type: Type, value) -> Constant:
        return Constant(type, value)

    def i64(self, value: int) -> Constant:
        return Constant(I64, value)

    def splat(self, type: Type, value, lanes: int) -> Constant:
        return Constant(VectorType(type, lanes), [value] * lanes)

    def full_mask(self, lanes: int) -> Constant:
        return Constant(VectorType(I1, lanes), [1] * lanes)

    # -- structured loops --------------------------------------------------------

    @contextmanager
    def loop(self, count: Value, step: int = 1, name: str = "i"):
        """``for (i = 0; i < count; i += step)`` — yields the induction.

        Hand-written kernels require ``count % step == 0`` (callers pad
        their data to the vector width, as real intrinsics code does).
        """
        b = self.b
        pre = b.block
        header = b.new_block(f"{name}.loop")
        body = b.new_block(f"{name}.body")
        exit_ = b.new_block(f"{name}.exit")
        b.br(header)
        b.position_at_end(header)
        phi = b.phi(I64, name)
        phi.append_operand(self.i64(0))
        phi.append_operand(pre)
        b.condbr(b.icmp("ult", phi, count), body, exit_)
        b.position_at_end(body)
        yield phi
        nxt = b.add(phi, self.i64(step), name + ".next")
        latch = b.block
        b.br(header)
        phi.append_operand(nxt)
        phi.append_operand(latch)
        b.position_at_end(exit_)

    def ret(self, value: Optional[Value] = None) -> None:
        self.b.ret(value)

    def done(self) -> Function:
        verify_function(self.func)
        return self.func

    # -- memory ------------------------------------------------------------------

    def at(self, ptr: Value, index: Value) -> Value:
        return self.b.gep(ptr, index)

    def load(self, ptr: Value, index: Value, lanes: int, name: str = "v") -> Value:
        """Packed load of ``lanes`` elements at ``ptr[index]``."""
        addr = self.b.gep(ptr, index)
        return self.b.vload(addr, lanes, self.full_mask(lanes), name)

    def store(self, value: Value, ptr: Value, index: Value) -> None:
        addr = self.b.gep(ptr, index)
        self.b.vstore(value, addr, self.full_mask(value.type.count))

    def load_scalar(self, ptr: Value, index: Value, name: str = "s") -> Value:
        return self.b.load(self.b.gep(ptr, index), name)

    def store_scalar(self, value: Value, ptr: Value, index: Value) -> None:
        self.b.store(value, self.b.gep(ptr, index))

    # -- vertical ops (everything the IR builder has, re-exported) ----------------

    def __getattr__(self, name):
        # Fall through to the underlying IRBuilder for add/sub/mul/…;
        # (plain attribute lookup finds HandKernel methods and args first).
        return getattr(self.b, name)

    # -- x86-flavoured conveniences -------------------------------------------------

    def sat_add_u8(self, a: Value, b: Value) -> Value:
        return self.b.addsat_u(a, b)  # vpaddusb

    def sat_sub_u8(self, a: Value, b: Value) -> Value:
        return self.b.subsat_u(a, b)  # vpsubusb

    def avg_u8(self, a: Value, b: Value) -> Value:
        return self.b.avg_u(a, b)  # vpavgb

    def abs_diff_u8(self, a: Value, b: Value) -> Value:
        return self.b.abd_u(a, b)  # max(a,b)-min(a,b)

    def sad_u8(self, a: Value, b: Value) -> Value:
        """vpsadbw: per-8-lane-group sums of absolute differences."""
        return self.b.sad(a, b)

    def mulhi_u16(self, a: Value, b: Value) -> Value:
        return self.b.mulhi_u(a, b)  # vpmulhuw

    def widen_u8_u16(self, v: Value) -> Value:
        return self.b.zext(v, VectorType(I16, v.type.count))

    def widen_u8_i32(self, v: Value) -> Value:
        return self.b.zext(v, VectorType(I32, v.type.count))

    def narrow_to_u8(self, v: Value) -> Value:
        return self.b.trunc(v, VectorType(I8, v.type.count))

    def permute(self, v: Value, indices: Sequence[int]) -> Value:
        idx = Constant(VectorType(I64, len(indices)), list(indices))
        return self.b.shuffle(v, idx)  # vpermd / vpshufb family

    def blend(self, mask: Value, a: Value, b: Value) -> Value:
        return self.b.select(mask, a, b)

    def hsum(self, v: Value) -> Value:
        return self.b.reduce("reduce_add", v)


def hand_kernel(module: Module, name: str, params, ret=None) -> HandKernel:
    """Start a hand-written kernel; finish with ``.ret()`` and ``.done()``."""
    return HandKernel(module, name, params, ret)
