"""Persistent on-disk compile cache (the layer under ``repro.driver``).

Compilation is pure in (flow, source, machine, config), so the in-memory
content-keyed cache in :mod:`repro.driver` can be extended to disk:
benchmark *reruns* then skip compilation entirely.  The layer is opt-in
(``REPRO_DISK_CACHE=1`` or :func:`set_enabled`), keyed by a SHA-256 digest
of the in-memory cache key plus a cache-version stamp plus a toolchain
fingerprint (size+mtime of every ``repro`` source file), and stored as one
pickle file per entry under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``).

Robustness contract:

* **corruption-tolerant loads** — any failure to read, unpickle, or
  version-match an entry is swallowed, the bad file is dropped, and the
  caller recompiles; the disk layer can never fail a compile;
* **atomic writes** — entries are written to a temp file and
  ``os.replace``'d into place, so a crashed writer leaves no torn entry;
* **stale-by-construction invalidation** — editing any compiler source
  changes the toolchain fingerprint, which changes every digest, so old
  entries are simply never hit again (and a version bump in
  :data:`CACHE_VERSION` does the same explicitly).

``ml.*`` math externals hold closure impls that cannot be pickled; they
are serialized as persistent ids (their name) and rebuilt on load by
:func:`repro.runtime.mathlib.rehydrate_external`.  ``psim.*`` externals
pickle directly (module-level impl, literal cost).
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .ir.module import ExternalFunction, Module

__all__ = [
    "CACHE_VERSION",
    "cache_dir",
    "enabled",
    "set_enabled",
    "dumps_module",
    "loads_module",
    "load",
    "store",
    "load_code",
    "store_code",
    "code_stats",
    "clear",
    "stats",
    "reset_stats",
]

#: Bump on any incompatible change to the IR pickle layout or cache format.
#: v2: gang-batched modules — ``Module.attrs`` carries the unbatched
#: fallback twin and instructions carry batch-charge prototypes.
#: v3: whole-kernel codegen — generated-source code objects share the
#: cache directory (``.code`` entries), keyed per interpreter bytecode
#: magic; module digests move with them.
#: v4: batch-specialized emission — generated sources inline batch
#: factors, localized accounting, and folded superinstruction forms, so
#: v3 code objects describe a different accounting protocol and must not
#: rehydrate.
CACHE_VERSION = 4

_PID_PREFIX = "repro-ext:"

# Deep parsimony def-use graphs exceed the default recursion limit when
# pickled; raised temporarily around dump/load.
_PICKLE_RECURSION_LIMIT = 100_000

_STATS = {"hits": 0, "misses": 0, "writes": 0, "errors": 0}
_ENABLED: Optional[bool] = None  # None → consult REPRO_DISK_CACHE


def enabled() -> bool:
    """Whether the disk layer is active."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_DISK_CACHE", "") in ("1", "true")


def set_enabled(value: Optional[bool]) -> None:
    """Force the disk layer on/off; ``None`` defers to ``REPRO_DISK_CACHE``."""
    global _ENABLED
    _ENABLED = value


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def stats() -> Dict[str, int]:
    """Hit/miss/write/error counters (for telemetry and tests)."""
    return dict(_STATS)


def reset_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


def clear() -> None:
    """Drop every on-disk entry (best effort)."""
    try:
        for pattern in ("*.pkl", "*.code"):
            for path in cache_dir().glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
    except OSError:
        pass


# -- keying --------------------------------------------------------------------

_FINGERPRINT: Optional[str] = None


def _toolchain_fingerprint() -> str:
    """Digest of every compiler source file's (path, size, mtime)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        h = hashlib.sha256()
        root = Path(__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            try:
                st = path.stat()
            except OSError:
                continue
            rel = path.relative_to(root)
            h.update(f"{rel}:{st.st_size}:{st.st_mtime_ns}\n".encode())
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def _digest(key: tuple) -> str:
    text = f"v{CACHE_VERSION}|{_toolchain_fingerprint()}|{key!r}"
    return hashlib.sha256(text.encode()).hexdigest()


def _entry_path(key: tuple) -> Path:
    return cache_dir() / f"{_digest(key)}.pkl"


# -- module (de)serialization --------------------------------------------------


class _ModulePickler(pickle.Pickler):
    def persistent_id(self, obj):
        if isinstance(obj, ExternalFunction) and obj.name.startswith("ml."):
            return _PID_PREFIX + obj.name
        return None


class _ModuleUnpickler(pickle.Unpickler):
    """Rebuilds ``ml.*`` externals by name, once each (identity preserved)."""

    def __init__(self, file):
        super().__init__(file)
        self._rehydrated: Dict[str, ExternalFunction] = {}

    def persistent_load(self, pid):
        if not isinstance(pid, str) or not pid.startswith(_PID_PREFIX):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        name = pid[len(_PID_PREFIX):]
        ext = self._rehydrated.get(name)
        if ext is None:
            from .runtime.mathlib import rehydrate_external

            ext = self._rehydrated[name] = rehydrate_external(name)
        return ext


def _dumps(module: Module) -> bytes:
    buf = io.BytesIO()
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _PICKLE_RECURSION_LIMIT))
    try:
        _ModulePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(
            (CACHE_VERSION, module)
        )
    finally:
        sys.setrecursionlimit(old)
    return buf.getvalue()


def _loads(data: bytes) -> Module:
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, _PICKLE_RECURSION_LIMIT))
    try:
        version, module = _ModuleUnpickler(io.BytesIO(data)).load()
    finally:
        sys.setrecursionlimit(old)
    if version != CACHE_VERSION or not isinstance(module, Module):
        raise pickle.UnpicklingError("stale or foreign cache entry")
    return module


def dumps_module(module: Module) -> bytes:
    """Serialize one module with the cache's pickler (version-stamped,
    ``ml.*`` externals by persistent id).  The byte string round-trips
    through :func:`loads_module` in another process — this is how
    :mod:`repro.shard` ships an explicit module to a worker that cannot
    inherit it, and how cross-process tests move modules around without
    going through a cache directory."""
    return _dumps(module)


def loads_module(data: bytes) -> Module:
    """Inverse of :func:`dumps_module`; raises ``pickle.UnpicklingError``
    on a stale or foreign payload."""
    return _loads(data)


# -- the cache API used by repro.driver ----------------------------------------


def load(key: tuple) -> Optional[Module]:
    """Best-effort load; missing, corrupt, or stale entries return None."""
    if not enabled():
        return None
    path = _entry_path(key)
    try:
        data = path.read_bytes()
    except OSError:
        _STATS["misses"] += 1
        return None
    try:
        module = _loads(data)
    except Exception:
        # Corruption-tolerant: drop the bad entry, fall back to recompile.
        _STATS["errors"] += 1
        _STATS["misses"] += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _STATS["hits"] += 1
    return module


def store(key: tuple, module: Module) -> None:
    """Best-effort atomic write; failures are counted, never raised."""
    if not enabled():
        return
    tmp = None
    try:
        data = _dumps(module)
        directory = cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, _entry_path(key))
        tmp = None
        _STATS["writes"] += 1
    except Exception:
        _STATS["errors"] += 1
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# -- generated-code entries (whole-kernel codegen) ------------------------------
#
# ``repro.backend.codegen`` emits deterministic Python source per
# (function shape, cost bindings), so identical sources across processes
# share one ``compile()``.  Code objects are marshal-serialized with the
# interpreter's bytecode magic prefixed — a different CPython silently
# misses instead of unmarshalling garbage.  Counters are kept separate
# from the module-entry ``_STATS`` so existing telemetry and tests keep
# their meaning.

_CODE_STATS = {"hits": 0, "misses": 0, "writes": 0, "errors": 0}


def code_stats() -> Dict[str, int]:
    """Hit/miss/write/error counters for generated-code entries."""
    return dict(_CODE_STATS)


def _code_path(source: str) -> Path:
    import importlib.util

    text = f"v{CACHE_VERSION}|code|{importlib.util.MAGIC_NUMBER!r}|{source}"
    return cache_dir() / f"{hashlib.sha256(text.encode()).hexdigest()}.code"


def load_code(source: str):
    """Best-effort load of a compiled code object for a generated source."""
    if not enabled():
        return None
    import marshal
    import importlib.util

    path = _code_path(source)
    try:
        data = path.read_bytes()
    except OSError:
        _CODE_STATS["misses"] += 1
        return None
    magic = importlib.util.MAGIC_NUMBER
    try:
        if data[: len(magic)] != magic:
            raise ValueError("bytecode magic mismatch")
        code = marshal.loads(data[len(magic):])
        if not hasattr(code, "co_code"):
            raise ValueError("not a code object")
    except Exception:
        _CODE_STATS["errors"] += 1
        _CODE_STATS["misses"] += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _CODE_STATS["hits"] += 1
    return code


def store_code(source: str, code) -> None:
    """Best-effort atomic write of a compiled code object."""
    if not enabled():
        return
    import marshal
    import importlib.util

    tmp = None
    try:
        data = importlib.util.MAGIC_NUMBER + marshal.dumps(code)
        directory = cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, _code_path(source))
        tmp = None
        _CODE_STATS["writes"] += 1
    except Exception:
        _CODE_STATS["errors"] += 1
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
