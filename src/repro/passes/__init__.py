"""``repro.passes`` — the scalar middle-end: pass manager and standard
optimizations (mem2reg, constant folding, DCE, CFG simplification,
inlining).  The Parsimony vectorizer (``repro.vectorizer``) slots into
this pipeline as one more IR-to-IR pass."""

from .pass_manager import FunctionPass, PassManager
from .mem2reg import mem2reg
from .simplify_cfg import remove_unreachable_blocks, simplify_cfg
from .constfold import constant_fold
from .dce import dce
from .inline import inline_call, inline_function_calls, inline_module_calls
from .clone import clone_blocks, clone_function, clone_module
from .loop_simplify import loop_simplify
from .cse import cse
from .narrow import narrow_ints
from .licm import licm

__all__ = [
    "FunctionPass",
    "PassManager",
    "mem2reg",
    "simplify_cfg",
    "remove_unreachable_blocks",
    "constant_fold",
    "dce",
    "inline_call",
    "inline_function_calls",
    "inline_module_calls",
    "clone_blocks",
    "clone_function",
    "clone_module",
    "loop_simplify",
    "cse",
    "narrow_ints",
    "licm",
    "standard_pipeline",
]


def standard_pipeline(verify_each: bool = True) -> PassManager:
    """The default -O2-ish scalar pipeline used before vectorization."""
    return PassManager(
        [mem2reg, constant_fold, simplify_cfg, cse, narrow_ints, constant_fold,
         cse, dce, constant_fold, dce],
        verify_each=verify_each,
    )
