"""Constant folding and algebraic simplification.

Reuses the VM's operational semantics (``repro.vm.ops``) as the folding
oracle, so the compiler and the machine can never disagree about an
operation's result — a property the folding tests assert directly.
"""

from __future__ import annotations

from ..ir.instructions import CAST_OPS, FLOAT_BINOPS, INT_BINOPS, Instruction, UNARY_OPS
from ..ir.module import Function
from ..ir.types import VectorType
from ..ir.values import Constant, Value
from ..vm import ops as vmops
from ..vm.nputil import elem_dtype

__all__ = ["constant_fold"]


def constant_fold(function: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for instr in list(block.instructions):
                folded = _fold(instr)
                if folded is not None:
                    instr.replace_all_uses_with(folded)
                    instr.erase()
                    progress = True
                    changed = True
    return changed


def _fold(instr: Instruction):
    if instr.uses == [] and not instr.type.is_void:
        # Leave pure dead code for DCE; nothing to fold into.
        pass
    op = instr.opcode
    operands = instr.operands
    if isinstance(instr.type, VectorType):
        return None  # vector constants are folded lane-wise only when needed
    consts = [o for o in operands if isinstance(o, Constant)]

    try:
        if (op in INT_BINOPS or op in FLOAT_BINOPS) and len(consts) == 2:
            a, b = consts[0], consts[1]
            result = vmops.eval_scalar_binop(op, instr.type, a.value, b.value)
            return Constant(instr.type, result)
        if op in UNARY_OPS and len(consts) == 1:
            result = vmops.eval_scalar_unop(op, instr.type, consts[0].value)
            return Constant(instr.type, result)
        if op == "icmp" and len(consts) == 2:
            r = vmops.eval_scalar_icmp(
                instr.attrs["pred"], operands[0].type, consts[0].value, consts[1].value
            )
            return Constant(instr.type, r)
        if op == "fcmp" and len(consts) == 2:
            r = vmops.eval_scalar_fcmp(instr.attrs["pred"], consts[0].value, consts[1].value)
            return Constant(instr.type, r)
        if op in CAST_OPS and len(consts) == 1 and not operands[0].type.is_vector:
            r = vmops.eval_scalar_cast(op, operands[0].type, instr.type, consts[0].value)
            return Constant(instr.type, r)
        if op == "select" and isinstance(operands[0], Constant):
            return operands[1] if operands[0].value else operands[2]
    except (vmops.VMTrap, NotImplementedError):
        return None  # e.g. constant division by zero: leave for runtime trap

    return _algebraic(instr)


def _algebraic(instr: Instruction):
    """Identity simplifications on one constant operand."""
    op = instr.opcode
    operands = instr.operands
    if len(operands) != 2:
        return None
    a, b = operands

    def is_const(v: Value, value) -> bool:
        return isinstance(v, Constant) and not v.type.is_vector and v.value == _canon(v, value)

    def _canon(v: Constant, value):
        if v.type.is_int:
            return value & ((1 << v.type.bits) - 1)
        return value

    if op in ("add", "or", "xor"):
        if is_const(b, 0):
            return a
        if is_const(a, 0):
            return b
    if op == "sub" and is_const(b, 0):
        return a
    if op == "mul":
        if is_const(b, 1):
            return a
        if is_const(a, 1):
            return b
        if is_const(a, 0):
            return a
        if is_const(b, 0):
            return b
    if op == "and":
        if is_const(b, -1):
            return a
        if is_const(a, -1):
            return b
        if is_const(a, 0):
            return a
        if is_const(b, 0):
            return b
    if op in ("shl", "lshr", "ashr") and is_const(b, 0):
        return a
    if op in ("udiv", "sdiv") and is_const(b, 1):
        return a
    if op == "fmul" and is_const(b, 1.0):
        return a
    if op == "fadd" and is_const(b, 0.0):
        return a
    return None
