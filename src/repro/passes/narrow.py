"""Integer narrowing (demanded-width shrinking).

C's integer promotions make byte/short kernels compute in i32; LLVM's
InstCombine undoes this by re-evaluating truncated expression trees at a
narrower width ("evaluateInDifferentType").  Without this, a SIMD kernel
that touches u8 data widens every vector op 4×, which is why the pass is
load-bearing for the Figure 5 comparison: the paper's Parsimony relies on
LLVM's standard scalar pipeline doing exactly this cleanup.

Legality here is *range-exactness*: an expression tree rooted at a
``trunc`` (or an ``icmp`` whose operands are extensions) may be evaluated
at width ``w`` when every intermediate value's integer range — computed
from the extension leaves — fits in ``w`` (signed if any value can be
negative).  Exact ranges make every supported operator (including shifts,
min/max and compares) produce identical results at the narrow width.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.instructions import Instruction
from ..ir.module import Function
from ..ir.types import I1, IntType, Type, VectorType
from ..ir.values import Constant, Value


def _elem(t: Type):
    """Integer element type of a scalar or vector type, else None."""
    if isinstance(t, VectorType):
        t = t.elem
    return t if isinstance(t, IntType) else None


def _retype(t: Type, bits: int) -> Type:
    """Same shape as ``t`` with ``bits``-wide integer elements."""
    if isinstance(t, VectorType):
        return VectorType(IntType(bits), t.count)
    return IntType(bits)

__all__ = ["narrow_ints"]

_RANGE_OPS = frozenset(
    """add sub mul and or xor shl lshr ashr
       smin smax umin umax iabs select""".split()
)

_MAX_TREE = 64


def narrow_ints(function: Function) -> bool:
    changed = False
    for block in function.blocks:
        for instr in list(block.instructions):
            if instr.opcode == "trunc" and _elem(instr.type) is not None:
                changed |= _narrow_trunc(function, instr)
            elif instr.opcode == "icmp":
                changed |= _narrow_icmp(function, instr)
    return changed


# ---------------------------------------------------------------------------- ranges


def _range_of(value: Value, cache: Dict, depth: int = 0) -> Optional[Tuple[int, int]]:
    """Exact integer range of ``value`` (as a mathematical integer), or None."""
    if depth > 12:
        return None
    cached = cache.get(value)
    if cached is not Ellipsis and value in cache:
        return cached
    result = _compute_range(value, cache, depth)
    cache[value] = result
    return result


def _compute_range(value: Value, cache: Dict, depth: int):
    if isinstance(value, Constant) and _elem(value.type) is not None:
        v = value.as_signed()
        if isinstance(v, tuple):
            return (min(v), max(v)) if v else None
        return (v, v)
    if not isinstance(value, Instruction):
        return None
    op = value.opcode
    if op == "zext":
        src = value.operands[0]
        inner = _range_of(src, cache, depth + 1)
        if inner is not None and inner[0] >= 0:
            return inner
        bits = src.type.bits
        return (0, (1 << bits) - 1)
    if op == "sext":
        src = value.operands[0]
        inner = _range_of(src, cache, depth + 1)
        if inner is not None:
            return inner
        bits = src.type.bits
        return (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
    if op not in _RANGE_OPS:
        return None
    if op == "select":
        a = _range_of(value.operands[1], cache, depth + 1)
        b = _range_of(value.operands[2], cache, depth + 1)
        if a is None or b is None:
            return None
        return (min(a[0], b[0]), max(a[1], b[1]))
    if op == "iabs":
        a = _range_of(value.operands[0], cache, depth + 1)
        if a is None:
            return None
        lo = 0 if a[0] <= 0 <= a[1] else min(abs(a[0]), abs(a[1]))
        return (lo, max(abs(a[0]), abs(a[1])))

    a = _range_of(value.operands[0], cache, depth + 1)
    b = _range_of(value.operands[1], cache, depth + 1)
    if a is None or b is None:
        return None
    if op == "add":
        return (a[0] + b[0], a[1] + b[1])
    if op == "sub":
        return (a[0] - b[1], a[1] - b[0])
    if op == "mul":
        corners = [x * y for x in a for y in b]
        return (min(corners), max(corners))
    if op in ("and", "or", "xor"):
        if a[0] < 0 or b[0] < 0:
            return None
        hi = max(a[1], b[1])
        bound = (1 << hi.bit_length()) - 1
        if op == "and":
            return (0, min(a[1], b[1]))
        return (0, bound)
    if op in ("shl", "lshr", "ashr"):
        if not isinstance(value.operands[1], Constant):
            return None
        k = value.operands[1].value
        if isinstance(k, tuple):  # splat vector shift amount
            if len(set(k)) != 1:
                return None
            k = k[0]
        if op == "shl":
            return (a[0] << k, a[1] << k)
        if a[0] < 0 and op == "lshr":
            return None  # logical shift of negatives is width-dependent
        return (a[0] >> k, a[1] >> k)
    if op in ("smin", "umin"):
        if op == "umin" and (a[0] < 0 or b[0] < 0):
            return None
        return (min(a[0], b[0]), min(a[1], b[1]))
    if op in ("smax", "umax"):
        if op == "umax" and (a[0] < 0 or b[0] < 0):
            return None
        return (max(a[0], b[0]), max(a[1], b[1]))
    return None


def _fits_unsigned(r: Tuple[int, int], bits: int) -> bool:
    return r[0] >= 0 and r[1] < (1 << bits)


def _fits_signed(r: Tuple[int, int], bits: int) -> bool:
    return -(1 << (bits - 1)) <= r[0] and r[1] < (1 << (bits - 1))


def _fits(r: Tuple[int, int], bits: int) -> bool:
    """Representable at ``bits`` under at least one interpretation."""
    return _fits_unsigned(r, bits) or _fits_signed(r, bits)


def _tree_fits(value: Value, bits: int, cache: Dict, seen: set) -> bool:
    """Every node of the tree is exactly representable at ``bits``, with
    sign-sensitive operators (smin/smax, shifts, umin/umax) additionally
    requiring operands whose *interpretation* at the narrow width is exact
    (the rebuilder flips smin→umin / ashr→lshr for non-negative trees)."""
    if len(seen) > _MAX_TREE:
        return False
    if isinstance(value, Constant):
        r = _range_of(value, cache)
        return r is not None and _fits(r, bits)
    if not isinstance(value, Instruction):
        return False
    if value in seen:
        return True
    r = _range_of(value, cache)
    if r is None or not _fits(r, bits):
        return False
    seen.add(value)
    op = value.opcode
    if op in ("zext", "sext"):
        src_elem = _elem(value.operands[0].type)
        return src_elem is not None and src_elem.bits <= bits
    if op == "select":
        return (
            _tree_fits(value.operands[1], bits, cache, seen)
            and _tree_fits(value.operands[2], bits, cache, seen)
        )
    if op not in _RANGE_OPS:
        return False

    def operand_range(idx):
        return _range_of(value.operands[idx], cache)

    if op in ("smin", "smax", "umin", "umax"):
        ra, rb = operand_range(0), operand_range(1)
        if ra is None or rb is None:
            return False
        both_unsigned = _fits_unsigned(ra, bits) and _fits_unsigned(rb, bits)
        both_signed = _fits_signed(ra, bits) and _fits_signed(rb, bits)
        if op in ("umin", "umax") and not both_unsigned:
            return False
        if op in ("smin", "smax") and not (both_unsigned or both_signed):
            return False
        return _tree_fits(value.operands[0], bits, cache, seen) and _tree_fits(
            value.operands[1], bits, cache, seen
        )
    if op in ("lshr", "ashr"):
        ra = operand_range(0)
        if ra is None:
            return False
        if op == "lshr" and not _fits_unsigned(ra, bits):
            return False
        if op == "ashr" and not (_fits_unsigned(ra, bits) or _fits_signed(ra, bits)):
            return False
        return _tree_fits(value.operands[0], bits, cache, seen)
    if op == "shl":
        return _tree_fits(value.operands[0], bits, cache, seen)
    return all(_tree_fits(o, bits, cache, seen) for o in value.operands)


# ---------------------------------------------------------------------------- rebuild


class _Narrower:
    def __init__(self, function: Function, bits: int, cache: Dict):
        self.function = function
        self.bits = bits
        self.cache = cache  # range cache from the legality check
        self.built: Dict[Value, Value] = {}

    def _type_for(self, value: Value) -> Type:
        return _retype(value.type, self.bits)

    def build(self, value: Value) -> Value:
        cached = self.built.get(value)
        if cached is not None:
            return cached
        result = self._build(value)
        self.built[value] = result
        return result

    def _build(self, value: Value) -> Value:
        if isinstance(value, Constant):
            payload = value.as_signed()
            return Constant(self._type_for(value), payload)
        assert isinstance(value, Instruction)
        op = value.opcode
        if op in ("zext", "sext"):
            src = value.operands[0]
            if _elem(src.type).bits == self.bits:
                return src
            new = Instruction(
                op, self._type_for(value), [src], self.function.unique_name(value.name)
            )
            self._insert_after(value, new)
            return new
        if op == "select":
            operands = [value.operands[0], self.build(value.operands[1]), self.build(value.operands[2])]
        elif op in ("shl", "lshr", "ashr"):
            operands = [
                self.build(value.operands[0]),
                Constant(self._type_for(value.operands[1]), value.operands[1].as_signed()),
            ]
        else:
            operands = [self.build(o) for o in value.operands]
        # Sign-sensitive ops flip to their unsigned forms when the narrow
        # interpretation is unsigned (the legality check guaranteed one of
        # the interpretations is exact).
        if op in ("smin", "smax", "ashr"):
            ra = _range_of(value.operands[0], self.cache)
            rb = _range_of(value.operands[1], self.cache) if op != "ashr" else ra
            if ra is not None and rb is not None:
                if not (_fits_signed(ra, self.bits) and _fits_signed(rb, self.bits)):
                    op = {"smin": "umin", "smax": "umax", "ashr": "lshr"}[op]
        new = Instruction(
            op, self._type_for(value), operands,
            self.function.unique_name(value.name), dict(value.attrs),
        )
        self._insert_after(value, new)
        return new

    def _insert_after(self, anchor: Instruction, new: Instruction) -> None:
        block = anchor.parent
        block.insert(block.instructions.index(anchor) + 1, new)


def _narrow_trunc(function: Function, trunc: Instruction) -> bool:
    dst_bits = _elem(trunc.type).bits
    root = trunc.operands[0]
    root_elem = _elem(root.type) if isinstance(root, Instruction) else None
    if root_elem is None or root_elem.bits <= dst_bits:
        return False
    for width in (dst_bits, 16, 32):
        if width < dst_bits or width >= root_elem.bits:
            continue
        cache: Dict = {}
        if _tree_fits(root, width, cache, set()) or (
            width == dst_bits and _tree_fits_mod(root, width, set())
        ):
            narrower = _Narrower(function, width, cache)
            narrow_root = narrower.build(root)
            if width == dst_bits:
                trunc.replace_all_uses_with(narrow_root)
                trunc.erase()
            else:
                trunc.set_operand(0, narrow_root)
            return True
    return False


_MOD_OPS = frozenset("add sub mul and or xor shl".split())


def _tree_fits_mod(value: Value, bits: int, seen: set) -> bool:
    """Wrap-agnostic check: ops whose low ``bits`` depend only on operand
    low bits can always be evaluated at the final width."""
    if len(seen) > _MAX_TREE:
        return False
    if isinstance(value, Constant):
        return True
    if not isinstance(value, Instruction):
        return False
    if value in seen:
        return True
    seen.add(value)
    if value.opcode in ("zext", "sext"):
        src_elem = _elem(value.operands[0].type)
        return src_elem is not None and src_elem.bits <= bits
    if value.opcode == "select":
        return _tree_fits_mod(value.operands[1], bits, seen) and _tree_fits_mod(
            value.operands[2], bits, seen
        )
    if value.opcode in _MOD_OPS:
        if value.opcode == "shl":
            return isinstance(value.operands[1], Constant) and _tree_fits_mod(
                value.operands[0], bits, seen
            )
        return all(_tree_fits_mod(o, bits, seen) for o in value.operands)
    return False


def _narrow_icmp(function: Function, icmp: Instruction) -> bool:
    a, b = icmp.operands
    a_elem = _elem(a.type)
    if a_elem is None or a_elem == I1:
        return False
    cache: Dict = {}
    ra = _range_of(a, cache)
    rb = _range_of(b, cache)
    if ra is None or rb is None:
        return False
    pred0 = icmp.attrs["pred"]
    if pred0 in ("ult", "ule", "ugt", "uge") and (ra[0] < 0 or rb[0] < 0):
        return False
    for width in (8, 16, 32):
        if width >= a_elem.bits:
            return False
        if not (_fits(ra, width) and _fits(rb, width)):
            continue
        if not (
            _tree_fits(a, width, cache, set()) and _tree_fits(b, width, cache, set())
        ):
            continue
        narrower = _Narrower(function, width, cache)
        na, nb = narrower.build(a), narrower.build(b)
        pred = icmp.attrs["pred"]
        if ra[0] >= 0 and rb[0] >= 0:
            pred = {"slt": "ult", "sle": "ule", "sgt": "ugt", "sge": "uge"}.get(pred, pred)
        new = Instruction("icmp", icmp.type, [na, nb], function.unique_name(icmp.name), {"pred": pred})
        block = icmp.parent
        block.insert(block.instructions.index(icmp), new)
        icmp.replace_all_uses_with(new)
        icmp.erase()
        return True
    return False
