"""mem2reg: promote stack allocas to SSA registers.

The front-end lowers every local variable to an ``alloca`` plus loads and
stores (the classic Clang strategy); this pass rewrites promotable allocas
into SSA form using the standard Cytron et al. algorithm (phi insertion at
iterated dominance frontiers + renaming along the dominator tree).

Shape analysis in the Parsimony vectorizer runs on SSA values, so this
pass is a prerequisite for good vector code — exactly as in the paper's
LLVM pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.cfg import DominatorTree, dominance_frontiers
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function
from ..ir.values import UndefValue, Value

__all__ = ["mem2reg", "promotable_allocas"]


def promotable_allocas(function: Function) -> List[Instruction]:
    """Allocas whose address never escapes: only direct scalar load/store."""
    result = []
    for instr in function.entry.instructions:
        if instr.opcode != "alloca" or instr.attrs.get("count", 1) != 1:
            continue
        ok = True
        for user, idx in instr.uses:
            if user.opcode == "load":
                continue
            if user.opcode == "store" and idx == 1:
                continue  # address operand of a store is fine; stored value is not
            ok = False
            break
        if ok:
            result.append(instr)
    return result


def mem2reg(function: Function) -> bool:
    allocas = promotable_allocas(function)
    if not allocas:
        return False

    dt = DominatorTree(function)
    frontiers = dominance_frontiers(dt)
    reachable = set(dt.rpo)

    # 1. Insert (empty) phis at iterated dominance frontiers of stores.
    phis: Dict[Instruction, Instruction] = {}  # phi -> alloca
    for alloca in allocas:
        def_blocks: Set[BasicBlock] = {
            user.parent
            for user, _ in alloca.uses
            if user.opcode == "store" and user.parent in reachable
        }
        worklist = list(def_blocks)
        placed: Set[BasicBlock] = set()
        while worklist:
            block = worklist.pop()
            for frontier in frontiers.get(block, ()):
                if frontier in placed:
                    continue
                placed.add(frontier)
                phi = Instruction(
                    "phi",
                    alloca.type.pointee,
                    [],
                    function.unique_name(alloca.name + ".phi"),
                )
                frontier.insert(0, phi)
                phis[phi] = alloca
                if frontier not in def_blocks:
                    worklist.append(frontier)

    # 2. Rename: walk the dominator tree, tracking the live value per alloca.
    to_erase: List[Instruction] = []

    def rename(block: BasicBlock, incoming: Dict[Instruction, Value]) -> None:
        incoming = dict(incoming)
        for instr in list(block.instructions):
            if instr.opcode == "phi" and instr in phis:
                incoming[phis[instr]] = instr
            elif instr.opcode == "load" and instr.operands[0] in allocas:
                alloca = instr.operands[0]
                value = incoming.get(alloca)
                if value is None:
                    value = UndefValue(alloca.type.pointee)
                instr.replace_all_uses_with(value)
                to_erase.append(instr)
            elif instr.opcode == "store" and instr.operands[1] in allocas:
                incoming[instr.operands[1]] = instr.operands[0]
                to_erase.append(instr)
        for succ in block.successors:
            for phi in succ.phis():
                alloca = phis.get(phi)
                if alloca is None:
                    continue
                value = incoming.get(alloca)
                if value is None:
                    value = UndefValue(alloca.type.pointee)
                phi.append_operand(value)
                phi.append_operand(block)
        for child in dt.children.get(block, ()):
            rename(child, incoming)

    rename(function.entry, {})

    for instr in to_erase:
        instr.erase()
    for alloca in allocas:
        if not alloca.uses:
            alloca.erase()

    # Prune phis that ended up trivial (all-same or only-undef incoming).
    _prune_trivial_phis(function)
    return True


def _prune_trivial_phis(function: Function) -> None:
    changed = True
    while changed:
        changed = False
        dt = DominatorTree(function)
        for block in function.blocks:
            for phi in list(block.phis()):
                values = {v for v, _ in phi.phi_incoming() if v is not phi}
                concrete = {v for v in values if not isinstance(v, UndefValue)}
                if len(concrete) == 1:
                    (only,) = concrete
                    # With undef-mix incoming, the survivor must dominate the
                    # phi or SSA dominance breaks (the undef edges are paths
                    # on which `only` never executes).
                    if len(values) > 1 and isinstance(only, Instruction):
                        if only.parent is None or not dt.strictly_dominates(
                            only.parent, block
                        ):
                            continue
                    phi.replace_all_uses_with(only)
                    phi.erase()
                    changed = True
                elif not concrete and values:
                    undef = next(iter(values))
                    phi.replace_all_uses_with(undef)
                    phi.erase()
                    changed = True
