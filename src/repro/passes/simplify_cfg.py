"""CFG simplification: constant-fold branches, remove unreachable blocks,
thread trivial forwarding blocks, and merge straight-line block pairs."""

from __future__ import annotations

from typing import List

from ..ir.cfg import reverse_postorder
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function
from ..ir.values import Constant

__all__ = ["simplify_cfg", "remove_unreachable_blocks"]


def simplify_cfg(function: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        progress |= _fold_constant_branches(function)
        progress |= remove_unreachable_blocks(function)
        progress |= _merge_straightline_blocks(function)
        progress |= _thread_empty_forwarders(function)
        changed |= progress
    return changed


def _thread_empty_forwarders(function: Function) -> bool:
    """Redirect edges through blocks that contain only ``br X``."""
    changed = False
    for block in list(function.blocks):
        if block is function.entry or len(block.instructions) != 1:
            continue
        term = block.terminator
        if term is None or term.opcode != "br":
            continue
        target = term.operands[0]
        if target is block:
            continue
        preds = block.predecessors
        if not preds:
            continue
        # Don't thread when the target has phis: redirected edges would
        # need new incoming entries (and may duplicate existing preds).
        if target.phis():
            continue
        for pred in preds:
            pterm = pred.terminator
            for idx, op in enumerate(pterm.operands):
                if op is block and (pterm.opcode == "br" or idx in (1, 2)):
                    pterm.set_operand(idx, target)
        changed = True
    return changed


def _fold_constant_branches(function: Function) -> bool:
    changed = False
    for block in function.blocks:
        term = block.terminator
        if term is None or term.opcode != "condbr":
            continue
        cond = term.operands[0]
        if isinstance(cond, Constant):
            taken = term.operands[1] if cond.value else term.operands[2]
            dead = term.operands[2] if cond.value else term.operands[1]
            if dead is not taken:
                _remove_phi_edges(dead, block)
            term.drop_operands()
            term.parent = None
            block.instructions.pop()
            block.append(Instruction("br", term.type, [taken]))
            changed = True
        elif term.operands[1] is term.operands[2]:
            target = term.operands[1]
            term.drop_operands()
            term.parent = None
            block.instructions.pop()
            block.append(Instruction("br", term.type, [target]))
            changed = True
    return changed


def remove_unreachable_blocks(function: Function) -> bool:
    reachable = set(reverse_postorder(function))
    dead = [b for b in function.blocks if b not in reachable]
    if not dead:
        return False
    dead_set = set(dead)
    # First remove phi edges coming from dead blocks.
    for block in function.blocks:
        if block in dead_set:
            continue
        for phi in block.phis():
            for pred in list(b for _, b in phi.phi_incoming()):
                if pred in dead_set:
                    _remove_phi_edge(phi, pred)
    # Clear instructions in dead blocks, then delete.  Uses are cleared for
    # *all* dead instructions first: dead code may be mutually referential
    # across blocks, so operand unlinking must tolerate already-cleared
    # use lists.
    for block in dead:
        for instr in block.instructions:
            instr.uses = []
    for block in dead:
        for instr in block.instructions:
            for idx, op in enumerate(instr._operands):
                entry = (instr, idx)
                if entry in op.uses:
                    op.uses.remove(entry)
            instr._operands = []
        block.instructions = []
        function.blocks.remove(block)
        block.parent = None
    return True


def _merge_straightline_blocks(function: Function) -> bool:
    changed = False
    for block in list(function.blocks):
        succs = block.successors
        if len(succs) != 1:
            continue
        succ = succs[0]
        if succ is block or succ is function.entry:
            continue
        if len(succ.predecessors) != 1:
            continue
        if succ.phis():
            for phi in list(succ.phis()):
                phi.replace_all_uses_with(phi.phi_value_for(block))
                phi.erase()
        # Remove block's terminator, splice succ's instructions in.
        term = block.instructions.pop()
        term.drop_operands()
        term.parent = None
        for instr in succ.instructions:
            instr.parent = block
            block.instructions.append(instr)
        succ.instructions = []
        succ.replace_all_uses_with(block)
        function.blocks.remove(succ)
        succ.parent = None
        changed = True
    return changed


def _remove_phi_edges(block: BasicBlock, pred: BasicBlock) -> None:
    for phi in block.phis():
        _remove_phi_edge(phi, pred)


def _remove_phi_edge(phi: Instruction, pred: BasicBlock) -> None:
    ops = list(phi.operands)
    phi.drop_operands()
    for i in range(0, len(ops), 2):
        if ops[i + 1] is not pred:
            phi.append_operand(ops[i])
            phi.append_operand(ops[i + 1])
