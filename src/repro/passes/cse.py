"""Common subexpression elimination (dominator-scoped value numbering).

Pure instructions (arithmetic, compares, casts, geps, selects) with
identical opcode/attrs/operands are unified when one dominates the other.
Besides shrinking code, this canonicalization is what lets the
auto-vectorizer's if-converter recognize that both sides of a diamond
store to *the same* address instruction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.cfg import DominatorTree
from ..ir.instructions import CAST_OPS, FLOAT_BINOPS, INT_BINOPS, Instruction, UNARY_OPS
from ..ir.module import BasicBlock, Function

__all__ = ["cse"]

_PURE = (
    INT_BINOPS | FLOAT_BINOPS | UNARY_OPS | CAST_OPS
    | {"icmp", "fcmp", "select", "gep", "fma", "broadcast", "extractelement",
       "insertelement", "shuffle", "shuffle2", "sad",
       "reduce_add", "reduce_min_s", "reduce_min_u", "reduce_max_s",
       "reduce_max_u", "reduce_and", "reduce_or", "mask_any", "mask_all"}
)


def _key(instr: Instruction) -> Tuple:
    operands = tuple(id(op) for op in instr.operands)
    attrs = tuple(sorted(instr.attrs.items())) if instr.attrs else ()
    return (instr.opcode, instr.type, operands, attrs)


def cse(function: Function) -> bool:
    changed = False
    dt = DominatorTree(function)
    available: Dict[Tuple, Instruction] = {}

    def visit(block: BasicBlock, scope: Dict[Tuple, Instruction]) -> None:
        nonlocal changed
        scope = dict(scope)
        for instr in list(block.instructions):
            if instr.opcode not in _PURE or instr.type.is_void:
                continue
            key = _key(instr)
            existing = scope.get(key)
            if existing is not None:
                instr.replace_all_uses_with(existing)
                instr.erase()
                changed = True
            else:
                scope[key] = instr
        for child in dt.children.get(block, ()):
            visit(child, scope)

    visit(function.entry, available)
    return changed
