"""Function inlining.

The Parsimony flow relies on inlining in two places (paper §4.1, §4.2.3):
the outlined SPMD region functions are re-inlined into the gang loop after
vectorization to avoid call overhead, and scalar helper functions called
*inside* SPMD regions must be inlined before vectorization or else the
vectorizer will serialize the call per active lane.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import UndefValue, Value
from .clone import clone_blocks

__all__ = ["inline_call", "inline_module_calls", "inline_function_calls"]


def inline_call(call: Instruction) -> bool:
    """Inline one ``call`` instruction whose callee is a ``Function``.

    Returns False (and leaves the IR untouched) for externals, indirect
    calls, or self-recursion.
    """
    callee = call.operands[0]
    caller = call.parent.parent
    if not isinstance(callee, Function) or callee is caller or not callee.blocks:
        return False

    head = call.parent
    at = head.instructions.index(call)

    # Split the block: everything after the call moves to `cont`.
    cont = caller.add_block(head.name + ".cont")
    tail = head.instructions[at + 1 :]
    head.instructions = head.instructions[:at]  # drop call + tail for now
    for instr in tail:
        instr.parent = cont
        cont.instructions.append(instr)
    # Successor phis that named `head` as predecessor now come from `cont`.
    for succ in [i for i in (cont.successors or [])]:
        for phi in succ.phis():
            for idx, op in enumerate(phi.operands):
                if op is head:
                    phi.set_operand(idx, cont)

    # Clone the callee body.
    value_map: Dict[Value, Value] = dict(zip(callee.args, call.operands[1:]))
    block_map = clone_blocks(callee.blocks, caller, value_map, name_suffix=".i")

    # Branch from head into the cloned entry.
    head.append(Instruction("br", _void(), [block_map[callee.entry]]))

    # Rewrite cloned rets into branches to cont, collecting return values.
    returns = []
    for block in block_map.values():
        term = block.terminator
        if term is not None and term.opcode == "ret":
            if term.operands:
                returns.append((term.operands[0], block))
            term.drop_operands()
            term.parent = None
            block.instructions.pop()
            block.append(Instruction("br", _void(), [cont]))

    # Replace the call's value with the (possibly phi-merged) return value.
    call.parent = None
    if not call.type.is_void:
        if len(returns) == 1:
            result = returns[0][0]
        elif returns:
            phi = Instruction("phi", call.type, [], caller.unique_name("retval"))
            for value, block in returns:
                phi.append_operand(value)
                phi.append_operand(block)
            cont.insert(0, phi)
            result = phi
        else:
            result = UndefValue(call.type)
        call.replace_all_uses_with(result)
    call.drop_operands()

    # Hoist cloned allocas to the caller entry so mem2reg can promote them.
    entry = caller.entry
    for block in block_map.values():
        for instr in [i for i in block.instructions if i.opcode == "alloca"]:
            block.instructions.remove(instr)
            instr.parent = entry
            entry.instructions.insert(0, instr)

    # Keep block order roughly topological: move cont after the clones.
    caller.blocks.remove(cont)
    caller.blocks.append(cont)
    return True


def _void():
    from ..ir.types import VOID

    return VOID


def _is_recursive(callee: Function) -> bool:
    return any(
        instr.opcode == "call" and instr.operands[0] is callee
        for instr in callee.instructions()
    )


def inline_function_calls(function: Function, should_inline=None) -> bool:
    """Inline eligible call sites within ``function`` (bottom-up, one sweep).

    Recursive callees are never inlined (unbounded growth), and total
    inlining per caller is capped as a safety valve."""
    should_inline = should_inline or _default_heuristic
    changed = True
    any_change = False
    budget = 200
    while changed and budget > 0:
        changed = False
        for block in list(function.blocks):
            for instr in list(block.instructions):
                if instr.opcode != "call":
                    continue
                callee = instr.operands[0]
                if (
                    isinstance(callee, Function)
                    and should_inline(callee)
                    and not _is_recursive(callee)
                ):
                    if inline_call(instr):
                        changed = True
                        any_change = True
                        budget -= 1
                        break
            if changed:
                break
    return any_change


def inline_module_calls(module: Module, should_inline=None) -> bool:
    changed = False
    for function in module.functions.values():
        changed |= inline_function_calls(function, should_inline)
    return changed


def _default_heuristic(callee: Function) -> bool:
    if callee.attrs.get("noinline"):
        return False
    if callee.attrs.get("always_inline"):
        return True
    size = sum(len(b.instructions) for b in callee.blocks)
    return size <= 80
