"""Loop-invariant code motion.

Hoists pure instructions whose operands are loop-invariant into the loop
preheader.  After the vectorized SPMD region function is re-inlined into
its gang loop (§4.1), this is what lifts broadcast/splat setup and other
per-gang-constant work out of the per-gang iteration — the same division
of labour as LLVM's inline + LICM cleanup.
"""

from __future__ import annotations

from ..ir.cfg import Loop, find_loops
from ..ir.instructions import CAST_OPS, FLOAT_BINOPS, INT_BINOPS, Instruction, UNARY_OPS
from ..ir.module import Function
from ..ir.values import Value
from .loop_simplify import loop_simplify

__all__ = ["licm"]

_HOISTABLE = (
    INT_BINOPS | FLOAT_BINOPS | UNARY_OPS | CAST_OPS
    | {"icmp", "fcmp", "select", "gep", "fma", "broadcast", "shuffle",
       "shuffle2", "extractelement", "insertelement", "sad", "mask_any",
       "mask_all", "mask_popcnt"}
) - {"sdiv", "udiv", "srem", "urem", "fdiv", "frem"}  # may trap if loop runs 0 times


def licm(function: Function) -> bool:
    loop_simplify(function)
    changed = False
    # Process outermost loops last so code migrates as far out as possible.
    for loop in sorted(find_loops(function), key=lambda l: -l.depth):
        changed |= _hoist_loop(loop)
    return changed


def _hoist_loop(loop: Loop) -> bool:
    preheader = loop.preheader
    if preheader is None:
        return False
    changed = False
    progress = True
    while progress:
        progress = False
        for block in list(loop.blocks):
            for instr in list(block.instructions):
                if instr.opcode not in _HOISTABLE or instr.type.is_void:
                    continue
                if not all(_invariant(op, loop) for op in instr.operands):
                    continue
                block.instructions.remove(instr)
                insert_at = len(preheader.instructions) - 1  # before terminator
                preheader.instructions.insert(insert_at, instr)
                instr.parent = preheader
                progress = True
                changed = True
    return changed


def _invariant(value: Value, loop: Loop) -> bool:
    if not isinstance(value, Instruction):
        return True  # constants, arguments, globals
    return value.parent not in loop.blocks
