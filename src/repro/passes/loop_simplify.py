"""Loop canonicalization (LLVM's loop-simplify).

Ensures every natural loop has a dedicated *preheader* (unique out-of-loop
predecessor of the header), a unique *latch* (single in-loop edge back to
the header), and *dedicated exits* (exit blocks whose predecessors are all
inside the loop).  The Parsimony vectorizer's mask computation (§4.2.1)
assumes this canonical form: the loop entry mask lives in the preheader,
the live mask is recomputed at the single latch, and per-exit masks steer
the dedicated exit blocks.
"""

from __future__ import annotations

from typing import List

from ..ir.cfg import Loop, find_loops
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function
from ..ir.types import VOID

__all__ = ["loop_simplify"]


def loop_simplify(function: Function) -> bool:
    changed = False
    # Recompute loops after each structural change batch.
    progress = True
    while progress:
        progress = False
        for loop in find_loops(function):
            if _ensure_preheader(function, loop):
                progress = True
                break
            if _ensure_single_latch(function, loop):
                progress = True
                break
            if _ensure_dedicated_exits(function, loop):
                progress = True
                break
        changed |= progress
    return changed


def _redirect_edges(
    function: Function, target: BasicBlock, preds: List[BasicBlock], name: str
) -> BasicBlock:
    """Insert a new block between ``preds`` and ``target``; returns it."""
    mid = function.add_block(name, before=target)
    mid.append(Instruction("br", VOID, [target]))

    # Re-point the chosen predecessor edges at `mid`.
    for pred in preds:
        term = pred.terminator
        for idx, op in enumerate(term.operands):
            if op is target and (term.opcode == "br" or idx in (1, 2)):
                term.set_operand(idx, mid)

    # Split phis: `mid` takes the incoming values from `preds` (merged into
    # a new phi in `mid` if they differ), `target` keeps the rest.
    for phi in target.phis():
        moved = [(v, b) for v, b in phi.phi_incoming() if b in preds]
        kept = [(v, b) for v, b in phi.phi_incoming() if b not in preds]
        if not moved:
            continue
        if len({id(v) for v, _ in moved}) == 1:
            merged_value = moved[0][0]
        else:
            merged = Instruction("phi", phi.type, [], function.unique_name(phi.name + ".m"))
            mid.insert(0, merged)
            for v, b in moved:
                merged.append_operand(v)
                merged.append_operand(b)
            merged_value = merged
        phi.drop_operands()
        for v, b in kept:
            phi.append_operand(v)
            phi.append_operand(b)
        phi.append_operand(merged_value)
        phi.append_operand(mid)
    return mid


def _ensure_preheader(function: Function, loop: Loop) -> bool:
    outside = [p for p in loop.header.predecessors if p not in loop.blocks]
    if len(outside) == 1 and outside[0].successors == [loop.header]:
        return False
    _redirect_edges(function, loop.header, outside, loop.header.name + ".pre")
    return True


def _ensure_single_latch(function: Function, loop: Loop) -> bool:
    latches = loop.latches
    if len(latches) == 1 and latches[0].successors == [loop.header]:
        return False
    latch = _redirect_edges(function, loop.header, latches, loop.header.name + ".latch")
    loop.blocks.add(latch)
    return True


def _ensure_dedicated_exits(function: Function, loop: Loop) -> bool:
    changed = False
    for exit_block in loop.exit_blocks():
        preds = exit_block.predecessors
        inside = [p for p in preds if p in loop.blocks]
        if len(inside) == len(preds) and len(inside) == 1:
            continue
        # Either the exit has outside predecessors, or several in-loop ones:
        # give each in-loop edge its own dedicated exit block.
        if len(inside) < len(preds):
            _redirect_edges(
                function, exit_block, inside, exit_block.name + ".dedexit"
            )
            return True
        if len(inside) > 1:
            for pred in inside[1:]:
                _redirect_edges(
                    function, exit_block, [pred], exit_block.name + ".dedexit"
                )
                return True
    return changed
