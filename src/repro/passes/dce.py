"""Dead code elimination: remove unused, side-effect-free instructions."""

from __future__ import annotations

from ..ir.module import Function

__all__ = ["dce"]


def dce(function: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in function.blocks:
            for instr in reversed(list(block.instructions)):
                if instr.uses or instr.has_side_effects or instr.is_terminator:
                    continue
                instr.erase()
                progress = True
                changed = True
    return changed
