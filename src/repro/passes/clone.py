"""IR cloning utilities, shared by the inliner, the SPMD outliner, and the
vectorizers (which clone a scalar function body before transforming it)."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, ExternalFunction, Function, Module
from ..ir.values import Constant, UndefValue, Value

__all__ = ["clone_blocks", "clone_function", "clone_module"]


def clone_blocks(
    source_blocks: List[BasicBlock],
    target: Function,
    value_map: Dict[Value, Value],
    name_suffix: str = "",
) -> Dict[BasicBlock, BasicBlock]:
    """Clone ``source_blocks`` into ``target``.

    ``value_map`` maps source values (typically arguments) to target values
    and is extended in place with every cloned instruction and block.
    Returns the source→clone block mapping.
    """
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in source_blocks:
        clone = target.add_block(block.name + name_suffix)
        block_map[block] = clone
        value_map[block] = clone

    fixups: List[Instruction] = []
    for block in source_blocks:
        clone = block_map[block]
        for instr in block.instructions:
            operands = []
            needs_fixup = False
            for op in instr.operands:
                mapped = value_map.get(op, op)
                if isinstance(op, Instruction) and op not in value_map:
                    needs_fixup = True  # forward reference (via phi)
                operands.append(mapped)
            new = Instruction(
                instr.opcode,
                instr.type,
                operands,
                target.unique_name(instr.name or instr.opcode),
                dict(instr.attrs),
            )
            clone.instructions.append(new)
            new.parent = clone
            value_map[instr] = new
            if needs_fixup:
                fixups.append(instr)

    # Second pass: patch forward references now that everything is mapped.
    for source in fixups:
        clone = value_map[source]
        for idx, op in enumerate(source.operands):
            mapped = value_map.get(op, op)
            if clone.operands[idx] is not mapped:
                clone.set_operand(idx, mapped)
    return block_map


def clone_function(source: Function, new_name: str, module=None) -> Function:
    """Deep-copy a whole function (same signature), optionally adding it to
    ``module``."""
    clone = Function(new_name, source.ftype, [a.name for a in source.args])
    clone.attrs = dict(source.attrs)
    clone.spmd = source.spmd
    value_map: Dict[Value, Value] = dict(zip(source.args, clone.args))
    clone_blocks(source.blocks, clone, value_map)
    if module is not None:
        module.add_function(clone)
    return clone


def clone_module(source: Module, name: Optional[str] = None) -> Module:
    """Deep-copy a whole module into a fresh, fully disjoint one.

    Every ``Value`` with def-use bookkeeping — functions, externals,
    constants, undefs, arguments, instructions, blocks — is freshly
    created, so passes mutating the clone can never corrupt ``source``
    (the property the driver's compile cache relies on).  Immutable
    payloads (types, ``SpmdInfo``, external ``impl`` callables) are
    shared.
    """
    clone = Module(name if name is not None else source.name)
    value_map: Dict[Value, Value] = {}
    for ext in source.externals.values():
        new_ext = ExternalFunction(ext.name, ext.ftype, ext.impl, ext.cost)
        clone.add_external(new_ext)
        value_map[ext] = new_ext
    # Function shells first so cross-function calls resolve either way.
    shells: List[tuple] = []
    for func in source.functions.values():
        shell = Function(func.name, func.ftype, [a.name for a in func.args])
        shell.attrs = dict(func.attrs)
        shell.spmd = func.spmd
        clone.add_function(shell)
        value_map[func] = shell
        for src_arg, dst_arg in zip(func.args, shell.args):
            value_map[src_arg] = dst_arg
        shells.append((func, shell))
    for func, shell in shells:
        # Fresh constants/undefs per clone: ``clone_blocks`` falls back to
        # sharing unmapped operands, which would thread the clone's uses
        # into the source module's Constant objects.
        for instr in func.instructions():
            for op in instr.operands:
                if op in value_map:
                    continue
                if isinstance(op, Constant):
                    value_map[op] = Constant(op.type, op.value)
                elif isinstance(op, UndefValue):
                    value_map[op] = UndefValue(op.type, op.name)
        clone_blocks(func.blocks, shell, value_map)
    clone.attrs = dict(source.attrs)
    # The gang-batching layer stashes its unbatched twin under
    # ``batch_fallback``; the clone must get its own disjoint copy so a
    # trap replay on the clone can never touch the source's fallback.
    fallback = clone.attrs.get("batch_fallback")
    if isinstance(fallback, Module):
        clone.attrs["batch_fallback"] = clone_module(fallback)
    return clone
