"""Pass manager.

A deliberately plain pipeline runner: each pass is a callable
``(Function) -> bool`` (returning whether it changed anything), run over
every function in a module, optionally verifying after each pass.

A key claim of the paper is that the Parsimony vectorizer is a standalone
IR-to-IR pass that "can be placed anywhere in the optimization pipeline"
(§4.2) — the integration tests exercise exactly that by permuting this
pipeline around the vectorizer.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional

from .. import telemetry
from ..ir.module import Function, Module
from ..ir.verifier import verify_function

__all__ = ["FunctionPass", "PassManager"]

FunctionPass = Callable[[Function], bool]


def _pass_name(pass_: FunctionPass) -> str:
    return getattr(pass_, "__name__", None) or type(pass_).__name__


def _instr_count(function: Function) -> int:
    return sum(len(block.instructions) for block in function.blocks)


class PassManager:
    """Runs function passes over a module in order.

    When a :mod:`repro.telemetry` session is active, every pass invocation
    is timed and its IR-size delta recorded; with no session the
    instrumentation costs one module-global check per pass.
    """

    def __init__(self, passes: Optional[Iterable] = None, verify_each: bool = True):
        self.passes: List = list(passes or [])
        self.verify_each = verify_each

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def _apply(self, pass_: FunctionPass, function: Function) -> bool:
        if telemetry.current() is None:
            return pass_(function)
        before = _instr_count(function)
        t0 = time.perf_counter()
        changed = pass_(function)
        seconds = time.perf_counter() - t0
        telemetry.record_pass(
            _pass_name(pass_), function.name, seconds, before, _instr_count(function)
        )
        return changed

    def run(self, module: Module) -> bool:
        changed = False
        for pass_ in self.passes:
            for function in list(module.functions.values()):
                if not function.blocks:
                    continue
                if self._apply(pass_, function):
                    changed = True
                if self.verify_each:
                    verify_function(function)
        return changed

    def run_function(self, function: Function) -> bool:
        changed = False
        for pass_ in self.passes:
            if self._apply(pass_, function):
                changed = True
            if self.verify_each:
                verify_function(function)
        return changed
