"""Pass manager.

A deliberately plain pipeline runner: each pass is a callable
``(Function) -> bool`` (returning whether it changed anything), run over
every function in a module, optionally verifying after each pass.

A key claim of the paper is that the Parsimony vectorizer is a standalone
IR-to-IR pass that "can be placed anywhere in the optimization pipeline"
(§4.2) — the integration tests exercise exactly that by permuting this
pipeline around the vectorizer.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..ir.module import Function, Module
from ..ir.verifier import verify_function

__all__ = ["FunctionPass", "PassManager"]

FunctionPass = Callable[[Function], bool]


class PassManager:
    """Runs function passes over a module in order."""

    def __init__(self, passes: Optional[Iterable] = None, verify_each: bool = True):
        self.passes: List = list(passes or [])
        self.verify_each = verify_each

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        changed = False
        for pass_ in self.passes:
            for function in list(module.functions.values()):
                if not function.blocks:
                    continue
                if pass_(function):
                    changed = True
                if self.verify_each:
                    verify_function(function)
        return changed

    def run_function(self, function: Function) -> bool:
        changed = False
        for pass_ in self.passes:
            if pass_(function):
                changed = True
            if self.verify_each:
                verify_function(function)
        return changed
