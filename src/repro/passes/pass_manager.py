"""Pass manager.

A deliberately plain pipeline runner: each pass is a callable
``(Function) -> bool`` (returning whether it changed anything), run over
every function in a module, optionally verifying after each pass.

A key claim of the paper is that the Parsimony vectorizer is a standalone
IR-to-IR pass that "can be placed anywhere in the optimization pipeline"
(§4.2) — the integration tests exercise exactly that by permuting this
pipeline around the vectorizer.

Verification levels:

* ``verify_each`` (default on) — verify the function a pass just ran on;
  failures are wrapped in :class:`PassVerificationError`, which names the
  offending pass and function in its diagnostic.
* *paranoid* — verify the **whole module** after every pass invocation,
  catching a pass that corrupts a function other than the one it was
  handed.  Enable per-manager (``PassManager(..., paranoid=True)``),
  process-wide (:func:`set_paranoid`), or via the ``REPRO_PARANOID``
  environment variable (any value but ``0``; this is what the CI paranoid
  job sets).  The environment default never *weakens* an explicit
  ``verify_each=False`` — managers that opted out of verification keep
  their opt-out unless paranoia is requested explicitly.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, List, Optional

from .. import faultinject, telemetry
from ..ir.module import Function, Module
from ..ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "FunctionPass",
    "PassManager",
    "PassVerificationError",
    "paranoid_enabled",
    "set_paranoid",
]

FunctionPass = Callable[[Function], bool]


class PassVerificationError(VerificationError):
    """IR verification failed right after a named pass ran."""


_paranoid_override: Optional[bool] = None


def set_paranoid(enabled: Optional[bool]) -> None:
    """Process-wide paranoid default: True/False force it, None defers to
    the ``REPRO_PARANOID`` environment variable."""
    global _paranoid_override
    _paranoid_override = enabled


def paranoid_enabled() -> bool:
    """The process-wide paranoid default (override, else environment)."""
    if _paranoid_override is not None:
        return _paranoid_override
    return os.environ.get("REPRO_PARANOID", "") not in ("", "0")


def _pass_name(pass_: FunctionPass) -> str:
    return getattr(pass_, "__name__", None) or type(pass_).__name__


def _instr_count(function: Function) -> int:
    return sum(len(block.instructions) for block in function.blocks)


class PassManager:
    """Runs function passes over a module in order.

    When a :mod:`repro.telemetry` session is active, every pass invocation
    is timed and its IR-size delta recorded; with no session the
    instrumentation costs one module-global check per pass.
    """

    def __init__(self, passes: Optional[Iterable] = None, verify_each: bool = True,
                 paranoid: Optional[bool] = None):
        self.passes: List = list(passes or [])
        self.verify_each = verify_each
        #: None defers to the process-wide default at run time.
        self.paranoid = paranoid

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def _paranoid(self) -> bool:
        if self.paranoid is not None:
            return self.paranoid
        # The env default only upgrades managers that already verify.
        return self.verify_each and paranoid_enabled()

    def _apply(self, pass_: FunctionPass, function: Function) -> bool:
        name = _pass_name(pass_)
        faultinject.maybe_fail("pass", f"{name}:{function.name}")
        if telemetry.current() is None:
            changed = pass_(function)
        else:
            before = _instr_count(function)
            t0 = time.perf_counter()
            changed = pass_(function)
            seconds = time.perf_counter() - t0
            telemetry.record_pass(
                name, function.name, seconds, before, _instr_count(function)
            )
        faultinject.maybe_corrupt(f"{name}:{function.name}", function)
        return changed

    def _verify_after(self, pass_: FunctionPass, function: Function,
                      module: Optional[Module] = None) -> None:
        try:
            if module is not None:
                verify_module(module)
            else:
                verify_function(function)
        except PassVerificationError:
            raise
        except VerificationError as exc:
            summary = exc.diagnostic.message.splitlines()[0]
            raise PassVerificationError(
                f"IR verification failed after pass '{_pass_name(pass_)}' "
                f"ran on @{function.name}: {summary}",
                pass_name=_pass_name(pass_),
                function=exc.diagnostic.function or function.name,
                block=exc.diagnostic.block,
                instruction=exc.diagnostic.instruction,
                detail={"verifier_message": exc.diagnostic.message},
            ) from exc

    def run(self, module: Module) -> bool:
        changed = False
        paranoid = self._paranoid()
        for pass_ in self.passes:
            for function in list(module.functions.values()):
                if not function.blocks:
                    continue
                if self._apply(pass_, function):
                    changed = True
                if paranoid:
                    self._verify_after(pass_, function, module)
                elif self.verify_each:
                    self._verify_after(pass_, function)
        return changed

    def run_function(self, function: Function) -> bool:
        changed = False
        paranoid = self._paranoid()
        for pass_ in self.passes:
            if self._apply(pass_, function):
                changed = True
            if paranoid or self.verify_each:
                self._verify_after(pass_, function)
        return changed
