"""Compilation drivers: the five configurations the paper measures (§5).

* ``compile_scalar``    — "LLVM scalar": front-end + scalar -O pipeline,
  no vectorization of any kind (Figure 5's baseline denominator).
* ``compile_autovec``   — "LLVM auto-vectorization": scalar pipeline plus
  the classical loop auto-vectorizer (Figures 4 and 5 baseline).
* ``compile_parsimony`` — the Parsimony flow: scalar pipeline with the
  SPMD IR-to-IR vectorization pass (SLEEF math).
* ``compile_ispc``      — the ispc-style flow (see ``repro.ispc``).
* hand-written kernels are built directly against ``repro.simd``'s
  intrinsics API, needing no driver.

``execute`` runs a compiled function on a machine and returns its result
plus :class:`~repro.backend.machine.ExecStats` (the measurement harness).
"""

from __future__ import annotations

from typing import Optional, Tuple

from .backend.costmodel import CostModel
from .backend.machine import AVX512, ExecStats, Machine
from .frontend import compile_source
from .ir.module import Module
from .ispc import ispc_compile
from .passes import standard_pipeline
from .vectorizer import VectorizeConfig, vectorize_module
from .vm import Interpreter, Memory

__all__ = [
    "compile_scalar",
    "compile_autovec",
    "compile_parsimony",
    "compile_ispc",
    "execute",
]


def compile_scalar(source: str, module_name: str = "scalar") -> Module:
    """Front-end + scalar optimizations only (vectorization disabled)."""
    from .passes.inline import inline_module_calls

    module = compile_source(source, module_name)
    inline_module_calls(module)
    standard_pipeline().run(module)
    return module


def compile_autovec(source: str, machine: Machine = AVX512,
                    module_name: str = "autovec", fast_math: bool = False) -> Module:
    """Scalar pipeline + classical loop auto-vectorization."""
    from .autovec import AutoVecConfig, auto_vectorize_module

    from .passes.inline import inline_module_calls

    module = compile_source(source, module_name)
    inline_module_calls(module)
    standard_pipeline().run(module)
    auto_vectorize_module(module, machine, AutoVecConfig(fast_math=fast_math))
    standard_pipeline().run(module)
    return module


def compile_parsimony(source: str, config: Optional[VectorizeConfig] = None,
                      module_name: str = "parsimony") -> Module:
    """The Parsimony flow (§4): standard pipeline + the SPMD pass, then the
    back-end cleanup the paper relies on (re-inline the vectorized region
    into its gang loop, hoist per-gang-invariant setup)."""
    module = compile_source(source, module_name)
    standard_pipeline().run(module)
    vectorize_module(module, config)
    post_vectorize_cleanup(module)
    return module


def post_vectorize_cleanup(module: Module) -> None:
    """Re-inline vectorized SPMD functions into their gang loops (§4.1:
    "the vectorized function can later be re-inlined by the back-end") and
    run LICM + CSE so gang-invariant work leaves the per-gang loop."""
    from .passes import constant_fold, cse, dce, licm, narrow_ints, simplify_cfg
    from .passes.inline import inline_function_calls

    for function in list(module.functions.values()):
        if function.spmd is not None:
            continue
        inline_function_calls(
            function, should_inline=lambda callee: ".psim" in callee.name
        )
        constant_fold(function)
        simplify_cfg(function)
        # Vectorized selects/blends reintroduce widened trees; narrow again.
        narrow_ints(function)
        cse(function)
        licm(function)
        cse(function)
        dce(function)
        simplify_cfg(function)


def compile_ispc(source: str, machine: Machine = AVX512,
                 module_name: str = "ispc") -> Module:
    return ispc_compile(source, machine, module_name)


def execute(
    module: Module,
    function: str,
    *args,
    machine: Machine = AVX512,
    memory: Optional[Memory] = None,
    cost_model: Optional[CostModel] = None,
) -> Tuple[object, ExecStats, Interpreter]:
    """Run one function call and return (result, stats, interpreter)."""
    interp = Interpreter(module, machine=machine, memory=memory, cost_model=cost_model)
    result = interp.run(function, *args)
    return result, interp.stats, interp
