"""Compilation drivers: the five configurations the paper measures (§5).

* ``compile_scalar``    — "LLVM scalar": front-end + scalar -O pipeline,
  no vectorization of any kind (Figure 5's baseline denominator).
* ``compile_autovec``   — "LLVM auto-vectorization": scalar pipeline plus
  the classical loop auto-vectorizer (Figures 4 and 5 baseline).
* ``compile_parsimony`` — the Parsimony flow: scalar pipeline with the
  SPMD IR-to-IR vectorization pass (SLEEF math).
* ``compile_ispc``      — the ispc-style flow (see ``repro.ispc``).
* hand-written kernels are built directly against ``repro.simd``'s
  intrinsics API, needing no driver.

``execute`` runs a compiled function on a machine and returns its result
plus :class:`~repro.backend.machine.ExecStats` (the measurement harness).
"""

from __future__ import annotations

import dataclasses
import itertools
import uuid
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from . import autotune, diskcache, faultinject
from .backend.batch import batch_module, batching_request
from .backend.costmodel import CostModel
from .backend.machine import AVX512, ExecStats, Machine
from .frontend import compile_source
from .ir.module import Module
from .ispc import ispc_compile
from .passes import standard_pipeline
from .passes.clone import clone_module
from .vectorizer import VectorizeConfig, vectorize_module
from .vm import Interpreter, Memory

__all__ = [
    "compile_scalar",
    "compile_autovec",
    "compile_parsimony",
    "compile_ispc",
    "execute",
    "clear_compile_cache",
    "compile_cache_stats",
    "set_compile_cache",
    "set_disk_cache",
    "disk_cache_stats",
]


# -- content-keyed compile cache ------------------------------------------------------
#
# The five paper configurations recompile identical kernels for every
# benchmark repetition; compilation is pure in (flow, source, machine,
# config), so results are memoized on that content key.  The cached module
# is never handed out: every return (the first included) is a
# ``clone_module`` deep copy, so callers mutating the result — re-running
# passes, renaming functions — cannot poison later cache hits.

_COMPILE_CACHE: "OrderedDict[tuple, Module]" = OrderedDict()
_COMPILE_CACHE_CAPACITY = 64
_COMPILE_CACHE_ENABLED = True
_COMPILE_CACHE_STATS = {"hits": 0, "misses": 0}

# Every hand-out is a ``clone_module`` copy, so object identity cannot key
# anything across runs.  Canonical functions get a process-unique
# ``emit_key`` attr at insertion (clones copy attrs), giving downstream
# structural caches — the whole-kernel codegen emission cache — a stable
# key that survives cloning.  The uuid namespace keeps keys from ever
# colliding with a key another process persisted inside a module.
_EMIT_KEY_NS = uuid.uuid4().hex[:12]
_EMIT_KEY_SEQ = itertools.count()


def _stamp_emit_keys(module: Module) -> None:
    for function in module.functions.values():
        function.attrs.setdefault(
            "emit_key", f"{_EMIT_KEY_NS}:{next(_EMIT_KEY_SEQ)}"
        )


def set_compile_cache(enabled: bool) -> None:
    """Globally enable/disable compile memoization (enabled by default)."""
    global _COMPILE_CACHE_ENABLED
    _COMPILE_CACHE_ENABLED = enabled
    if not enabled:
        _COMPILE_CACHE.clear()


def clear_compile_cache() -> None:
    """Drop all cached modules and zero the hit/miss counters."""
    _COMPILE_CACHE.clear()
    _COMPILE_CACHE_STATS["hits"] = 0
    _COMPILE_CACHE_STATS["misses"] = 0


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters plus current entry count (for telemetry)."""
    return {
        "hits": _COMPILE_CACHE_STATS["hits"],
        "misses": _COMPILE_CACHE_STATS["misses"],
        "entries": len(_COMPILE_CACHE),
    }


def set_disk_cache(enabled: Optional[bool]) -> None:
    """Enable/disable the persistent on-disk cache layer.

    ``None`` defers to the ``REPRO_DISK_CACHE`` environment variable (the
    default).  Entries live under ``$REPRO_CACHE_DIR`` (default
    ``~/.cache/repro``); see :mod:`repro.diskcache`.
    """
    diskcache.set_enabled(enabled)


def disk_cache_stats() -> Dict[str, int]:
    """Disk-layer hit/miss/write/error counters (kept separate from
    :func:`compile_cache_stats` so existing in-memory expectations hold)."""
    return diskcache.stats()


def _cached_compile(key: tuple, build: Callable[[], Module]) -> Module:
    # Armed fault plans make compilation impure: neither serve a module
    # compiled before the faults were armed, nor let a fault-degraded
    # module poison the cache for later clean compiles.
    if not _COMPILE_CACHE_ENABLED or faultinject.active():
        return build()
    cached = _COMPILE_CACHE.get(key)
    if cached is None:
        _COMPILE_CACHE_STATS["misses"] += 1
        cached = diskcache.load(key)
        if cached is None:
            cached = build()
            diskcache.store(key, cached)
        # Stamp after the disk store: emit keys are process-local, and a
        # persisted copy must rehydrate unstamped in other processes.
        _stamp_emit_keys(cached)
        _COMPILE_CACHE[key] = cached
        _COMPILE_CACHE.move_to_end(key)
        if len(_COMPILE_CACHE) > _COMPILE_CACHE_CAPACITY:
            _COMPILE_CACHE.popitem(last=False)
    else:
        _COMPILE_CACHE_STATS["hits"] += 1
        _COMPILE_CACHE.move_to_end(key)
    return clone_module(cached)


def compile_scalar(source: str, module_name: str = "scalar") -> Module:
    """Front-end + scalar optimizations only (vectorization disabled)."""
    from .passes.inline import inline_module_calls

    def build() -> Module:
        module = compile_source(source, module_name)
        inline_module_calls(module)
        standard_pipeline().run(module)
        return module

    return _cached_compile(("scalar", source, module_name), build)


def compile_autovec(source: str, machine: Machine = AVX512,
                    module_name: str = "autovec", fast_math: bool = False) -> Module:
    """Scalar pipeline + classical loop auto-vectorization."""
    from .autovec import AutoVecConfig, auto_vectorize_module

    from .passes.inline import inline_module_calls

    def build() -> Module:
        module = compile_source(source, module_name)
        inline_module_calls(module)
        standard_pipeline().run(module)
        auto_vectorize_module(module, machine, AutoVecConfig(fast_math=fast_math))
        standard_pipeline().run(module)
        return module

    return _cached_compile(
        ("autovec", source, module_name, machine, fast_math), build
    )


#: Sentinel: ``compile_parsimony(batch_request=...)`` not passed — resolve
#: from the environment, then from the autotuner's pinned profile.
_BATCH_UNSET = object()


def compile_parsimony(source: str, config: Optional[VectorizeConfig] = None,
                      module_name: str = "parsimony",
                      strict: bool = False,
                      batch_request=_BATCH_UNSET) -> Module:
    """The Parsimony flow (§4): standard pipeline + the SPMD pass, then the
    back-end cleanup the paper relies on (re-inline the vectorized region
    into its gang loop, hoist per-gang-invariant setup).

    A function the vectorizer cannot handle degrades to a correct scalar
    lane loop (recorded in telemetry) instead of failing the compile;
    ``strict=True`` disables that fallback and re-raises the failure.

    ``batch_request`` pins the gang-batching configuration (``0`` = off,
    ``N`` = forced factor, ``None`` = cost-model auto).  When omitted it
    resolves from ``REPRO_BATCH``/``REPRO_NO_BATCH``; if those leave the
    choice on auto and the profile-guided tuner is enabled
    (``REPRO_AUTOTUNE=1``), a pinned measured winner for this kernel's
    content fingerprint — persisted across processes next to the disk
    cache — wins over the static cost model.
    """

    if batch_request is _BATCH_UNSET:
        batch_request = batching_request()
        if batch_request is None and autotune.enabled():
            pinned = autotune.pinned_request(
                autotune.fingerprint(source), autotune.engine_config()
            )
            if pinned is not None:
                batch_request = pinned

    def build() -> Module:
        module = compile_source(source, module_name)
        standard_pipeline().run(module)
        vectorize_module(module, config, strict=strict)
        post_vectorize_cleanup(module)
        # Gang batching runs after the full pipeline, over final IR; the
        # pre-batch module is kept as the trap-replay twin.  Skipped under
        # fault injection: fault plans are keyed to narrow external names
        # and one-shot plans must not be consumed by a replayed run.
        if batch_request != 0 and not faultinject.active():
            fallback = clone_module(module)
            report = batch_module(module, batch_request)
            if report["applied"]:
                module.attrs["batch_fallback"] = fallback
        return module

    config_key = None if config is None else dataclasses.astuple(config)
    return _cached_compile(
        ("parsimony", source, module_name, config_key, strict,
         ("batch", batch_request)),
        build,
    )


def post_vectorize_cleanup(module: Module) -> None:
    """Re-inline vectorized SPMD functions into their gang loops (§4.1:
    "the vectorized function can later be re-inlined by the back-end") and
    run LICM + CSE so gang-invariant work leaves the per-gang loop."""
    from .passes import constant_fold, cse, dce, licm, narrow_ints, simplify_cfg
    from .passes.inline import inline_function_calls

    for function in list(module.functions.values()):
        if function.spmd is not None:
            continue
        inline_function_calls(
            function, should_inline=lambda callee: ".psim" in callee.name
        )
        constant_fold(function)
        simplify_cfg(function)
        # Vectorized selects/blends reintroduce widened trees; narrow again.
        narrow_ints(function)
        cse(function)
        licm(function)
        cse(function)
        dce(function)
        simplify_cfg(function)


def compile_ispc(source: str, machine: Machine = AVX512,
                 module_name: str = "ispc") -> Module:
    return _cached_compile(
        ("ispc", source, module_name, machine),
        lambda: ispc_compile(source, machine, module_name),
    )


def execute(
    module: Module,
    function: str,
    *args,
    machine: Machine = AVX512,
    memory: Optional[Memory] = None,
    cost_model: Optional[CostModel] = None,
) -> Tuple[object, ExecStats, Interpreter]:
    """Run one function call and return (result, stats, interpreter)."""
    interp = Interpreter(module, machine=machine, memory=memory, cost_model=cost_model)
    result = interp.run(function, *args)
    return result, interp.stats, interp
