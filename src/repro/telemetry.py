"""``repro.telemetry`` — structured observability for the pipeline.

Collects three kinds of evidence about a compile-and-execute session and
emits them as one JSON document:

* **pass telemetry** — wall-clock time and IR-size deltas per optimization
  pass, recorded by :class:`~repro.passes.pass_manager.PassManager`;
* **vectorizer counters** — per vectorized function: shape classifications
  (uniform / indexed / varying, §4.2.1), memory-form selections
  (uniform / packed / window / gather-scatter, §4.2.2-4.2.3), and mask
  operations in the emitted code;
* **VM attribution** — per executed run: cost-model cycles, instruction
  counts, and per-function hot-spot attribution from the interpreter.

Collection is opt-in and thread-unsafe-by-design (one active session):

    with telemetry.collect() as t:
        ...compile and run things...
    t.write("out.json")

All recording hooks are no-ops when no session is active, so the
instrumented code paths cost nothing in normal runs.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Telemetry",
    "collect",
    "current",
    "diff_documents",
    "record_autotune",
    "record_fallback",
    "record_partial_fallback",
    "record_pass",
    "record_vectorization",
    "record_vm_run",
]

#: v3: autotuner evidence — ``vm.autotune`` events/totals and the chosen
#: configuration on each VM run.
#: v4: sharded-execution evidence — a per-run ``shard`` record (mode,
#: shard/worker counts, retries, degradations) and ``vm.shard.*`` totals.
#: v5: whole-kernel codegen evidence — a per-run ``codegen`` record
#: (compiles, cache/disk hits, calls, trap replays, bailouts) and
#: ``vm.codegen.*`` totals.
#: v6: per-reason bailout counters — ``vm.codegen.bailout.<reason>``
#: alongside the aggregate, so coverage regressions name the reason in
#: telemetry diffs.
SCHEMA = "repro-telemetry/6"
DIFF_SCHEMA = "repro-telemetry-diff/2"


class Telemetry:
    """One collection session's worth of pipeline evidence."""

    def __init__(self):
        #: pass name -> {calls, seconds, instrs_before, instrs_after}
        self.passes: Dict[str, Dict[str, float]] = {}
        #: (pass name, function name) -> same aggregate, for per-function
        #: timing breakdowns (see :meth:`pass_timings`)
        self.passes_by_function: Dict[tuple, Dict[str, float]] = {}
        #: one entry per vectorized function
        self.vectorized: List[Dict[str, object]] = []
        #: one entry per function that fell back to the scalar lane loop
        self.fallbacks: List[Dict[str, object]] = []
        #: one entry per function that kept vector code but outlined one or
        #: more failing regions to scalar helpers (region-granular fallback)
        self.partial_fallbacks: List[Dict[str, object]] = []
        #: one entry per VM run
        self.vm_runs: List[Dict[str, object]] = []
        #: one entry per autotuner event (measure / pin / deopt)
        self.autotune_events: List[Dict[str, object]] = []
        self.meta: Dict[str, object] = {"started_at": time.time()}

    # -- recording -------------------------------------------------------------------

    def record_pass(
        self,
        pass_name: str,
        function_name: str,
        seconds: float,
        instrs_before: int,
        instrs_after: int,
    ) -> None:
        for table, key in (
            (self.passes, pass_name),
            (self.passes_by_function, (pass_name, function_name)),
        ):
            entry = table.get(key)
            if entry is None:
                entry = table[key] = {
                    "calls": 0,
                    "seconds": 0.0,
                    "instrs_before": 0,
                    "instrs_after": 0,
                }
            entry["calls"] += 1
            entry["seconds"] += seconds
            entry["instrs_before"] += instrs_before
            entry["instrs_after"] += instrs_after

    def record_vectorization(
        self,
        function_name: str,
        gang_size: int,
        shapes: Dict[str, int],
        memory_forms: Dict[str, int],
        mask_ops: Dict[str, int],
        warnings: List[str],
    ) -> None:
        self.vectorized.append(
            {
                "function": function_name,
                "gang_size": gang_size,
                "shapes": dict(shapes),
                "memory_forms": dict(memory_forms),
                "mask_ops": dict(mask_ops),
                "warnings": list(warnings),
            }
        )

    def record_fallback(
        self, function_name: str, gang_size: int, reason: Dict[str, object]
    ) -> None:
        """One SPMD function degraded to the scalar lane loop (and why).

        Exact duplicates are dropped: while fault plans are armed the
        driver bypasses the compile cache, so the same source compiled
        twice degrades the same functions twice — one *distinct*
        degradation, not two (``vectorizer.fallbacks`` used to
        double-count here).
        """
        entry = {
            "function": function_name,
            "gang_size": gang_size,
            "reason": dict(reason),
        }
        if entry not in self.fallbacks:
            self.fallbacks.append(entry)

    def record_partial_fallback(
        self, function_name: str, gang_size: int, info: Dict[str, object]
    ) -> None:
        """One SPMD function vectorized with scalar-outlined regions.

        ``info`` carries the per-region records (helper name, region entry
        and blocks, failure reason) plus the scalarized block/instruction
        fractions.  Deduplicated like :meth:`record_fallback`.
        """
        entry = {
            "function": function_name,
            "gang_size": gang_size,
            **{k: v for k, v in info.items()},
        }
        if entry not in self.partial_fallbacks:
            self.partial_fallbacks.append(entry)

    def record_vm_run(
        self,
        label: str,
        stats,
        hotspots: List[Dict],
        fusion: Optional[Dict[str, object]] = None,
        wall_seconds: Optional[float] = None,
        batch: Optional[Dict[str, object]] = None,
        autotune: Optional[Dict[str, object]] = None,
        shard: Optional[Dict[str, object]] = None,
        codegen: Optional[Dict[str, object]] = None,
    ) -> None:
        entry: Dict[str, object] = {
            "label": label,
            "cycles": stats.cycles,
            "instructions": stats.instructions,
            "counts": dict(stats.counts),
            "hotspots": list(hotspots),
        }
        if fusion is not None:
            entry["fusion"] = dict(fusion)
        if wall_seconds is not None:
            entry["wall_seconds"] = wall_seconds
        if batch is not None:
            entry["batch"] = dict(batch)
        if autotune is not None:
            # The chosen engine/batch configuration and why it was chosen
            # (pinned profile, fresh measurement, deopt, ...).
            entry["autotune"] = dict(autotune)
        if shard is not None:
            # The merged supervisor report for a sharded launch: mode
            # (sharded / rejected / degraded variants), shard and worker
            # counts, retries, and per-shard degradations.
            entry["shard"] = dict(shard)
        if codegen is not None:
            # The whole-kernel codegen engine's report for this run:
            # compiles vs in-memory/disk cache hits, compiled-function
            # calls, trap replays on the predecoded twin, and bailouts.
            entry["codegen"] = dict(codegen)
        self.vm_runs.append(entry)

    def record_autotune(self, event: str, info: Dict[str, object]) -> None:
        """One profile-guided-selection event: ``measure`` (a candidate
        configuration was timed), ``pin`` (a winner was persisted), or
        ``deopt`` (a pinned choice regressed and was dropped)."""
        self.autotune_events.append({"event": event, **info})

    # -- reporting -------------------------------------------------------------------

    def pass_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-pass aggregates with the IR-size delta made explicit."""
        return self.pass_timings()

    def pass_timings(self, per_function: bool = False):
        """Pass-timing aggregates with the IR-size delta made explicit.

        Flat per-pass by default; ``per_function=True`` nests the same
        aggregates per transformed function:
        ``{pass: {function: {calls, seconds, ...}}}``.
        """
        if not per_function:
            return {
                name: {
                    **entry,
                    "instrs_delta": entry["instrs_after"] - entry["instrs_before"],
                }
                for name, entry in self.passes.items()
            }
        nested: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (pass_name, function_name), entry in self.passes_by_function.items():
            nested.setdefault(pass_name, {})[function_name] = {
                **entry,
                "instrs_delta": entry["instrs_after"] - entry["instrs_before"],
            }
        return nested

    def vectorizer_totals(self) -> Dict[str, Dict[str, int]]:
        """Shape / memory-form / mask-op counters summed over functions."""
        totals: Dict[str, Dict[str, int]] = {
            "shapes": {},
            "memory_forms": {},
            "mask_ops": {},
        }
        for entry in self.vectorized:
            for section in totals:
                for key, n in entry[section].items():  # type: ignore[union-attr]
                    totals[section][key] = totals[section].get(key, 0) + n
        return totals

    def vm_batch_totals(self) -> Dict[str, int]:
        """Gang-batching counters summed over runs, flattened to the
        ``vm.batch.*`` keys the perf-smoke CI job and diff mode read:
        loops batched, loops rejected by legality, and trap replays."""
        totals = {"vm.batch.applied": 0, "vm.batch.rejected": 0,
                  "vm.batch.replays": 0}
        for run in self.vm_runs:
            batch = run.get("batch")
            if not batch:
                continue
            totals["vm.batch.applied"] += int(batch.get("applied", 0))
            totals["vm.batch.rejected"] += int(batch.get("rejected", 0))
            totals["vm.batch.replays"] += int(batch.get("replays", 0))
        return totals

    def vm_autotune_totals(self) -> Dict[str, int]:
        """Autotuner counters, flattened to the ``vm.autotune.*`` keys the
        perf-smoke CI job and diff mode read: candidate measurements,
        pinned winners, and deopts."""
        totals = {"vm.autotune.measure": 0, "vm.autotune.pin": 0,
                  "vm.autotune.deopt": 0}
        for entry in self.autotune_events:
            key = f"vm.autotune.{entry.get('event')}"
            if key in totals:
                totals[key] += 1
        return totals

    def vm_shard_totals(self) -> Dict[str, int]:
        """Sharded-execution counters summed over runs, flattened to the
        ``vm.shard.*`` keys the shard-smoke CI job reads: launches that ran
        sharded, shard retries, recorded per-shard degradations, and
        launches the legality analysis rejected back to in-process."""
        totals = {"vm.shard.sharded": 0, "vm.shard.retries": 0,
                  "vm.shard.degraded": 0, "vm.shard.rejected": 0}
        for run in self.vm_runs:
            shard = run.get("shard")
            if not shard:
                continue
            if shard.get("mode") == "rejected":
                totals["vm.shard.rejected"] += 1
            else:
                totals["vm.shard.sharded"] += 1
            totals["vm.shard.retries"] += int(shard.get("retries", 0))
            totals["vm.shard.degraded"] += int(shard.get("degraded", 0))
        return totals

    def vm_codegen_totals(self) -> Dict[str, int]:
        """Whole-kernel codegen counters summed over runs, flattened to the
        ``vm.codegen.*`` keys the perf-smoke CI job and diff mode read:
        fresh compiles, in-memory and disk source-cache hits, compiled
        calls, trap replays on the predecoded twin, and bailouts — the
        latter both as an aggregate and per reason
        (``vm.codegen.bailout.<reason>``), so a coverage regression (a
        new bailout reason appearing) is visible in the telemetry diff."""
        totals = {"vm.codegen.compiles": 0, "vm.codegen.cache_hits": 0,
                  "vm.codegen.disk_hits": 0, "vm.codegen.calls": 0,
                  "vm.codegen.replays": 0, "vm.codegen.bailouts": 0}
        for run in self.vm_runs:
            report = run.get("codegen")
            if not report:
                continue
            for key in ("compiles", "cache_hits", "disk_hits", "calls",
                        "replays"):
                totals[f"vm.codegen.{key}"] += int(report.get(key, 0))
            bailouts = report.get("bailouts") or {}
            for reason, n in bailouts.items():
                totals["vm.codegen.bailouts"] += int(n)
                key = f"vm.codegen.bailout.{reason}"
                totals[key] = totals.get(key, 0) + int(n)
        return totals

    def vm_fuse_totals(self) -> Dict[str, int]:
        """Superinstruction hit counters summed over runs, flattened to the
        ``vm.fuse.<pattern>`` keys the perf-smoke CI job asserts on."""
        totals: Dict[str, int] = {}
        for run in self.vm_runs:
            fusion = run.get("fusion")
            if not fusion:
                continue
            for pattern, hits in fusion.get("hits", {}).items():  # type: ignore[union-attr]
                key = f"vm.fuse.{pattern}"
                totals[key] = totals.get(key, 0) + int(hits)
        return totals

    def as_dict(self) -> Dict[str, object]:
        from . import driver

        return {
            "schema": SCHEMA,
            "meta": self.meta,
            "passes": self.pass_summary(),
            "passes_by_function": self.pass_timings(per_function=True),
            "vectorizer": {
                "functions": self.vectorized,
                "totals": self.vectorizer_totals(),
                "fallbacks": self.fallbacks,
                "partial_fallbacks": self.partial_fallbacks,
            },
            "vm": {
                "runs": self.vm_runs,
                "fuse_totals": self.vm_fuse_totals(),
                "batch_totals": self.vm_batch_totals(),
                "autotune": self.autotune_events,
                "autotune_totals": self.vm_autotune_totals(),
                "shard_totals": self.vm_shard_totals(),
                "codegen_totals": self.vm_codegen_totals(),
            },
            "compile_cache": driver.compile_cache_stats(),
            "disk_cache": driver.disk_cache_stats(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


_current: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The active session, or ``None`` (hooks check this and bail)."""
    return _current


@contextmanager
def collect() -> Iterator[Telemetry]:
    """Activate a collection session for the dynamic extent of the block."""
    global _current
    session = Telemetry()
    previous = _current
    _current = session
    try:
        yield session
    finally:
        session.meta["duration_seconds"] = time.time() - session.meta["started_at"]
        _current = previous


# Module-level convenience hooks: no-ops without an active session.

def record_pass(pass_name, function_name, seconds, instrs_before, instrs_after):
    if _current is not None:
        _current.record_pass(
            pass_name, function_name, seconds, instrs_before, instrs_after
        )


def record_vectorization(function_name, gang_size, shapes, memory_forms,
                         mask_ops, warnings):
    if _current is not None:
        _current.record_vectorization(
            function_name, gang_size, shapes, memory_forms, mask_ops, warnings
        )


def record_vm_run(label, stats, hotspots, fusion=None, wall_seconds=None,
                  batch=None, autotune=None, shard=None, codegen=None):
    if _current is not None:
        _current.record_vm_run(label, stats, hotspots, fusion, wall_seconds,
                               batch, autotune, shard, codegen)


def record_autotune(event, info):
    if _current is not None:
        _current.record_autotune(event, info)


# -- PR-over-PR diffing ----------------------------------------------------------


def _field_diff(old, new):
    old = 0 if old is None else old
    new = 0 if new is None else new
    return {"old": old, "new": new, "delta": new - old}


def _diff_tables(old: Dict, new: Dict, fields) -> Dict[str, Dict]:
    """Diff two ``{name: {field: number}}`` tables, keeping the union of
    names so entries present on only one side still show up."""
    result = {}
    for name in sorted(set(old) | set(new)):
        o, n = old.get(name, {}), new.get(name, {})
        result[name] = {f: _field_diff(o.get(f), n.get(f)) for f in fields}
    return result


def _flat_counters(doc: Dict) -> Dict[str, float]:
    """Every scalar counter in a telemetry document under a dotted key."""
    flat: Dict[str, float] = {}
    totals = doc.get("vectorizer", {}).get("totals", {})
    for section, counters in totals.items():
        for key, n in counters.items():
            flat[f"vectorizer.{section}.{key}"] = n
    for key, n in doc.get("vm", {}).get("fuse_totals", {}).items():
        flat[key] = n  # already vm.fuse.<pattern>
    for key, n in doc.get("vm", {}).get("batch_totals", {}).items():
        flat[key] = n  # already vm.batch.<counter>
    for key, n in doc.get("vm", {}).get("autotune_totals", {}).items():
        flat[key] = n  # already vm.autotune.<counter>
    for key, n in doc.get("vm", {}).get("shard_totals", {}).items():
        flat[key] = n  # already vm.shard.<counter>
    for key, n in doc.get("vm", {}).get("codegen_totals", {}).items():
        flat[key] = n  # already vm.codegen.<counter>
    for section in ("compile_cache", "disk_cache"):
        for key, n in doc.get(section, {}).items():
            if isinstance(n, (int, float)):
                flat[f"{section}.{key}"] = n
    flat["vectorizer.fallbacks"] = len(
        doc.get("vectorizer", {}).get("fallbacks", [])
    )
    partials = doc.get("vectorizer", {}).get("partial_fallbacks", [])
    flat["vectorizer.partial_fallbacks"] = len(partials)
    for entry in partials:
        for region in entry.get("regions", []):
            error = region.get("reason", {}).get("error", "unknown")
            key = f"vectorizer.partial_fallback_reason.{error}"
            flat[key] = flat.get(key, 0) + 1
    return flat


def diff_documents(old: Dict, new: Dict) -> Dict[str, object]:
    """Machine-readable PR-over-PR delta of two telemetry documents.

    Compares per-pass timing/size aggregates, per-label VM runs, and every
    flat counter (vectorizer totals, ``vm.fuse.*``, cache stats); names
    present in only one document appear with the other side as 0.
    """
    runs_old = {r["label"]: r for r in old.get("vm", {}).get("runs", [])}
    runs_new = {r["label"]: r for r in new.get("vm", {}).get("runs", [])}

    def flat_by_function(doc):
        return {
            f"{pass_name}::{function}": entry
            for pass_name, table in doc.get("passes_by_function", {}).items()
            for function, entry in table.items()
        }

    return {
        "schema": DIFF_SCHEMA,
        "base_schemas": {"old": old.get("schema"), "new": new.get("schema")},
        "passes": _diff_tables(
            old.get("passes", {}),
            new.get("passes", {}),
            ("calls", "seconds", "instrs_delta"),
        ),
        "passes_by_function": _diff_tables(
            flat_by_function(old),
            flat_by_function(new),
            ("calls", "seconds", "instrs_delta"),
        ),
        "vm_runs": _diff_tables(
            runs_old, runs_new, ("cycles", "instructions", "wall_seconds")
        ),
        "counters": _diff_tables(
            {k: {"value": v} for k, v in _flat_counters(old).items()},
            {k: {"value": v} for k, v in _flat_counters(new).items()},
            ("value",),
        ),
    }


def record_fallback(function_name, gang_size, reason):
    if _current is not None:
        _current.record_fallback(function_name, gang_size, reason)


def record_partial_fallback(function_name, gang_size, info):
    if _current is not None:
        _current.record_partial_fallback(function_name, gang_size, info)
