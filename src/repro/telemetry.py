"""``repro.telemetry`` — structured observability for the pipeline.

Collects three kinds of evidence about a compile-and-execute session and
emits them as one JSON document:

* **pass telemetry** — wall-clock time and IR-size deltas per optimization
  pass, recorded by :class:`~repro.passes.pass_manager.PassManager`;
* **vectorizer counters** — per vectorized function: shape classifications
  (uniform / indexed / varying, §4.2.1), memory-form selections
  (uniform / packed / window / gather-scatter, §4.2.2-4.2.3), and mask
  operations in the emitted code;
* **VM attribution** — per executed run: cost-model cycles, instruction
  counts, and per-function hot-spot attribution from the interpreter.

Collection is opt-in and thread-unsafe-by-design (one active session):

    with telemetry.collect() as t:
        ...compile and run things...
    t.write("out.json")

All recording hooks are no-ops when no session is active, so the
instrumented code paths cost nothing in normal runs.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Telemetry",
    "collect",
    "current",
    "record_fallback",
    "record_pass",
    "record_vectorization",
    "record_vm_run",
]

SCHEMA = "repro-telemetry/1"


class Telemetry:
    """One collection session's worth of pipeline evidence."""

    def __init__(self):
        #: pass name -> {calls, seconds, instrs_before, instrs_after}
        self.passes: Dict[str, Dict[str, float]] = {}
        #: one entry per vectorized function
        self.vectorized: List[Dict[str, object]] = []
        #: one entry per function that fell back to the scalar lane loop
        self.fallbacks: List[Dict[str, object]] = []
        #: one entry per VM run
        self.vm_runs: List[Dict[str, object]] = []
        self.meta: Dict[str, object] = {"started_at": time.time()}

    # -- recording -------------------------------------------------------------------

    def record_pass(
        self,
        pass_name: str,
        function_name: str,
        seconds: float,
        instrs_before: int,
        instrs_after: int,
    ) -> None:
        entry = self.passes.get(pass_name)
        if entry is None:
            entry = self.passes[pass_name] = {
                "calls": 0,
                "seconds": 0.0,
                "instrs_before": 0,
                "instrs_after": 0,
            }
        entry["calls"] += 1
        entry["seconds"] += seconds
        entry["instrs_before"] += instrs_before
        entry["instrs_after"] += instrs_after

    def record_vectorization(
        self,
        function_name: str,
        gang_size: int,
        shapes: Dict[str, int],
        memory_forms: Dict[str, int],
        mask_ops: Dict[str, int],
        warnings: List[str],
    ) -> None:
        self.vectorized.append(
            {
                "function": function_name,
                "gang_size": gang_size,
                "shapes": dict(shapes),
                "memory_forms": dict(memory_forms),
                "mask_ops": dict(mask_ops),
                "warnings": list(warnings),
            }
        )

    def record_fallback(
        self, function_name: str, gang_size: int, reason: Dict[str, object]
    ) -> None:
        """One SPMD function degraded to the scalar lane loop (and why)."""
        self.fallbacks.append(
            {
                "function": function_name,
                "gang_size": gang_size,
                "reason": dict(reason),
            }
        )

    def record_vm_run(self, label: str, stats, hotspots: List[Dict]) -> None:
        self.vm_runs.append(
            {
                "label": label,
                "cycles": stats.cycles,
                "instructions": stats.instructions,
                "counts": dict(stats.counts),
                "hotspots": list(hotspots),
            }
        )

    # -- reporting -------------------------------------------------------------------

    def pass_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-pass aggregates with the IR-size delta made explicit."""
        summary = {}
        for name, entry in self.passes.items():
            summary[name] = {
                **entry,
                "instrs_delta": entry["instrs_after"] - entry["instrs_before"],
            }
        return summary

    def vectorizer_totals(self) -> Dict[str, Dict[str, int]]:
        """Shape / memory-form / mask-op counters summed over functions."""
        totals: Dict[str, Dict[str, int]] = {
            "shapes": {},
            "memory_forms": {},
            "mask_ops": {},
        }
        for entry in self.vectorized:
            for section in totals:
                for key, n in entry[section].items():  # type: ignore[union-attr]
                    totals[section][key] = totals[section].get(key, 0) + n
        return totals

    def as_dict(self) -> Dict[str, object]:
        from . import driver

        return {
            "schema": SCHEMA,
            "meta": self.meta,
            "passes": self.pass_summary(),
            "vectorizer": {
                "functions": self.vectorized,
                "totals": self.vectorizer_totals(),
                "fallbacks": self.fallbacks,
            },
            "vm": {"runs": self.vm_runs},
            "compile_cache": driver.compile_cache_stats(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


_current: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The active session, or ``None`` (hooks check this and bail)."""
    return _current


@contextmanager
def collect() -> Iterator[Telemetry]:
    """Activate a collection session for the dynamic extent of the block."""
    global _current
    session = Telemetry()
    previous = _current
    _current = session
    try:
        yield session
    finally:
        session.meta["duration_seconds"] = time.time() - session.meta["started_at"]
        _current = previous


# Module-level convenience hooks: no-ops without an active session.

def record_pass(pass_name, function_name, seconds, instrs_before, instrs_after):
    if _current is not None:
        _current.record_pass(
            pass_name, function_name, seconds, instrs_before, instrs_after
        )


def record_vectorization(function_name, gang_size, shapes, memory_forms,
                         mask_ops, warnings):
    if _current is not None:
        _current.record_vectorization(
            function_name, gang_size, shapes, memory_forms, mask_ops, warnings
        )


def record_vm_run(label, stats, hotspots):
    if _current is not None:
        _current.record_vm_run(label, stats, hotspots)


def record_fallback(function_name, gang_size, reason):
    if _current is not None:
        _current.record_fallback(function_name, gang_size, reason)
