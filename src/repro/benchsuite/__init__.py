"""``repro.benchsuite`` — the paper's two evaluation suites and the
measurement harness (workloads, runner, kernel registry)."""

from .kernelspec import KernelSpec, elementwise_sources, reduction_sources, rowwise_sources
from .runner import (
    IMPLEMENTATIONS,
    KernelResult,
    build_impl,
    check_kernel,
    geomean,
    measure_kernel,
    run_impl,
    summarize_telemetry,
)
from .workloads import Workload, f32_array, gray_image, planar_image, rng_for

__all__ = [
    "KernelSpec", "elementwise_sources", "reduction_sources", "rowwise_sources",
    "IMPLEMENTATIONS", "KernelResult", "build_impl", "check_kernel",
    "geomean", "measure_kernel", "run_impl", "summarize_telemetry",
    "Workload", "f32_array", "gray_image", "planar_image", "rng_for",
]
