"""Seeded random SPMD kernel generator for differential fuzzing.

Generates small PsimC kernels — straight-line arithmetic, ``if``/``else``
divergence, bounded ``while`` loops, gathers over indexed/varying shapes,
lane-private arrays (SoA-swizzled, §4.2.3), and convergent gang
reductions — whose semantics are engine-independent: no read-after-write
aliasing between lanes, loop bounds that provably terminate.  Any two
correct execution strategies (full vectorization, region-granular partial
fallback, whole-function scalarization, whole-kernel codegen) must
therefore produce bit-identical outputs, which is exactly what
``tests/fuzz/test_differential_kernels.py`` checks.

One carve-out: a kernel containing a cross-lane intrinsic
(``psim_reduce_*_sync``, or the ``psim_shuffle_sync`` lane exchanges)
has **no scalar execution strategy** — cross-lane communication cannot
be scalarized, so degraded compiles raise ``CompileError`` instead of
falling back (``has_reduction``/``has_shuffle`` flag this for the test
harness).  The vector-engine strategies (decoded, fused, batched,
codegen) still all apply and must still agree bitwise; reductions may
additionally sit inside a uniform-trip-count loop *after* the divergent
body, so the sync point executes repeatedly under loop control flow.

Everything is derived from one integer seed via ``random.Random``, so a
failing kernel reproduces from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["FuzzKernel", "generate_kernel", "workload_arrays", "N_THREADS"]

#: Thread count for every fuzz kernel: deliberately not a multiple of any
#: gang size below, so the tail gang (partial last gang) is always covered.
N_THREADS = 37

_GANGS = (4, 8, 16)

#: Unary math builtins applied behind a domain guard (see _f_math).
_MATH1 = ("exp", "log2", "floor", "rsqrt")
_MATH2 = ("pow", "fmod")


@dataclass
class FuzzKernel:
    seed: int
    gang_size: int
    source: str
    #: Kernel calls a ``psim_reduce_*_sync`` intrinsic: no scalar strategy
    #: exists, so degraded compiles must raise instead of falling back.
    has_reduction: bool = False
    #: Kernel declares a lane-private array (exercises the SoA-swizzled
    #: blocked layout and, under gang batching, its legality rejection).
    has_private: bool = False
    #: Kernel calls ``psim_shuffle_sync`` (cross-lane exchange): like
    #: reductions, no scalar strategy exists.
    has_shuffle: bool = False


_REDUCTIONS = ("psim_reduce_add_sync", "psim_reduce_min_sync",
               "psim_reduce_max_sync")

#: Lane-private array length; every generated index is reduced mod this.
_PRIVATE_LEN = 4


class _Gen:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.seed = seed
        self.gang = self.rng.choice(_GANGS)
        # Feature draws happen up front so the rest of the stream — and
        # therefore the body shared by featureless kernels — stays stable.
        self.private = self.rng.random() < 0.35
        self.reduction = self.rng.random() < 0.20
        self.shuffle = self.rng.random() < 0.30
        self.counter = 0
        self.lines: List[str] = []
        self.indent = 2

    def fresh(self, stem: str) -> str:
        self.counter += 1
        return f"{stem}{self.counter}"

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- expressions ---------------------------------------------------------------

    def f_leaf(self) -> str:
        r = self.rng
        choice = r.randrange(8)
        if choice == 0:
            return f"{r.uniform(-2.0, 2.0):.5f}f"
        if choice == 1:
            return "sv"
        if choice == 2:
            # Gather: varying index derived from per-lane integer state.
            # Remainder *before* abs: ``abs(INT_MIN)`` wraps negative, so
            # ``abs(x) % n`` can go out of bounds while ``abs(x % n)``
            # is total (|x % n| < n for every i32 x).
            return f"A[(u64)abs({self.i_leaf()} % {N_THREADS})]"
        if choice == 3:
            return f"(f32){self.i_leaf()}"
        if choice == 4 and self.private:
            # Lane-private array read through a varying in-bounds index.
            return f"t[(u64)abs({self.i_leaf()} % {_PRIVATE_LEN})]"
        return r.choice(("x", "y", "va", "vb"))

    def i_leaf(self) -> str:
        r = self.rng
        choice = r.randrange(5)
        if choice == 0:
            return str(r.randrange(-9, 10))
        if choice == 1:
            return "si"
        return r.choice(("p", "q"))

    def f_expr(self, depth: int) -> str:
        r = self.rng
        if depth <= 0:
            return self.f_leaf()
        choice = r.randrange(8)
        a = self.f_expr(depth - 1)
        if choice < 3:
            op = r.choice(("+", "-", "*", "/"))
            return f"({a} {op} {self.f_expr(depth - 1)})"
        if choice == 3:
            # Parenthesize: a negative literal operand would lex as ``--``.
            return f"(-({a}))"
        if choice == 4:
            fn = r.choice(("min", "max"))
            return f"{fn}({a}, {self.f_expr(depth - 1)})"
        if choice == 5:
            return self._f_math(a)
        if choice == 6:
            return f"abs({a})"
        return self.f_leaf()

    def _f_math(self, arg: str) -> str:
        # Keep math arguments in tame domains so no strategy-dependent NaN
        # payloads or overflows sneak into the comparison: exp/pow operate
        # on clamped inputs, log2/rsqrt on strictly positive ones.
        fn = self.rng.choice(_MATH1 + _MATH2)
        small = f"min(max({arg}, -8.0f), 8.0f)"
        positive = f"(abs({arg}) + 0.125f)"
        if fn == "exp":
            return f"exp({small})"
        if fn in ("log2", "rsqrt"):
            return f"{fn}({positive})"
        if fn == "pow":
            return f"pow({positive}, min(max({self.f_leaf()}, -4.0f), 4.0f))"
        return f"fmod({arg}, 3.0f)"

    def i_expr(self, depth: int) -> str:
        r = self.rng
        if depth <= 0:
            return self.i_leaf()
        choice = r.randrange(7)
        a = self.i_expr(depth - 1)
        if choice < 3:
            op = r.choice(("+", "-", "*"))
            return f"({a} {op} {self.i_expr(depth - 1)})"
        if choice == 3:
            return f"({a} % {r.choice((3, 5, 7, 11))})"
        if choice == 4:
            fn = r.choice(("min", "max"))
            return f"{fn}({a}, {self.i_expr(depth - 1)})"
        if choice == 5:
            # Narrowing arithmetic: wrap through u8/u16 and widen back,
            # exercising trunc/zext chains, the vectorizer's sub-word
            # lanes, and every engine's modular-wraparound agreement.
            narrow = r.choice(("u8", "u16"))
            return f"(i32)(({narrow})({a}))"
        return self.i_leaf()

    def condition(self) -> str:
        r = self.rng
        if r.random() < 0.5:
            op = r.choice(("<", ">", "<=", ">=", "==", "!="))
            return f"{self.i_expr(1)} {op} {self.i_expr(1)}"
        op = r.choice(("<", ">", "<=", ">="))
        return f"{self.f_expr(1)} {op} {self.f_expr(1)}"

    # -- statements ----------------------------------------------------------------

    def assign(self) -> None:
        r = self.rng
        if self.private and r.random() < 0.15:
            idx = f"(u64)abs(({self.i_expr(1)}) % {_PRIVATE_LEN})"
            self.emit(f"t[{idx}] = {self.f_expr(r.randrange(1, 3))};")
        elif r.random() < 0.5:
            var = r.choice(("x", "y"))
            self.emit(f"{var} = {self.f_expr(r.randrange(1, 3))};")
        else:
            var = r.choice(("p", "q"))
            self.emit(f"{var} = {self.i_expr(r.randrange(1, 3))};")

    def if_stmt(self, depth: int) -> None:
        self.emit(f"if ({self.condition()}) {{")
        self.indent += 1
        self.block(depth - 1, self.rng.randrange(1, 3))
        self.indent -= 1
        if self.rng.random() < 0.6:
            self.emit("} else {")
            self.indent += 1
            self.block(depth - 1, self.rng.randrange(1, 3))
            self.indent -= 1
        self.emit("}")

    def while_stmt(self, depth: int) -> None:
        # Trip count is bounded by construction: a per-lane limit in
        # [-2, 6] and a counter that increments every iteration.
        k = self.fresh("k")
        lim = self.fresh("lim")
        self.emit(f"i32 {lim} = {self.rng.randrange(1, 4)} + ({self.i_expr(1)} % 4);")
        self.emit(f"i32 {k} = 0;")
        self.emit(f"while ({k} < {lim}) {{")
        self.indent += 1
        self.block(depth - 1, self.rng.randrange(1, 3))
        if self.rng.random() < 0.5:
            self.emit(f"x = x + (f32){k};")
        self.emit(f"{k} = {k} + 1;")
        self.indent -= 1
        self.emit("}")

    def block(self, depth: int, n_stmts: int) -> None:
        for _ in range(n_stmts):
            r = self.rng.random()
            if depth > 0 and r < 0.25:
                self.if_stmt(depth)
            elif depth > 0 and r < 0.45:
                self.while_stmt(depth)
            else:
                self.assign()

    # -- whole kernel ----------------------------------------------------------------

    def generate(self) -> FuzzKernel:
        self.block(2, self.rng.randrange(3, 7))
        body = "\n".join(self.lines)
        decls = ""
        if self.private:
            decls = (f"        f32 t[{_PRIVATE_LEN}];\n"
                     "        t[0] = va; t[1] = vb; t[2] = sv;"
                     " t[3] = va - vb;\n")
        # Cross-lane exchanges sit at top level, after the divergent
        # body: a butterfly/rotation pattern mixes the per-lane f32 and
        # i32 state across the gang (the lane index wraps mod gang size
        # by the shuffle contract, so any pattern is in-bounds).
        shuffle_line = ""
        if self.shuffle:
            rot = self.rng.choice(("^ 1", "+ 1", "^ 3",
                                   f"+ {self.gang - 1}"))
            shuffle_line = (
                f"        f32 ex = psim_shuffle_sync(x,"
                f" psim_get_lane_num() {rot});\n"
                "        x = (x + ex) * 0.5f;\n"
                f"        q = q + psim_shuffle_sync(q,"
                f" psim_get_lane_num() {rot});\n")
        # Reductions also sit after the divergent body: every lane of the
        # gang reaches the sync point together (convergent by
        # construction), the only masking being the tail gang's.  Half of
        # them additionally run inside a uniform-trip-count loop, so the
        # sync point repeats under loop control flow.
        reduce_line = ""
        if self.reduction:
            fn = self.rng.choice(_REDUCTIONS)
            if self.rng.random() < 0.5:
                reduce_line = (
                    "        i32 rk = 0;\n"
                    "        while (rk < 2) {\n"
                    f"            f32 red = {fn}(min(max(x, -8.0f),"
                    " 8.0f));\n"
                    "            y = y + red * 0.125f;\n"
                    "            rk = rk + 1;\n"
                    "        }\n")
            else:
                reduce_line = (f"        f32 red = {fn}(x);\n"
                               "        y = y + red;\n")
        source = f"""
void kernel(f32* A, f32* B, i32* C, f32* OUT, i32* IOUT,
            f32 sv, i32 si, u64 n) {{
    psim (gang_size={self.gang}, num_threads=n) {{
        u64 i = psim_get_thread_num();
        f32 va = A[i];
        f32 vb = B[i];
        i32 p = C[i];
        f32 x = va * 0.5f;
        f32 y = sv - vb;
        i32 q = si + p;
{decls}{body}
{shuffle_line}{reduce_line}        OUT[i] = x + y;
        IOUT[i] = p + q * 3;
    }}
}}
"""
        return FuzzKernel(seed=self.seed, gang_size=self.gang,
                          source=source, has_reduction=self.reduction,
                          has_private=self.private,
                          has_shuffle=self.shuffle)


def generate_kernel(seed: int) -> FuzzKernel:
    """One deterministic random SPMD kernel for ``seed``."""
    return _Gen(seed).generate()


def workload_arrays(seed: int):
    """Deterministic inputs for a fuzz kernel: ``(A, B, C, OUT, IOUT, sv, si)``."""
    rng = np.random.default_rng(0xF0770 + seed)
    A = (rng.random(N_THREADS, dtype=np.float32) * 8 - 4).astype(np.float32)
    B = (rng.random(N_THREADS, dtype=np.float32) * 8 - 4).astype(np.float32)
    C = rng.integers(-50, 51, N_THREADS).astype(np.int32)
    OUT = np.zeros(N_THREADS, np.float32)
    IOUT = np.zeros(N_THREADS, np.int32)
    sv = float(np.float32(rng.random() * 4 - 2))
    si = int(rng.integers(-20, 21))
    return A, B, C, OUT, IOUT, sv, si
