"""Seeded synthetic workload generators.

Substitutes for the data sets shipped with the Simd Library and ispc
benchmark suites (see DESIGN.md): random images and arrays with fixed
seeds, so every implementation of a kernel sees bit-identical inputs and
results are reproducible across runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["Workload", "rng_for", "gray_image", "planar_image", "f32_array"]

#: Default benchmark image size (width must be a multiple of 64 so that the
#: hand-written u8 kernels' full-width blocks fit, as in real intrinsics code).
DEFAULT_W = 64
DEFAULT_H = 48


@dataclass
class Workload:
    """One kernel invocation's inputs.

    ``arrays`` are allocated into VM memory (in order) and their addresses
    passed first; ``scalars`` follow.  ``outputs`` lists indices of arrays
    whose final contents define the kernel's result (compared across
    implementations); ``returns_value`` marks kernels whose return value is
    the result instead/additionally.
    """

    arrays: List[np.ndarray]
    scalars: List = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)
    returns_value: bool = False
    #: Relative tolerance for output comparison; None = bit-exact.  Float
    #: reductions need this: gang-wise horizontal sums legally reassociate.
    rtol: Optional[float] = None


def rng_for(name: str, salt: int = 0) -> np.random.Generator:
    """Deterministic per-kernel RNG.

    Seeded by a *stable* hash of the name: ``hash()`` is randomized per
    process (PYTHONHASHSEED), which silently made workloads — and any
    differential comparison over them — irreproducible across runs.
    """
    seed = (zlib.crc32(name.encode()) ^ (salt * 0x9E3779B9)) & 0xFFFFFFFF
    return np.random.default_rng(seed)


def gray_image(rng, w: int = DEFAULT_W, h: int = DEFAULT_H, dtype=np.uint8) -> np.ndarray:
    """A flat ``h*w`` random image."""
    info = np.iinfo(dtype)
    return rng.integers(info.min, int(info.max) + 1, h * w).astype(dtype)


def planar_image(rng, channels: int, w: int = DEFAULT_W, h: int = DEFAULT_H) -> np.ndarray:
    """Interleaved multi-channel u8 image (h*w*channels bytes)."""
    return rng.integers(0, 256, h * w * channels).astype(np.uint8)


def f32_array(rng, n: int, lo: float = 0.0, hi: float = 1.0) -> np.ndarray:
    return (rng.random(n) * (hi - lo) + lo).astype(np.float32)
