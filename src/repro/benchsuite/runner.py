"""Benchmark runner: builds, checks, and measures kernel implementations.

Implements the paper's measurement methodology (§5): every kernel runs in
up to four configurations — un-vectorized scalar, auto-vectorized,
Parsimony, hand-written — on the same machine model with the same seeded
workload, and reports cost-model cycles.  Cross-implementation output
equality is checked before any number is reported.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import autotune, diskcache, faultinject, shard, telemetry
from ..backend.batch import batching_request
from ..backend.machine import AVX512, ExecStats, Machine
from ..driver import compile_autovec, compile_ispc, compile_parsimony, compile_scalar
from ..ir.module import Module
from ..vm import Interpreter
from .kernelspec import KernelSpec
from .workloads import Workload

__all__ = [
    "IMPLEMENTATIONS",
    "KernelResult",
    "build_impl",
    "run_impl",
    "check_kernel",
    "measure_kernel",
    "geomean",
    "summarize_telemetry",
]

IMPLEMENTATIONS = ("scalar", "autovec", "parsimony", "handwritten")

#: Guard space after each array so bounded-window over-reads (§4.2.3's
#: packed+shuffle accesses) stay in-bounds, as intrinsics code assumes.
_GUARD_BYTES = 4096


@dataclass
class KernelResult:
    impl: str
    cycles: float
    stats: ExecStats
    outputs: List[np.ndarray]
    returned: object = None

    def output_signature(self):
        sig = [np.asarray(o) for o in self.outputs]
        if self.returned is not None:
            sig.append(np.asarray(self.returned))
        return sig


def build_impl(spec: KernelSpec, impl: str, machine: Machine = AVX512) -> Module:
    """Compile one implementation of a kernel to an IR module."""
    if impl == "scalar":
        return compile_scalar(spec.scalar_src, f"{spec.name}.scalar")
    if impl == "autovec":
        return compile_autovec(spec.scalar_src, machine, f"{spec.name}.autovec")
    if impl == "parsimony":
        return compile_parsimony(spec.psim_src, module_name=f"{spec.name}.parsimony")
    if impl == "ispc":
        return compile_ispc(spec.psim_src, machine, f"{spec.name}.ispc")
    if impl == "handwritten":
        module = Module(f"{spec.name}.hand")
        spec.hand_build(module)
        # Intrinsics code still goes through the compiler's -O pipeline.
        from ..passes import constant_fold, cse, dce, licm

        for function in module.functions.values():
            constant_fold(function)
            cse(function)
            licm(function)
            dce(function)
        return module
    raise ValueError(f"unknown implementation {impl!r}")


def _effective_factor(module: Module) -> int:
    """The batch factor a compiled parsimony module actually runs at
    (1 = unbatched, whether batching was off, rejected, or not requested)."""
    return int(module.attrs.get("batch_factor", 1))


def _timed_run(module: Module, machine: Machine, workload: Workload,
               predecode: bool, superinstructions: Optional[bool],
               codegen: Optional[bool] = None) -> float:
    """One untelemetered wall-clock sample of ``kernel`` on ``workload``.

    A fresh interpreter per sample; ``alloc_array`` copies the workload
    into VM memory, so the caller's arrays stay pristine for the real run.
    """
    interp = Interpreter(module, machine=machine, predecode=predecode,
                         superinstructions=superinstructions,
                         codegen=codegen)
    addrs = []
    for array in workload.arrays:
        addrs.append(interp.memory.alloc_array(array))
        interp.memory.alloc(_GUARD_BYTES)
    interp.reset_stats()
    start = time.perf_counter()
    interp.run("kernel", *addrs, *workload.scalars)
    return time.perf_counter() - start


def _autotune_parsimony(spec: KernelSpec, machine: Machine,
                        workload: Workload, predecode: bool,
                        superinstructions: Optional[bool],
                        codegen: Optional[bool] = None):
    """Profile-guided module selection for the parsimony implementation.

    Consults the persisted profile for this kernel's content fingerprint:
    a pinned winner compiles straight to its batch request; an unpinned
    kernel triggers a measurement sweep over the candidate requests
    (deduped by the effective factor each one compiles to) crossed with
    the execution engine — decoded vs whole-kernel codegen — pins the
    winning ``(factor, codegen)`` pair, and runs that.  An explicit
    ``codegen`` argument freezes that axis: only the requested leg is
    measured and pinned.  Returns ``(module, info, use_codegen)`` where
    ``info`` is the ``autotune`` record attached to the run's telemetry
    entry and ``use_codegen`` is the engine leg the real run should use.
    """
    fp = autotune.fingerprint(spec.psim_src)
    engine = autotune.engine_config(superinstructions, machine)
    name = f"{spec.name}.parsimony"
    dec = autotune.decision(fp, engine)
    if dec["state"] == "pinned":
        module = compile_parsimony(spec.psim_src, module_name=name,
                                   batch_request=dec["request"])
        use_cg = dec["codegen"] if codegen is None else bool(codegen)
        return module, {
            "state": "pinned", "fingerprint": fp, "engine": engine,
            "factor": dec["factor"], "request": dec["request"],
            "codegen": use_cg, "reason": dec["reason"],
        }, use_cg
    reps = autotune.measure_reps()
    # Candidate requests dedupe by the *effective* factor each compiles to
    # (an 8-gang kernel's auto suggestion may be 2, collapsing with the
    # explicit B=2 candidate); the pin keeps the request, since only the
    # original request — auto picks per-loop factors, a forced B does not —
    # reproduces the measured module exactly.
    candidates: Dict[int, tuple] = {}
    for request in dec["requests"]:
        candidate = compile_parsimony(spec.psim_src, module_name=name,
                                      batch_request=request)
        candidates.setdefault(_effective_factor(candidate),
                              (request, candidate))
    legs = (False, True) if codegen is None else (bool(codegen),)
    # Interleave the candidates round-robin rather than timing each one's
    # repetitions back-to-back: a slow machine phase (CPU throttling, a
    # noisy neighbor) then lands on every candidate instead of sinking
    # whichever one it coincided with.
    walls: Dict[tuple, list] = {
        (factor, cg): [] for factor in candidates for cg in legs}
    for _ in range(reps):
        for factor, (_, candidate) in sorted(candidates.items()):
            for cg in legs:
                walls[(factor, cg)].append(
                    _timed_run(candidate, machine, workload, predecode,
                               superinstructions, codegen=cg))
    measured: Dict[tuple, float] = {}
    for key in sorted(walls):
        wall = min(walls[key])
        autotune.record_measurement(fp, engine, key[0], wall, codegen=key[1])
        measured[key] = wall
    # Smallest factor within PIN_MARGIN of the fastest leg, then codegen
    # within that factor only past CODEGEN_MARGIN: each axis must win
    # decisively, else noise pins a config that merely tied.
    if codegen is None:
        best, best_cg = autotune.choose_config(measured)
    else:
        best = autotune.choose_factor(
            {f: w for (f, _), w in measured.items()})
        best_cg = legs[0]
    best_request, best_module = candidates[best]
    reason = autotune.pin(fp, engine, best, measured[(best, best_cg)],
                          measured, request=best_request, codegen=best_cg)
    return best_module, {
        "state": "measured", "fingerprint": fp, "engine": engine,
        "factor": best, "request": best_request, "codegen": best_cg,
        "reason": reason,
        "measured": {autotune.sample_key(f, cg): w
                     for (f, cg), w in measured.items()},
    }, best_cg


def run_impl(spec: KernelSpec, impl: str, machine: Machine = AVX512,
             module: Optional[Module] = None,
             workload: Optional[Workload] = None,
             predecode: bool = True,
             superinstructions: Optional[bool] = None,
             codegen: Optional[bool] = None) -> KernelResult:
    """Execute one implementation on the kernel's seeded workload.

    ``superinstructions`` forwards to the interpreter's decode-level
    fusion toggle (``None`` → default on, ``REPRO_NO_FUSE`` honored);
    ``codegen`` forwards to the whole-kernel codegen engine toggle
    (``None`` → ``REPRO_CODEGEN``/``REPRO_NO_CODEGEN`` honored).

    With ``REPRO_AUTOTUNE=1`` (and no explicit ``REPRO_BATCH`` /
    ``REPRO_NO_BATCH`` override, which always wins), the parsimony
    implementation is selected by the profile-guided tuner instead of the
    static cost model — including which engine leg (decoded vs codegen)
    the kernel runs on, unless ``codegen`` is passed explicitly: see
    :mod:`repro.autotune`.
    """
    workload = workload or spec.workload()
    autotune_info = None
    if (module is None and impl == "parsimony" and autotune.enabled()
            and batching_request() is None and not faultinject.active()):
        module, autotune_info, codegen = _autotune_parsimony(
            spec, machine, workload, predecode, superinstructions, codegen)
    module = module or build_impl(spec, impl, machine)
    interp = Interpreter(module, machine=machine, predecode=predecode,
                         superinstructions=superinstructions,
                         codegen=codegen)
    addrs = []
    for array in workload.arrays:
        addrs.append(interp.memory.alloc_array(array))
        interp.memory.alloc(_GUARD_BYTES)
    # Interpreter stats accumulate across run() calls; start this
    # measurement from a known-zero state.
    interp.reset_stats()
    shards = shard.shard_count()
    shard_report = None
    start = time.perf_counter()
    if shards >= 2:
        # Supervised multi-process execution (REPRO_SHARDS): bitwise
        # identical to the in-process engine, or an in-process run with a
        # ``rejected``/``degraded`` shard report — see :mod:`repro.shard`.
        recipe = None
        if impl == "parsimony" and autotune_info is None and diskcache.enabled():
            recipe = {"source": spec.psim_src,
                      "module_name": f"{spec.name}.parsimony"}
        engine = shard.run_sharded(
            module, "kernel", (*addrs, *workload.scalars),
            machine=machine, memory=interp.memory, shards=shards,
            predecode=predecode, superinstructions=superinstructions,
            label=f"{spec.name}/{impl}", recipe=recipe,
        )
        returned = engine.returned
        shard_report = engine.report
    else:
        engine = interp
        returned = interp.run("kernel", *addrs, *workload.scalars)
    wall = time.perf_counter() - start
    batch = None
    if "batch_factor" in module.attrs:
        batch = {
            "factor": module.attrs["batch_factor"],
            "applied": len(module.attrs.get("batch_applied", ())),
            "rejected": len(module.attrs.get("batch_rejected", ())),
            "replays": engine.batch_replays,
        }
    if autotune_info is not None:
        # The telemetered run doubles as a steady-state sample; a pinned
        # choice that regresses past the deopt threshold is dropped here
        # and the next run re-measures.
        if autotune.observe(autotune_info["fingerprint"],
                            autotune_info["engine"],
                            autotune_info["factor"], wall,
                            codegen=autotune_info["codegen"]) == "deopt":
            autotune_info["deopt"] = True
    codegen_report = None
    if getattr(engine, "codegen", False):
        codegen_report = engine.codegen_report()
    telemetry.record_vm_run(
        f"{spec.name}/{impl}", engine.stats, engine.hotspots(),
        fusion=engine.fusion_report(), wall_seconds=wall, batch=batch,
        autotune=autotune_info, shard=shard_report, codegen=codegen_report,
    )
    outputs = [
        interp.memory.read_array(addrs[idx], workload.arrays[idx].dtype,
                                 workload.arrays[idx].size)
        for idx in workload.outputs
    ]
    return KernelResult(
        impl=impl,
        cycles=engine.stats.cycles,
        stats=engine.stats,
        outputs=outputs,
        returned=returned if workload.returns_value else None,
    )


def check_kernel(spec: KernelSpec, machine: Machine = AVX512,
                 impls: Sequence[str] = IMPLEMENTATIONS) -> Dict[str, KernelResult]:
    """Run every implementation and assert identical outputs (and, when a
    numpy reference exists, agreement with it)."""
    results = {impl: run_impl(spec, impl, machine) for impl in impls}
    workload = spec.workload()
    rtol = workload.rtol

    def compare(got, want, message):
        if rtol is None:
            np.testing.assert_array_equal(got, want, err_msg=message)
        else:
            np.testing.assert_allclose(got, want, rtol=rtol, err_msg=message)

    baseline = results[impls[0]]
    base_sig = baseline.output_signature()
    for impl, result in results.items():
        sig = result.output_signature()
        assert len(sig) == len(base_sig), f"{spec.name}/{impl}: output arity differs"
        for got, want in zip(sig, base_sig):
            compare(got, want, f"{spec.name}: {impl} output differs from {impls[0]}")
    if spec.ref is not None:
        expected = spec.ref(workload)
        for got, want in zip(base_sig, expected):
            compare(
                np.asarray(got), np.asarray(want),
                f"{spec.name}: {impls[0]} disagrees with numpy reference",
            )
    return results


def measure_kernel(spec: KernelSpec, machine: Machine = AVX512,
                   impls: Sequence[str] = IMPLEMENTATIONS,
                   superinstructions: Optional[bool] = None) -> Dict[str, float]:
    """Speedup of every implementation relative to scalar."""
    results = {
        impl: run_impl(spec, impl, machine, superinstructions=superinstructions)
        for impl in impls
    }
    scalar = results["scalar"].cycles
    return {impl: scalar / r.cycles for impl, r in results.items()}


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize_telemetry(session: "telemetry.Telemetry") -> Dict[str, Dict[str, float]]:
    """Fold a telemetry session's VM runs into a kernel × impl cycle table.

    ``run_impl`` labels each run ``"<kernel>/<impl>"``; later runs of the
    same pair overwrite earlier ones (each run's stats are self-contained
    thanks to ``reset_stats``).
    """
    table: Dict[str, Dict[str, float]] = {}
    for run in session.vm_runs:
        kernel, _, impl = run["label"].partition("/")
        table.setdefault(kernel, {})[impl] = run["cycles"]
    return table
