"""Kernel specification: one benchmark in N implementations.

Each Simd-Library-style kernel provides a serial PsimC source (compiled
both unvectorized — "LLVM scalar" — and through the loop auto-vectorizer),
a Parsimony PsimC source with a ``psim`` region, and a hand-written
intrinsics builder, mirroring the four configurations of the paper's
Figure 5.  Every implementation defines a function named ``kernel`` whose
parameters are all pointers first, then all scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir.module import Module
from .workloads import Workload

__all__ = ["KernelSpec", "elementwise_sources", "reduction_sources", "rowwise_sources"]


@dataclass
class KernelSpec:
    """A benchmark kernel and everything needed to build/run/check it."""

    name: str
    group: str
    scalar_src: str
    psim_src: str
    #: None for suites without a hand-written configuration (ispc suite).
    hand_build: Optional[Callable[[Module], None]]
    workload: Callable[[], Workload]
    #: Optional independent numpy reference: ``ref(workload) -> list`` of
    #: expected output arrays (or the expected return value).
    ref: Optional[Callable] = None
    #: Documentation: what the kernel computes.
    doc: str = ""

    def __post_init__(self):
        if "void kernel(" not in self.scalar_src and " kernel(" not in self.scalar_src:
            raise ValueError(f"{self.name}: scalar source must define kernel()")


# ---------------------------------------------------------------------------
# source templates — the scalar and psim variants share the body text, so
# the two implementations are the same algorithm by construction (§5: "we
# adapted the ispc versions into Parsimony maintaining the same algorithms")
# ---------------------------------------------------------------------------


def elementwise_sources(params: str, body: str, gang: int = 64,
                        decl: str = "", psim_body: Optional[str] = None) -> tuple:
    """(scalar_src, psim_src) for a flat per-element kernel.

    ``body`` may use ``i`` (the element index, u64) and the parameters.
    ``psim_body`` lets the Parsimony port use the SPMD API's narrow
    operations (saturating math etc., §3) while the serial version stays
    idiomatic C — matching how the paper's ports differ from the Simd
    Library's "Base" implementations.
    """
    scalar = f"""
    {decl}
    void kernel({params}, u64 n) {{
        for (u64 i = 0; i < n; i++) {{
            {body}
        }}
    }}
    """
    psim = f"""
    {decl}
    void kernel({params}, u64 n) {{
        psim (gang_size={gang}, num_threads=n) {{
            u64 i = psim_get_thread_num();
            {psim_body or body}
        }}
    }}
    """
    return scalar, psim


def reduction_sources(params: str, init: str, accum_body: str, result_type: str,
                      result_expr: str = "acc", gang: int = 64,
                      psim_reduce: str = "psim_reduce_add_sync") -> tuple:
    """(scalar_src, psim_src) for a whole-array reduction.

    The scalar variant is a serial accumulation loop; the Parsimony variant
    accumulates per-gang with an explicit horizontal reduction and one
    atomic-free store per gang into a partials array combined on the host —
    here simplified to an atomic add on the result cell, the idiomatic
    SPMD reduction.
    """
    scalar = f"""
    void kernel({params}, {result_type}* out, u64 n) {{
        {result_type} acc = {init};
        for (u64 i = 0; i < n; i++) {{
            {accum_body}
        }}
        out[0] = {result_expr};
    }}
    """
    psim = f"""
    void kernel({params}, {result_type}* out, u64 n) {{
        out[0] = 0;
        psim (gang_size={gang}, num_threads=n) {{
            u64 i = psim_get_thread_num();
            {result_type} acc = 0;
            {accum_body}
            {result_type} gang_total = {psim_reduce}(acc);
            if (psim_get_lane_num() == 0) {{
                psim_atomic_add(out, gang_total);
            }}
        }}
    }}
    """
    return scalar, psim


def rowwise_sources(params: str, body: str, gang: int = 64,
                    xspan: str = "w", decl: str = "") -> tuple:
    """(scalar_src, psim_src) for a 2-D kernel: serial over rows ``y``,
    parallel over columns ``x`` (how the Simd Library structures filters).

    ``body`` may use ``x``, ``y``, ``row`` (= y*w) and the parameters.
    ``xspan`` is the number of columns processed per row.
    """
    scalar = f"""
    {decl}
    void kernel({params}, u64 w, u64 h) {{
        for (u64 y = 0; y < h; y++) {{
            u64 row = y * w;
            for (u64 x = 0; x < {xspan}; x++) {{
                {body}
            }}
        }}
    }}
    """
    psim = f"""
    {decl}
    void kernel({params}, u64 w, u64 h) {{
        for (u64 y = 0; y < h; y++) {{
            u64 row = y * w;
            psim (gang_size={gang}, num_threads={xspan}) {{
                u64 x = psim_get_thread_num();
                {body}
            }}
        }}
    }}
    """
    return scalar, psim
