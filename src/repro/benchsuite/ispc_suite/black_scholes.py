"""ispc suite: options (Black-Scholes) — math-library-heavy elementwise."""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload, rng_for

N = 1024

# Polynomial CND approximation, exactly the ispc example's formulation.
_BODY = """
    f32 S = Sa[i];
    f32 X = Xa[i];
    f32 T = Ta[i];
    f32 d1 = (log(S / X) + (r + 0.5f * v * v) * T) / (v * sqrt(T));
    f32 d2 = d1 - v * sqrt(T);

    f32 k1 = 1.0f / (1.0f + 0.2316419f * abs(d1));
    f32 w1 = 0.31938153f * k1 - 0.356563782f * k1 * k1
           + 1.781477937f * k1 * k1 * k1
           - 1.821255978f * k1 * k1 * k1 * k1
           + 1.330274429f * k1 * k1 * k1 * k1 * k1;
    f32 cnd1 = 1.0f - 0.39894228f * exp(-0.5f * d1 * d1) * w1;
    if (d1 < 0.0f) { cnd1 = 1.0f - cnd1; }

    f32 k2 = 1.0f / (1.0f + 0.2316419f * abs(d2));
    f32 w2 = 0.31938153f * k2 - 0.356563782f * k2 * k2
           + 1.781477937f * k2 * k2 * k2
           - 1.821255978f * k2 * k2 * k2 * k2
           + 1.330274429f * k2 * k2 * k2 * k2 * k2;
    f32 cnd2 = 1.0f - 0.39894228f * exp(-0.5f * d2 * d2) * w2;
    if (d2 < 0.0f) { cnd2 = 1.0f - cnd2; }

    result[i] = S * cnd1 - X * exp(-r * T) * cnd2;
"""

SERIAL_SRC = f"""
void kernel(f32* Sa, f32* Xa, f32* Ta, f32* result, f32 r, f32 v, u64 n) {{
    for (u64 i = 0; i < n; i++) {{
        {_BODY}
    }}
}}
"""

PSIM_SRC = f"""
void kernel(f32* Sa, f32* Xa, f32* Ta, f32* result, f32 r, f32 v, u64 n) {{
    psim (gang_size=16, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {_BODY}
    }}
}}
"""


def _workload() -> Workload:
    rng = rng_for("black_scholes")
    S = (rng.random(N) * 100 + 5).astype(np.float32)
    X = (rng.random(N) * 100 + 5).astype(np.float32)
    T = (rng.random(N) * 2 + 0.25).astype(np.float32)
    out = np.zeros(N, np.float32)
    return Workload([S, X, T, out], [0.02, 0.3, N], outputs=[3], rtol=1e-5)


BENCH = KernelSpec(
    name="options",
    group="ispc",
    doc="Black-Scholes European call pricing (ispc 'options')",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
)
