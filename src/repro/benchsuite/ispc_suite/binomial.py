"""ispc suite: binomial options — the pow-heavy benchmark.

This is the one benchmark where the paper reports a Parsimony/ispc gap:
0.71×, traced entirely to SLEEF's vector ``pow`` being 2.6× slower than
ispc's built-in (§6).  The port below follows the ispc example's
formulation: a per-option lattice array initialized with ``pow`` (the
math-library-bound phase) and an O(steps²) backward induction of pure
multiply/add work — so the ``pow`` flavour difference shows up exactly as
a fraction of the total, as in the paper.

The per-thread ``V[]`` lattice also exercises the §4.2.3 private-alloca
SoA swizzle: with it, every lattice access is a packed vector load/store.
"""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload, rng_for

N_OPTIONS = 128
STEPS = 12  # lattice has STEPS+1 nodes; V[] is sized for up to 16

_BODY = """
    f32 S = Sa[i];
    f32 X = Xa[i];
    f32 T = Ta[i];
    f32 dt = T / (f32)steps;
    f32 u = exp(v * sqrt(dt));
    f32 d = 1.0f / u;
    f32 disc = exp(r * dt);
    f32 invDisc = 1.0f / disc;
    f32 pu = (disc - d) / (u - d);
    f32 pd = 1.0f - pu;

    f32 V[16];
    for (i32 k = 0; k <= steps; k++) {
        f32 sk = S * pow(u, (f32)k) * pow(d, (f32)(steps - k));
        V[(u64)k] = max(sk - X, 0.0f);
    }
    for (i32 s = steps; s >= 1; s = s - 1) {
        for (i32 k = 0; k < s; k++) {
            V[(u64)k] = (pu * V[(u64)k + 1] + pd * V[(u64)k]) * invDisc;
        }
    }
    result[i] = V[0];
"""

SERIAL_SRC = f"""
void kernel(f32* Sa, f32* Xa, f32* Ta, f32* result,
            f32 r, f32 v, i32 steps, u64 n) {{
    for (u64 i = 0; i < n; i++) {{
        {_BODY}
    }}
}}
"""

PSIM_SRC = f"""
void kernel(f32* Sa, f32* Xa, f32* Ta, f32* result,
            f32 r, f32 v, i32 steps, u64 n) {{
    psim (gang_size=16, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {_BODY}
    }}
}}
"""


def _workload() -> Workload:
    rng = rng_for("binomial")
    S = (rng.random(N_OPTIONS) * 100 + 5).astype(np.float32)
    X = (rng.random(N_OPTIONS) * 100 + 5).astype(np.float32)
    T = (rng.random(N_OPTIONS) * 2 + 0.25).astype(np.float32)
    out = np.zeros(N_OPTIONS, np.float32)
    return Workload(
        [S, X, T, out], [0.02, 0.3, STEPS, N_OPTIONS], outputs=[3], rtol=1e-4
    )


BENCH = KernelSpec(
    name="binomial_options",
    group="ispc",
    doc="binomial option pricing: pow-initialized lattice + backward induction",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
)
