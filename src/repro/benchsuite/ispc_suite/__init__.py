"""The ispc benchmark suite (paper §5, Figure 4).

Seven benchmarks ported between three implementations:

* a **serial** PsimC version, compiled un-vectorized and through the
  auto-vectorizer ("LLVM Auto-vectorization", the figure's baseline);
* a **Parsimony** PsimC version with ``psim`` regions (SLEEF math);
* the *same* SPMD source compiled in **ispc mode** (flag-coupled gang
  size, built-in math) — the paper ported between the two languages
  keeping the same algorithms (§5); our two SPMD configurations share the
  source by construction.

Figure 4 reports speedup over the auto-vectorized serial version.
"""

from typing import Dict, List

from ..kernelspec import KernelSpec

from . import aobench, binomial, black_scholes, mandelbrot, noise, stencil, volume

_MODULES = [mandelbrot, black_scholes, binomial, noise, stencil, aobench, volume]

BENCHMARKS: List[KernelSpec] = [m.BENCH for m in _MODULES]
BY_NAME: Dict[str, KernelSpec] = {b.name: b for b in BENCHMARKS}

__all__ = ["BENCHMARKS", "BY_NAME"]
