"""ispc suite: aobench — ambient occlusion renderer (spheres + plane).

A compact port of the classic aobench: orthographic primary rays against
three spheres and a ground plane, with ambient occlusion estimated from a
fixed table of sample directions.  Heavy divergent control flow and
``sqrt``-rich arithmetic, like the original.
"""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload

W, H = 32, 24
NSAMPLES = 8

_DECL = """
f32 sphere_hit(f32 ox, f32 oy, f32 oz, f32 dx, f32 dy, f32 dz,
               f32 cx, f32 cy, f32 cz, f32 radius) {
    f32 rx = ox - cx;
    f32 ry = oy - cy;
    f32 rz = oz - cz;
    f32 b = rx * dx + ry * dy + rz * dz;
    f32 c = rx * rx + ry * ry + rz * rz - radius * radius;
    f32 disc = b * b - c;
    if (disc <= 0.0f) { return -1.0f; }
    f32 t = -b - sqrt(disc);
    if (t <= 0.0f) { return -1.0f; }
    return t;
}
"""

_SPHERES = (
    (-1.0, 0.0, -2.2, 0.5),
    (0.0, 0.0, -2.0, 0.5),
    (1.0, 0.0, -2.2, 0.5),
)


def _closest_hit(ox, oy, oz, dx, dy, dz) -> str:
    """PsimC snippet: nearest sphere/plane hit -> tbest, normal, hit flag."""
    lines = [
        "f32 tbest = 1.0e30f;",
        "f32 nx = 0.0f; f32 ny = 0.0f; f32 nz = 0.0f;",
        "bool hit = false;",
    ]
    for sx, sy, sz, sr in _SPHERES:
        lines.append(
            f"{{ f32 ts = sphere_hit({ox}, {oy}, {oz}, {dx}, {dy}, {dz}, "
            f"{sx}f, {sy}f, {sz}f, {sr}f); "
            "if (ts > 0.0f && ts < tbest) { tbest = ts; hit = true; "
            f"f32 px = {ox} + {dx} * ts; f32 py = {oy} + {dy} * ts; "
            f"f32 pz = {oz} + {dz} * ts; "
            f"nx = (px - ({sx}f)) * {1.0 / sr}f; ny = (py - ({sy}f)) * {1.0 / sr}f; "
            f"nz = (pz - ({sz}f)) * {1.0 / sr}f; }} }}"
        )
    # ground plane y = -0.5
    lines.append(
        f"if ({dy} < -1.0e-6f) {{ f32 tp = (-0.5f - {oy}) / {dy}; "
        "if (tp > 0.0f && tp < tbest) { tbest = tp; hit = true; "
        "nx = 0.0f; ny = 1.0f; nz = 0.0f; } }"
    )
    return " ".join(lines)


def _occluder_probe() -> str:
    probes = []
    for sx, sy, sz, sr in _SPHERES:
        probes.append(
            f"{{ f32 tp = sphere_hit(sox, soy, soz, ax, ay, az, "
            f"{sx}f, {sy}f, {sz}f, {sr}f); "
            "if (tp > 0.0f && (tocc < 0.0f || tp < tocc)) { tocc = tp; } }"
        )
    return " ".join(probes)


_BODY = f"""
    f32 px = -1.0f + 2.0f * (f32)(i % width) / (f32)width;
    f32 py = 1.0f - 2.0f * (f32)(i / width) / (f32)height;
    f32 ox = px; f32 oy = py; f32 oz = 0.0f;
    f32 dx = 0.0f; f32 dy = 0.0f; f32 dz = -1.0f;
    {_closest_hit('ox', 'oy', 'oz', 'dx', 'dy', 'dz')}
    f32 occlusion = 0.0f;
    if (hit) {{
        f32 hx = ox + dx * tbest + nx * 0.001f;
        f32 hy = oy + dy * tbest + ny * 0.001f;
        f32 hz = oz + dz * tbest + nz * 0.001f;
        for (i32 s = 0; s < nsamples; s++) {{
            f32 ax = dirs[3 * s];
            f32 ay = dirs[3 * s + 1];
            f32 az = dirs[3 * s + 2];
            f32 cosn = ax * nx + ay * ny + az * nz;
            if (cosn < 0.0f) {{ ax = -ax; ay = -ay; az = -az; cosn = -cosn; }}
            f32 tocc = -1.0f;
            f32 sox = hx; f32 soy = hy; f32 soz = hz;
            {_occluder_probe()}
            if (tocc > 0.0f) {{ occlusion = occlusion + cosn; }}
        }}
        occlusion = 1.0f - occlusion / (f32)nsamples;
    }}
    img[i] = occlusion;
"""

SERIAL_SRC = f"""
{_DECL}
void kernel(f32* img, f32* dirs, u64 width, u64 height, i32 nsamples, u64 n) {{
    for (u64 i = 0; i < n; i++) {{
        {_BODY}
    }}
}}
"""

PSIM_SRC = f"""
{_DECL}
void kernel(f32* img, f32* dirs, u64 width, u64 height, i32 nsamples, u64 n) {{
    psim (gang_size=16, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {_BODY}
    }}
}}
"""


def _workload() -> Workload:
    rng = np.random.default_rng(7)
    dirs = rng.normal(size=(NSAMPLES, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    img = np.zeros(W * H, np.float32)
    return Workload(
        [img, dirs.astype(np.float32).reshape(-1)],
        [W, H, NSAMPLES, img.size],
        outputs=[0],
        rtol=1e-5,
    )


BENCH = KernelSpec(
    name="aobench",
    group="ispc",
    doc="ambient occlusion renderer over spheres and a ground plane",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
)
