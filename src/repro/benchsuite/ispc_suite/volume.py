"""ispc suite: volume rendering — ray-march accumulation through a 3-D
density volume (data-dependent trilinear-free nearest lookups → gathers)."""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload, rng_for

W, H = 32, 24
VOL = 16  # volume is VOL^3 voxels
STEPS = 24

_BODY = """
    f32 px = (f32)(i %% width) / (f32)width;
    f32 py = (f32)(i / width) / (f32)height;
    // ray enters at (px, py, 0) and marches straight in +z
    f32 fx = px * (f32)(vol - 1);
    f32 fy = py * (f32)(vol - 1);
    i32 vx = (i32)fx;
    i32 vy = (i32)fy;
    f32 transmit = 1.0f;
    f32 light = 0.0f;
    for (i32 s = 0; s < %(steps)d; s++) {
        f32 fz = (f32)s * (f32)(vol - 1) / %(steps)d.0f;
        i32 vz = (i32)fz;
        u64 idx = (u64)((vz * vol + vy) * vol + vx);
        f32 density = volume[idx];
        f32 absorbed = density * 0.08f;
        light = light + transmit * absorbed;
        transmit = transmit * (1.0f - absorbed);
        if (transmit < 0.01f) { break; }
    }
    img[i] = light;
""" % {"steps": STEPS}

SERIAL_SRC = f"""
void kernel(f32* img, f32* volume, u64 width, u64 height, i32 vol, u64 n) {{
    for (u64 i = 0; i < n; i++) {{
        {_BODY}
    }}
}}
"""

PSIM_SRC = f"""
void kernel(f32* img, f32* volume, u64 width, u64 height, i32 vol, u64 n) {{
    psim (gang_size=16, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {_BODY}
    }}
}}
"""


def _workload() -> Workload:
    rng = rng_for("volume")
    density = rng.random(VOL * VOL * VOL).astype(np.float32)
    img = np.zeros(W * H, np.float32)
    return Workload([img, density], [W, H, VOL, img.size], outputs=[0], rtol=1e-5)


BENCH = KernelSpec(
    name="volume_rendering",
    group="ispc",
    doc="front-to-back ray-march through a random density volume",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
)
