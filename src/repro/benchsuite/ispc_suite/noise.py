"""ispc suite: noise — gradient value noise over a 2-D grid (arithmetic
lattice hash, smoothstep interpolation)."""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload

W, H = 64, 24
SCALE = 0.17

_DECL = """
f32 latticehash(i32 ix, i32 iy) {
    i32 h = ix * 374761393 + iy * 668265263;
    h = (h ^ (h >> 13)) * 1274126177;
    h = h ^ (h >> 16);
    return (f32)(h & 1023) * 0.001953125f - 1.0f;
}
"""

_BODY = """
    f32 x = (f32)(i % width) * scale;
    f32 y = (f32)(i / width) * scale;
    i32 ix = (i32)floor(x);
    i32 iy = (i32)floor(y);
    f32 fx = x - (f32)ix;
    f32 fy = y - (f32)iy;
    f32 sx = fx * fx * (3.0f - 2.0f * fx);
    f32 sy = fy * fy * (3.0f - 2.0f * fy);
    f32 v00 = latticehash(ix, iy);
    f32 v10 = latticehash(ix + 1, iy);
    f32 v01 = latticehash(ix, iy + 1);
    f32 v11 = latticehash(ix + 1, iy + 1);
    f32 vx0 = v00 + sx * (v10 - v00);
    f32 vx1 = v01 + sx * (v11 - v01);
    out[i] = vx0 + sy * (vx1 - vx0);
"""

SERIAL_SRC = f"""
{_DECL}
void kernel(f32* out, u64 width, f32 scale, u64 n) {{
    for (u64 i = 0; i < n; i++) {{
        {_BODY}
    }}
}}
"""

PSIM_SRC = f"""
{_DECL}
void kernel(f32* out, u64 width, f32 scale, u64 n) {{
    psim (gang_size=16, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {_BODY}
    }}
}}
"""


def _workload() -> Workload:
    out = np.zeros(W * H, np.float32)
    return Workload([out], [W, np.float32(SCALE), out.size], outputs=[0])


BENCH = KernelSpec(
    name="noise",
    group="ispc",
    doc="value noise with an arithmetic lattice hash",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
)
