"""ispc suite: stencil — iterated 2-D 5-point diffusion stencil."""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload, rng_for

W, H = 64, 24
TSTEPS = 4

_BODY = """
    u64 p = row + w + x + 1;
    dst[p] = c0 * src[p]
           + c1 * (src[p - 1] + src[p + 1] + src[p - w] + src[p + w]);
"""

SERIAL_SRC = f"""
void kernel(f32* a, f32* b, f32 c0, f32 c1, u64 w, u64 h, u64 tsteps) {{
    for (u64 t = 0; t < tsteps; t++) {{
        f32* src = a;
        f32* dst = b;
        if (t % 2 == 1) {{ src = b; dst = a; }}
        for (u64 y = 0; y < h - 2; y++) {{
            u64 row = y * w;
            for (u64 x = 0; x < w - 2; x++) {{
                {_BODY}
            }}
        }}
    }}
}}
"""

PSIM_SRC = f"""
void kernel(f32* a, f32* b, f32 c0, f32 c1, u64 w, u64 h, u64 tsteps) {{
    for (u64 t = 0; t < tsteps; t++) {{
        f32* src = a;
        f32* dst = b;
        if (t % 2 == 1) {{ src = b; dst = a; }}
        for (u64 y = 0; y < h - 2; y++) {{
            u64 row = y * w;
            psim (gang_size=16, num_threads=w - 2) {{
                u64 x = psim_get_thread_num();
                {_BODY}
            }}
        }}
    }}
}}
"""


def _workload() -> Workload:
    rng = rng_for("stencil")
    a = rng.random(W * H).astype(np.float32)
    b = a.copy()
    return Workload(
        [a, b],
        [np.float32(0.6), np.float32(0.1), W, H, TSTEPS],
        outputs=[0, 1],
    )


BENCH = KernelSpec(
    name="stencil",
    group="ispc",
    doc="time-iterated 5-point diffusion stencil",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
)
