"""ispc suite: mandelbrot — the canonical divergent-loop SPMD benchmark."""

from __future__ import annotations

import numpy as np

from ..kernelspec import KernelSpec
from ..workloads import Workload

W, H = 64, 32
MAX_ITER = 24
X0, X1 = -2.0, 1.0
Y0, Y1 = -1.0, 1.0

_BODY = """
    f32 cx = x0 + (f32)(i %% width) * dx;
    f32 cy = y0 + (f32)(i / width) * dy;
    f32 zx = 0.0f;
    f32 zy = 0.0f;
    i32 iter = 0;
    while (iter < %(max_iter)d && zx * zx + zy * zy < 4.0f) {
        f32 nzx = zx * zx - zy * zy + cx;
        zy = 2.0f * zx * zy + cy;
        zx = nzx;
        iter = iter + 1;
    }
    counts[i] = iter;
""" % {"max_iter": MAX_ITER}

SERIAL_SRC = f"""
void kernel(i32* counts, u64 width, f32 x0, f32 y0, f32 dx, f32 dy, u64 n) {{
    for (u64 i = 0; i < n; i++) {{
        {_BODY}
    }}
}}
"""

PSIM_SRC = f"""
void kernel(i32* counts, u64 width, f32 x0, f32 y0, f32 dx, f32 dy, u64 n) {{
    psim (gang_size=16, num_threads=n) {{
        u64 i = psim_get_thread_num();
        {_BODY}
    }}
}}
"""


def _workload() -> Workload:
    counts = np.zeros(W * H, np.int32)
    dx = np.float32((X1 - X0) / W)
    dy = np.float32((Y1 - Y0) / H)
    return Workload([counts], [W, X0, Y0, dx, dy, counts.size], outputs=[0])


def _ref(w: Workload):
    dx = np.float32((X1 - X0) / W)
    dy = np.float32((Y1 - Y0) / H)
    xs = np.float32(X0) + (np.arange(W * H, dtype=np.int64) % W).astype(np.float32) * dx
    ys = np.float32(Y0) + (np.arange(W * H, dtype=np.int64) // W).astype(np.float32) * dy
    zx = np.zeros(W * H, np.float32)
    zy = np.zeros(W * H, np.float32)
    iters = np.zeros(W * H, np.int32)
    for _ in range(MAX_ITER):
        active = zx * zx + zy * zy < np.float32(4.0)
        nzx = zx * zx - zy * zy + xs
        nzy = np.float32(2.0) * zx * zy + ys
        zx = np.where(active, nzx, zx).astype(np.float32)
        zy = np.where(active, nzy, zy).astype(np.float32)
        iters += active.astype(np.int32)
    return [iters]


BENCH = KernelSpec(
    name="mandelbrot",
    group="ispc",
    doc="Mandelbrot escape-iteration counts over a pixel grid",
    scalar_src=SERIAL_SRC,
    psim_src=PSIM_SRC,
    hand_build=None,
    workload=_workload,
    ref=_ref,
)
