"""Simd Library kernels: background-model maintenance family.

Per-pixel state updates driven by comparisons — the family is rich in
data-dependent control flow, which the serial versions express as
branches/ternaries and the Parsimony versions as saturating API ops.
"""

from __future__ import annotations

import numpy as np

from ...ir import I8, I64
from ..kernelspec import KernelSpec, elementwise_sources
from ..workloads import Workload, gray_image, rng_for
from .handutil import P8, simple_hand

KERNELS = []


def _spec(**kwargs):
    spec = KernelSpec(group="background", **kwargs)
    KERNELS.append(spec)
    return spec


def _make(name, doc, params, body, psim_body, hand_body, arrays_fn, scalars_fn,
          outputs, ref=None):
    scalar_src, psim_src = elementwise_sources(params, body, psim_body=psim_body)

    def workload():
        rng = rng_for(name)
        arrays = arrays_fn(rng)
        return Workload(arrays, scalars_fn(arrays), outputs=outputs)

    def hand(module):
        sig = []
        for part in params.split(","):
            t, pname = part.split()
            sig.append((pname, P8 if t.endswith("*") else I8))
        sig.append(("n", I64))
        simple_hand(module, sig, 64, hand_body)

    _spec(
        name=name,
        doc=doc,
        scalar_src=scalar_src,
        psim_src=psim_src,
        hand_build=hand,
        workload=workload,
        ref=ref,
    )


# -- BackgroundGrowRangeSlow -----------------------------------------------------------

_make(
    "BackgroundGrowRangeSlow",
    "grow [lo, hi] toward each pixel by one step",
    "u8* value, u8* lo, u8* hi",
    "u8 v = value[i]; "
    "if (v < lo[i]) { lo[i] = lo[i] - 1; } "
    "if (v > hi[i]) { hi[i] = (u8)min((i32)hi[i] + 1, 255); }",
    "u8 v = value[i]; "
    "lo[i] = v < lo[i] ? lo[i] - 1 : lo[i]; "
    "hi[i] = v > hi[i] ? addsat(hi[i], (u8)1) : hi[i];",
    lambda k, i: _grow_slow_hand(k, i),
    lambda rng: [gray_image(rng), gray_image(rng), gray_image(rng)],
    lambda arrays: [arrays[0].size],
    outputs=[1, 2],
    ref=lambda w: [
        np.where(w.arrays[0] < w.arrays[1], w.arrays[1] - 1, w.arrays[1]),
        np.where(
            w.arrays[0] > w.arrays[2],
            np.minimum(w.arrays[2].astype(np.int32) + 1, 255).astype(np.uint8),
            w.arrays[2],
        ),
    ],
)


def _grow_slow_hand(k, i):
    v = k.load(k.p.value, i, 64)
    lo = k.load(k.p.lo, i, 64)
    hi = k.load(k.p.hi, i, 64)
    one = k.splat(I8, 1, 64)
    lo2 = k.blend(k.icmp("ult", v, lo), k.sub(lo, one), lo)
    hi2 = k.blend(k.icmp("ugt", v, hi), k.sat_add_u8(hi, one), hi)
    k.store(lo2, k.p.lo, i)
    k.store(hi2, k.p.hi, i)


# -- BackgroundGrowRangeFast ------------------------------------------------------------

_make(
    "BackgroundGrowRangeFast",
    "grow [lo, hi] to include each pixel",
    "u8* value, u8* lo, u8* hi",
    "u8 v = value[i]; lo[i] = min(v, lo[i]); hi[i] = max(v, hi[i]);",
    None,
    lambda k, i: _grow_fast_hand(k, i),
    lambda rng: [gray_image(rng), gray_image(rng), gray_image(rng)],
    lambda arrays: [arrays[0].size],
    outputs=[1, 2],
    ref=lambda w: [
        np.minimum(w.arrays[0], w.arrays[1]),
        np.maximum(w.arrays[0], w.arrays[2]),
    ],
)


def _grow_fast_hand(k, i):
    v = k.load(k.p.value, i, 64)
    k.store(k.umin(v, k.load(k.p.lo, i, 64)), k.p.lo, i)
    k.store(k.umax(v, k.load(k.p.hi, i, 64)), k.p.hi, i)


# -- BackgroundIncrementCount --------------------------------------------------------------

_make(
    "BackgroundIncrementCount",
    "count pixels outside the model range (saturating counters)",
    "u8* value, u8* lo, u8* hi, u8* loCount, u8* hiCount",
    "u8 v = value[i]; "
    "if (v < lo[i]) { loCount[i] = (u8)min((i32)loCount[i] + 1, 255); } "
    "if (v > hi[i]) { hiCount[i] = (u8)min((i32)hiCount[i] + 1, 255); }",
    "u8 v = value[i]; "
    "loCount[i] = v < lo[i] ? addsat(loCount[i], (u8)1) : loCount[i]; "
    "hiCount[i] = v > hi[i] ? addsat(hiCount[i], (u8)1) : hiCount[i];",
    lambda k, i: _inc_count_hand(k, i),
    lambda rng: [gray_image(rng) for _ in range(5)],
    lambda arrays: [arrays[0].size],
    outputs=[3, 4],
)


def _inc_count_hand(k, i):
    v = k.load(k.p.value, i, 64)
    one = k.splat(I8, 1, 64)
    for bound, count, pred in (("lo", "loCount", "ult"), ("hi", "hiCount", "ugt")):
        limit = k.load(getattr(k.p, bound), i, 64)
        cnt = k.load(getattr(k.p, count), i, 64)
        updated = k.blend(k.icmp(pred, v, limit), k.sat_add_u8(cnt, one), cnt)
        k.store(updated, getattr(k.p, count), i)


# -- BackgroundAdjustRange --------------------------------------------------------------------

_make(
    "BackgroundAdjustRange",
    "widen/narrow the model range from the outlier counters",
    "u8* loCount, u8* loValue, u8* hiCount, u8* hiValue, u8 threshold",
    "if (loCount[i] > threshold) { loValue[i] = (u8)max((i32)loValue[i] - 1, 0); } "
    "if (hiCount[i] > threshold) { hiValue[i] = (u8)min((i32)hiValue[i] + 1, 255); } "
    "loCount[i] = 0; hiCount[i] = 0;",
    "loValue[i] = loCount[i] > threshold ? subsat(loValue[i], (u8)1) : loValue[i]; "
    "hiValue[i] = hiCount[i] > threshold ? addsat(hiValue[i], (u8)1) : hiValue[i]; "
    "loCount[i] = 0; hiCount[i] = 0;",
    lambda k, i: _adjust_hand(k, i),
    lambda rng: [gray_image(rng) for _ in range(4)],
    lambda arrays: [64, arrays[0].size],
    outputs=[0, 1, 2, 3],
)


def _adjust_hand(k, i):
    thr = k.broadcast(k.p.threshold, 64)
    one = k.splat(I8, 1, 64)
    zero = k.splat(I8, 0, 64)
    lc = k.load(k.p.loCount, i, 64)
    lv = k.load(k.p.loValue, i, 64)
    k.store(k.blend(k.icmp("ugt", lc, thr), k.sat_sub_u8(lv, one), lv), k.p.loValue, i)
    hc = k.load(k.p.hiCount, i, 64)
    hv = k.load(k.p.hiValue, i, 64)
    k.store(k.blend(k.icmp("ugt", hc, thr), k.sat_add_u8(hv, one), hv), k.p.hiValue, i)
    k.store(zero, k.p.loCount, i)
    k.store(zero, k.p.hiCount, i)


# -- BackgroundShiftRange ----------------------------------------------------------------------

_make(
    "BackgroundShiftRange",
    "shift the model range toward the current pixel",
    "u8* value, u8* lo, u8* hi",
    "i32 mid = ((i32)lo[i] + (i32)hi[i]) >> 1; "
    "i32 d = (i32)value[i] - mid; "
    "lo[i] = (u8)max(min((i32)lo[i] + d, 255), 0); "
    "hi[i] = (u8)max(min((i32)hi[i] + d, 255), 0);",
    "i32 mid = ((i32)lo[i] + (i32)hi[i]) >> 1; "
    "i32 d = (i32)value[i] - mid; "
    "lo[i] = (u8)max(min((i32)lo[i] + d, 255), 0); "
    "hi[i] = (u8)max(min((i32)hi[i] + d, 255), 0);",
    lambda k, i: _shift_hand(k, i),
    lambda rng: [gray_image(rng), gray_image(rng), gray_image(rng)],
    lambda arrays: [arrays[0].size],
    outputs=[1, 2],
)


def _shift_hand(k, i):
    from ...ir import I16

    v = k.widen_u8_u16(k.load(k.p.value, i, 64))
    lo = k.widen_u8_u16(k.load(k.p.lo, i, 64))
    hi = k.widen_u8_u16(k.load(k.p.hi, i, 64))
    mid = k.lshr(k.add(lo, hi), k.splat(I16, 1, 64))
    # d can be negative: work in i16, clamp via smin/smax.
    d = k.sub(v, mid)
    z = k.splat(I16, 0, 64)
    cap = k.splat(I16, 255, 64)
    lo2 = k.smax(k.smin(k.add(lo, d), cap), z)
    hi2 = k.smax(k.smin(k.add(hi, d), cap), z)
    k.store(k.narrow_to_u8(lo2), k.p.lo, i)
    k.store(k.narrow_to_u8(hi2), k.p.hi, i)


# -- BackgroundInitMask --------------------------------------------------------------------------

_make(
    "BackgroundInitMask",
    "initialize a mask where the source matches an index",
    "u8* src, u8* dst, u8 index, u8 value",
    "if (src[i] == index) { dst[i] = value; }",
    "dst[i] = src[i] == index ? value : dst[i];",
    lambda k, i: _initmask_hand(k, i),
    lambda rng: [
        (rng.integers(0, 4, 64 * 48)).astype(np.uint8),
        gray_image(rng, dtype=np.uint8),
    ],
    lambda arrays: [2, 0xCC, arrays[0].size],
    outputs=[1],
    ref=lambda w: [np.where(w.arrays[0] == 2, 0xCC, w.arrays[1]).astype(np.uint8)],
)


def _initmask_hand(k, i):
    v = k.load(k.p.src, i, 64)
    d = k.load(k.p.dst, i, 64)
    mask = k.icmp("eq", v, k.broadcast(k.p.index, 64))
    k.store(k.blend(mask, k.broadcast(k.p.value, 64), d), k.p.dst, i)


# -- EdgeBackgroundGrowRangeSlow -------------------------------------------------------------------

_make(
    "EdgeBackgroundGrowRangeSlow",
    "grow the edge background upward by one step",
    "u8* value, u8* background",
    "if (value[i] > background[i]) { "
    "background[i] = (u8)min((i32)background[i] + 1, 255); }",
    "background[i] = value[i] > background[i] ? addsat(background[i], (u8)1) "
    ": background[i];",
    lambda k, i: _edge_slow_hand(k, i),
    lambda rng: [gray_image(rng), gray_image(rng)],
    lambda arrays: [arrays[0].size],
    outputs=[1],
)


def _edge_slow_hand(k, i):
    v = k.load(k.p.value, i, 64)
    bg = k.load(k.p.background, i, 64)
    grown = k.blend(k.icmp("ugt", v, bg), k.sat_add_u8(bg, k.splat(I8, 1, 64)), bg)
    k.store(grown, k.p.background, i)


# -- EdgeBackgroundGrowRangeFast --------------------------------------------------------------------

_make(
    "EdgeBackgroundGrowRangeFast",
    "grow the edge background to the pixel maximum",
    "u8* value, u8* background",
    "background[i] = max(value[i], background[i]);",
    None,
    lambda k, i: _edge_fast_hand(k, i),
    lambda rng: [gray_image(rng), gray_image(rng)],
    lambda arrays: [arrays[0].size],
    outputs=[1],
    ref=lambda w: [np.maximum(w.arrays[0], w.arrays[1])],
)


def _edge_fast_hand(k, i):
    v = k.load(k.p.value, i, 64)
    bg = k.load(k.p.background, i, 64)
    k.store(k.umax(v, bg), k.p.background, i)
