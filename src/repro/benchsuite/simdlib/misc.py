"""Simd Library kernels: histogram, interference, texture, LBP family."""

from __future__ import annotations

import numpy as np

from ...ir import I8, I16, I32, I64
from ..kernelspec import KernelSpec, elementwise_sources, rowwise_sources
from ..workloads import Workload, gray_image, rng_for
from .handutil import P8, P16, P32, simple_hand

KERNELS = []

_W, _H = 128, 18


def _spec(**kwargs):
    spec = KernelSpec(group="misc", **kwargs)
    KERNELS.append(spec)
    return spec


# -- Histogram -------------------------------------------------------------------------
# The one kernel class SPMD vectorization genuinely struggles with: the
# update address depends on the data, so the Parsimony port pays per-lane
# serialized atomics, and even hand-written x86 code stays scalar.

_hist_scalar = """
void kernel(u8* src, u32* hist, u64 n) {
    for (u64 i = 0; i < n; i++) {
        u64 v = (u64)src[i];
        hist[v] = hist[v] + 1;
    }
}
"""
_hist_psim = """
void kernel(u8* src, u32* hist, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        psim_atomic_add(hist + (u64)src[i], (u32)1);
    }
}
"""


def _hist_hand(module):
    from ...simd import hand_kernel

    # Hand-written histograms stay scalar but 4-way unrolled (sub-histogram
    # splitting is pointless on our single-issue model, so plain unroll).
    k = hand_kernel(module, "kernel", [("src", P8), ("hist", P32), ("n", I64)])
    with k.loop(k.p.n, step=4) as i:
        for u in range(4):
            v = k.load_scalar(k.p.src, k.add(i, k.i64(u)))
            slot = k.b.gep(k.p.hist, k.b.zext(v, I64))
            k.b.store(k.add(k.b.load(slot), k.const(I32, 1)), slot)
    k.ret()
    k.done()


def _hist_workload():
    rng = rng_for("Histogram")
    src = gray_image(rng)
    return Workload([src, np.zeros(256, np.uint32)], [src.size], outputs=[1])


_spec(
    name="Histogram",
    doc="256-bin image histogram",
    scalar_src=_hist_scalar,
    psim_src=_hist_psim,
    hand_build=_hist_hand,
    workload=_hist_workload,
    ref=lambda w: [np.bincount(w.arrays[0], minlength=256).astype(np.uint32)],
)

_histm_scalar = """
void kernel(u8* src, u8* mask, u32* hist, u8 index, u64 n) {
    for (u64 i = 0; i < n; i++) {
        if (mask[i] == index) {
            u64 v = (u64)src[i];
            hist[v] = hist[v] + 1;
        }
    }
}
"""
_histm_psim = """
void kernel(u8* src, u8* mask, u32* hist, u8 index, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        if (mask[i] == index) {
            psim_atomic_add(hist + (u64)src[i], (u32)1);
        }
    }
}
"""


def _histm_hand(module):
    from ...simd import hand_kernel

    k = hand_kernel(
        module, "kernel",
        [("src", P8), ("mask", P8), ("hist", P32), ("index", I8), ("n", I64)],
    )
    with k.loop(k.p.n, step=4) as i:
        for u in range(4):
            pos = k.add(i, k.i64(u))
            v = k.load_scalar(k.p.src, pos)
            m = k.load_scalar(k.p.mask, pos)
            hit = k.icmp("eq", m, k.p.index)
            inc = k.b.select(hit, k.const(I32, 1), k.const(I32, 0))
            slot = k.b.gep(k.p.hist, k.b.zext(v, I64))
            k.b.store(k.add(k.b.load(slot), inc), slot)
    k.ret()
    k.done()


def _histm_workload():
    rng = rng_for("HistogramMasked")
    src = gray_image(rng)
    mask = (rng.integers(0, 2, src.size) * 7).astype(np.uint8)
    return Workload([src, mask, np.zeros(256, np.uint32)], [7, src.size], outputs=[2])


_spec(
    name="HistogramMasked",
    doc="histogram of pixels selected by a mask",
    scalar_src=_histm_scalar,
    psim_src=_histm_psim,
    hand_build=_histm_hand,
    workload=_histm_workload,
    ref=lambda w: [
        np.bincount(w.arrays[0][w.arrays[1] == 7], minlength=256).astype(np.uint32)
    ],
)

# -- SegmentationChangeIndex -----------------------------------------------------------------

_seg_scalar, _seg_psim = elementwise_sources(
    "u8* mask, u8 old, u8 new_",
    "mask[i] = mask[i] == old ? new_ : mask[i];",
)


def _seg_hand(module):
    def body(k, i):
        m = k.load(k.p.mask, i, 64)
        hit = k.icmp("eq", m, k.broadcast(k.p.old, 64))
        k.store(k.blend(hit, k.broadcast(k.p.new_, 64), m), k.p.mask, i)

    simple_hand(module, [("mask", P8), ("old", I8), ("new_", I8), ("n", I64)], 64, body)


def _seg_workload():
    rng = rng_for("SegmentationChangeIndex")
    mask = rng.integers(0, 5, 64 * 48).astype(np.uint8)
    return Workload([mask], [3, 9, mask.size], outputs=[0])


_spec(
    name="SegmentationChangeIndex",
    doc="remap one segmentation index to another",
    scalar_src=_seg_scalar,
    psim_src=_seg_psim,
    hand_build=_seg_hand,
    workload=_seg_workload,
    ref=lambda w: [np.where(w.arrays[0] == 3, 9, w.arrays[0]).astype(np.uint8)],
)

# -- InterferenceIncrement / Decrement ---------------------------------------------------------

_ii_scalar, _ii_psim = elementwise_sources(
    "i16* stat, i16 increment, i16 saturation",
    "stat[i] = (i16)min((i32)stat[i] + (i32)increment, (i32)saturation);",
    gang=32,
    psim_body="stat[i] = min(addsat(stat[i], increment), saturation);",
)


def _ii_hand(module):
    def body(k, i):
        v = k.load(k.p.stat, i, 32)
        inc = k.broadcast(k.p.increment, 32)
        sat = k.broadcast(k.p.saturation, 32)
        k.store(k.smin(k.addsat_s(v, inc), sat), k.p.stat, i)

    simple_hand(
        module, [("stat", P16), ("increment", I16), ("saturation", I16), ("n", I64)],
        32, body,
    )


def _ii_workload():
    rng = rng_for("InterferenceIncrement")
    stat = rng.integers(-1000, 1000, 64 * 48).astype(np.int16)
    return Workload([stat], [40, 800, stat.size], outputs=[0])


_spec(
    name="InterferenceIncrement",
    doc="saturating increment of an interference statistic",
    scalar_src=_ii_scalar,
    psim_src=_ii_psim,
    hand_build=_ii_hand,
    workload=_ii_workload,
    ref=lambda w: [
        np.minimum(w.arrays[0].astype(np.int32) + 40, 800).astype(np.int16)
    ],
)

_id_scalar, _id_psim = elementwise_sources(
    "i16* stat, i16 decrement, i16 saturation",
    "stat[i] = (i16)max((i32)stat[i] - (i32)decrement, (i32)saturation);",
    gang=32,
    psim_body="stat[i] = max(subsat(stat[i], decrement), saturation);",
)


def _id_hand(module):
    def body(k, i):
        v = k.load(k.p.stat, i, 32)
        dec = k.broadcast(k.p.decrement, 32)
        sat = k.broadcast(k.p.saturation, 32)
        k.store(k.smax(k.subsat_s(v, dec), sat), k.p.stat, i)

    simple_hand(
        module, [("stat", P16), ("decrement", I16), ("saturation", I16), ("n", I64)],
        32, body,
    )


def _id_workload():
    rng = rng_for("InterferenceDecrement")
    stat = rng.integers(-1000, 1000, 64 * 48).astype(np.int16)
    return Workload([stat], [40, -800 & 0xFFFF, stat.size], outputs=[0])


_spec(
    name="InterferenceDecrement",
    doc="saturating decrement of an interference statistic",
    scalar_src=_id_scalar,
    psim_src=_id_psim,
    hand_build=_id_hand,
    workload=_id_workload,
    ref=lambda w: [
        np.maximum(w.arrays[0].astype(np.int32) - 40, -800).astype(np.int16)
    ],
)

# -- TextureBoostedUv -----------------------------------------------------------------------------

_tb_scalar, _tb_psim = elementwise_sources(
    "u8* src, u8* dst, u8 boost",
    "i32 d = ((i32)src[i] - 128) * (i32)boost + 128; "
    "dst[i] = (u8)max(min(d, 255), 0);",
)


def _tb_hand(module):
    def body(k, i):
        v = k.widen_u8_u16(k.load(k.p.src, i, 64))
        boost = k.broadcast(k.b.zext(k.p.boost, I16), 64)
        mid = k.splat(I16, 128, 64)
        d = k.add(k.mul(k.sub(v, mid), boost), mid)  # i16 signed math
        clamped = k.smax(k.smin(d, k.splat(I16, 255, 64)), k.splat(I16, 0, 64))
        k.store(k.narrow_to_u8(clamped), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("boost", I8), ("n", I64)], 64, body)


def _tb_workload():
    rng = rng_for("TextureBoostedUv")
    src = gray_image(rng)
    return Workload([src, np.zeros_like(src)], [4, src.size], outputs=[1])


_spec(
    name="TextureBoostedUv",
    doc="boost contrast around the UV midpoint",
    scalar_src=_tb_scalar,
    psim_src=_tb_psim,
    hand_build=_tb_hand,
    workload=_tb_workload,
    ref=lambda w: [
        np.clip((w.arrays[0].astype(np.int32) - 128) * 4 + 128, 0, 255).astype(np.uint8)
    ],
)

# -- TexturePerformCompensation --------------------------------------------------------------------

_tc_scalar, _tc_psim = elementwise_sources(
    "u8* src, u8* dst, i16 shift",
    "i32 v = (i32)src[i] + (i32)shift; dst[i] = (u8)max(min(v, 255), 0);",
)


def _tc_hand(module):
    def body(k, i):
        v = k.widen_u8_u16(k.load(k.p.src, i, 64))
        sh = k.broadcast(k.p.shift, 64)
        t = k.add(v, sh)
        clamped = k.smax(k.smin(t, k.splat(I16, 255, 64)), k.splat(I16, 0, 64))
        k.store(k.narrow_to_u8(clamped), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("shift", I16), ("n", I64)], 64, body)


def _tc_workload():
    rng = rng_for("TexturePerformCompensation")
    src = gray_image(rng)
    return Workload([src, np.zeros_like(src)], [-37 & 0xFFFF, src.size], outputs=[1])


_spec(
    name="TexturePerformCompensation",
    doc="add a signed brightness shift with clamping",
    scalar_src=_tc_scalar,
    psim_src=_tc_psim,
    hand_build=_tc_hand,
    workload=_tc_workload,
    ref=lambda w: [
        np.clip(w.arrays[0].astype(np.int32) - 37, 0, 255).astype(np.uint8)
    ],
)

# -- ShiftBilinear (sub-pixel horizontal shift) ----------------------------------------------------------

_sb_scalar, _sb_psim = elementwise_sources(
    "u8* src, u8* dst, u32 frac",
    "u32 a = (u32)src[i]; u32 b = (u32)src[i + 1]; "
    "dst[i] = (u8)(((256 - frac) * a + frac * b + 128) >> 8);",
)


def _sb_hand(module):
    from ...ir import I32 as _I32

    def body(k, i):
        a = k.widen_u8_u16(k.load(k.p.src, i, 64))
        b = k.widen_u8_u16(k.load(k.p.src, k.add(i, k.i64(1)), 64))
        frac = k.b.trunc(k.p.frac, I16)
        f = k.broadcast(frac, 64)
        inv = k.sub(k.splat(I16, 256, 64), f)
        t = k.add(k.add(k.mul(inv, a), k.mul(f, b)), k.splat(I16, 128, 64))
        k.store(k.narrow_to_u8(k.lshr(t, k.splat(I16, 8, 64))), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("frac", I32), ("n", I64)], 64, body)


def _sb_workload():
    rng = rng_for("ShiftBilinear")
    src = gray_image(rng)
    return Workload(
        [src, np.zeros(src.size - 64, np.uint8)], [77, src.size - 64], outputs=[1]
    )


def _sb_ref(w):
    n = w.arrays[1].size
    a = w.arrays[0][:n].astype(np.uint32)
    b = w.arrays[0][1 : n + 1].astype(np.uint32)
    return [(((256 - 77) * a + 77 * b + 128) >> 8).astype(np.uint8)]


_spec(
    name="ShiftBilinear",
    doc="sub-pixel bilinear horizontal shift",
    scalar_src=_sb_scalar,
    psim_src=_sb_psim,
    hand_build=_sb_hand,
    workload=_sb_workload,
    ref=_sb_ref,
)

# -- LbpEstimate (local binary patterns) --------------------------------------------------------------------

_LBP_OFFS = [(-1, -1), (-1, 0), (-1, 1), (0, 1), (1, 1), (1, 0), (1, -1), (0, -1)]


def _lbp_sources():
    center = "u64 p = row + w + x + 1; u8 c = src[p];"
    bits = " | ".join(
        f"((src[p + ({dy}) * (i64)w + ({dx})] >= c ? 1 : 0) << {bit})"
        for bit, (dy, dx) in enumerate(_LBP_OFFS)
    )
    body = f"{center} dst[p] = (u8)({bits});"
    return rowwise_sources("u8* src, u8* dst", body, xspan="w - 2")


_lbp_scalar, _lbp_psim = _lbp_sources()


def _lbp_hand(module):
    from .filter import _rows_hand  # same interior-rows loop structure

    def body(k, p0):
        p = k.add(k.add(p0, k.p.w), k.i64(1))
        c = k.load(k.p.src, p, 64)
        acc = k.splat(I8, 0, 64)
        for bit, (dy, dx) in enumerate(_LBP_OFFS):
            addr = k.add(k.add(p, k.mul(k.i64(dy), k.p.w)), k.i64(dx))
            v = k.load(k.p.src, addr, 64)
            ge = k.icmp("uge", v, c)
            bitval = k.blend(ge, k.splat(I8, 1 << bit, 64), k.splat(I8, 0, 64))
            acc = k.or_(acc, bitval)
        k.store(acc, k.p.dst, p)

    _rows_hand(module, body)


def _lbp_workload():
    rng = rng_for("LbpEstimate")
    src = rng.integers(0, 256, _W * _H).astype(np.uint8)
    return Workload([src, np.zeros_like(src)], [_W, _H - 2], outputs=[1])


def _lbp_ref(w):
    img = w.arrays[0].reshape(_H, _W).astype(np.int32)
    c = img[1:-1, 1:-1]
    out = np.zeros_like(c)
    for bit, (dy, dx) in enumerate(_LBP_OFFS):
        nb = img[1 + dy : _H - 1 + dy, 1 + dx : _W - 1 + dx]
        out |= (nb >= c).astype(np.int32) << bit
    full = np.zeros((_H, _W), np.int32)
    full[1:-1, 1:-1] = out
    return [full.astype(np.uint8).reshape(-1)]


_spec(
    name="LbpEstimate",
    doc="8-neighbour local binary pattern",
    scalar_src=_lbp_scalar,
    psim_src=_lbp_psim,
    hand_build=_lbp_hand,
    workload=_lbp_workload,
    ref=_lbp_ref,
)
