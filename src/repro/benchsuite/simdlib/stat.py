"""Simd Library kernels: whole-image statistics (horizontal reductions).

The Parsimony ports use explicit horizontal operations — per-gang
``psim_reduce_*_sync`` plus one atomic per gang — which serial loops
cannot express (§2.2); the hand-written versions lean on ``vpsadbw``
(§7's complex-instruction example) wherever a sum of bytes is needed.
"""

from __future__ import annotations

import numpy as np

from ...ir import I8, I16, I32, I64
from ..kernelspec import KernelSpec, elementwise_sources, reduction_sources
from ..workloads import Workload, gray_image, rng_for
from .handutil import P8, P64, accumulator_hand, simple_hand

KERNELS = []


def _spec(**kwargs):
    spec = KernelSpec(group="stat", **kwargs)
    KERNELS.append(spec)
    return spec


def _sum_workload(name, n_in=1, dtype=np.uint8):
    def make():
        rng = rng_for(name)
        arrays = [gray_image(rng, dtype=dtype) for _ in range(n_in)]
        arrays.append(np.zeros(1, np.uint64))
        return Workload(arrays, [arrays[0].size], outputs=[n_in])

    return make


# -- ValueSum --------------------------------------------------------------------------

_vs_scalar, _vs_psim = reduction_sources(
    "u8* src", "0", "acc += (u64)src[i];", "u64"
)
# The Parsimony port uses the opaque SAD accumulator (§7) instead of
# widening every pixel to u64.
_vs_psim = '''
void kernel(u8* src, u64* out, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u64 gang_total = psim_sad_sync(src[i], (u8)0);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
'''


def _vs_hand(module):
    def body(k, i, acc):
        v = k.load(k.p.src, i, 64)
        # vpsadbw against zero: horizontal byte sums in one instruction.
        groups = k.sad_u8(v, k.splat(I8, 0, 64))
        return k.add(acc, k.hsum(groups))

    accumulator_hand(module, [("src", P8), ("out", P64), ("n", I64)], 64, I64, body)


_spec(
    name="ValueSum",
    doc="sum of all pixels",
    scalar_src=_vs_scalar,
    psim_src=_vs_psim,
    hand_build=_vs_hand,
    workload=_sum_workload("ValueSum"),
    ref=lambda w: [np.array([w.arrays[0].astype(np.uint64).sum()])],
)

# -- SquareSum --------------------------------------------------------------------------

_ss_scalar, _ss_psim = reduction_sources(
    "u8* src", "0", "u64 v = (u64)src[i]; acc += v * v;", "u64"
)
_ss_psim = '''
void kernel(u8* src, u64* out, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u32 v = (u32)src[i];
        u32 sq = v * v;
        u64 gang_total = (u64)psim_reduce_add_sync(sq);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
'''


def _ss_hand(module):
    def body(k, i, acc):
        total = k.splat(I32, 0, 64)
        v = k.widen_u8_u16(k.load(k.p.src, i, 64))
        sq = k.b.zext(k.mul(v, v), _vec(I32, 64))
        total = k.add(total, sq)
        return k.add(acc, k.b.zext(k.hsum(total), I64))

    accumulator_hand(module, [("src", P8), ("out", P64), ("n", I64)], 64, I64, body)


def _vec(elem, lanes):
    from ...ir import VectorType

    return VectorType(elem, lanes)


_spec(
    name="SquareSum",
    doc="sum of squared pixels",
    scalar_src=_ss_scalar,
    psim_src=_ss_psim,
    hand_build=_ss_hand,
    workload=_sum_workload("SquareSum"),
    ref=lambda w: [np.array([(w.arrays[0].astype(np.uint64) ** 2).sum()])],
)

# -- CorrelationSum ----------------------------------------------------------------------

_cs_scalar, _cs_psim = reduction_sources(
    "u8* a, u8* b", "0", "acc += (u64)a[i] * (u64)b[i];", "u64"
)
_cs_psim = '''
void kernel(u8* a, u8* b, u64* out, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u32 prod = (u32)a[i] * (u32)b[i];
        u64 gang_total = (u64)psim_reduce_add_sync(prod);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
'''


def _cs_hand(module):
    def body(k, i, acc):
        va = k.widen_u8_u16(k.load(k.p.a, i, 64))
        vb = k.widen_u8_u16(k.load(k.p.b, i, 64))
        prod = k.b.zext(k.mul(va, vb), _vec(I32, 64))
        return k.add(acc, k.b.zext(k.hsum(prod), I64))

    accumulator_hand(
        module, [("a", P8), ("b", P8), ("out", P64), ("n", I64)], 64, I64, body
    )


_spec(
    name="CorrelationSum",
    doc="sum of pixel products of two images",
    scalar_src=_cs_scalar,
    psim_src=_cs_psim,
    hand_build=_cs_hand,
    workload=_sum_workload("CorrelationSum", n_in=2),
    ref=lambda w: [
        np.array([(w.arrays[0].astype(np.uint64) * w.arrays[1]).sum()])
    ],
)

# -- AbsDifferenceSum (uses the §7 SAD abstraction in the Parsimony port) -------------------

_ads_scalar = """
void kernel(u8* a, u8* b, u64* out, u64 n) {
    u64 acc = 0;
    for (u64 i = 0; i < n; i++) {
        acc += (u64)abs((i32)a[i] - (i32)b[i]);
    }
    out[0] = acc;
}
"""
_ads_psim = """
void kernel(u8* a, u8* b, u64* out, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u64 gang_total = psim_sad_sync(a[i], b[i]);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
"""


def _ads_hand(module):
    def body(k, i, acc):
        va = k.load(k.p.a, i, 64)
        vb = k.load(k.p.b, i, 64)
        return k.add(acc, k.hsum(k.sad_u8(va, vb)))

    accumulator_hand(
        module, [("a", P8), ("b", P8), ("out", P64), ("n", I64)], 64, I64, body
    )


_spec(
    name="AbsDifferenceSum",
    doc="sum of absolute differences (vpsadbw territory)",
    scalar_src=_ads_scalar,
    psim_src=_ads_psim,
    hand_build=_ads_hand,
    workload=_sum_workload("AbsDifferenceSum", n_in=2),
    ref=lambda w: [
        np.array([np.abs(w.arrays[0].astype(np.int64) - w.arrays[1]).sum()])
    ],
)

# -- AbsDifferenceSumMasked ---------------------------------------------------------------------

_adsm_scalar = """
void kernel(u8* a, u8* b, u8* mask, u64* out, u8 index, u64 n) {
    u64 acc = 0;
    for (u64 i = 0; i < n; i++) {
        if (mask[i] == index) {
            acc += (u64)abs((i32)a[i] - (i32)b[i]);
        }
    }
    out[0] = acc;
}
"""
_adsm_psim = """
void kernel(u8* a, u8* b, u8* mask, u64* out, u8 index, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u8 va = mask[i] == index ? a[i] : (u8)0;
        u8 vb = mask[i] == index ? b[i] : (u8)0;
        u64 gang_total = psim_sad_sync(va, vb);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
"""


def _adsm_hand(module):
    def body(k, i, acc):
        va = k.load(k.p.a, i, 64)
        vb = k.load(k.p.b, i, 64)
        m = k.icmp("eq", k.load(k.p.mask, i, 64), k.broadcast(k.p.index, 64))
        zero = k.splat(I8, 0, 64)
        return k.add(
            acc,
            k.hsum(k.sad_u8(k.blend(m, va, zero), k.blend(m, vb, zero))),
        )

    accumulator_hand(
        module,
        [("a", P8), ("b", P8), ("mask", P8), ("out", P64), ("index", I8), ("n", I64)],
        64, I64, body,
    )


def _adsm_workload():
    rng = rng_for("AbsDifferenceSumMasked")
    a = gray_image(rng)
    b = gray_image(rng)
    mask = (rng.integers(0, 2, a.size) * 255).astype(np.uint8)
    return Workload(
        [a, b, mask, np.zeros(1, np.uint64)], [255, a.size], outputs=[3]
    )


def _adsm_ref(w):
    sel = w.arrays[2] == 255
    diff = np.abs(w.arrays[0].astype(np.int64) - w.arrays[1])
    return [np.array([diff[sel].sum()])]


_spec(
    name="AbsDifferenceSumMasked",
    doc="masked sum of absolute differences",
    scalar_src=_adsm_scalar,
    psim_src=_adsm_psim,
    hand_build=_adsm_hand,
    workload=_adsm_workload,
    ref=_adsm_ref,
)

# -- SquaredDifferenceSum --------------------------------------------------------------------------

_sds_scalar, _sds_psim = reduction_sources(
    "u8* a, u8* b", "0",
    "i64 d = (i64)a[i] - (i64)b[i]; acc += (u64)(d * d);", "u64",
)
_sds_psim = '''
void kernel(u8* a, u8* b, u64* out, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u32 d = (u32)absdiff(a[i], b[i]);
        u64 gang_total = (u64)psim_reduce_add_sync(d * d);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
'''


def _sds_hand(module):
    def body(k, i, acc):
        d = k.widen_u8_u16(
            k.abs_diff_u8(k.load(k.p.a, i, 64), k.load(k.p.b, i, 64))
        )
        sq = k.b.zext(k.mul(d, d), _vec(I32, 64))
        return k.add(acc, k.b.zext(k.hsum(sq), I64))

    accumulator_hand(
        module, [("a", P8), ("b", P8), ("out", P64), ("n", I64)], 64, I64, body
    )


_spec(
    name="SquaredDifferenceSum",
    doc="sum of squared differences",
    scalar_src=_sds_scalar,
    psim_src=_sds_psim,
    hand_build=_sds_hand,
    workload=_sum_workload("SquaredDifferenceSum", n_in=2),
    ref=lambda w: [
        np.array([((w.arrays[0].astype(np.int64) - w.arrays[1]) ** 2).sum()])
    ],
)

# -- GetStatistic (min, max, sum at once) ------------------------------------------------------------

_gs_scalar = """
void kernel(u8* src, u64* out, u64 n) {
    u64 vmin = 255;
    u64 vmax = 0;
    u64 vsum = 0;
    for (u64 i = 0; i < n; i++) {
        u64 v = (u64)src[i];
        vmin = min(vmin, v);
        vmax = max(vmax, v);
        vsum += v;
    }
    out[0] = vmin; out[1] = vmax; out[2] = vsum;
}
"""
_gs_psim = """
void kernel(u8* src, u64* out, u64 n) {
    out[0] = 255; out[1] = 0; out[2] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u8 v = src[i];
        u64 gmin = (u64)psim_reduce_min_sync(v);
        u64 gmax = (u64)psim_reduce_max_sync(v);
        u64 gsum = psim_sad_sync(v, (u8)0);
        if (psim_get_lane_num() == 0) {
            psim_atomic_min(out, gmin);
            psim_atomic_max(out + 1, gmax);
            psim_atomic_add(out + 2, gsum);
        }
    }
}
"""


def _gs_hand(module):
    from ...simd import hand_kernel

    k = hand_kernel(module, "kernel", [("src", P8), ("out", P64), ("n", I64)])
    mn = k.alloca(I8, 1, "mn")
    mx = k.alloca(I8, 1, "mx")
    sm = k.alloca(I64, 1, "sm")
    k.b.store(k.const(I8, 255), mn)
    k.b.store(k.const(I8, 0), mx)
    k.b.store(k.i64(0), sm)
    with k.loop(k.p.n, step=64) as i:
        v = k.load(k.p.src, i, 64)
        k.b.store(k.umin(k.b.load(mn), k.b.reduce("reduce_min_u", v)), mn)
        k.b.store(k.umax(k.b.load(mx), k.b.reduce("reduce_max_u", v)), mx)
        total = k.hsum(k.sad_u8(v, k.splat(I8, 0, 64)))
        k.b.store(k.add(k.b.load(sm), total), sm)
    k.store_scalar(k.b.zext(k.b.load(mn), I64), k.p.out, k.i64(0))
    k.store_scalar(k.b.zext(k.b.load(mx), I64), k.p.out, k.i64(1))
    k.store_scalar(k.b.load(sm), k.p.out, k.i64(2))
    k.ret()
    k.done()


def _gs_workload():
    rng = rng_for("GetStatistic")
    src = gray_image(rng)
    return Workload([src, np.zeros(3, np.uint64)], [src.size], outputs=[1])


_spec(
    name="GetStatistic",
    doc="image min / max / sum in one pass",
    scalar_src=_gs_scalar,
    psim_src=_gs_psim,
    hand_build=_gs_hand,
    workload=_gs_workload,
    ref=lambda w: [
        np.array([
            w.arrays[0].min(), w.arrays[0].max(),
            w.arrays[0].astype(np.uint64).sum(),
        ], dtype=np.uint64)
    ],
)

# -- GetRowSums --------------------------------------------------------------------------------------

_rs_scalar = """
void kernel(u8* src, u64* sums, u64 w, u64 h) {
    for (u64 y = 0; y < h; y++) {
        u64 acc = 0;
        u64 row = y * w;
        for (u64 x = 0; x < w; x++) {
            acc += (u64)src[row + x];
        }
        sums[y] = acc;
    }
}
"""
_rs_psim = """
void kernel(u8* src, u64* sums, u64 w, u64 h) {
    for (u64 y = 0; y < h; y++) {
        sums[y] = 0;
        u64 row = y * w;
        psim (gang_size=64, num_threads=w) {
            u64 x = psim_get_thread_num();
            u64 gang_total = psim_sad_sync(src[row + x], (u8)0);
            if (psim_get_lane_num() == 0) {
                psim_atomic_add(sums + y, gang_total);
            }
        }
    }
}
"""


def _rs_hand(module):
    from ...simd import hand_kernel

    k = hand_kernel(module, "kernel", [("src", P8), ("sums", P64), ("w", I64), ("h", I64)])
    acc = k.alloca(I64, 1, "acc")
    with k.loop(k.p.h) as y:
        k.b.store(k.i64(0), acc)
        row = k.mul(y, k.p.w, "row")
        with k.loop(k.p.w, step=64, name="x") as x:
            v = k.load(k.p.src, k.add(row, x), 64)
            k.b.store(
                k.add(k.b.load(acc), k.hsum(k.sad_u8(v, k.splat(I8, 0, 64)))), acc
            )
        k.store_scalar(k.b.load(acc), k.p.sums, y)
    k.ret()
    k.done()


def _rs_workload():
    rng = rng_for("GetRowSums")
    w, h = 64, 48
    src = gray_image(rng, w=w, h=h)
    return Workload([src, np.zeros(h, np.uint64)], [w, h], outputs=[1])


_spec(
    name="GetRowSums",
    doc="per-row pixel sums",
    scalar_src=_rs_scalar,
    psim_src=_rs_psim,
    hand_build=_rs_hand,
    workload=_rs_workload,
    ref=lambda w: [w.arrays[0].reshape(48, 64).astype(np.uint64).sum(axis=1)],
)

# -- GetAbsDyRowSums ------------------------------------------------------------------------------------

_dy_scalar = """
void kernel(u8* src, u64* sums, u64 w, u64 h) {
    for (u64 y = 0; y < h; y++) {
        u64 acc = 0;
        u64 row = y * w;
        for (u64 x = 0; x < w; x++) {
            acc += (u64)abs((i32)src[row + x] - (i32)src[row + w + x]);
        }
        sums[y] = acc;
    }
}
"""
_dy_psim = """
void kernel(u8* src, u64* sums, u64 w, u64 h) {
    for (u64 y = 0; y < h; y++) {
        sums[y] = 0;
        u64 row = y * w;
        psim (gang_size=64, num_threads=w) {
            u64 x = psim_get_thread_num();
            u64 gang_total = psim_sad_sync(src[row + x], src[row + w + x]);
            if (psim_get_lane_num() == 0) {
                psim_atomic_add(sums + y, gang_total);
            }
        }
    }
}
"""


def _dy_hand(module):
    from ...simd import hand_kernel

    k = hand_kernel(module, "kernel", [("src", P8), ("sums", P64), ("w", I64), ("h", I64)])
    acc = k.alloca(I64, 1, "acc")
    with k.loop(k.p.h) as y:
        k.b.store(k.i64(0), acc)
        row = k.mul(y, k.p.w, "row")
        with k.loop(k.p.w, step=64, name="x") as x:
            a = k.load(k.p.src, k.add(row, x), 64)
            b = k.load(k.p.src, k.add(k.add(row, k.p.w), x), 64)
            k.b.store(k.add(k.b.load(acc), k.hsum(k.sad_u8(a, b))), acc)
        k.store_scalar(k.b.load(acc), k.p.sums, y)
    k.ret()
    k.done()


def _dy_workload():
    rng = rng_for("GetAbsDyRowSums")
    w, h = 64, 48
    src = gray_image(rng, w=w, h=h + 1)  # one extra row for y+1 reads
    return Workload([src, np.zeros(h, np.uint64)], [w, h], outputs=[1])


def _dy_ref(w):
    img = w.arrays[0].reshape(49, 64).astype(np.int64)
    return [np.abs(img[:-1] - img[1:]).sum(axis=1).astype(np.uint64)]


_spec(
    name="GetAbsDyRowSums",
    doc="per-row sums of |row - next row|",
    scalar_src=_dy_scalar,
    psim_src=_dy_psim,
    hand_build=_dy_hand,
    workload=_dy_workload,
    ref=_dy_ref,
)

# -- ConditionalCount8u --------------------------------------------------------------------------------------

_cc_scalar = """
void kernel(u8* src, u64* out, u8 threshold, u64 n) {
    u64 acc = 0;
    for (u64 i = 0; i < n; i++) {
        if (src[i] > threshold) {
            acc += 1;
        }
    }
    out[0] = acc;
}
"""
_cc_psim = """
void kernel(u8* src, u64* out, u8 threshold, u64 n) {
    out[0] = 0;
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        u8 hit = src[i] > threshold ? (u8)1 : (u8)0;
        u64 gang_total = psim_sad_sync(hit, (u8)0);
        if (psim_get_lane_num() == 0) {
            psim_atomic_add(out, gang_total);
        }
    }
}
"""


def _cc_hand(module):
    def body(k, i, acc):
        m = k.icmp("ugt", k.load(k.p.src, i, 64), k.broadcast(k.p.threshold, 64))
        ones = k.blend(m, k.splat(I8, 1, 64), k.splat(I8, 0, 64))
        return k.add(acc, k.hsum(k.sad_u8(ones, k.splat(I8, 0, 64))))

    accumulator_hand(
        module, [("src", P8), ("out", P64), ("threshold", I8), ("n", I64)], 64, I64, body
    )


def _cc_workload():
    rng = rng_for("ConditionalCount8u")
    src = gray_image(rng)
    return Workload([src, np.zeros(1, np.uint64)], [100, src.size], outputs=[1])


_spec(
    name="ConditionalCount8u",
    doc="count pixels above a threshold",
    scalar_src=_cc_scalar,
    psim_src=_cc_psim,
    hand_build=_cc_hand,
    workload=_cc_workload,
    ref=lambda w: [np.array([(w.arrays[0] > 100).sum()], dtype=np.uint64)],
)
