"""Simd Library kernels: colour/format conversion family."""

from __future__ import annotations

import numpy as np

from ...ir import F32, I8, I16, I32, I64
from ..kernelspec import KernelSpec, elementwise_sources
from ..workloads import Workload, gray_image, planar_image, rng_for
from .handutil import P8, P16, PF32, simple_hand, strided_load, strided_store

KERNELS = []

# Simd Library's fixed-point grayscale weights.
_BLUE_W, _GREEN_W, _RED_W = 28, 151, 77


def _spec(**kwargs):
    spec = KernelSpec(group="convert", **kwargs)
    KERNELS.append(spec)
    return spec


# -- BgraToGray / BgrToGray ---------------------------------------------------------------


def _to_gray(channels: int):
    name = "BgraToGray" if channels == 4 else "BgrToGray"
    body = (
        f"i32 blue = (i32)src[{channels} * i]; "
        f"i32 green = (i32)src[{channels} * i + 1]; "
        f"i32 red = (i32)src[{channels} * i + 2]; "
        f"dst[i] = (u8)(({_BLUE_W} * blue + {_GREEN_W} * green + {_RED_W} * red + 128) >> 8);"
    )
    scalar_src, psim_src = elementwise_sources("u8* src, u8* dst", body)

    def hand(module):
        def block(k, i):
            base = k.mul(i, k.i64(channels))
            chans = [
                k.widen_u8_i32(
                    strided_load(k, k.p.src, k.add(base, k.i64(c)), channels, 64)
                )
                for c in range(3)
            ]
            acc = k.splat(I32, 128, 64)
            for weight, chan in zip((_BLUE_W, _GREEN_W, _RED_W), chans):
                acc = k.add(acc, k.mul(chan, k.splat(I32, weight, 64)))
            k.store(k.narrow_to_u8(k.lshr(acc, k.splat(I32, 8, 64))), k.p.dst, i)

        simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, block)

    def workload():
        rng = rng_for(name)
        src = planar_image(rng, channels)
        n = src.size // channels
        return Workload([src, np.zeros(n, np.uint8)], [n], outputs=[1])

    def ref(w):
        px = w.arrays[0].reshape(-1, channels).astype(np.int32)
        gray = (_BLUE_W * px[:, 0] + _GREEN_W * px[:, 1] + _RED_W * px[:, 2] + 128) >> 8
        return [gray.astype(np.uint8)]

    _spec(
        name=name,
        doc=f"{channels}-channel interleaved image to grayscale",
        scalar_src=scalar_src,
        psim_src=psim_src,
        hand_build=hand,
        workload=workload,
        ref=ref,
    )


_to_gray(4)
_to_gray(3)

# -- GrayToBgr / GrayToBgra ------------------------------------------------------------------


def _from_gray(channels: int):
    name = "GrayToBgra" if channels == 4 else "GrayToBgr"
    extra = " dst[4 * i + 3] = alpha;" if channels == 4 else ""
    params = "u8* src, u8* dst" + (", u8 alpha" if channels == 4 else "")
    body = (
        f"u8 v = src[i]; dst[{channels} * i] = v; "
        f"dst[{channels} * i + 1] = v; dst[{channels} * i + 2] = v;{extra}"
    )
    scalar_src, psim_src = elementwise_sources(params, body)

    def hand(module):
        def block(k, i):
            v = k.load(k.p.src, i, 64)
            base = k.mul(i, k.i64(channels))
            for c in range(3):
                strided_store(k, v, k.p.dst, k.add(base, k.i64(c)), channels)
            if channels == 4:
                strided_store(
                    k, k.broadcast(k.p.alpha, 64), k.p.dst, k.add(base, k.i64(3)), 4
                )

        params_hand = [("src", P8), ("dst", P8)]
        if channels == 4:
            params_hand.append(("alpha", I8))
        params_hand.append(("n", I64))
        simple_hand(module, params_hand, 64, block)

    def workload():
        rng = rng_for(name)
        src = gray_image(rng)
        scalars = ([255] if channels == 4 else []) + [src.size]
        return Workload(
            [src, np.zeros(src.size * channels, np.uint8)], scalars, outputs=[1]
        )

    def ref(w):
        src = w.arrays[0]
        out = np.zeros(src.size * channels, np.uint8)
        for c in range(3):
            out[c::channels] = src
        if channels == 4:
            out[3::4] = 255
        return [out]

    _spec(
        name=name,
        doc=f"grayscale to {channels}-channel interleaved image",
        scalar_src=scalar_src,
        psim_src=psim_src,
        hand_build=hand,
        workload=workload,
        ref=ref,
    )


_from_gray(3)
_from_gray(4)

# -- BgraToBgr / BgrToBgra ---------------------------------------------------------------------

_b2b_scalar, _b2b_psim = elementwise_sources(
    "u8* src, u8* dst",
    "dst[3 * i] = src[4 * i]; dst[3 * i + 1] = src[4 * i + 1]; "
    "dst[3 * i + 2] = src[4 * i + 2];",
)


def _bgra2bgr_hand(module):
    def block(k, i):
        sbase = k.mul(i, k.i64(4))
        dbase = k.mul(i, k.i64(3))
        for c in range(3):
            chan = strided_load(k, k.p.src, k.add(sbase, k.i64(c)), 4, 64)
            strided_store(k, chan, k.p.dst, k.add(dbase, k.i64(c)), 3)

    simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, block)


def _bgra2bgr_workload():
    rng = rng_for("BgraToBgr")
    src = planar_image(rng, 4)
    n = src.size // 4
    return Workload([src, np.zeros(n * 3, np.uint8)], [n], outputs=[1])


_spec(
    name="BgraToBgr",
    doc="drop the alpha channel of an interleaved image",
    scalar_src=_b2b_scalar,
    psim_src=_b2b_psim,
    hand_build=_bgra2bgr_hand,
    workload=_bgra2bgr_workload,
    ref=lambda w: [w.arrays[0].reshape(-1, 4)[:, :3].reshape(-1)],
)

_b2a_scalar, _b2a_psim = elementwise_sources(
    "u8* src, u8* dst, u8 alpha",
    "dst[4 * i] = src[3 * i]; dst[4 * i + 1] = src[3 * i + 1]; "
    "dst[4 * i + 2] = src[3 * i + 2]; dst[4 * i + 3] = alpha;",
)


def _bgr2bgra_hand(module):
    def block(k, i):
        sbase = k.mul(i, k.i64(3))
        dbase = k.mul(i, k.i64(4))
        for c in range(3):
            chan = strided_load(k, k.p.src, k.add(sbase, k.i64(c)), 3, 64)
            strided_store(k, chan, k.p.dst, k.add(dbase, k.i64(c)), 4)
        strided_store(k, k.broadcast(k.p.alpha, 64), k.p.dst, k.add(dbase, k.i64(3)), 4)

    simple_hand(module, [("src", P8), ("dst", P8), ("alpha", I8), ("n", I64)], 64, block)


def _bgr2bgra_workload():
    rng = rng_for("BgrToBgra")
    src = planar_image(rng, 3)
    n = src.size // 3
    return Workload([src, np.zeros(n * 4, np.uint8)], [255, n], outputs=[1])


def _bgr2bgra_ref(w):
    px = w.arrays[0].reshape(-1, 3)
    out = np.full((px.shape[0], 4), 255, np.uint8)
    out[:, :3] = px
    return [out.reshape(-1)]


_spec(
    name="BgrToBgra",
    doc="add a constant alpha channel to an interleaved image",
    scalar_src=_b2a_scalar,
    psim_src=_b2a_psim,
    hand_build=_bgr2bgra_hand,
    workload=_bgr2bgra_workload,
    ref=_bgr2bgra_ref,
)

# -- DeinterleaveUv / InterleaveUv ----------------------------------------------------------------

_deint_scalar, _deint_psim = elementwise_sources(
    "u8* uv, u8* u, u8* v",
    "u[i] = uv[2 * i]; v[i] = uv[2 * i + 1];",
)


def _deint_hand(module):
    def block(k, i):
        base = k.mul(i, k.i64(2))
        k.store(strided_load(k, k.p.uv, base, 2, 64), k.p.u, i)
        k.store(strided_load(k, k.p.uv, k.add(base, k.i64(1)), 2, 64), k.p.v, i)

    simple_hand(module, [("uv", P8), ("u", P8), ("v", P8), ("n", I64)], 64, block)


def _deint_workload():
    rng = rng_for("DeinterleaveUv")
    uv = planar_image(rng, 2)
    n = uv.size // 2
    zero = np.zeros(n, np.uint8)
    return Workload([uv, zero, zero.copy()], [n], outputs=[1, 2])


_spec(
    name="DeinterleaveUv",
    doc="split an interleaved UV plane into U and V planes",
    scalar_src=_deint_scalar,
    psim_src=_deint_psim,
    hand_build=_deint_hand,
    workload=_deint_workload,
    ref=lambda w: [w.arrays[0][0::2], w.arrays[0][1::2]],
)

_int_scalar, _int_psim = elementwise_sources(
    "u8* u, u8* v, u8* uv",
    "uv[2 * i] = u[i]; uv[2 * i + 1] = v[i];",
)


def _int_hand(module):
    def block(k, i):
        base = k.mul(i, k.i64(2))
        strided_store(k, k.load(k.p.u, i, 64), k.p.uv, base, 2)
        strided_store(k, k.load(k.p.v, i, 64), k.p.uv, k.add(base, k.i64(1)), 2)

    simple_hand(module, [("u", P8), ("v", P8), ("uv", P8), ("n", I64)], 64, block)


def _int_workload():
    rng = rng_for("InterleaveUv")
    u = gray_image(rng)
    v = gray_image(rng)
    return Workload([u, v, np.zeros(u.size * 2, np.uint8)], [u.size], outputs=[2])


def _int_ref(w):
    out = np.zeros(w.arrays[0].size * 2, np.uint8)
    out[0::2] = w.arrays[0]
    out[1::2] = w.arrays[1]
    return [out]


_spec(
    name="InterleaveUv",
    doc="interleave U and V planes",
    scalar_src=_int_scalar,
    psim_src=_int_psim,
    hand_build=_int_hand,
    workload=_int_workload,
    ref=_int_ref,
)

# -- Int16ToGray (saturated pack) --------------------------------------------------------------------

_i16_scalar, _i16_psim = elementwise_sources(
    "i16* src, u8* dst",
    "dst[i] = (u8)max(min((i32)src[i], 255), 0);",
    gang=32,
    psim_body="dst[i] = (u8)max(min(src[i], (i16)255), (i16)0);",
)


def _i16_hand(module):
    def block(k, i):
        v = k.load(k.p.src, i, 32)  # <32 x i16>
        clamped = k.smax(k.smin(v, k.splat(I16, 255, 32)), k.splat(I16, 0, 32))
        k.store(k.narrow_to_u8(clamped), k.p.dst, i)

    simple_hand(module, [("src", P16), ("dst", P8), ("n", I64)], 32, block)


def _i16_workload():
    rng = rng_for("Int16ToGray")
    src = rng.integers(-500, 500, 64 * 48).astype(np.int16)
    return Workload([src, np.zeros(src.size, np.uint8)], [src.size], outputs=[1])


_spec(
    name="Int16ToGray",
    doc="saturating 16-bit to 8-bit pack",
    scalar_src=_i16_scalar,
    psim_src=_i16_psim,
    hand_build=_i16_hand,
    workload=_i16_workload,
    ref=lambda w: [np.clip(w.arrays[0], 0, 255).astype(np.uint8)],
)

# -- NeuralConvert (u8 -> f32, scaled) ------------------------------------------------------------------

_nc_scalar, _nc_psim = elementwise_sources(
    "u8* src, f32* dst",
    "dst[i] = (f32)src[i] * 0.00392157f;",
    gang=16,
)


def _nc_hand(module):
    def block(k, i):
        v = k.load(k.p.src, i, 16)
        wide = k.b.zext(v, _vec(I32, 16))
        f = k.b.uitofp(wide, _vec(F32, 16))
        k.store(k.fmul(f, k.splat(F32, float(np.float32(0.00392157)), 16)), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", PF32), ("n", I64)], 16, block)


def _vec(elem, lanes):
    from ...ir import VectorType

    return VectorType(elem, lanes)


def _nc_workload():
    rng = rng_for("NeuralConvert")
    src = gray_image(rng)
    return Workload([src, np.zeros(src.size, np.float32)], [src.size], outputs=[1])


_spec(
    name="NeuralConvert",
    doc="u8 image to normalized f32 tensor",
    scalar_src=_nc_scalar,
    psim_src=_nc_psim,
    hand_build=_nc_hand,
    workload=_nc_workload,
    ref=lambda w: [
        (w.arrays[0].astype(np.float32) * np.float32(0.00392157)).astype(np.float32)
    ],
)
