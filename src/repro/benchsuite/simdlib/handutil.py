"""Shared scaffolding for the hand-written ("AVX-512 intrinsics") kernels.

Mirrors how the Simd Library's intrinsics implementations are structured:
an aligned main loop over full vector blocks with the induction arithmetic
written by hand.  Workloads pad array lengths to the block size, exactly
as the library aligns its strides.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ...ir import F32, I8, I16, I32, I64, PointerType, Type
from ...ir.module import Module
from ...simd import HandKernel, hand_kernel

__all__ = ["simple_hand", "accumulator_hand", "P8", "P16", "P32", "PF32", "P64"]

P8 = PointerType(I8)
P16 = PointerType(I16)
P32 = PointerType(I32)
P64 = PointerType(I64)
PF32 = PointerType(F32)


def simple_hand(module: Module, params: Sequence[Tuple[str, Type]], lanes: int,
                body: Callable[[HandKernel, object], None]) -> None:
    """A ``kernel(...)`` looping ``i`` over ``n`` in steps of ``lanes``.

    ``params`` must end with ``("n", I64)``; ``body(k, i)`` emits one block.
    """
    k = hand_kernel(module, "kernel", params)
    with k.loop(k.p.n, step=lanes) as i:
        body(k, i)
    k.ret()
    k.done()


def strided_load(k: HandKernel, ptr, start_index, stride: int, lanes: int):
    """Hand-rolled interleaved load: ``lanes`` elements at ``ptr[start +
    stride*j]`` via packed loads + permutes (the vpshufb/vpermb idiom)."""
    import numpy as np

    from ...ir import Constant, I1, I64, VectorType

    rel = np.arange(lanes) * stride
    idx = Constant(VectorType(I64, lanes), [int(e) for e in rel])
    result = None
    k_vectors = int(rel.max()) // lanes + 1
    for j in range(k_vectors):
        block = k.load(ptr, k.add(start_index, k.i64(j * lanes)), lanes)
        shuffled = k.b.shuffle(block, idx)
        if result is None:
            result = shuffled
        else:
            pick = Constant(
                VectorType(I1, lanes), [1 if e // lanes == j else 0 for e in rel]
            )
            result = k.b.select(pick, shuffled, result)
    return result


def strided_store(k: HandKernel, value, ptr, start_index, stride: int) -> None:
    """Hand-rolled interleaved store (inverse permute + masked stores)."""
    import numpy as np

    from ...ir import Constant, I1, I64, VectorType

    lanes = value.type.count
    rel = np.arange(lanes) * stride
    k_vectors = int(rel.max()) // lanes + 1
    for j in range(k_vectors):
        inv = [0] * lanes
        valid = [0] * lanes
        for lane, e in enumerate(rel):
            e = int(e)
            if j * lanes <= e < (j + 1) * lanes:
                inv[e - j * lanes] = lane
                valid[e - j * lanes] = 1
        if not any(valid):
            continue
        invc = Constant(VectorType(I64, lanes), inv)
        wvals = k.b.shuffle(value, invc)
        wmask = Constant(VectorType(I1, lanes), valid)
        addr = k.b.gep(ptr, k.add(start_index, k.i64(j * lanes)))
        k.b.vstore(wvals, addr, wmask)


def accumulator_hand(module: Module, params: Sequence[Tuple[str, Type]], lanes: int,
                     acc_type: Type,
                     body: Callable[[HandKernel, object, object], object]) -> None:
    """A reduction ``kernel(..., out*, n)``: ``body(k, i, acc)`` returns the
    updated scalar accumulator; the final value is stored to ``out[0]``.

    The accumulator lives in a stack slot (mem2reg-free hand code), which
    is how intrinsics kernels keep horizontal sums out of the hot loop.
    """
    k = hand_kernel(module, "kernel", params)
    cell = k.alloca(acc_type, 1, "acc")
    k.b.store(k.const(acc_type, 0), cell)
    with k.loop(k.p.n, step=lanes) as i:
        acc = k.b.load(cell, "acc")
        k.b.store(body(k, i, acc), cell)
    k.store_scalar(k.b.load(cell), k.p.out, k.i64(0))
    k.ret()
    k.done()
