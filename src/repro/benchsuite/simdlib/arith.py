"""Simd Library kernels: per-pixel arithmetic operations family."""

from __future__ import annotations

import numpy as np

from ...ir import I8, I16, I64, PointerType
from ..kernelspec import KernelSpec, elementwise_sources
from ..workloads import Workload, gray_image, rng_for
from .handutil import P8, P16, simple_hand

KERNELS = []


def _spec(**kwargs):
    spec = KernelSpec(group="arith", **kwargs)
    KERNELS.append(spec)
    return spec


def _two_in_one_out_workload(name, dtype=np.uint8):
    def make():
        rng = rng_for(name)
        a = gray_image(rng, dtype=dtype)
        b = gray_image(rng, dtype=dtype)
        return Workload([a, b, np.zeros_like(a)], [a.size], outputs=[2])

    return make


def _binary_u8(name, doc, scalar_body, psim_body, hand_op, ref):
    """An (a[i], b[i]) -> c[i] u8 kernel in all four implementations."""
    scalar_src, psim_src = elementwise_sources(
        "u8* a, u8* b, u8* c", scalar_body, psim_body=psim_body
    )

    def hand(module):
        def body(k, i):
            va = k.load(k.p.a, i, 64)
            vb = k.load(k.p.b, i, 64)
            k.store(hand_op(k, va, vb), k.p.c, i)

        simple_hand(module, [("a", P8), ("b", P8), ("c", P8), ("n", I64)], 64, body)

    return _spec(
        name=name,
        doc=doc,
        scalar_src=scalar_src,
        psim_src=psim_src,
        hand_build=hand,
        workload=_two_in_one_out_workload(name),
        ref=lambda w: [ref(w.arrays[0], w.arrays[1])],
    )


_binary_u8(
    "AbsDifference",
    "per-pixel absolute difference",
    "c[i] = (u8)abs((i32)a[i] - (i32)b[i]);",
    "c[i] = absdiff(a[i], b[i]);",
    lambda k, va, vb: k.abs_diff_u8(va, vb),
    lambda a, b: np.abs(a.astype(np.int16) - b).astype(np.uint8),
)

_sqdiff_scalar, _sqdiff_psim = elementwise_sources(
    "u8* a, u8* b, u8* c",
    "i32 d = (i32)a[i] - (i32)b[i]; c[i] = (u8)min(d * d, 255);",
    psim_body=(
        "u16 d = (u16)absdiff(a[i], b[i]); u16 s = d * d; "
        "c[i] = (u8)min(s, (u16)255);"
    ),
)


def _sqdiff_hand(module):
    def body(k, i):
        va = k.load(k.p.a, i, 64)
        vb = k.load(k.p.b, i, 64)
        d = k.widen_u8_u16(k.abs_diff_u8(va, vb))
        sq = k.mul(d, d)
        k.store(k.narrow_to_u8(k.umin(sq, k.splat(I16, 255, 64))), k.p.c, i)

    simple_hand(module, [("a", P8), ("b", P8), ("c", P8), ("n", I64)], 64, body)


_spec(
    name="SquaredDifference",
    doc="per-pixel squared difference, saturated to u8",
    scalar_src=_sqdiff_scalar,
    psim_src=_sqdiff_psim,
    hand_build=_sqdiff_hand,
    workload=_two_in_one_out_workload("SquaredDifference"),
    ref=lambda w: [
        np.minimum(
            (w.arrays[0].astype(np.int32) - w.arrays[1].astype(np.int32)) ** 2, 255
        ).astype(np.uint8)
    ],
)

_binary_u8(
    "OperationBinary8uAnd",
    "bitwise and of two images",
    "c[i] = a[i] & b[i];",
    None,
    lambda k, va, vb: k.and_(va, vb),
    lambda a, b: a & b,
)

_binary_u8(
    "OperationBinary8uOr",
    "bitwise or of two images",
    "c[i] = a[i] | b[i];",
    None,
    lambda k, va, vb: k.or_(va, vb),
    lambda a, b: a | b,
)

_binary_u8(
    "OperationBinary8uMaximum",
    "per-pixel maximum",
    "c[i] = max(a[i], b[i]);",
    None,
    lambda k, va, vb: k.umax(va, vb),
    lambda a, b: np.maximum(a, b),
)

_binary_u8(
    "OperationBinary8uMinimum",
    "per-pixel minimum",
    "c[i] = min(a[i], b[i]);",
    None,
    lambda k, va, vb: k.umin(va, vb),
    lambda a, b: np.minimum(a, b),
)

_binary_u8(
    "OperationBinary8uSaturatedAddition",
    "per-pixel saturating add",
    "c[i] = (u8)min((i32)a[i] + (i32)b[i], 255);",
    "c[i] = addsat(a[i], b[i]);",
    lambda k, va, vb: k.sat_add_u8(va, vb),
    lambda a, b: np.minimum(a.astype(np.int32) + b, 255).astype(np.uint8),
)

_binary_u8(
    "OperationBinary8uSaturatedSubtraction",
    "per-pixel saturating subtract",
    "c[i] = (u8)max((i32)a[i] - (i32)b[i], 0);",
    "c[i] = subsat(a[i], b[i]);",
    lambda k, va, vb: k.sat_sub_u8(va, vb),
    lambda a, b: np.maximum(a.astype(np.int32) - b.astype(np.int32), 0).astype(np.uint8),
)

_binary_u8(
    "OperationBinary8uAverage",
    "per-pixel rounding average",
    "c[i] = (u8)(((i32)a[i] + (i32)b[i] + 1) >> 1);",
    "c[i] = avgr(a[i], b[i]);",
    lambda k, va, vb: k.avg_u8(va, vb),
    lambda a, b: ((a.astype(np.int32) + b + 1) >> 1).astype(np.uint8),
)


# -- OperationBinary16iAddition (wrapping i16 add) -----------------------------------

_add16_scalar, _add16_psim = elementwise_sources(
    "i16* a, i16* b, i16* c", "c[i] = a[i] + b[i];", gang=32
)


def _add16_hand(module):
    def body(k, i):
        va = k.load(k.p.a, i, 32)
        vb = k.load(k.p.b, i, 32)
        k.store(k.add(va, vb), k.p.c, i)

    simple_hand(module, [("a", P16), ("b", P16), ("c", P16), ("n", I64)], 32, body)


def _add16_workload():
    rng = rng_for("OperationBinary16iAddition")
    a = gray_image(rng, dtype=np.int16).view(np.int16)
    b = gray_image(rng, dtype=np.int16).view(np.int16)
    return Workload([a, b, np.zeros_like(a)], [a.size], outputs=[2])


_spec(
    name="OperationBinary16iAddition",
    doc="wrapping 16-bit addition",
    scalar_src=_add16_scalar,
    psim_src=_add16_psim,
    hand_build=_add16_hand,
    workload=_add16_workload,
    ref=lambda w: [(w.arrays[0] + w.arrays[1])],
)

# -- SaturatedSubtraction16i ----------------------------------------------------------

_sub16_scalar, _sub16_psim = elementwise_sources(
    "i16* a, i16* b, i16* c",
    "i32 d = (i32)a[i] - (i32)b[i]; c[i] = (i16)max(min(d, 32767), -32768);",
    gang=32,
    psim_body="c[i] = subsat(a[i], b[i]);",
)


def _sub16_hand(module):
    def body(k, i):
        va = k.load(k.p.a, i, 32)
        vb = k.load(k.p.b, i, 32)
        k.store(k.subsat_s(va, vb), k.p.c, i)

    simple_hand(module, [("a", P16), ("b", P16), ("c", P16), ("n", I64)], 32, body)


def _sub16_workload():
    rng = rng_for("OperationBinary16iSaturatedSubtraction")
    a = rng.integers(-32768, 32768, 64 * 48).astype(np.int16)
    b = rng.integers(-32768, 32768, 64 * 48).astype(np.int16)
    return Workload([a, b, np.zeros_like(a)], [a.size], outputs=[2])


_spec(
    name="OperationBinary16iSaturatedSubtraction",
    doc="saturating 16-bit subtraction",
    scalar_src=_sub16_scalar,
    psim_src=_sub16_psim,
    hand_build=_sub16_hand,
    workload=_sub16_workload,
    ref=lambda w: [
        np.clip(
            w.arrays[0].astype(np.int32) - w.arrays[1].astype(np.int32),
            -32768, 32767,
        ).astype(np.int16)
    ],
)
