"""Simd Library kernels: copy / fill / reorder / resize family."""

from __future__ import annotations

import numpy as np

from ...ir import I8, I64
from ..kernelspec import KernelSpec, elementwise_sources
from ..workloads import Workload, gray_image, rng_for
from .handutil import P8, simple_hand

KERNELS = []


def _spec(**kwargs):
    spec = KernelSpec(group="copyfill", **kwargs)
    KERNELS.append(spec)
    return spec


# -- Copy -----------------------------------------------------------------------

_copy_scalar, _copy_psim = elementwise_sources(
    "u8* src, u8* dst", "dst[i] = src[i];"
)


def _copy_hand(module):
    def body(k, i):
        k.store(k.load(k.p.src, i, 64), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, body)


def _copy_workload():
    rng = rng_for("Copy")
    src = gray_image(rng)
    return Workload([src, np.zeros_like(src)], [src.size], outputs=[1])


_spec(
    name="Copy",
    doc="byte-wise image copy",
    scalar_src=_copy_scalar,
    psim_src=_copy_psim,
    hand_build=_copy_hand,
    workload=_copy_workload,
    ref=lambda w: [w.arrays[0]],
)

# -- Fill -----------------------------------------------------------------------

_fill_scalar, _fill_psim = elementwise_sources(
    "u8* dst, u8 value", "dst[i] = value;"
)


def _fill_hand(module):
    def body(k, i):
        k.store(k.broadcast(k.p.value, 64), k.p.dst, i)

    simple_hand(module, [("dst", P8), ("value", I8), ("n", I64)], 64, body)


def _fill_workload():
    rng = rng_for("Fill")
    dst = gray_image(rng)
    return Workload([dst], [0xA5, dst.size], outputs=[0])


_spec(
    name="Fill",
    doc="fill an image with a constant byte",
    scalar_src=_fill_scalar,
    psim_src=_fill_psim,
    hand_build=_fill_hand,
    workload=_fill_workload,
    ref=lambda w: [np.full_like(w.arrays[0], 0xA5)],
)

# -- FillBgr ----------------------------------------------------------------------

_fillbgr_scalar, _fillbgr_psim = elementwise_sources(
    "u8* dst, u8 blue, u8 green, u8 red",
    "dst[3 * i] = blue; dst[3 * i + 1] = green; dst[3 * i + 2] = red;",
)


def _fillbgr_hand(module):
    from ...ir import Constant, I1, VectorType

    k_holder = {}

    def body(k, i):
        base = k.mul(i, k.i64(3))
        for j, pattern in enumerate(k_holder["patterns"]):
            k.store(pattern, k.p.dst, k.add(base, k.i64(j * 64)))

    # Precompute the three 64-byte repeating BGR pattern vectors in the
    # entry block (the intrinsics version keeps these in registers).
    from ...simd import hand_kernel

    k = hand_kernel(
        module,
        "kernel",
        [("dst", P8), ("blue", I8), ("green", I8), ("red", I8), ("n", I64)],
    )
    channel_vecs = [k.broadcast(getattr(k.p, c), 64) for c in ("blue", "green", "red")]
    patterns = []
    for j in range(3):
        sel = None
        for c in range(3):
            mask = Constant(
                VectorType(I1, 64),
                [1 if (j * 64 + p) % 3 == c else 0 for p in range(64)],
            )
            sel = channel_vecs[c] if sel is None else k.blend(mask, channel_vecs[c], sel)
        patterns.append(sel)
    k_holder["patterns"] = patterns
    with k.loop(k.p.n, step=64) as i:
        body(k, i)
    k.ret()
    k.done()


def _fillbgr_workload():
    rng = rng_for("FillBgr")
    dst = gray_image(rng, w=64, h=24)  # 1536 bytes = 512 pixels * 3
    return Workload([dst], [10, 20, 30, dst.size // 3], outputs=[0])


def _fillbgr_ref(w):
    out = np.empty_like(w.arrays[0])
    out[0::3], out[1::3], out[2::3] = 10, 20, 30
    return [out]


_spec(
    name="FillBgr",
    doc="fill an interleaved 3-channel image with a constant colour",
    scalar_src=_fillbgr_scalar,
    psim_src=_fillbgr_psim,
    hand_build=_fillbgr_hand,
    workload=_fillbgr_workload,
    ref=_fillbgr_ref,
)

# -- FillBgra ----------------------------------------------------------------------

_fillbgra_scalar, _fillbgra_psim = elementwise_sources(
    "u8* dst, u8 blue, u8 green, u8 red, u8 alpha",
    "dst[4 * i] = blue; dst[4 * i + 1] = green; "
    "dst[4 * i + 2] = red; dst[4 * i + 3] = alpha;",
)


def _fillbgra_hand(module):
    from ...ir import I32

    def body(k, i):
        # Real intrinsics code stores the packed BGRA dword pattern.
        b8 = k.zext(k.p.blue, I32)
        g8 = k.shl(k.zext(k.p.green, I32), k.const(I32, 8))
        r8 = k.shl(k.zext(k.p.red, I32), k.const(I32, 16))
        a8 = k.shl(k.zext(k.p.alpha, I32), k.const(I32, 24))
        pattern = k.or_(k.or_(b8, g8), k.or_(r8, a8))
        vec = k.broadcast(pattern, 16)
        addr = k.b.bitcast(k.b.gep(k.p.dst, k.mul(i, k.i64(4))), P32_ptr())
        k.b.vstore(vec, addr, k.full_mask(16))

    simple_hand(
        module,
        [("dst", P8), ("blue", I8), ("green", I8), ("red", I8), ("alpha", I8), ("n", I64)],
        16,
        body,
    )


def P32_ptr():
    from ...ir import I32, PointerType

    return PointerType(I32)


def _fillbgra_workload():
    rng = rng_for("FillBgra")
    dst = gray_image(rng, w=64, h=16)  # 1024 bytes = 256 pixels * 4
    return Workload([dst], [1, 2, 3, 4, dst.size // 4], outputs=[0])


def _fillbgra_ref(w):
    out = np.empty_like(w.arrays[0])
    out[0::4], out[1::4], out[2::4], out[3::4] = 1, 2, 3, 4
    return [out]


_spec(
    name="FillBgra",
    doc="fill an interleaved 4-channel image with a constant colour",
    scalar_src=_fillbgra_scalar,
    psim_src=_fillbgra_psim,
    hand_build=_fillbgra_hand,
    workload=_fillbgra_workload,
    ref=_fillbgra_ref,
)

# -- StretchGray2x2 (1-D horizontal upsample) -----------------------------------------

_stretch_scalar, _stretch_psim = elementwise_sources(
    "u8* src, u8* dst",
    "u8 v = src[i]; dst[2 * i] = v; dst[2 * i + 1] = v;",
)


def _stretch_hand(module):
    def body(k, i):
        v = k.load(k.p.src, i, 64)
        # vpunpcklbw/vpunpckhbw equivalent: duplicate each byte.
        dup_lo = k.permute(v, [j // 2 for j in range(64)])
        dup_hi = k.permute(v, [32 + j // 2 for j in range(64)])
        out = k.mul(i, k.i64(2))
        k.store(dup_lo, k.p.dst, out)
        k.store(dup_hi, k.p.dst, k.add(out, k.i64(64)))

    simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, body)


def _stretch_workload():
    rng = rng_for("StretchGray2x2")
    src = gray_image(rng)
    return Workload([src, np.zeros(src.size * 2, np.uint8)], [src.size], outputs=[1])


_spec(
    name="StretchGray2x2",
    doc="2x horizontal upsample by pixel duplication",
    scalar_src=_stretch_scalar,
    psim_src=_stretch_psim,
    hand_build=_stretch_hand,
    workload=_stretch_workload,
    ref=lambda w: [np.repeat(w.arrays[0], 2)],
)

# -- ReduceGray2x2 (1-D horizontal downsample with rounding average) --------------------

_reduce_scalar, _reduce_psim = elementwise_sources(
    "u8* src, u8* dst",
    "dst[i] = (u8)(((i32)src[2 * i] + (i32)src[2 * i + 1] + 1) >> 1);",
    psim_body="dst[i] = avgr(src[2 * i], src[2 * i + 1]);",
)


def _reducegray_hand(module):
    def body(k, i):
        src0 = k.load(k.p.src, k.mul(i, k.i64(2)), 64)
        src1 = k.load(k.p.src, k.add(k.mul(i, k.i64(2)), k.i64(64)), 64)
        even = k.b.shuffle2(src0, src1, _even_idx(k))
        odd = k.b.shuffle2(src0, src1, _odd_idx(k))
        k.store(k.avg_u8(even, odd), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, body)


def _even_idx(k):
    from ...ir import Constant, VectorType

    return Constant(VectorType(I64, 64), [2 * j for j in range(64)])


def _odd_idx(k):
    from ...ir import Constant, VectorType

    return Constant(VectorType(I64, 64), [2 * j + 1 for j in range(64)])


def _reducegray_workload():
    rng = rng_for("ReduceGray2x2")
    src = gray_image(rng)
    return Workload(
        [src, np.zeros(src.size // 2, np.uint8)], [src.size // 2], outputs=[1]
    )


def _reducegray_ref(w):
    s = w.arrays[0].astype(np.uint16)
    return [((s[0::2] + s[1::2] + 1) >> 1).astype(np.uint8)]


_spec(
    name="ReduceGray2x2",
    doc="2x horizontal downsample with rounding average",
    scalar_src=_reduce_scalar,
    psim_src=_reduce_psim,
    hand_build=_reducegray_hand,
    workload=_reducegray_workload,
    ref=_reducegray_ref,
)

# -- Reorder16bit / Reorder32bit (endianness swaps) --------------------------------------

_reorder16_scalar, _reorder16_psim = elementwise_sources(
    "u8* src, u8* dst", "dst[i] = src[i ^ 1];"
)


def _reorder16_hand(module):
    def body(k, i):
        v = k.load(k.p.src, i, 64)
        k.store(k.permute(v, [j ^ 1 for j in range(64)]), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, body)


def _reorder16_workload():
    rng = rng_for("Reorder16bit")
    src = gray_image(rng)
    return Workload([src, np.zeros_like(src)], [src.size], outputs=[1])


_spec(
    name="Reorder16bit",
    doc="byte swap within 16-bit words",
    scalar_src=_reorder16_scalar,
    psim_src=_reorder16_psim,
    hand_build=_reorder16_hand,
    workload=_reorder16_workload,
    ref=lambda w: [w.arrays[0].reshape(-1, 2)[:, ::-1].reshape(-1)],
)

_reorder32_scalar, _reorder32_psim = elementwise_sources(
    "u8* src, u8* dst", "dst[i] = src[i ^ 3];"
)


def _reorder32_hand(module):
    def body(k, i):
        v = k.load(k.p.src, i, 64)
        k.store(k.permute(v, [j ^ 3 for j in range(64)]), k.p.dst, i)

    simple_hand(module, [("src", P8), ("dst", P8), ("n", I64)], 64, body)


def _reorder32_workload():
    rng = rng_for("Reorder32bit")
    src = gray_image(rng)
    return Workload([src, np.zeros_like(src)], [src.size], outputs=[1])


_spec(
    name="Reorder32bit",
    doc="byte reversal within 32-bit words",
    scalar_src=_reorder32_scalar,
    psim_src=_reorder32_psim,
    hand_build=_reorder32_hand,
    workload=_reorder32_workload,
    ref=lambda w: [w.arrays[0].reshape(-1, 4)[:, ::-1].reshape(-1)],
)
