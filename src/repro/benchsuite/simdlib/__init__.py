"""The 72-kernel Simd Library benchmark suite (paper §5, Figure 5).

Each kernel ports one benchmark from the Simd Library in four
implementations (see ``repro.benchsuite.kernelspec``).  Families mirror
the library's own grouping.
"""

from typing import Dict, List

from ..kernelspec import KernelSpec

from . import arith, background, blend, convert, copyfill, filter as filter_, misc, stat

_FAMILIES = [copyfill, arith, blend, convert, filter_, background, stat, misc]

KERNELS: List[KernelSpec] = []
for _family in _FAMILIES:
    KERNELS.extend(_family.KERNELS)

BY_NAME: Dict[str, KernelSpec] = {k.name: k for k in KERNELS}

__all__ = ["KERNELS", "BY_NAME"]
