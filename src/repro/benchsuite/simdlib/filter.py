"""Simd Library kernels: 3x3 filter family (blur, median, Sobel, Laplace).

All filters follow the library's structure: a serial loop over rows and a
parallel/vector loop over interior columns.  The ``h`` parameter counts
*interior* rows (callers pass ``image_h - 2``); ``w`` is the full row
stride.  Hand-written kernels use the classic intrinsics trick of a final
overlapping block instead of a scalar tail.
"""

from __future__ import annotations

import numpy as np

from ...ir import I8, I16, I64
from ..kernelspec import KernelSpec, rowwise_sources
from ..workloads import Workload, rng_for
from .handutil import P8, simple_hand

KERNELS = []

_W, _H = 128, 18  # full image: 128 x 18; interior rows: 16


def _spec(**kwargs):
    spec = KernelSpec(group="filter", **kwargs)
    KERNELS.append(spec)
    return spec


def _filter_workload(name):
    def make():
        rng = rng_for(name)
        src = rng.integers(0, 256, _W * _H).astype(np.uint8)
        return Workload([src, np.zeros_like(src)], [_W, _H - 2], outputs=[1])

    return make


def _rows_hand(module, body, extra_params=()):
    """kernel(src, dst, [extras], w, h): y-loop over h interior rows, x-loop
    over w-2 interior columns in 64-wide blocks (last block overlaps)."""
    from ...simd import hand_kernel

    params = [("src", P8), ("dst", P8), *extra_params, ("w", I64), ("h", I64)]
    k = hand_kernel(module, "kernel", params)
    xlimit = k.sub(k.sub(k.p.w, k.i64(2)), k.i64(64), "xlimit")
    with k.loop(k.p.h) as y:
        row = k.mul(y, k.p.w, "row")
        with k.loop(k.sub(k.p.w, k.i64(2)), step=64, name="xb") as xb:
            x = k.umin(xb, xlimit, "x")
            body(k, k.add(row, x))
    k.ret()
    k.done()


def _ref_3x3(src_img, fn):
    """Apply ``fn(window rows) -> interior`` over the padded numpy image."""
    img = src_img.reshape(_H, _W).astype(np.int32)
    out = np.zeros_like(img)
    res = fn(img)
    out[1:-1, 1:-1] = res
    return out


# -- GaussianBlur3x3 ---------------------------------------------------------------------

_gauss_body = """
    u64 p = row + x;
    i32 s = (i32)src[p] + 2 * (i32)src[p + 1] + (i32)src[p + 2]
          + 2 * (i32)src[p + w] + 4 * (i32)src[p + w + 1] + 2 * (i32)src[p + w + 2]
          + (i32)src[p + 2 * w] + 2 * (i32)src[p + 2 * w + 1] + (i32)src[p + 2 * w + 2];
    dst[p + w + 1] = (u8)((s + 8) >> 4);
"""
_gauss_scalar, _gauss_psim = rowwise_sources("u8* src, u8* dst", _gauss_body, xspan="w - 2")


def _gauss_hand(module):
    def body(k, p):
        acc = k.splat(I16, 8, 64)
        weights = [1, 2, 1, 2, 4, 2, 1, 2, 1]
        offs = [0, 1, 2]
        idx = 0
        for dy in range(3):
            rbase = k.add(p, k.mul(k.i64(dy), k.p.w))
            for dx in range(3):
                v = k.widen_u8_u16(k.load(k.p.src, k.add(rbase, k.i64(dx)), 64))
                wgt = weights[idx]
                idx += 1
                term = v if wgt == 1 else k.shl(v, k.splat(I16, wgt.bit_length() - 1, 64))
                acc = k.add(acc, term)
        out = k.narrow_to_u8(k.lshr(acc, k.splat(I16, 4, 64)))
        k.store(out, k.p.dst, k.add(k.add(p, k.p.w), k.i64(1)))

    _rows_hand(module, body)


def _gauss_ref(w):
    def fn(img):
        s = (
            img[:-2, :-2] + 2 * img[:-2, 1:-1] + img[:-2, 2:]
            + 2 * img[1:-1, :-2] + 4 * img[1:-1, 1:-1] + 2 * img[1:-1, 2:]
            + img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
        )
        return (s + 8) >> 4

    return [_ref_3x3(w.arrays[0], fn).astype(np.uint8).reshape(-1)]


_spec(
    name="GaussianBlur3x3",
    doc="3x3 Gaussian blur (1-2-1 kernel)",
    scalar_src=_gauss_scalar,
    psim_src=_gauss_psim,
    hand_build=_gauss_hand,
    workload=_filter_workload("GaussianBlur3x3"),
    ref=_gauss_ref,
)

# -- MeanFilter3x3 ------------------------------------------------------------------------

_MEAN_FACTOR = 7282  # ceil(2^16 / 9), Simd's fixed-point reciprocal
_MEAN_SHIFT = 16


def _mean_sources():
    sum9 = " + ".join(
        f"(i32)src[p + {dy} * w + {dx}]" for dy in range(3) for dx in range(3)
    )
    body = f"""
        u64 p = row + x;
        i32 s = {sum9};
        dst[p + w + 1] = (u8)((s * {_MEAN_FACTOR}) >> {_MEAN_SHIFT});
    """
    return rowwise_sources("u8* src, u8* dst", body, xspan="w - 2")


_mean_scalar, _mean_psim = _mean_sources()


def _mean_hand(module):
    from ...ir import I32

    def body(k, p):
        acc = k.splat(I32, 0, 64)
        for dy in range(3):
            rbase = k.add(p, k.mul(k.i64(dy), k.p.w))
            for dx in range(3):
                acc = k.add(acc, k.widen_u8_i32(k.load(k.p.src, k.add(rbase, k.i64(dx)), 64)))
        scaled = k.lshr(
            k.mul(acc, k.splat(I32, _MEAN_FACTOR, 64)), k.splat(I32, _MEAN_SHIFT, 64)
        )
        k.store(k.narrow_to_u8(scaled), k.p.dst, k.add(k.add(p, k.p.w), k.i64(1)))

    _rows_hand(module, body)


def _mean_ref(w):
    def fn(img):
        s = sum(img[dy : dy + _H - 2, dx : dx + _W - 2] for dy in range(3) for dx in range(3))
        return (s * _MEAN_FACTOR) >> _MEAN_SHIFT

    return [_ref_3x3(w.arrays[0], fn).astype(np.uint8).reshape(-1)]


_spec(
    name="MeanFilter3x3",
    doc="3x3 box mean via fixed-point reciprocal",
    scalar_src=_mean_scalar,
    psim_src=_mean_psim,
    hand_build=_mean_hand,
    workload=_filter_workload("MeanFilter3x3"),
    ref=_mean_ref,
)

# -- MedianFilter3x3 (9-element sorting network) ----------------------------------------------

# Paeth's 19-exchange network over v0..v8.
_MEDIAN_PAIRS = [
    (1, 2), (4, 5), (7, 8), (0, 1), (3, 4), (6, 7), (1, 2), (4, 5), (7, 8),
    (0, 3), (5, 8), (4, 7), (3, 6), (1, 4), (2, 5), (4, 7), (4, 2), (6, 4),
    (4, 2),
]


def _median_sources():
    loads = "".join(
        f"u8 v{dy * 3 + dx} = src[p + {dy} * w + {dx}]; "
        for dy in range(3)
        for dx in range(3)
    )
    net = ""
    for idx, (a, b) in enumerate(_MEDIAN_PAIRS):
        net += f"u8 t{idx} = min(v{a}, v{b}); v{b} = max(v{a}, v{b}); v{a} = t{idx}; "
    body = f"u64 p = row + x; {loads} {net} dst[p + w + 1] = v4;"
    return rowwise_sources("u8* src, u8* dst", body, xspan="w - 2")


_median_scalar, _median_psim = _median_sources()


def _median_hand(module):
    def body(k, p):
        vals = []
        for dy in range(3):
            rbase = k.add(p, k.mul(k.i64(dy), k.p.w))
            for dx in range(3):
                vals.append(k.load(k.p.src, k.add(rbase, k.i64(dx)), 64))
        for a, b in _MEDIAN_PAIRS:
            lo = k.umin(vals[a], vals[b])
            hi = k.umax(vals[a], vals[b])
            vals[a], vals[b] = lo, hi
        k.store(vals[4], k.p.dst, k.add(k.add(p, k.p.w), k.i64(1)))

    _rows_hand(module, body)


def _median_ref(w):
    img = w.arrays[0].reshape(_H, _W)
    stacked = np.stack(
        [img[dy : dy + _H - 2, dx : dx + _W - 2] for dy in range(3) for dx in range(3)]
    )
    med = np.median(stacked, axis=0).astype(np.uint8)
    out = np.zeros_like(img)
    out[1:-1, 1:-1] = med
    return [out.reshape(-1)]


_spec(
    name="MedianFilter3x3",
    doc="3x3 median via a 19-exchange sorting network",
    scalar_src=_median_scalar,
    psim_src=_median_psim,
    hand_build=_median_hand,
    workload=_filter_workload("MedianFilter3x3"),
    ref=_median_ref,
)

# -- MedianFilterRhomb3x3 (5-element cross median) -----------------------------------------------

_RHOMB_PAIRS = [(0, 1), (2, 3), (0, 2), (1, 3), (1, 2), (2, 4), (1, 2)]
_RHOMB_OFFS = [(0, 1), (1, 0), (1, 1), (1, 2), (2, 1)]


def _rhomb_sources():
    loads = "".join(
        f"u8 v{j} = src[p + {dy} * w + {dx}]; " for j, (dy, dx) in enumerate(_RHOMB_OFFS)
    )
    net = ""
    for idx, (a, b) in enumerate(_RHOMB_PAIRS):
        net += f"u8 q{idx} = min(v{a}, v{b}); v{b} = max(v{a}, v{b}); v{a} = q{idx}; "
    body = f"u64 p = row + x; {loads} {net} dst[p + w + 1] = v2;"
    return rowwise_sources("u8* src, u8* dst", body, xspan="w - 2")


_rhomb_scalar, _rhomb_psim = _rhomb_sources()


def _rhomb_hand(module):
    def body(k, p):
        vals = []
        for dy, dx in _RHOMB_OFFS:
            addr = k.add(k.add(p, k.mul(k.i64(dy), k.p.w)), k.i64(dx))
            vals.append(k.load(k.p.src, addr, 64))
        for a, b in _RHOMB_PAIRS:
            lo = k.umin(vals[a], vals[b])
            hi = k.umax(vals[a], vals[b])
            vals[a], vals[b] = lo, hi
        k.store(vals[2], k.p.dst, k.add(k.add(p, k.p.w), k.i64(1)))

    _rows_hand(module, body)


def _rhomb_ref(w):
    img = w.arrays[0].reshape(_H, _W)
    stacked = np.stack(
        [img[dy : dy + _H - 2, dx : dx + _W - 2] for dy, dx in _RHOMB_OFFS]
    )
    med = np.median(stacked, axis=0).astype(np.uint8)
    out = np.zeros_like(img)
    out[1:-1, 1:-1] = med
    return [out.reshape(-1)]


_spec(
    name="MedianFilterRhomb3x3",
    doc="5-point cross median",
    scalar_src=_rhomb_scalar,
    psim_src=_rhomb_psim,
    hand_build=_rhomb_hand,
    workload=_filter_workload("MedianFilterRhomb3x3"),
    ref=_rhomb_ref,
)

# -- Sobel / Laplace family ------------------------------------------------------------------------


def _stencil_kernel(name, doc, expr_terms, absolute):
    """Shared builder for signed 3x3 stencils.

    ``expr_terms`` is a list of (dy, dx, weight).  Output is i16 (or |.|
    saturated to u8 when ``absolute``).
    """
    terms = " + ".join(
        f"{wgt} * (i32)src[p + {dy} * w + {dx}]" for dy, dx, wgt in expr_terms
    )
    if absolute:
        write = "dst[p + w + 1] = (u8)min(abs(s), 255);"
        out_dtype = np.uint8
    else:
        write = "dst16[p + w + 1] = (i16)s;"
        out_dtype = np.int16
    params = "u8* src, " + ("i16* dst16" if not absolute else "u8* dst")
    body = f"u64 p = row + x; i32 s = {terms}; {write}"
    scalar_src, psim_src = rowwise_sources(params, body, xspan="w - 2")

    def hand(module):
        from ...ir import I16 as _I16
        from .handutil import P16 as _P16

        def block(k, p):
            acc = k.splat(I16, 0, 64)
            for dy, dx, wgt in expr_terms:
                addr = k.add(k.add(p, k.mul(k.i64(dy), k.p.w)), k.i64(dx))
                v = k.widen_u8_u16(k.load(k.p.src, addr, 64))
                if wgt == 1:
                    acc = k.add(acc, v)
                elif wgt == -1:
                    acc = k.sub(acc, v)
                elif wgt > 0:
                    acc = k.add(acc, k.mul(v, k.splat(I16, wgt, 64)))
                else:
                    acc = k.sub(acc, k.mul(v, k.splat(I16, -wgt, 64)))
            out_pos = k.add(k.add(p, k.p.w), k.i64(1))
            if absolute:
                mag = k.iabs(acc)
                clamped = k.umin(mag, k.splat(I16, 255, 64))
                k.store(k.narrow_to_u8(clamped), k.p.dst, out_pos)
            else:
                k.store(acc, k.p.dst16, out_pos)

        if absolute:
            _rows_hand(module, block)
        else:
            from ...simd import hand_kernel

            k = hand_kernel(
                module, "kernel",
                [("src", P8), ("dst16", _P16), ("w", I64), ("h", I64)],
            )
            xlimit = k.sub(k.sub(k.p.w, k.i64(2)), k.i64(64), "xlimit")
            with k.loop(k.p.h) as y:
                row = k.mul(y, k.p.w, "row")
                with k.loop(k.sub(k.p.w, k.i64(2)), step=64, name="xb") as xb:
                    x = k.umin(xb, xlimit, "x")
                    block(k, k.add(row, x))
            k.ret()
            k.done()

    def workload():
        rng = rng_for(name)
        src = rng.integers(0, 256, _W * _H).astype(np.uint8)
        dst = np.zeros(_W * _H, out_dtype)
        return Workload([src, dst], [_W, _H - 2], outputs=[1])

    def ref(w):
        img = w.arrays[0].reshape(_H, _W).astype(np.int32)
        s = sum(
            wgt * img[1 + dy - 1 : _H - 1 + dy - 1, 1 + dx - 1 : _W - 1 + dx - 1]
            for dy, dx, wgt in expr_terms
        )
        out = np.zeros((_H, _W), np.int32)
        out[1:-1, 1:-1] = np.minimum(np.abs(s), 255) if absolute else s
        return [out.astype(out_dtype).reshape(-1)]

    _spec(
        name=name,
        doc=doc,
        scalar_src=scalar_src,
        psim_src=psim_src,
        hand_build=hand,
        workload=workload,
        ref=ref,
    )


_SOBEL_DX = [(0, 2, 1), (1, 2, 2), (2, 2, 1), (0, 0, -1), (1, 0, -2), (2, 0, -1)]
_SOBEL_DY = [(2, 0, 1), (2, 1, 2), (2, 2, 1), (0, 0, -1), (0, 1, -2), (0, 2, -1)]
_LAPLACE = [
    (0, 0, -1), (0, 1, -1), (0, 2, -1),
    (1, 0, -1), (1, 1, 8), (1, 2, -1),
    (2, 0, -1), (2, 1, -1), (2, 2, -1),
]

_stencil_kernel("SobelDx", "horizontal Sobel gradient (i16 output)", _SOBEL_DX, absolute=False)
_stencil_kernel("SobelDy", "vertical Sobel gradient (i16 output)", _SOBEL_DY, absolute=False)
_stencil_kernel("SobelDxAbs", "absolute horizontal Sobel", _SOBEL_DX, absolute=True)
_stencil_kernel("SobelDyAbs", "absolute vertical Sobel", _SOBEL_DY, absolute=True)
_stencil_kernel("Laplace", "3x3 Laplace operator (i16 output)", _LAPLACE, absolute=False)
_stencil_kernel("LaplaceAbs", "absolute 3x3 Laplace", _LAPLACE, absolute=True)

# -- AbsGradientSaturatedSum -----------------------------------------------------------------------

_grad_body = """
    u64 p = row + w + x + 1;
    i32 dx = abs((i32)src[p + 1] - (i32)src[p - 1]);
    i32 dy = abs((i32)src[p + w] - (i32)src[p - w]);
    dst[p] = (u8)min(dx + dy, 255);
"""
_grad_psim_body = """
    u64 p = row + w + x + 1;
    u8 dx = absdiff(src[p + 1], src[p - 1]);
    u8 dy = absdiff(src[p + w], src[p - w]);
    dst[p] = addsat(dx, dy);
"""
_grad_scalar, _grad_psim = rowwise_sources(
    "u8* src, u8* dst", _grad_body, xspan="w - 2"
)
_grad_psim = rowwise_sources("u8* src, u8* dst", _grad_psim_body, xspan="w - 2")[1]


def _grad_hand(module):
    def body(k, p0):
        p = k.add(k.add(p0, k.p.w), k.i64(1))
        dx = k.abs_diff_u8(
            k.load(k.p.src, k.add(p, k.i64(1)), 64),
            k.load(k.p.src, k.sub(p, k.i64(1)), 64),
        )
        dy = k.abs_diff_u8(
            k.load(k.p.src, k.add(p, k.p.w), 64),
            k.load(k.p.src, k.sub(p, k.p.w), 64),
        )
        k.store(k.sat_add_u8(dx, dy), k.p.dst, p)

    _rows_hand(module, body)


def _grad_ref(w):
    img = w.arrays[0].reshape(_H, _W).astype(np.int32)
    dx = np.abs(img[1:-1, 2:] - img[1:-1, :-2])
    dy = np.abs(img[2:, 1:-1] - img[:-2, 1:-1])
    out = np.zeros((_H, _W), np.int32)
    out[1:-1, 1:-1] = np.minimum(dx + dy, 255)
    return [out.astype(np.uint8).reshape(-1)]


_spec(
    name="AbsGradientSaturatedSum",
    doc="saturated |dx| + |dy| gradient magnitude",
    scalar_src=_grad_scalar,
    psim_src=_grad_psim,
    hand_build=_grad_hand,
    workload=_filter_workload("AbsGradientSaturatedSum"),
    ref=_grad_ref,
)
