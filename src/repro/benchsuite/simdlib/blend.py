"""Simd Library kernels: alpha blending / thresholding family."""

from __future__ import annotations

import numpy as np

from ...ir import I8, I16, I64
from ..kernelspec import KernelSpec, elementwise_sources
from ..workloads import Workload, gray_image, rng_for
from .handutil import P8, simple_hand

KERNELS = []


def _spec(**kwargs):
    spec = KernelSpec(group="blend", **kwargs)
    KERNELS.append(spec)
    return spec


def _div255_expr(var: str) -> str:
    # Simd's exact divide-by-255: (x + 1 + (x >> 8)) >> 8
    return f"(({var} + 1 + ({var} >> 8)) >> 8)"


def _hand_div255(k, wide16):
    one = k.splat(I16, 1, 32)
    eight = k.splat(I16, 8, 32)
    t = k.add(k.add(wide16, one), k.lshr(wide16, eight))
    return k.lshr(t, eight)


# -- AlphaBlending --------------------------------------------------------------------

_ab_body = (
    "i32 t = (i32)a[i] * (i32)alpha[i] + (i32)b[i] * (255 - (i32)alpha[i]); "
    f"c[i] = (u8){_div255_expr('t')};"
)
_ab_psim = (
    "u16 va = (u16)a[i]; u16 vb = (u16)b[i]; u16 al = (u16)alpha[i]; "
    "u16 t = va * al + vb * (255 - al); "
    f"c[i] = (u8){_div255_expr('(u32)t')};"
)
_ab_scalar_src, _ab_psim_src = elementwise_sources(
    "u8* a, u8* b, u8* alpha, u8* c", _ab_body, psim_body=_ab_psim
)


def _alpha_blend_ref(a, b, alpha):
    t = a.astype(np.int32) * alpha + b.astype(np.int32) * (255 - alpha.astype(np.int32))
    return ((t + 1 + (t >> 8)) >> 8).astype(np.uint8)


def _ab_hand(module):
    def body(k, i):
        # vpmullw-based blend on u16 halves (as the AVX-512 original).
        for half in range(2):
            off = k.add(i, k.i64(half * 32))
            va = k.widen_u8_u16(k.load(k.p.a, off, 32))
            vb = k.widen_u8_u16(k.load(k.p.b, off, 32))
            al = k.widen_u8_u16(k.load(k.p.alpha, off, 32))
            inv = k.sub(k.splat(I16, 255, 32), al)
            t = k.add(k.mul(va, al), k.mul(vb, inv))
            k.store(k.narrow_to_u8(_hand_div255(k, t)), k.p.c, off)

    simple_hand(
        module,
        [("a", P8), ("b", P8), ("alpha", P8), ("c", P8), ("n", I64)],
        64,
        body,
    )


def _ab_workload():
    rng = rng_for("AlphaBlending")
    a = gray_image(rng)
    b = gray_image(rng)
    alpha = gray_image(rng)
    return Workload([a, b, alpha, np.zeros_like(a)], [a.size], outputs=[3])


_spec(
    name="AlphaBlending",
    doc="per-pixel alpha blend of two images",
    scalar_src=_ab_scalar_src,
    psim_src=_ab_psim_src,
    hand_build=_ab_hand,
    workload=_ab_workload,
    ref=lambda w: [_alpha_blend_ref(w.arrays[0], w.arrays[1], w.arrays[2])],
)

# -- AlphaFilling (blend a constant colour by per-pixel alpha) ---------------------------

_af_body = (
    "i32 t = (i32)value * (i32)alpha[i] + (i32)dst[i] * (255 - (i32)alpha[i]); "
    f"dst[i] = (u8){_div255_expr('t')};"
)
_af_psim = (
    "u16 al = (u16)alpha[i]; "
    "u16 t = (u16)value * al + (u16)dst[i] * (255 - al); "
    f"dst[i] = (u8){_div255_expr('(u32)t')};"
)
_af_scalar_src, _af_psim_src = elementwise_sources(
    "u8* dst, u8* alpha, u8 value", _af_body, psim_body=_af_psim
)


def _af_hand(module):
    def body(k, i):
        for half in range(2):
            off = k.add(i, k.i64(half * 32))
            vd = k.widen_u8_u16(k.load(k.p.dst, off, 32))
            al = k.widen_u8_u16(k.load(k.p.alpha, off, 32))
            vv = k.broadcast(k.b.zext(k.p.value, I16), 32)
            inv = k.sub(k.splat(I16, 255, 32), al)
            t = k.add(k.mul(vv, al), k.mul(vd, inv))
            k.store(k.narrow_to_u8(_hand_div255(k, t)), k.p.dst, off)

    simple_hand(module, [("dst", P8), ("alpha", P8), ("value", I8), ("n", I64)], 64, body)


def _af_workload():
    rng = rng_for("AlphaFilling")
    dst = gray_image(rng)
    alpha = gray_image(rng)
    return Workload([dst, alpha], [0x80, dst.size], outputs=[0])


_spec(
    name="AlphaFilling",
    doc="alpha-blend a constant value into an image",
    scalar_src=_af_scalar_src,
    psim_src=_af_psim_src,
    hand_build=_af_hand,
    workload=_af_workload,
    ref=lambda w: [_alpha_blend_ref(np.full_like(w.arrays[0], 0x80), w.arrays[0], w.arrays[1])],
)

# -- AlphaPremultiply ---------------------------------------------------------------------

_ap_body = (
    "i32 t = (i32)src[i] * (i32)alpha[i]; "
    f"dst[i] = (u8){_div255_expr('t')};"
)
_ap_psim = (
    "u16 t = (u16)src[i] * (u16)alpha[i]; "
    f"dst[i] = (u8){_div255_expr('(u32)t')};"
)
_ap_scalar_src, _ap_psim_src = elementwise_sources(
    "u8* src, u8* alpha, u8* dst", _ap_body, psim_body=_ap_psim
)


def _ap_hand(module):
    def body(k, i):
        for half in range(2):
            off = k.add(i, k.i64(half * 32))
            vs = k.widen_u8_u16(k.load(k.p.src, off, 32))
            al = k.widen_u8_u16(k.load(k.p.alpha, off, 32))
            k.store(k.narrow_to_u8(_hand_div255(k, k.mul(vs, al))), k.p.dst, off)

    simple_hand(module, [("src", P8), ("alpha", P8), ("dst", P8), ("n", I64)], 64, body)


def _ap_workload():
    rng = rng_for("AlphaPremultiply")
    src = gray_image(rng)
    alpha = gray_image(rng)
    return Workload([src, alpha, np.zeros_like(src)], [src.size], outputs=[2])


def _ap_ref(w):
    t = w.arrays[0].astype(np.int32) * w.arrays[1]
    return [((t + 1 + (t >> 8)) >> 8).astype(np.uint8)]


_spec(
    name="AlphaPremultiply",
    doc="premultiply pixels by per-pixel alpha",
    scalar_src=_ap_scalar_src,
    psim_src=_ap_psim_src,
    hand_build=_ap_hand,
    workload=_ap_workload,
    ref=_ap_ref,
)

# -- Binarization ----------------------------------------------------------------------

_bin_scalar, _bin_psim = elementwise_sources(
    "u8* src, u8* dst, u8 threshold, u8 positive, u8 negative",
    "dst[i] = src[i] > threshold ? positive : negative;",
)


def _bin_hand(module):
    def body(k, i):
        v = k.load(k.p.src, i, 64)
        thr = k.broadcast(k.p.threshold, 64)
        mask = k.icmp("ugt", v, thr)
        pos = k.broadcast(k.p.positive, 64)
        neg = k.broadcast(k.p.negative, 64)
        k.store(k.blend(mask, pos, neg), k.p.dst, i)

    simple_hand(
        module,
        [("src", P8), ("dst", P8), ("threshold", I8), ("positive", I8), ("negative", I8), ("n", I64)],
        64,
        body,
    )


def _bin_workload():
    rng = rng_for("Binarization")
    src = gray_image(rng)
    return Workload([src, np.zeros_like(src)], [100, 255, 0, src.size], outputs=[1])


_spec(
    name="Binarization",
    doc="threshold an image to two values",
    scalar_src=_bin_scalar,
    psim_src=_bin_psim,
    hand_build=_bin_hand,
    workload=_bin_workload,
    ref=lambda w: [np.where(w.arrays[0] > 100, 255, 0).astype(np.uint8)],
)

# -- GrayToLut (ChangeColors: table lookup) ------------------------------------------------

_lut_scalar, _lut_psim = elementwise_sources(
    "u8* src, u8* lut, u8* dst",
    "dst[i] = lut[(u64)src[i]];",
)


def _lut_hand(module):
    from ...ir import Constant, VectorType

    def body(k, i):
        # Even hand-written AVX-512 code gathers for a 256-entry LUT.
        v = k.load(k.p.src, i, 64)
        base = k.b.ptrtoint(k.p.lut, I64)
        idx = k.b.zext(v, VectorType(I64, 64))
        addrs = k.b.add(k.b.broadcast(base, 64), idx)
        ptrs = k.b.inttoptr(addrs, VectorType(P8, 64))
        k.store(k.b.gather(ptrs, k.full_mask(64)), k.p.dst, i)

    simple_hand(module, [("src", P8), ("lut", P8), ("dst", P8), ("n", I64)], 64, body)


def _lut_workload():
    rng = rng_for("ChangeColors")
    src = gray_image(rng)
    lut = rng.integers(0, 256, 256).astype(np.uint8)
    return Workload([src, lut, np.zeros_like(src)], [src.size], outputs=[2])


_spec(
    name="ChangeColors",
    doc="8-bit table lookup (LUT) recolouring",
    scalar_src=_lut_scalar,
    psim_src=_lut_psim,
    hand_build=_lut_hand,
    workload=_lut_workload,
    ref=lambda w: [w.arrays[1][w.arrays[0]]],
)
