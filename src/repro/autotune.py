"""``repro.autotune`` — profile-guided engine and batch-factor selection.

The static cost model behind :func:`repro.backend.costmodel.suggest_batch_factor`
picks a batch factor from the gang size alone, and `BENCH_5.json` showed it
guessing wrong: gang batching *lost* wall-clock on stencil (0.85×) and
barely paid on binomial (1.13×) while winning 4–5.5× elsewhere.  This
module replaces the guess with measured data, goSLP-style: decisions come
from profiles, not from a shape-blind heuristic.

How it works
------------

* **Keying.**  Samples are stored per ``(kernel content fingerprint,
  engine config, batch factor B)``.  The fingerprint is a SHA-256 of the
  kernel source; the engine config names the machine model and whether
  decode-level fusion is on (``avx512/fused``).  Factor ``1`` means
  "batching off / not applied".

* **First run: measure.**  When a kernel has no pinned choice, the runner
  compiles and times a small candidate set — unbatched (request ``0``),
  ``B=2``, and the cost model's suggestion (request ``None``) — deduped by
  the *effective* factor each request produces, then **pins** the winner.
  Winner selection has hysteresis (:data:`PIN_MARGIN`): the smallest
  factor within the margin of the fastest sample wins, so a batched
  configuration is pinned only when it *clearly* beats unbatched —
  wall-clock sampling noise must not pin a config that merely tied.
  Real batching wins are multiples (4–6× on mandelbrot/aobench), far
  above the margin; losses and ties land on the safe unbatched side.
  Since v2 every deduped factor is timed twice — decoded engine and
  whole-kernel codegen (:mod:`repro.backend.codegen`) — and the pin
  carries a ``codegen`` flag chosen by :func:`choose_config`: codegen
  wins its leg only past :data:`CODEGEN_MARGIN` hysteresis.

* **Steady state: pinned.**  Later runs (and later *processes* — the store
  lives on disk next to :mod:`repro.diskcache`'s entries) compile straight
  to the pinned configuration; every run contributes one more wall-clock
  sample.

* **Deopt.**  If the pinned configuration regresses — the best of the last
  :data:`DEOPT_WINDOW` samples exceeds :data:`DEOPT_RATIO` × the pinned
  baseline — the pin is dropped and the next run re-measures.  Requiring a
  full window of slow samples keeps one-off noise (a cold decode, a busy
  machine) from un-pinning a good choice; a genuinely regressed choice is
  re-measured within a few runs.

* **Persistence contract** (mirrors :mod:`repro.diskcache`): one JSON file
  per (fingerprint, engine) under ``cache_dir()/autotune``, atomic
  ``os.replace`` writes, version-keyed (:data:`AUTOTUNE_VERSION`) with
  stale/corrupt entries silently discarded, and best-effort multi-process
  behavior — concurrent writers re-read before writing, so the store
  converges; a lost sample is never a correctness problem because every
  candidate configuration is bit-identical by the batching contract.

Decisions surface as ``vm.autotune.{measure,pin,deopt}`` telemetry
counters plus a per-run ``autotune`` record in ``record_vm_run`` — see
:mod:`repro.telemetry`.  Opt in with ``REPRO_AUTOTUNE=1`` (or
:func:`set_enabled`); an explicit ``REPRO_BATCH``/``REPRO_NO_BATCH``
override always wins over the tuner.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # POSIX only; the store degrades to best-effort without it.
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from . import telemetry
from .diskcache import cache_dir
from .envflags import env_flag

__all__ = [
    "AUTOTUNE_VERSION",
    "CANDIDATE_REQUESTS",
    "CODEGEN_MARGIN",
    "DEOPT_RATIO",
    "DEOPT_WINDOW",
    "PIN_MARGIN",
    "enabled",
    "set_enabled",
    "engine_config",
    "fingerprint",
    "store_dir",
    "clear",
    "stats",
    "reset_stats",
    "choose_factor",
    "choose_config",
    "sample_key",
    "decision",
    "pinned_request",
    "record_measurement",
    "pin",
    "observe",
    "measure_reps",
]

#: Bump on any incompatible change to the entry schema; mismatched entries
#: are discarded on load, like :data:`repro.diskcache.CACHE_VERSION`.
#: v2: the whole-kernel codegen engine is a fourth measured configuration —
#: samples are keyed ``"<factor>"`` / ``"<factor>/cg"`` and pins carry a
#: ``codegen`` flag alongside the batch factor.
AUTOTUNE_VERSION = 2

#: Batch *requests* measured on a kernel's first run: unbatched, the
#: smallest useful factor, and whatever the static cost model suggests
#: (``None`` = auto).  Requests are deduped by effective factor after
#: compilation, so a kernel whose suggestion is 2 measures two configs.
CANDIDATE_REQUESTS: Tuple[Optional[int], ...] = (0, 2, None)

#: Hysteresis for winner selection: the smallest factor whose measured
#: wall is within this multiple of the fastest sample is pinned.  Guards
#: against sampling noise pinning a batched config that merely tied
#: unbatched (the genuine wins this layer chases are ≥2×).
PIN_MARGIN = 1.25

#: Hysteresis for the codegen leg of the winning factor: whole-kernel
#: codegen is pinned only when the decoded engine's wall exceeds this
#: multiple of the codegen wall.  Smaller than :data:`PIN_MARGIN` because
#: both legs run the *same* module (no compile-shape risk) and codegen is
#: bit-identical by contract — the hysteresis only has to absorb timing
#: noise, not protect against a structurally different configuration.
#: Note the measurement is honest per configuration: generated code is
#: batch-factor specialized (emission keyed by batch fingerprint), so
#: each factor's codegen leg times code emitted *for that factor*, never
#: a stale emission from another candidate.
CODEGEN_MARGIN = 1.05

#: A pinned choice deopts when the *best* of the last ``DEOPT_WINDOW``
#: samples is slower than ``DEOPT_RATIO`` × the pinned baseline.
DEOPT_RATIO = 1.5
DEOPT_WINDOW = 3

#: Wall-clock samples kept per (entry, factor).
MAX_SAMPLES = 32

_STATS = {"decisions": 0, "measurements": 0, "pins": 0, "deopts": 0, "errors": 0}
_ENABLED: Optional[bool] = None  # None → consult REPRO_AUTOTUNE

#: path -> (mtime_ns, entry) — keeps repeated pin lookups (one per
#: ``compile_parsimony`` call) off the disk in the common case.
_ENTRY_CACHE: Dict[Path, Tuple[int, dict]] = {}


def enabled() -> bool:
    """Whether profile-guided selection is active."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_AUTOTUNE", "") in ("1", "true")


def set_enabled(value: Optional[bool]) -> None:
    """Force the tuner on/off; ``None`` defers to ``REPRO_AUTOTUNE``."""
    global _ENABLED
    _ENABLED = value


def measure_reps() -> int:
    """Timing repetitions per candidate on a measurement run (min wins).
    Three by default: the first pays one-time decode/window/batch codegen,
    and min-of-the-rest resists one slow machine phase landing on one
    candidate's turn."""
    try:
        return max(1, int(os.environ.get("REPRO_AUTOTUNE_REPS", "3")))
    except ValueError:
        return 3


def choose_factor(measured: Dict[int, float]) -> int:
    """The factor to pin given candidate wall-clock samples.

    The smallest factor within :data:`PIN_MARGIN` of the fastest sample:
    batching must beat unbatched *decisively* to be pinned, so noise can't
    pin a config that merely tied (and loses steady-state)."""
    best_wall = min(measured.values())
    for factor in sorted(measured):
        if measured[factor] <= PIN_MARGIN * best_wall:
            return factor
    raise AssertionError("unreachable: best sample is within its own margin")


def sample_key(factor: int, codegen: bool = False) -> str:
    """The entry-sample key for one measured configuration.

    Decoded-engine samples keep the bare ``"<factor>"`` key; whole-kernel
    codegen samples get a ``"/cg"`` suffix so the two legs never pollute
    each other's history."""
    return f"{int(factor)}/cg" if codegen else str(int(factor))


def choose_config(measured: Dict[Tuple[int, bool], float]) -> Tuple[int, bool]:
    """The ``(factor, codegen)`` configuration to pin.

    Two-stage hysteresis.  The batch factor is chosen first via
    :func:`choose_factor` over each factor's *best* leg (either engine may
    represent a factor — the batching decision should not be distorted by
    codegen winning on one leg only).  Then, within the winning factor,
    whole-kernel codegen is selected only when the decoded engine's wall
    exceeds :data:`CODEGEN_MARGIN` × the codegen wall; a missing leg
    forfeits to the one that was measured.
    """
    by_factor: Dict[int, float] = {}
    for (factor, _cg), wall in measured.items():
        prev = by_factor.get(factor)
        if prev is None or wall < prev:
            by_factor[factor] = wall
    factor = choose_factor(by_factor)
    plain = measured.get((factor, False))
    cg = measured.get((factor, True))
    if cg is None:
        return factor, False
    if plain is None:
        return factor, True
    return factor, plain > CODEGEN_MARGIN * cg


def engine_config(superinstructions: Optional[bool] = None,
                  machine=None) -> str:
    """Name the engine configuration samples are keyed under.

    Wall-clock depends on the machine model and on whether decode-level
    fusion is active, so pins must not leak across those configurations.
    """
    if superinstructions is None:
        superinstructions = not env_flag("REPRO_NO_FUSE")
    name = machine.name if machine is not None else "avx512"
    return f"{name}/{'fused' if superinstructions else 'nofuse'}"


def fingerprint(source: str) -> str:
    """Content fingerprint of a kernel: SHA-256 of its PsimC source."""
    return hashlib.sha256(source.encode()).hexdigest()


def store_dir() -> Path:
    return cache_dir() / "autotune"


def stats() -> Dict[str, int]:
    return dict(_STATS)


def reset_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


def clear() -> None:
    """Drop every persisted profile (best effort)."""
    _ENTRY_CACHE.clear()
    try:
        for pattern in ("*.json", "*.lock"):
            for path in store_dir().glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
    except OSError:
        pass


# -- the on-disk entry ----------------------------------------------------------


def _entry_path(fp: str, engine: str) -> Path:
    slug = engine.replace("/", "-")
    return store_dir() / f"{fp[:40]}-{slug}.json"


@contextmanager
def _entry_lock(fp: str, engine: str):
    """Exclusive advisory lock serializing read-modify-write of one entry.

    Every mutation (:func:`record_measurement`, :func:`pin`,
    :func:`observe`) is a load-mutate-store; without the lock two processes
    interleave and the second store silently drops the first one's samples
    (the classic lost update).  The lock lives in a sidecar ``.lock`` file
    so the entry itself can keep being replaced atomically.  Best-effort:
    any OS refusal (read-only dir, missing ``fcntl``) degrades to the old
    unlocked behavior rather than failing the run.
    """
    fd = None
    try:
        if fcntl is not None:
            try:
                directory = store_dir()
                directory.mkdir(parents=True, exist_ok=True)
                lock_path = _entry_path(fp, engine).with_suffix(".lock")
                fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                if fd is not None:
                    os.close(fd)
                fd = None
        yield
    finally:
        if fd is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)


def _fresh_entry(fp: str, engine: str) -> dict:
    return {
        "version": AUTOTUNE_VERSION,
        "fingerprint": fp,
        "engine": engine,
        "samples": {},   # sample_key(factor, codegen) -> [wall, ...]
        "pinned": None,  # {"factor", "request", "codegen", "wall", "reason"}
        "recent": [],    # pinned-factor samples since the pin (deopt window)
        "deopts": 0,
    }


def _load_entry(fp: str, engine: str) -> dict:
    """Corruption-tolerant load; stale/foreign/damaged entries are dropped."""
    path = _entry_path(fp, engine)
    try:
        mtime = path.stat().st_mtime_ns
    except OSError:
        return _fresh_entry(fp, engine)
    cached = _ENTRY_CACHE.get(path)
    if cached is not None and cached[0] == mtime:
        return json.loads(json.dumps(cached[1]))  # defensive copy
    try:
        entry = json.loads(path.read_text())
        if (entry.get("version") != AUTOTUNE_VERSION
                or entry.get("fingerprint") != fp):
            raise ValueError("stale or foreign autotune entry")
    except Exception:
        _STATS["errors"] += 1
        try:
            path.unlink()
        except OSError:
            pass
        return _fresh_entry(fp, engine)
    _ENTRY_CACHE[path] = (mtime, json.loads(json.dumps(entry)))
    return entry


def _store_entry(entry: dict) -> None:
    """Best-effort atomic write; failures are counted, never raised."""
    path = _entry_path(entry["fingerprint"], entry["engine"])
    tmp = None
    try:
        directory = store_dir()
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w") as f:
            json.dump(entry, f, indent=1, sort_keys=True)
        os.replace(tmp, path)
        tmp = None
        # Invalidate rather than repopulate: stat() after the replace can
        # observe *another* process's even-newer write, and caching this
        # entry under that mtime would mask it forever (cache poisoning).
        _ENTRY_CACHE.pop(path, None)
    except Exception:
        _STATS["errors"] += 1
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _request_for(factor: int) -> int:
    """Fallback batch request for an effective factor (0 = off), used only
    for pre-``request``-field entries.  A pin normally stores the *request*
    the winning candidate compiled from: a forced factor applies to every
    gang loop, while the auto request (``None``) picks per-loop factors, so
    only the original request reproduces the measured module exactly."""
    return 0 if factor <= 1 else int(factor)


def _pinned_request_of(pinned: dict) -> Optional[int]:
    if "request" in pinned:
        req = pinned["request"]
        return None if req is None else int(req)
    return _request_for(pinned["factor"])


# -- the decision protocol ------------------------------------------------------


def decision(fp: str, engine: str) -> dict:
    """What the next run of this kernel should do.

    ``{"state": "pinned", "request": r, "factor": f, "codegen": bool,
    "reason": ...}`` when a measured winner exists; ``{"state": "measure",
    "requests": (...), "reason": ...}`` when candidates must be
    (re-)measured.
    """
    _STATS["decisions"] += 1
    entry = _load_entry(fp, engine)
    pinned = entry.get("pinned")
    if pinned:
        reason = pinned.get("reason", "measured winner")
        if entry.get("deopts"):
            reason += f" ({entry['deopts']} deopt(s) so far)"
        return {
            "state": "pinned",
            "request": _pinned_request_of(pinned),
            "factor": pinned["factor"],
            "codegen": bool(pinned.get("codegen", False)),
            "reason": reason,
        }
    reason = ("re-measuring after deopt" if entry.get("deopts")
              else "no profile yet: measuring candidates")
    return {"state": "measure", "requests": CANDIDATE_REQUESTS, "reason": reason}


def pinned_request(fp: str, engine: str) -> Optional[int]:
    """The pinned batch request for a kernel, or ``None`` when unpinned.

    This is the compile-time hook :func:`repro.driver.compile_parsimony`
    consults, so *any* caller — not just the benchmark runner — compiles to
    the measured configuration once a pin exists.  ``None`` also stands for
    a pin whose winning request *was* the cost-model auto mode — for the
    caller the two collapse to the same thing (compile on auto).
    """
    entry = _load_entry(fp, engine)
    pinned = entry.get("pinned")
    if not pinned:
        return None
    return _pinned_request_of(pinned)


def record_measurement(fp: str, engine: str, factor: int, wall: float,
                       codegen: bool = False) -> None:
    """One candidate's wall-clock sample from a measurement sweep."""
    _STATS["measurements"] += 1
    with _entry_lock(fp, engine):
        entry = _load_entry(fp, engine)
        samples = entry["samples"].setdefault(sample_key(factor, codegen), [])
        samples.append(wall)
        del samples[:-MAX_SAMPLES]
        _store_entry(entry)
    telemetry.record_autotune(
        "measure",
        {"fingerprint": fp, "engine": engine, "factor": factor,
         "codegen": bool(codegen), "wall": wall},
    )


_REQUEST_UNSET = object()


def _cfg_label(key) -> str:
    """Human/JSON label for a measured key: bare ``int`` factors (legacy
    callers) or ``(factor, codegen)`` tuples from the v2 sweep."""
    if isinstance(key, tuple):
        return sample_key(key[0], key[1])
    return str(int(key))


def pin(fp: str, engine: str, factor: int, wall: float,
        measured: Dict,
        request=_REQUEST_UNSET, codegen: bool = False) -> str:
    """Pin the measured winner; returns the human-readable reason.

    ``request`` is the batch request the winning candidate *compiled
    from* (``None`` = cost-model auto); replaying it is what reproduces
    the measured module bit-for-bit, since a forced factor and the auto
    mode can batch a multi-loop kernel differently.  When omitted it is
    derived from ``factor`` (exact only for single-gang-loop kernels).
    ``measured`` keys may be bare factors or ``(factor, codegen)`` tuples.
    """
    if request is _REQUEST_UNSET:
        request = _request_for(factor)
    _STATS["pins"] += 1
    labeled = {_cfg_label(k): w for k, w in measured.items()}
    ranked = ", ".join(
        f"B={k}:{w * 1e3:.2f}ms" for k, w in sorted(labeled.items())
    )
    chosen = sample_key(factor, codegen)
    fastest = min(labeled, key=labeled.get) if labeled else chosen
    if chosen == fastest:
        reason = f"measured fastest of {{{ranked}}}"
    else:
        reason = (f"measured within margin of fastest B={fastest}; "
                  f"preferring simpler B={chosen} of {{{ranked}}}")
    with _entry_lock(fp, engine):
        entry = _load_entry(fp, engine)
        entry["pinned"] = {"factor": int(factor), "request": request,
                           "codegen": bool(codegen),
                           "wall": wall, "reason": reason}
        entry["recent"] = []
        _store_entry(entry)
    telemetry.record_autotune(
        "pin",
        {"fingerprint": fp, "engine": engine, "factor": factor,
         "request": request, "codegen": bool(codegen), "wall": wall,
         "measured": labeled},
    )
    return reason


def observe(fp: str, engine: str, factor: int, wall: float,
            codegen: bool = False) -> Optional[str]:
    """Record a steady-state sample; returns ``"deopt"`` when the pinned
    choice just regressed past the threshold (the pin is dropped and the
    next :func:`decision` re-measures)."""
    event = None
    with _entry_lock(fp, engine):
        entry = _load_entry(fp, engine)
        samples = entry["samples"].setdefault(sample_key(factor, codegen), [])
        samples.append(wall)
        del samples[:-MAX_SAMPLES]
        pinned = entry.get("pinned")
        if (pinned and int(pinned["factor"]) == int(factor)
                and bool(pinned.get("codegen", False)) == bool(codegen)):
            if wall < pinned["wall"]:
                # New best: ratchet the baseline down and forgive the window.
                pinned["wall"] = wall
                entry["recent"] = []
            else:
                recent = entry.setdefault("recent", [])
                recent.append(wall)
                del recent[:-DEOPT_WINDOW]
                if (len(recent) >= DEOPT_WINDOW
                        and min(recent) > DEOPT_RATIO * pinned["wall"]):
                    _STATS["deopts"] += 1
                    entry["deopts"] = int(entry.get("deopts", 0)) + 1
                    entry["pinned"] = None
                    entry["recent"] = []
                    event = "deopt"
                    telemetry.record_autotune(
                        "deopt",
                        {"fingerprint": fp, "engine": engine, "factor": factor,
                         "wall": wall, "baseline": pinned["wall"]},
                    )
        _store_entry(entry)
    return event
