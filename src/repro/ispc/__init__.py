"""``repro.ispc`` — the ispc-style SPMD baseline (paper §5–§6).

ispc is the state-of-the-art SPMD-on-SIMD comparator in the paper's
Figure 4.  This mode reproduces the three characteristics the paper
contrasts Parsimony against:

* **flag-coupled gang size** (§1, §2.2 / Listing 2): the gang size is not
  chosen by the program but by a compiler flag tied to the target's SIMD
  width — here ``machine.vector_bits / 32`` (e.g. 16 on AVX-512), exactly
  ispc's default for 32-bit element targets.  Program correctness can
  therefore change with the compilation target, which
  ``tests/ispc/test_gang_size_coupling.py`` demonstrates on the paper's
  Listing 2 example.
* **gang-synchronous execution model**: threads conceptually synchronize
  at every sequence point.  On the lockstep SIMD code both models produce
  here, this costs nothing at runtime — matching the paper's finding that
  the two designs perform identically — but it *breaks single-threaded
  compiler legality* (Listing 4): a gang-synchronous compiler may not
  reorder adjacent independent atomics, so this mode disables such
  reordering optimizations (our pipeline performs none, making the
  constraint vacuous but documented).
* **built-in SIMD math library**: ispc's own ``pow`` is ~2.6× faster
  than SLEEF's on AVX-512 (§6, the Binomial Options gap), modelled by the
  ``ispc`` math flavour in ``repro.runtime.mathlib``.
"""

from typing import Optional

from ..backend.machine import AVX512, Machine
from ..frontend.lower import Compiler
from ..ir.module import Module
from ..passes import standard_pipeline
from ..runtime.mathlib import ISPC_BUILTIN
from ..vectorizer import VectorizeConfig, vectorize_module

__all__ = ["ispc_gang_size", "ispc_compile"]


def ispc_gang_size(machine: Machine) -> int:
    """ispc's default gang size: one lane per 32-bit element."""
    return machine.vector_bits // 32


def ispc_compile(source: str, machine: Machine = AVX512,
                 module_name: str = "ispc") -> Module:
    """Compile PsimC source the way ispc would: gang size forced by the
    target flag, gang-synchronous semantics, built-in math library."""
    gang = ispc_gang_size(machine)
    module = Compiler(module_name, force_gang_size=gang).compile(source)
    standard_pipeline().run(module)
    config = VectorizeConfig(math_flavour=ISPC_BUILTIN)
    vectorize_module(module, config)
    from ..driver import post_vectorize_cleanup

    post_vectorize_cleanup(module)
    return module
