"""``repro.faultinject`` — deterministic fault injection for the pipeline.

Robustness claims need falsifiable tests: the graceful-degradation path in
``vectorize_module`` and the paranoid inter-pass verifier only earn trust
if a test can *force* the failures they guard against and then check the
outcome (scalar-identical results, accurate diagnostics).  This module
plants cheap hooks at the pipeline's failure points and fires them
deterministically according to an explicit plan — no randomness, no
environment variables, no monkeypatching.

Hook sites (the ``site`` of a :class:`FaultPlan`):

* ``"vectorize"`` — entry of ``vectorize_function`` (name = function name);
* ``"vectorize_block"`` — before each basic block is vectorized
  (name = ``"<function>:<block>"``); the failure carries block-level
  provenance, so ``vectorize_module`` attempts region-granular fallback
  instead of degrading the whole function;
* ``"mathlib"``   — inside every ``ml.*`` math-external implementation
  (name = the external's full name, e.g. ``"ml.exp.f32"`` or
  ``"ml.sleef.pow.f32x8"``); survives disk-cache rehydration;
* ``"costmodel"`` — entry of ``CostModel.cost`` (name = instruction opcode);
* ``"pass"``      — before each optimization pass runs
  (name = ``"<pass>:<function>"``);
* ``"verify"``    — entry of ``verify_function`` (name = function name);
* ``"smt"``       — entry of the SMT rule probe (name = rule name);
* ``"memory"``    — inside ``vm.Memory`` bounds checks (name = ``"check"``
  for scalar accesses, ``"lanes"`` for vector accesses);
* ``"corrupt"``   — after each pass, *silently corrupts the IR* instead of
  raising (drops the entry block's terminator), so tests can prove the
  paranoid verifier catches miscompiles and names the offending pass.

Usage::

    with faultinject.inject(FaultPlan(site="vectorize", match="mandelbrot")):
        module = compile_parsimony(src)      # falls back to scalar
    # plans are popped and pipeline caches reset on exit

Injection state is process-global and re-entrant (plans nest and restore).
While any plan is active the driver's compile cache is bypassed, so
injected failures can never leak into — or be masked by — cached modules.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from .diagnostics import CompileError

__all__ = ["FaultPlan", "InjectedFault", "inject", "active", "maybe_fail", "maybe_corrupt"]


class InjectedFault(CompileError):
    """The error raised by a fired fault plan (unless the plan overrides it)."""

    default_stage = "faultinject"


@dataclass
class FaultPlan:
    """When and where to fire one deterministic fault.

    A plan matches a hook when ``site`` equals the hook's site and ``match``
    is a substring of the hook's qualified name (empty matches everything).
    The first ``after`` matches are skipped; after that the plan fires on
    every match, at most ``times`` times (``None`` = unlimited).  ``exc``
    optionally builds the exception to raise from the qualified name
    (default: :class:`InjectedFault`).
    """

    site: str
    match: str = ""
    after: int = 0
    times: Optional[int] = None
    exc: Optional[Callable[[str], BaseException]] = None
    # bookkeeping, readable by tests after the run
    hits: int = 0
    fired: int = 0


@dataclass
class _InjectionState:
    plans: List[FaultPlan]
    log: List[Dict[str, str]] = field(default_factory=list)


_state: Optional[_InjectionState] = None


def active() -> bool:
    """True when any fault plan is armed (drivers bypass caches then)."""
    return _state is not None and bool(_state.plans)


def fired_log() -> List[Dict[str, str]]:
    """Every fault fired under the innermost active ``inject`` block."""
    return list(_state.log) if _state is not None else []


@contextmanager
def inject(*plans: FaultPlan) -> Iterator[_InjectionState]:
    """Arm ``plans`` for the dynamic extent of the block.

    On exit the previous injection state is restored and pipeline caches
    that could have been poisoned by injected failures (the SMT rule-status
    cache) are reset.
    """
    global _state
    previous = _state
    _state = _InjectionState(list(plans))
    try:
        yield _state
    finally:
        _state = previous
        from .vectorizer import smt

        smt.reset_rule_cache()


def _matching_plan(site: str, name: str) -> Optional[FaultPlan]:
    state = _state
    if state is None:
        return None
    for plan in state.plans:
        if plan.site != site:
            continue
        if plan.match and plan.match not in name:
            continue
        plan.hits += 1
        if plan.hits <= plan.after:
            continue
        if plan.times is not None and plan.fired >= plan.times:
            continue
        plan.fired += 1
        state.log.append({"site": site, "name": name})
        return plan
    return None


def maybe_fail(site: str, name: str = "") -> None:
    """Raise if an armed plan matches ``(site, name)``; no-op otherwise."""
    plan = _matching_plan(site, name)
    if plan is None:
        return
    if plan.exc is not None:
        raise plan.exc(name)
    raise InjectedFault(
        f"injected fault at {site}:{name or '<any>'}",
        detail={"site": site, "name": name},
    )


def maybe_corrupt(name: str, function) -> bool:
    """Fire a ``"corrupt"`` plan by damaging ``function``'s IR in place.

    Drops the terminator of the function's entry block — the kind of damage
    a buggy pass could cause — and returns True.  Nothing is raised; the
    point is to prove that inter-pass verification catches the corruption
    and attributes it to the right pass.
    """
    plan = _matching_plan("corrupt", name)
    if plan is None:
        return False
    entry = function.entry
    term = entry.terminator
    if term is not None:
        # Not ``erase()``: a terminator can have uses bookkeeping via its
        # block operands only, which drop_operands cleans up.
        entry.instructions.remove(term)
        term.parent = None
        term.drop_operands()
    return True
