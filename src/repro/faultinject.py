"""``repro.faultinject`` — deterministic fault injection for the pipeline.

Robustness claims need falsifiable tests: the graceful-degradation path in
``vectorize_module`` and the paranoid inter-pass verifier only earn trust
if a test can *force* the failures they guard against and then check the
outcome (scalar-identical results, accurate diagnostics).  This module
plants cheap hooks at the pipeline's failure points and fires them
deterministically according to an explicit plan — no randomness, no
environment variables, no monkeypatching.

Hook sites (the ``site`` of a :class:`FaultPlan`):

* ``"vectorize"`` — entry of ``vectorize_function`` (name = function name);
* ``"vectorize_block"`` — before each basic block is vectorized
  (name = ``"<function>:<block>"``); the failure carries block-level
  provenance, so ``vectorize_module`` attempts region-granular fallback
  instead of degrading the whole function;
* ``"mathlib"``   — inside every ``ml.*`` math-external implementation
  (name = the external's full name, e.g. ``"ml.exp.f32"`` or
  ``"ml.sleef.pow.f32x8"``); survives disk-cache rehydration;
* ``"costmodel"`` — entry of ``CostModel.cost`` (name = instruction opcode);
* ``"pass"``      — before each optimization pass runs
  (name = ``"<pass>:<function>"``);
* ``"verify"``    — entry of ``verify_function`` (name = function name);
* ``"smt"``       — entry of the SMT rule probe (name = rule name);
* ``"memory"``    — inside ``vm.Memory`` bounds checks (name = ``"check"``
  for scalar accesses, ``"lanes"`` for vector accesses);
* ``"corrupt"``   — after each pass, *silently corrupts the IR* instead of
  raising (drops the entry block's terminator), so tests can prove the
  paranoid verifier catches miscompiles and names the offending pass.

Worker sites (consumed by :mod:`repro.shard`'s supervisor, never raised
in-process — the supervisor polls :func:`should_fire` at each shard
dispatch and ships the directive to the worker with the job, so a plan's
state survives the worker it kills):

* ``"worker_crash"``   — the worker ``os._exit``\\ s after computing the
  shard but before shipping it (SIGKILL/OOM stand-in);
* ``"worker_hang"``    — the worker stalls until the supervisor's
  per-shard deadline kills it;
* ``"worker_corrupt"`` — the worker flips a byte in the shard's staged
  memory delta *after* checksumming, so the supervisor must catch the
  mismatch and discard the staging slice;
* ``"ipc_drop"``       — the worker computes the shard but never sends the
  result (a lost message).

For all four the qualified name is ``"<label>:<shard_index>"``.

Usage::

    with faultinject.inject(FaultPlan(site="vectorize", match="mandelbrot")):
        module = compile_parsimony(src)      # falls back to scalar
    # plans are popped and pipeline caches reset on exit

Injection state is process-global and re-entrant (plans nest and restore).
While any plan is active the driver's compile cache is bypassed, so
injected failures can never leak into — or be masked by — cached modules.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from .diagnostics import CompileError, emit_warning

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "WORKER_SITES",
    "armed_sites",
    "inject",
    "active",
    "maybe_fail",
    "maybe_corrupt",
    "plans_from_env",
    "should_fire",
]

#: Sites decided supervisor-side and obeyed by shard workers; these are the
#: only sites that may stay armed while a launch runs sharded (any other
#: armed site would fire once per *worker* instead of once per run).
WORKER_SITES = frozenset(
    {"worker_crash", "worker_hang", "worker_corrupt", "ipc_drop"}
)


class InjectedFault(CompileError):
    """The error raised by a fired fault plan (unless the plan overrides it)."""

    default_stage = "faultinject"


@dataclass
class FaultPlan:
    """When and where to fire one deterministic fault.

    A plan matches a hook when ``site`` equals the hook's site and ``match``
    is a substring of the hook's qualified name (empty matches everything).
    The first ``after`` matches are skipped; after that the plan fires on
    every match, at most ``times`` times (``None`` = unlimited).  ``exc``
    optionally builds the exception to raise from the qualified name
    (default: :class:`InjectedFault`).
    """

    site: str
    match: str = ""
    after: int = 0
    times: Optional[int] = None
    exc: Optional[Callable[[str], BaseException]] = None
    # bookkeeping, readable by tests after the run
    hits: int = 0
    fired: int = 0


@dataclass
class _InjectionState:
    plans: List[FaultPlan]
    log: List[Dict[str, str]] = field(default_factory=list)


_state: Optional[_InjectionState] = None


def active() -> bool:
    """True when any fault plan is armed (drivers bypass caches then)."""
    return _state is not None and bool(_state.plans)


def armed_sites() -> List[str]:
    """The sites of every armed plan (empty when nothing is armed).

    :mod:`repro.shard` refuses to shard while any *non-worker* site is
    armed — a ``memory``/``mathlib``/``costmodel`` plan would otherwise
    fire independently in every worker process instead of exactly as many
    times as the in-process engine would fire it.
    """
    if _state is None:
        return []
    return [plan.site for plan in _state.plans]


def fired_log() -> List[Dict[str, str]]:
    """Every fault fired under the innermost active ``inject`` block."""
    return list(_state.log) if _state is not None else []


@contextmanager
def inject(*plans: FaultPlan) -> Iterator[_InjectionState]:
    """Arm ``plans`` for the dynamic extent of the block.

    On exit the previous injection state is restored and pipeline caches
    that could have been poisoned by injected failures (the SMT rule-status
    cache) are reset.
    """
    global _state
    previous = _state
    _state = _InjectionState(list(plans))
    try:
        yield _state
    finally:
        _state = previous
        from .vectorizer import smt

        smt.reset_rule_cache()


def _matching_plan(site: str, name: str) -> Optional[FaultPlan]:
    state = _state
    if state is None:
        return None
    for plan in state.plans:
        if plan.site != site:
            continue
        if plan.match and plan.match not in name:
            continue
        plan.hits += 1
        if plan.hits <= plan.after:
            continue
        if plan.times is not None and plan.fired >= plan.times:
            continue
        plan.fired += 1
        state.log.append({"site": site, "name": name})
        return plan
    return None


def maybe_fail(site: str, name: str = "") -> None:
    """Raise if an armed plan matches ``(site, name)``; no-op otherwise."""
    plan = _matching_plan(site, name)
    if plan is None:
        return
    if plan.exc is not None:
        raise plan.exc(name)
    raise InjectedFault(
        f"injected fault at {site}:{name or '<any>'}",
        detail={"site": site, "name": name},
    )


def should_fire(site: str, name: str = "") -> bool:
    """Consume one firing of a matching plan without raising.

    The shard supervisor polls this at each dispatch (worker sites are
    *decisions*, not exceptions): a ``True`` return has consumed one of the
    plan's ``times`` and logged the firing, exactly like
    :func:`maybe_fail`, so a bounded plan lets the retry of the shard it
    killed succeed.
    """
    return _matching_plan(site, name) is not None


def plans_from_env(raw: Optional[str] = None) -> List[FaultPlan]:
    """Parse ``REPRO_FAULT_PLAN`` into :class:`FaultPlan`\\ s (for CI).

    Grammar: plans separated by ``;``, each ``site[:match[:after[:times]]]``
    — e.g. ``worker_crash::0:1;worker_hang:stencil:0:1`` arms one crash on
    the first dispatch of any shard plus one hang on a stencil shard.
    Malformed entries emit a structured :class:`ReproWarning` and are
    skipped; they never take the run down.
    """
    if raw is None:
        raw = os.environ.get("REPRO_FAULT_PLAN", "")
    plans: List[FaultPlan] = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        site = parts[0].strip()
        try:
            if not site:
                raise ValueError("empty site")
            match = parts[1] if len(parts) > 1 else ""
            after = int(parts[2]) if len(parts) > 2 and parts[2] else 0
            times = int(parts[3]) if len(parts) > 3 and parts[3] else None
            if after < 0 or (times is not None and times < 0):
                raise ValueError("negative after/times")
        except ValueError:
            emit_warning(
                f"unparsable REPRO_FAULT_PLAN entry {chunk!r} "
                "(expected site[:match[:after[:times]]]); skipping it",
                stage="faultinject",
                detail={"variable": "REPRO_FAULT_PLAN", "value": chunk},
            )
            continue
        plans.append(FaultPlan(site=site, match=match, after=after, times=times))
    return plans


def maybe_corrupt(name: str, function) -> bool:
    """Fire a ``"corrupt"`` plan by damaging ``function``'s IR in place.

    Drops the terminator of the function's entry block — the kind of damage
    a buggy pass could cause — and returns True.  Nothing is raised; the
    point is to prove that inter-pass verification catches the corruption
    and attributes it to the right pass.
    """
    plan = _matching_plan("corrupt", name)
    if plan is None:
        return False
    entry = function.entry
    term = entry.terminator
    if term is not None:
        # Not ``erase()``: a terminator can have uses bookkeeping via its
        # block operands only, which drop_operands cleans up.
        entry.instructions.remove(term)
        term.parent = None
        term.drop_operands()
    return True
