"""Recursive-descent parser for PsimC."""

from __future__ import annotations

from typing import List, Optional

from ..diagnostics import CompileError
from . import ast
from .ctypes import CType, ptr, type_by_name
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse_program", "parse_expression"]


class ParseError(CompileError, SyntaxError):
    """Raised on malformed PsimC source."""

    default_stage = "frontend"


# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tok
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.tok
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"line {tok.line}: expected {want!r}, found {tok.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    # -- types --------------------------------------------------------------------

    def at_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset) if offset else self.tok
        return tok.kind == "keyword" and type_by_name(tok.text) is not None

    def parse_type(self) -> CType:
        tok = self.expect("keyword")
        base = type_by_name(tok.text)
        if base is None:
            raise ParseError(f"line {tok.line}: {tok.text!r} is not a type")
        ctype = base
        while self.accept("op", "*"):
            ctype = ptr(ctype)
        return ctype

    # -- top level ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while self.tok.kind != "eof":
            functions.append(self.parse_function())
        return ast.Program(functions=functions)

    def parse_function(self) -> ast.FuncDef:
        line = self.tok.line
        ret = self.parse_type()
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.accept("op", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(ast.Param(line=line, name=pname, ctype=ptype))
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.parse_block()
        return ast.FuncDef(line=line, name=name, ret=ret, params=params, body=body)

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.expect("op", "{").line
        stmts: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return ast.Block(line=line, stmts=stmts)

    def parse_statement(self) -> ast.Stmt:
        tok = self.tok
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "return":
                self.advance()
                value = None
                if not (self.tok.kind == "op" and self.tok.text == ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.ReturnStmt(line=tok.line, value=value)
            if tok.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.BreakStmt(line=tok.line)
            if tok.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.ContinueStmt(line=tok.line)
            if tok.text == "psim":
                return self.parse_psim()
            if self.at_type():
                stmt = self.parse_declaration()
                self.expect("op", ";")
                return stmt
        stmt = self.parse_simple_statement()
        self.expect("op", ";")
        return stmt

    def parse_declaration(self) -> ast.VarDecl:
        line = self.tok.line
        ctype = self.parse_type()
        name = self.expect("ident").text
        array_size = None
        init = None
        if self.accept("op", "["):
            size_tok = self.expect("int")
            array_size = int(size_tok.text.rstrip("uUlL"), 0)
            self.expect("op", "]")
        if self.accept("op", "="):
            init = self.parse_expression()
        return ast.VarDecl(line=line, name=name, ctype=ctype, init=init, array_size=array_size)

    def parse_simple_statement(self) -> ast.Stmt:
        """An assignment, increment, or bare expression (no trailing ';')."""
        line = self.tok.line
        expr = self.parse_expression()
        tok = self.tok
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_expression()
            return ast.Assign(line=line, target=expr, op=tok.text, value=value)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            one = ast.IntLit(line=line, value=1)
            op = "+=" if tok.text == "++" else "-="
            return ast.Assign(line=line, target=expr, op=op, value=one)
        return ast.ExprStmt(line=line, expr=expr)

    def parse_if(self) -> ast.IfStmt:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        els = None
        if self.accept("keyword", "else"):
            els = self.parse_statement()
        return ast.IfStmt(line=line, cond=cond, then=then, els=els)

    def parse_while(self) -> ast.WhileStmt:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.WhileStmt(line=line, cond=cond, body=body)

    def parse_for(self) -> ast.ForStmt:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init = None
        if not (self.tok.kind == "op" and self.tok.text == ";"):
            init = self.parse_declaration() if self.at_type() else self.parse_simple_statement()
        self.expect("op", ";")
        cond = None
        if not (self.tok.kind == "op" and self.tok.text == ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not (self.tok.kind == "op" and self.tok.text == ")"):
            step = self.parse_simple_statement()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.ForStmt(line=line, init=init, cond=cond, step=step, body=body)

    def parse_psim(self) -> ast.PsimStmt:
        """``psim (gang_size=G, num_threads=N) { ... }``"""
        line = self.expect("keyword", "psim").line
        self.expect("op", "(")
        self.expect("keyword", "gang_size")
        self.expect("op", "=")
        gang_size = self.parse_expression()
        self.expect("op", ",")
        count_tok = self.expect("keyword")
        if count_tok.text not in ("num_threads", "num_gangs"):
            raise ParseError(
                f"line {count_tok.line}: expected num_threads or num_gangs"
            )
        self.expect("op", "=")
        count = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_block()
        return ast.PsimStmt(
            line=line,
            gang_size=gang_size,
            count_kind=count_tok.text,
            count=count,
            body=body,
        )

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            els = self.parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond, then=then, els=els)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            tok = self.tok
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(line=tok.line, op=tok.text, left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "!", "~", "+"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text == "*":
            self.advance()
            return ast.Deref(line=tok.line, operand=self.parse_unary())
        if tok.kind == "op" and tok.text == "&":
            self.advance()
            return ast.AddrOf(line=tok.line, operand=self.parse_unary())
        if tok.kind == "op" and tok.text == "(" and self.at_type(1):
            # cast: '(' type ')' unary
            self.advance()
            target = self.parse_type()
            self.expect("op", ")")
            return ast.Cast(line=tok.line, target=target, operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(line=expr.line, base=expr, index=index)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "int":
            self.advance()
            text = tok.text
            suffix = ""
            while text and text[-1] in "uUlL":
                suffix += text[-1].lower()
                text = text[:-1]
            return ast.IntLit(line=tok.line, value=int(text, 0), suffix=suffix)
        if tok.kind == "float":
            self.advance()
            text = tok.text
            suffix = ""
            while text and text[-1] in "fFlL":
                suffix += text[-1].lower()
                text = text[:-1]
            return ast.FloatLit(line=tok.line, value=float(text), suffix=suffix)
        if tok.kind == "keyword" and tok.text in ("true", "false"):
            self.advance()
            return ast.BoolLit(line=tok.line, value=tok.text == "true")
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return ast.Call(line=tok.line, name=tok.text, args=args)
            return ast.Ident(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse_program(source: str) -> ast.Program:
    """Parse a PsimC translation unit."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (test helper)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    parser.expect("eof")
    return expr
