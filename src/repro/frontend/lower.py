"""AST → IR lowering for PsimC, including SPMD region outlining.

Ordinary code lowers Clang-style: every local lives in an ``alloca`` (the
scalar pipeline's mem2reg promotes them), control flow becomes explicit
blocks, and C conversions were already made explicit by sema.

``psim`` regions follow the paper's front-end contract (§4.1, Listing 6):
the region body is outlined into standalone SPMD-annotated functions —
a *full*-gang variant and a *partial* (tail) variant guarded by
``thread_id < num_threads`` — and the region itself becomes a loop over
gang base indices dispatching between the two.  When the thread count is
a compile-time multiple of the gang size, the partial variant and the
dispatch branch are not emitted at all.

Parsimony API calls lower to reserved ``psim.*`` externals (see
``repro.runtime.psim_abi``) that the vectorizer later pattern-matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import (
    I1,
    I64,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    SpmdInfo,
    UndefValue,
    Value,
    verify_module,
)
from ..diagnostics import CompileError
from ..ir.types import PointerType
from ..runtime import psim_abi
from ..runtime.mathlib import scalar_math_external
from . import ast
from .ctypes import BOOL, CType, SCALAR_TYPES
from .parser import parse_program
from .sema import Symbol, analyze

__all__ = ["LowerError", "Compiler", "compile_source"]

U64T = SCALAR_TYPES["u64"]


class LowerError(CompileError):
    """Internal error during lowering (sema should have caught user errors)."""

    default_stage = "frontend"


@dataclass
class PsimContext:
    """Per-outlined-function SPMD facts the intrinsics lower against."""

    gang_size: int
    gang_base: Value  # u64 argument: first thread id of this gang
    num_threads: Value  # u64 argument


class Compiler:
    """Compiles PsimC source into an IR module."""

    def __init__(self, module_name: str = "psimc", force_gang_size: Optional[int] = None):
        self.module_name = module_name
        self.force_gang_size = force_gang_size

    def compile(self, source: str) -> Module:
        program = analyze(parse_program(source), self.force_gang_size)
        module = Module(self.module_name)
        self.module = module
        self.ir_funcs: Dict[str, Function] = {}
        self._psim_counter: Dict[str, int] = {}
        for func in program.functions:
            ftype = FunctionType(func.ret.ir, tuple(p.ctype.ir for p in func.params))
            ir_func = Function(func.name, ftype, [p.name for p in func.params])
            module.add_function(ir_func)
            self.ir_funcs[func.name] = ir_func
        for func in program.functions:
            _FunctionLowering(self, self.ir_funcs[func.name], func.ret).lower_funcdef(func)
        verify_module(module)
        return module

    def outline_region(
        self, parent: Function, stmt: ast.PsimStmt, partial: bool
    ) -> Function:
        """Create and lower one outlined SPMD-region function (Listing 6)."""
        index = self._psim_counter.get(parent.name, 0)
        if not partial:
            self._psim_counter[parent.name] = index + 1
        else:
            index -= 1  # pair with the full variant created just before
        suffix = ".tail" if partial else ""
        name = f"{parent.name}.psim{index}{suffix}"

        captures: List[Symbol] = stmt.captures
        param_types = tuple(s.value_ctype.ir for s in captures) + (I64, I64)
        param_names = [s.name for s in captures] + ["__gang_base", "__num_threads"]
        from ..ir.types import VOID

        func = Function(name, FunctionType(VOID, param_types), param_names)
        func.spmd = SpmdInfo(
            stmt.gang_size_value,
            partial=partial,
            base_arg_index=len(captures),
            nthreads_arg_index=len(captures) + 1,
        )
        func.attrs["always_inline"] = False  # inlined only after vectorization
        self.module.add_function(func)

        lowering = _FunctionLowering(self, func, None)
        lowering.lower_spmd_region(stmt, captures, partial)
        return func


def compile_source(source: str, module_name: str = "psimc") -> Module:
    """One-call front-end: PsimC source text → verified IR module."""
    return Compiler(module_name).compile(source)


class _FunctionLowering:
    """Lowers one function body (or one outlined SPMD region body)."""

    def __init__(self, compiler: Compiler, func: Function, ret_ctype: Optional[CType]):
        self.compiler = compiler
        self.module = compiler.module
        self.func = func
        self.ret_ctype = ret_ctype
        self.b = IRBuilder(func)
        # Symbol -> ('slot', alloca) for mutable locals, ('direct', value)
        # for by-value captures and array decay pointers.
        self.symtab: Dict[Symbol, Tuple[str, Value]] = {}
        self._break_targets: List = []
        self._continue_targets: List = []
        self.psim: Optional[PsimContext] = None
        self._lane_cache: Optional[Value] = None

    # -- entry points ------------------------------------------------------------

    def lower_funcdef(self, func_ast: ast.FuncDef) -> None:
        entry = self.b.new_block("entry")
        self.b.position_at_end(entry)
        for param, arg in zip(func_ast.params, self.func.args):
            slot = self.b.alloca(param.ctype.ir, 1, param.name + ".addr")
            self.b.store(arg, slot)
            self.symtab[param.symbol] = ("slot", slot)
        self._lower_block(func_ast.body)
        self._finish_function()

    def lower_spmd_region(self, stmt: ast.PsimStmt, captures: List[Symbol], partial: bool) -> None:
        entry = self.b.new_block("entry")
        self.b.position_at_end(entry)
        args = self.func.args
        self.psim = PsimContext(
            gang_size=stmt.gang_size_value,
            gang_base=args[self.func.spmd.base_arg_index],
            num_threads=args[self.func.spmd.nthreads_arg_index],
        )
        for symbol, arg in zip(captures, args):
            self.symtab[symbol] = ("direct", arg)

        if partial:
            # Listing 6: the partial variant guards the body per thread.
            # The comparison runs at i16: lane numbers are < gang_size and
            # the remaining-thread count is clamped to the gang size, so a
            # 64-bit per-lane compare (and the register pressure it drags
            # through the back-end) is never needed.
            from ..ir.types import I16 as _I16

            remaining = self.b.sub(
                self.psim.num_threads, self.psim.gang_base, "remaining"
            )
            clamped = self.b.umin(
                remaining, Constant(I64, stmt.gang_size_value), "remaining.c"
            )
            rem16 = self.b.trunc(clamped, _I16, "remaining16")
            lane16 = self.b.trunc(self._lane(), _I16, "lane16")
            in_range = self.b.icmp("ult", lane16, rem16, "in_range")
            body = self.b.new_block("body")
            done = self.b.new_block("done")
            self.b.condbr(in_range, body, done)
            self.b.position_at_end(body)
            self._lower_block(stmt.body)
            if self.b.block.terminator is None:
                self.b.br(done)
            self.b.position_at_end(done)
            self.b.ret()
        else:
            self._lower_block(stmt.body)
            if self.b.block.terminator is None:
                self.b.ret()

    def _finish_function(self) -> None:
        if self.b.block.terminator is None:
            if self.func.return_type.is_void:
                self.b.ret()
            else:
                # Falling off the end of a value-returning function: UB in C.
                self.b.ret(UndefValue(self.func.return_type))
        # Remove empty unreachable blocks created by dead code.
        from ..passes.simplify_cfg import remove_unreachable_blocks

        for block in list(self.func.blocks):
            if block.terminator is None:
                self.b.position_at_end(block)
                self.b.unreachable()
        remove_unreachable_blocks(self.func)

    # -- statements -----------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            if self.b.block.terminator is not None:
                break  # unreachable code after break/continue/return
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            value = self._lower_expr(stmt.value)
            addr = self._lvalue_address(stmt.target)
            self.b.store(value, addr)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.b.ret()
            else:
                self.b.ret(self._lower_expr(stmt.value))
        elif isinstance(stmt, ast.BreakStmt):
            self.b.br(self._break_targets[-1])
        elif isinstance(stmt, ast.ContinueStmt):
            self.b.br(self._continue_targets[-1])
        elif isinstance(stmt, ast.PsimStmt):
            self._lower_psim(stmt)
        else:
            raise LowerError(f"unhandled statement {type(stmt).__name__}")

    def _lower_vardecl(self, stmt: ast.VarDecl) -> None:
        symbol: Symbol = stmt.symbol
        count = symbol.array_size or 1
        slot = self._entry_alloca(symbol.ctype.ir, count, symbol.name)
        if symbol.kind == "array":
            self.symtab[symbol] = ("direct", slot)
        else:
            self.symtab[symbol] = ("slot", slot)
            if stmt.init is not None:
                self.b.store(self._lower_expr(stmt.init), slot)

    def _entry_alloca(self, irtype, count: int, name: str) -> Value:
        entry = self.func.entry
        saved_block, saved_index = self.b.block, self.b._insert_index
        self.b.block = entry
        self.b._insert_index = 0
        slot = self.b.alloca(irtype, count, name)
        self.b.block, self.b._insert_index = saved_block, saved_index
        return slot

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self.b.new_block("if.then")
        join = self.b.new_block("if.join")
        else_block = self.b.new_block("if.else") if stmt.els is not None else join
        self.b.condbr(cond, then_block, else_block)

        self.b.position_at_end(then_block)
        self._lower_stmt(stmt.then)
        if self.b.block.terminator is None:
            self.b.br(join)

        if stmt.els is not None:
            self.b.position_at_end(else_block)
            self._lower_stmt(stmt.els)
            if self.b.block.terminator is None:
                self.b.br(join)

        self.b.position_at_end(join)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.b.new_block("while.header")
        body = self.b.new_block("while.body")
        exit_ = self.b.new_block("while.exit")
        self.b.br(header)
        self.b.position_at_end(header)
        self.b.condbr(self._lower_expr(stmt.cond), body, exit_)
        self.b.position_at_end(body)
        self._break_targets.append(exit_)
        self._continue_targets.append(header)
        self._lower_stmt(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if self.b.block.terminator is None:
            self.b.br(header)
        self.b.position_at_end(exit_)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.b.new_block("for.header")
        body = self.b.new_block("for.body")
        latch = self.b.new_block("for.latch")
        exit_ = self.b.new_block("for.exit")
        self.b.br(header)
        self.b.position_at_end(header)
        if stmt.cond is not None:
            self.b.condbr(self._lower_expr(stmt.cond), body, exit_)
        else:
            self.b.br(body)
        self.b.position_at_end(body)
        self._break_targets.append(exit_)
        self._continue_targets.append(latch)
        self._lower_stmt(stmt.body)
        self._break_targets.pop()
        self._continue_targets.pop()
        if self.b.block.terminator is None:
            self.b.br(latch)
        self.b.position_at_end(latch)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self.b.br(header)
        self.b.position_at_end(exit_)

    # -- SPMD region call site ----------------------------------------------------------

    def _lower_psim(self, stmt: ast.PsimStmt) -> None:
        gang = stmt.gang_size_value
        count = self._lower_expr(stmt.count)  # u64
        if stmt.count_kind == "num_gangs":
            count = self.b.mul(count, Constant(I64, gang), "n_threads")

        capture_values = [self._capture_value(s) for s in stmt.captures]
        full = self.compiler.outline_region(self.func, stmt, partial=False)
        tail = self.compiler.outline_region(self.func, stmt, partial=True)

        static_n = count.value if isinstance(count, Constant) else None
        exact = static_n is not None and static_n % gang == 0
        gang_c = Constant(I64, gang)

        # Specialized per Listing 6: a tight loop over the full gangs
        # (n & ~(G-1) of them, G is a power of two), then at most one
        # partial-gang call for the remainder.
        n_full = (
            count
            if exact
            else self.b.and_(count, Constant(I64, (~(gang - 1)) & ((1 << 64) - 1)), "n_full")
        )
        pre = self.b.block
        header = self.b.new_block("gang.header")
        body = self.b.new_block("gang.body")
        tail_check = self.b.new_block("gang.tailcheck")
        exit_ = self.b.new_block("gang.exit")

        self.b.br(header)
        self.b.position_at_end(header)
        base = self.b.phi(I64, "gang_base")
        base.append_operand(Constant(I64, 0))
        base.append_operand(pre)
        self.b.condbr(self.b.icmp("ult", base, n_full, "more_gangs"), body, tail_check)

        self.b.position_at_end(body)
        self.b.call(full, capture_values + [base, count])
        next_base = self.b.add(base, gang_c, "next_base")
        base.append_operand(next_base)
        base.append_operand(body)
        self.b.br(header)

        self.b.position_at_end(tail_check)
        if exact:
            self.b.br(exit_)
        else:
            call_tail = self.b.new_block("gang.tail")
            has_tail = self.b.icmp("ult", n_full, count, "has_tail")
            self.b.condbr(has_tail, call_tail, exit_)
            self.b.position_at_end(call_tail)
            self.b.call(tail, capture_values + [n_full, count])
            self.b.br(exit_)

        self.b.position_at_end(exit_)

    def _capture_value(self, symbol: Symbol) -> Value:
        mode, value = self.symtab[symbol]
        if mode == "direct":
            return value
        return self.b.load(value, symbol.name + ".cap")

    # -- expressions ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return Constant(expr.ctype.ir, expr.value)
        if isinstance(expr, ast.FloatLit):
            return Constant(expr.ctype.ir, expr.value)
        if isinstance(expr, ast.BoolLit):
            return Constant(I1, 1 if expr.value else 0)
        if isinstance(expr, ast.Ident):
            mode, value = self.symtab[expr.symbol]
            if mode == "direct":
                return value
            return self.b.load(value, expr.symbol.name)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.Index):
            return self.b.load(self._lvalue_address(expr))
        if isinstance(expr, ast.Deref):
            return self.b.load(self._lower_expr(expr.operand))
        if isinstance(expr, ast.AddrOf):
            operand = expr.operand
            if isinstance(operand, ast.Index):
                return self._lvalue_address(operand)
            mode, value = self.symtab[operand.symbol]
            if mode != "slot":
                raise LowerError(f"cannot take address of {operand.symbol.name!r}")
            return value
        if isinstance(expr, ast.Cast):
            return self._lower_cast(self._lower_expr(expr.operand), expr.operand.ctype, expr.target)
        raise LowerError(f"unhandled expression {type(expr).__name__}")

    def _lvalue_address(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.Ident):
            mode, value = self.symtab[expr.symbol]
            if mode != "slot":
                raise LowerError(f"{expr.symbol.name!r} is not assignable")
            return value
        if isinstance(expr, ast.Index):
            base = self._lower_expr(expr.base)
            index = self._lower_expr(expr.index)
            index = self._index_to_i64(index, expr.index.ctype)
            return self.b.gep(base, index)
        if isinstance(expr, ast.Deref):
            return self._lower_expr(expr.operand)
        raise LowerError(f"not an lvalue: {type(expr).__name__}")

    def _index_to_i64(self, value: Value, ctype: CType) -> Value:
        if value.type == I64:
            return value
        if ctype.is_bool:
            return self.b.zext(value, I64)
        return self.b.sext(value, I64) if ctype.signed else self.b.zext(value, I64)

    def _lower_unary(self, expr: ast.Unary) -> Value:
        operand = self._lower_expr(expr.operand)
        t = expr.ctype
        if expr.op == "-":
            if t.is_float:
                return self.b.fneg(operand)
            return self.b.sub(Constant(t.ir, 0), operand)
        if expr.op == "~":
            return self.b.not_(operand)
        if expr.op == "!":
            return self.b.xor(operand, Constant(I1, 1))
        raise LowerError(f"unhandled unary {expr.op!r}")

    _CMP_SIGNED = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
    _CMP_UNSIGNED = {"<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}
    _CMP_FLOAT = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}

    def _lower_binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        left_ct = expr.left.ctype
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)

        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left_ct.is_float:
                return self.b.fcmp(self._CMP_FLOAT[op], left, right)
            if op == "==":
                return self.b.icmp("eq", left, right)
            if op == "!=":
                return self.b.icmp("ne", left, right)
            table = self._CMP_SIGNED if left_ct.signed and not left_ct.is_pointer else self._CMP_UNSIGNED
            return self.b.icmp(table[op], left, right)

        if left_ct.is_pointer:  # pointer arithmetic
            if op == "-":
                right = self.b.sub(Constant(I64, 0), right)
            return self.b.gep(left, right)

        t = expr.ctype
        if t.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
            return self.b.binop(opcode, left, right)
        if t.is_bool:
            opcode = {"&": "and", "|": "or", "^": "xor"}[op]
            return self.b.binop(opcode, left, right)
        opcode = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "sdiv" if t.signed else "udiv",
            "%": "srem" if t.signed else "urem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "ashr" if t.signed else "lshr",
        }[op]
        return self.b.binop(opcode, left, right)

    def _lower_logical(self, expr: ast.Binary) -> Value:
        # Short-circuit semantics, but use plain i1 bitwise ops when the RHS
        # is speculatable (no loads/calls/divides) — better for vectorization.
        left = self._lower_expr(expr.left)
        if _speculatable(expr.right):
            right = self._lower_expr(expr.right)
            return self.b.binop("and" if expr.op == "&&" else "or", left, right)
        rhs_block = self.b.new_block("sc.rhs")
        join = self.b.new_block("sc.join")
        lhs_block = self.b.block
        if expr.op == "&&":
            self.b.condbr(left, rhs_block, join)
            const = Constant(I1, 0)
        else:
            self.b.condbr(left, join, rhs_block)
            const = Constant(I1, 1)
        self.b.position_at_end(rhs_block)
        right = self._lower_expr(expr.right)
        rhs_end = self.b.block
        self.b.br(join)
        self.b.position_at_end(join)
        phi = self.b.phi(I1, "sc")
        phi.append_operand(const)
        phi.append_operand(lhs_block)
        phi.append_operand(right)
        phi.append_operand(rhs_end)
        return phi

    def _lower_ternary(self, expr: ast.Ternary) -> Value:
        cond = self._lower_expr(expr.cond)
        if _speculatable(expr.then) and _speculatable(expr.els):
            then = self._lower_expr(expr.then)
            els = self._lower_expr(expr.els)
            return self.b.select(cond, then, els)
        then_block = self.b.new_block("sel.then")
        else_block = self.b.new_block("sel.else")
        join = self.b.new_block("sel.join")
        self.b.condbr(cond, then_block, else_block)
        self.b.position_at_end(then_block)
        then = self._lower_expr(expr.then)
        then_end = self.b.block
        self.b.br(join)
        self.b.position_at_end(else_block)
        els = self._lower_expr(expr.els)
        else_end = self.b.block
        self.b.br(join)
        self.b.position_at_end(join)
        phi = self.b.phi(then.type, "sel")
        phi.append_operand(then)
        phi.append_operand(then_end)
        phi.append_operand(els)
        phi.append_operand(else_end)
        return phi

    # -- calls ----------------------------------------------------------------------------

    def _lower_call(self, expr: ast.Call) -> Value:
        sig = getattr(expr, "builtin", None)
        args = [self._lower_expr(a) for a in expr.args]
        if sig is None:
            callee = self.compiler.ir_funcs[expr.name]
            return self.b.call(callee, args)
        if sig.kind == "op":
            if sig.opcode == "fma":
                return self.b.fma(*args)
            if sig.opcode in ("fabs", "iabs", "fsqrt"):
                return self.b.unop(sig.opcode, args[0])
            return self.b.binop(sig.opcode, args[0], args[1])
        if sig.kind == "math":
            ext = scalar_math_external(self.module, sig.name, sig.result.ir)
            return self.b.call(ext, args)
        if sig.kind == "psim":
            return self._lower_psim_intrinsic(sig, args)
        raise LowerError(f"unhandled builtin kind {sig.kind!r}")

    def _lower_psim_intrinsic(self, sig, args: List[Value]) -> Value:
        psim = self.psim
        if psim is None:
            raise LowerError(f"{sig.name} outside a psim region (sema bug)")
        name = sig.name
        if name == "psim_get_lane_num":
            return self._lane()
        if name == "psim_get_thread_num":
            return self.b.add(psim.gang_base, self._lane(), "thread_num")
        if name == "psim_get_gang_num":
            shift = psim.gang_size.bit_length() - 1
            return self.b.lshr(psim.gang_base, Constant(I64, shift), "gang_num")
        if name == "psim_get_num_threads":
            return psim.num_threads
        if name == "psim_get_gang_size":
            return Constant(I64, psim.gang_size)
        if name == "psim_is_head_gang":
            return self.b.icmp("eq", psim.gang_base, Constant(I64, 0), "is_head")
        if name == "psim_is_tail_gang":
            end = self.b.add(psim.gang_base, Constant(I64, psim.gang_size))
            return self.b.icmp("uge", end, psim.num_threads, "is_tail")
        if name == "psim_gang_sync":
            return self.b.call(psim_abi.gang_sync_external(self.module), [])
        if name == "psim_shuffle_sync":
            ext = psim_abi.shuffle_external(self.module, args[0].type)
            return self.b.call(ext, args)
        if name == "psim_broadcast_sync":
            ext = psim_abi.broadcast_external(self.module, args[0].type)
            return self.b.call(ext, args)
        if name in ("psim_reduce_add_sync", "psim_reduce_min_sync", "psim_reduce_max_sync"):
            kind = name.split("_")[2]
            ext = psim_abi.reduce_external(
                self.module, kind, args[0].type, sig.result.signed
            )
            return self.b.call(ext, args)
        if name in ("psim_any_sync", "psim_all_sync"):
            ext = psim_abi.vote_external(self.module, name.split("_")[1])
            return self.b.call(ext, args)
        if name == "psim_sad_sync":
            return self.b.call(psim_abi.sad_external(self.module), args)
        if name == "psim_atomic_add":
            return self.b.atomicrmw("add", args[0], args[1])
        if name == "psim_atomic_min":
            return self.b.atomicrmw("umin", args[0], args[1])
        if name == "psim_atomic_max":
            return self.b.atomicrmw("umax", args[0], args[1])
        if name == "psim_atomic_smin":
            return self.b.atomicrmw("smin", args[0], args[1])
        if name == "psim_atomic_smax":
            return self.b.atomicrmw("smax", args[0], args[1])
        raise LowerError(f"unhandled psim intrinsic {name}")

    def _lane(self) -> Value:
        ext = psim_abi.lane_num_external(self.module)
        return self.b.call(ext, [], "lane")

    # -- casts ---------------------------------------------------------------------------

    def _lower_cast(self, value: Value, src: CType, dst: CType) -> Value:
        if src == dst:
            return value
        if isinstance(value, Constant) and src.is_arithmetic and dst.is_arithmetic:
            return self._fold_constant_cast(value, src, dst)
        b = self.b
        if dst.is_bool:
            if src.is_float:
                return b.fcmp("one", value, Constant(src.ir, 0.0))
            if src.is_pointer:
                return b.icmp("ne", value, Constant(src.ir, 0))
            if src.is_bool:
                return value
            return b.icmp("ne", value, Constant(src.ir, 0))
        if dst.is_float:
            if src.is_float:
                return b.fpext(value, dst.ir) if dst.bits > src.bits else b.fptrunc(value, dst.ir)
            # bool/int -> float
            return b.sitofp(value, dst.ir) if src.signed and not src.is_bool else b.uitofp(value, dst.ir)
        if dst.is_int or dst.is_bool:
            if src.is_float:
                return b.fptosi(value, dst.ir) if dst.signed else b.fptoui(value, dst.ir)
            if src.is_pointer:
                return b.ptrtoint(value, dst.ir)
            # int/bool -> int
            if src.bits == dst.bits:
                return value
            if src.bits > dst.bits:
                return b.trunc(value, dst.ir)
            return b.sext(value, dst.ir) if src.signed and not src.is_bool else b.zext(value, dst.ir)
        if dst.is_pointer:
            if src.is_pointer:
                return b.bitcast(value, dst.ir)
            widened = self._lower_cast(value, src, SCALAR_TYPES["u64"]) if src.bits != 64 else value
            return b.inttoptr(widened, dst.ir)
        raise LowerError(f"unhandled cast {src} -> {dst}")

    @staticmethod
    def _fold_constant_cast(value: Constant, src: CType, dst: CType) -> Constant:
        """Fold casts of literals so e.g. num_threads=64 stays a Constant
        (which lets the gang loop skip the tail-dispatch entirely)."""
        from ..vm.nputil import from_signed, mask_int, to_signed

        payload = value.value
        if src.is_int or src.is_bool:
            payload = to_signed(payload, src.bits) if src.signed else payload
        if dst.is_float:
            return Constant(dst.ir, float(payload))
        if dst.is_bool:
            return Constant(dst.ir, 1 if payload else 0)
        return Constant(dst.ir, mask_int(int(payload), dst.bits))


def _speculatable(expr: ast.Expr) -> bool:
    """True if evaluating ``expr`` unconditionally is always safe."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.Ident)):
        return True
    if isinstance(expr, ast.Unary):
        return _speculatable(expr.operand)
    if isinstance(expr, ast.Binary):
        if expr.op in ("/", "%"):
            return False  # may trap
        return _speculatable(expr.left) and _speculatable(expr.right)
    if isinstance(expr, ast.Ternary):
        return all(map(_speculatable, (expr.cond, expr.then, expr.els)))
    if isinstance(expr, ast.Cast):
        return _speculatable(expr.operand)
    return False  # calls, loads (Index/Deref), address-of
