"""Builtin functions and Parsimony API intrinsics for PsimC.

Two families:

* **general builtins** — ``min``/``max``/``abs``/``sqrt``/math functions
  and the "operations not typically exposed in standard language APIs,
  such as saturating math" (§3): ``addsat``/``subsat``/``avgr``/
  ``absdiff``/``mulhi``.
* **psim intrinsics** — the Parsimony programming API (§3): thread/gang
  queries, explicit horizontal synchronization ops, and the §7 opaque SAD
  accumulator abstraction.  These are only legal inside a ``psim`` region.

During lowering, general builtins become IR opcodes or math-library
calls; psim intrinsics become calls to reserved ``psim.*`` externals that
the Parsimony vectorizer later pattern-matches and lowers (§4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .ctypes import BOOL, CType, SCALAR_TYPES, VOIDT

__all__ = ["BuiltinSig", "lookup_builtin", "PSIM_INTRINSICS", "is_psim_intrinsic"]

U64T = SCALAR_TYPES["u64"]
U8T = SCALAR_TYPES["u8"]
F32T = SCALAR_TYPES["f32"]
F64T = SCALAR_TYPES["f64"]


@dataclass
class BuiltinSig:
    """Resolved builtin call: result type plus per-argument coercion targets."""

    name: str
    result: CType
    arg_types: List[CType]
    kind: str  # 'op' | 'math' | 'psim'
    #: For kind='op': the IR opcode family to lower to (signedness applied).
    opcode: str = ""


class BuiltinError(TypeError):
    """Raised when builtin arguments cannot be resolved."""


def _arith(t: CType) -> bool:
    return t.is_arithmetic or t.is_bool


def _usual(a: CType, b: CType) -> CType:
    """C's usual arithmetic conversions (shared with sema)."""
    from .sema import usual_arithmetic_conversion

    return usual_arithmetic_conversion(a, b)


def _binary_minmax(name: str, args: List[CType]) -> BuiltinSig:
    if len(args) != 2 or not all(_arith(t) for t in args):
        raise BuiltinError(f"{name} expects two arithmetic arguments")
    t = _usual(args[0], args[1])
    if t.is_float:
        opcode = "fmin" if name == "min" else "fmax"
    elif t.signed:
        opcode = "smin" if name == "min" else "smax"
    else:
        opcode = "umin" if name == "min" else "umax"
    return BuiltinSig(name, t, [t, t], "op", opcode)


def _narrow_int_pair(name: str, args: List[CType], signed_op: str, unsigned_op: str,
                     unsigned_only: bool = False) -> BuiltinSig:
    """Saturating/SIMD-flavoured ops keep their *narrow* type (no promotion):
    that is the whole point of exposing them as APIs."""
    if len(args) != 2 or not all(t.is_int for t in args) or args[0] != args[1]:
        raise BuiltinError(f"{name} expects two integer arguments of the same type")
    t = args[0]
    if unsigned_only and t.signed:
        raise BuiltinError(f"{name} requires unsigned operands")
    return BuiltinSig(name, t, [t, t], "op", signed_op if t.signed else unsigned_op)


_MATH_ONE = frozenset("floor ceil round trunc exp log exp2 log2 sin cos tan asin acos atan rsqrt cbrt".split())
_MATH_TWO = frozenset("pow atan2 fmod".split())


def lookup_builtin(name: str, args: List[CType], in_psim: bool) -> Optional[BuiltinSig]:
    """Resolve a builtin call; returns None if ``name`` is not a builtin."""
    if name in ("min", "max"):
        return _binary_minmax(name, args)
    if name == "abs":
        if len(args) != 1 or not _arith(args[0]):
            raise BuiltinError("abs expects one arithmetic argument")
        t = args[0]
        return BuiltinSig(name, t, [t], "op", "fabs" if t.is_float else "iabs")
    if name == "sqrt":
        if len(args) != 1 or not args[0].is_float:
            raise BuiltinError("sqrt expects one float argument")
        return BuiltinSig(name, args[0], [args[0]], "op", "fsqrt")
    if name == "fma":
        if len(args) != 3 or not all(t.is_float for t in args):
            raise BuiltinError("fma expects three float arguments")
        t = _usual(_usual(args[0], args[1]), args[2])
        return BuiltinSig(name, t, [t, t, t], "op", "fma")
    if name == "addsat":
        return _narrow_int_pair(name, args, "addsat_s", "addsat_u")
    if name == "subsat":
        return _narrow_int_pair(name, args, "subsat_s", "subsat_u")
    if name == "mulhi":
        return _narrow_int_pair(name, args, "mulhi_s", "mulhi_u")
    if name == "avgr":
        return _narrow_int_pair(name, args, "avg_u", "avg_u", unsigned_only=True)
    if name == "absdiff":
        return _narrow_int_pair(name, args, "abd_u", "abd_u", unsigned_only=True)
    if name in _MATH_ONE:
        if len(args) != 1 or not _arith(args[0]):
            raise BuiltinError(f"{name} expects one arithmetic argument")
        t = args[0] if args[0].is_float else F64T
        return BuiltinSig(name, t, [t], "math")
    if name in _MATH_TWO:
        if len(args) != 2 or not all(_arith(t) for t in args):
            raise BuiltinError(f"{name} expects two arithmetic arguments")
        t = _usual(args[0], args[1])
        if not t.is_float:
            t = F64T
        return BuiltinSig(name, t, [t, t], "math")
    if name in PSIM_INTRINSICS:
        if not in_psim:
            raise BuiltinError(f"{name} may only be used inside a psim region")
        return _psim_sig(name, args)
    return None


# -- Parsimony API ------------------------------------------------------------------

PSIM_INTRINSICS = frozenset(
    """psim_get_lane_num psim_get_thread_num psim_get_gang_num
       psim_get_num_threads psim_get_gang_size
       psim_is_head_gang psim_is_tail_gang
       psim_gang_sync psim_shuffle_sync psim_broadcast_sync
       psim_reduce_add_sync psim_reduce_min_sync psim_reduce_max_sync
       psim_sad_sync psim_any_sync psim_all_sync
       psim_atomic_add psim_atomic_min psim_atomic_max
       psim_atomic_smin psim_atomic_smax""".split()
)


def is_psim_intrinsic(name: str) -> bool:
    return name in PSIM_INTRINSICS


def _psim_sig(name: str, args: List[CType]) -> BuiltinSig:
    if name in (
        "psim_get_lane_num",
        "psim_get_thread_num",
        "psim_get_gang_num",
        "psim_get_num_threads",
        "psim_get_gang_size",
    ):
        _expect_args(name, args, 0)
        return BuiltinSig(name, U64T, [], "psim")
    if name in ("psim_is_head_gang", "psim_is_tail_gang"):
        _expect_args(name, args, 0)
        return BuiltinSig(name, BOOL, [], "psim")
    if name == "psim_gang_sync":
        _expect_args(name, args, 0)
        return BuiltinSig(name, VOIDT, [], "psim")
    if name in ("psim_shuffle_sync", "psim_broadcast_sync"):
        _expect_args(name, args, 2)
        if not (args[0].is_arithmetic or args[0].is_bool):
            raise BuiltinError(f"{name} expects an arithmetic value")
        if not args[1].is_int:
            raise BuiltinError(f"{name} expects an integer lane index")
        return BuiltinSig(name, args[0], [args[0], U64T], "psim")
    if name in ("psim_reduce_add_sync", "psim_reduce_min_sync", "psim_reduce_max_sync"):
        _expect_args(name, args, 1)
        if not args[0].is_arithmetic:
            raise BuiltinError(f"{name} expects an arithmetic value")
        return BuiltinSig(name, args[0], [args[0]], "psim")
    if name in ("psim_any_sync", "psim_all_sync"):
        _expect_args(name, args, 1)
        return BuiltinSig(name, BOOL, [BOOL], "psim")
    if name == "psim_sad_sync":
        # §7: opaque sum-of-absolute-differences accumulator over the gang.
        _expect_args(name, args, 2)
        if args[0] != U8T or args[1] != U8T:
            raise BuiltinError("psim_sad_sync expects two u8 values")
        return BuiltinSig(name, U64T, [U8T, U8T], "psim")
    if name in (
        "psim_atomic_add",
        "psim_atomic_min",
        "psim_atomic_max",
        "psim_atomic_smin",
        "psim_atomic_smax",
    ):
        _expect_args(name, args, 2)
        if not args[0].is_pointer or args[0].pointee is None or not args[0].pointee.is_int:
            raise BuiltinError(f"{name} expects an integer pointer")
        return BuiltinSig(name, args[0].pointee, [args[0], args[0].pointee], "psim")
    raise BuiltinError(f"unhandled psim intrinsic {name}")


def _expect_args(name: str, args: List[CType], count: int) -> None:
    if len(args) != count:
        raise BuiltinError(f"{name} expects {count} argument(s), got {len(args)}")
