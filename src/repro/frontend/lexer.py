"""Lexer for PsimC."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from ..diagnostics import CompileError

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    """void bool i8 u8 i16 u16 i32 u32 i64 u64 f32 f64
       if else while for return break continue true false
       psim gang_size num_threads num_gangs""".split()
)

# Multi-character operators first (longest match wins).
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
]


class Token(NamedTuple):
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


class LexError(CompileError, SyntaxError):
    """Raised on an unrecognized character or malformed literal."""

    default_stage = "frontend"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def col() -> int:
        return i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated block comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start - line_start + 1))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i] in "0123456789abcdefABCDEF"):
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
                if i < n and source[i] == ".":
                    is_float = True
                    i += 1
                    while i < n and source[i].isdigit():
                        i += 1
                if i < n and source[i] in "eE":
                    is_float = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                    while i < n and source[i].isdigit():
                        i += 1
            # Suffixes: f (float), u/U (unsigned), l/L (long), combinations.
            while i < n and source[i] in "fFuUlL":
                if source[i] in "fF":
                    is_float = True
                i += 1
            text = source[start:i]
            tokens.append(
                Token("float" if is_float else "int", text, line, start - line_start + 1)
            )
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col()))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}, col {col()}")

    tokens.append(Token("eof", "", line, col()))
    return tokens
