"""``repro.frontend`` — the PsimC front-end.

PsimC is a small C-like language with Parsimony ``psim`` SPMD regions,
standing in for the paper's Parsimony-enabled C++ (§3).  The pipeline is
lexer → parser → sema (types + captures) → lowering (IR + SPMD region
outlining per §4.1 / Listing 6).
"""

from .ctypes import CType, ptr, type_by_name
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_expression, parse_program
from .sema import Sema, SemaError, analyze, usual_arithmetic_conversion
from .lower import Compiler, LowerError, compile_source
from .intrinsics import PSIM_INTRINSICS, is_psim_intrinsic

__all__ = [
    "CType", "ptr", "type_by_name",
    "LexError", "Token", "tokenize",
    "ParseError", "parse_program", "parse_expression",
    "Sema", "SemaError", "analyze", "usual_arithmetic_conversion",
    "Compiler", "LowerError", "compile_source",
    "PSIM_INTRINSICS", "is_psim_intrinsic",
]
